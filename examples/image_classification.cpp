// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Domain example: pick a gradient-compression setting for an image
// classifier. Trains the AlexNet-style conv net under several codecs on
// the same data and prints the accuracy/communication trade-off — the
// decision the paper's study informs (Section 5.4: "8bit QSGD ... may be
// a good entry-level compressor").
//
//   ./image_classification
#include <iostream>

#include "base/strings.h"
#include "base/table_printer.h"
#include "core/experiment.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "quant/codec.h"

int main() {
  using namespace lpsgd;  // NOLINT(build/namespaces)

  SyntheticImageOptions data_options;
  data_options.num_classes = 10;
  data_options.channels = 1;
  data_options.height = 8;
  data_options.width = 8;
  data_options.num_samples = 512;
  data_options.signal = 1.2f;
  data_options.noise = 0.8f;
  SyntheticImageDataset train(data_options);
  data_options.num_samples = 256;
  data_options.sample_offset = 1 << 20;
  SyntheticImageDataset test(data_options);

  TrainerOptions base;
  base.num_gpus = 4;
  base.global_batch_size = 32;
  base.learning_rate = 0.05f;
  base.lr_schedule = {{14, 0.01f}};

  const std::vector<AccuracyRunConfig> configs = {
      {"32bit", FullPrecisionSpec(), {}},
      {"QSGD 8bit", QsgdSpec(8), {}},
      {"QSGD 4bit", QsgdSpec(4), {}},
      {"QSGD 2bit", QsgdSpec(2), {}},
      {"1bitSGD* (d=8)", OneBitSgdReshapedSpec(8), {}},
  };

  auto factory = [](uint64_t seed) {
    return BuildMiniAlexNet(/*in_channels=*/1, /*image_size=*/8,
                            /*num_classes=*/10, seed);
  };
  auto series = RunAccuracyComparison(factory, base, train, test, configs,
                                      /*epochs=*/20);
  if (!series.ok()) {
    std::cerr << series.status() << "\n";
    return 1;
  }

  std::cout << FormatAccuracyTable(*series, /*print_every=*/4) << "\n";

  // Wire cost per configuration (bytes per parameter per exchange).
  TablePrinter table({"Codec", "Final accuracy", "Wire bytes/param",
                      "Verdict"});
  Network probe = factory(0);
  for (size_t i = 0; i < configs.size(); ++i) {
    auto codec = CreateCodec(configs[i].codec);
    if (!codec.ok()) continue;
    int64_t bytes = 0, params = 0;
    for (const ParamRef& p : probe.Params()) {
      bytes += (*codec)->EncodedSizeBytes(p.quant_shape);
      params += p.value->size();
    }
    const double final_accuracy = (*series)[i].FinalTestAccuracy();
    const double fp_accuracy = (*series)[0].FinalTestAccuracy();
    const char* verdict =
        final_accuracy >= fp_accuracy - 0.02
            ? "matches full precision"
            : (final_accuracy >= fp_accuracy - 0.10 ? "small loss"
                                                    : "accuracy loss");
    table.AddRow({configs[i].label,
                  StrCat(FormatDouble(final_accuracy * 100.0, 1), "%"),
                  FormatDouble(static_cast<double>(bytes) / params, 3),
                  verdict});
  }
  table.Print(std::cout);
  return 0;
}
