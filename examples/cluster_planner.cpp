// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Domain example: the "automatic optimizer for deep learning tasks" the
// paper's introduction motivates from the data-management angle. Given a
// network and a deadline, the planner searches (machine x #GPUs x
// precision x primitive) with the calibrated performance model and
// reports the cheapest EC2 configuration that trains the published recipe
// within the deadline.
//
//   ./cluster_planner [network] [deadline_hours]
//   ./cluster_planner ResNet50 48
#include <iostream>
#include <optional>
#include <string>

#include "base/strings.h"
#include "base/table_printer.h"
#include "bench/bench_util.h"
#include "sim/perf_model.h"

namespace lpsgd {
namespace {

struct Plan {
  std::string machine;
  int gpus = 0;
  std::string codec;
  std::string primitive;
  double hours = 0.0;
  double cost_usd = 0.0;
};

int Run(const std::string& network, double deadline_hours) {
  auto stats = FindNetworkStats(network);
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return 1;
  }

  std::cout << "Planning: train " << network << " for "
            << stats->recipe_epochs << " epochs (published recipe, "
            << FormatDouble(stats->recipe_accuracy_percent, 1)
            << "% accuracy) within " << deadline_hours << " h on EC2.\n\n";

  std::optional<Plan> best;
  TablePrinter table({"Machine", "GPUs", "Precision", "Primitive",
                      "Train time", "Cost ($)", "Meets deadline"});
  for (int gpus : {1, 2, 4, 8, 16}) {
    if (stats->batch_for_gpus.find(gpus) == stats->batch_for_gpus.end()) {
      continue;
    }
    auto machine = Ec2MachineForGpus(gpus);
    if (!machine.ok()) continue;
    PerfModel model(*stats, *machine);
    for (CommPrimitive primitive :
         {CommPrimitive::kMpi, CommPrimitive::kNccl}) {
      for (const CodecSpec& codec :
           {FullPrecisionSpec(), QsgdSpec(8), QsgdSpec(4),
            OneBitSgdReshapedSpec(64)}) {
        if (gpus == 1 && codec.kind != CodecKind::kFullPrecision) continue;
        auto est = model.Estimate(codec, primitive, gpus);
        if (!est.ok()) continue;
        const double hours = est->EpochSeconds(stats->dataset_samples) *
                             stats->recipe_epochs / 3600.0;
        const double cost = hours * machine->price_per_hour_usd;
        const bool feasible = hours <= deadline_hours;
        table.AddRow({machine->name, StrCat(gpus), codec.ShortLabel(),
                      CommPrimitiveName(primitive),
                      FormatDouble(hours, 1) + " h", FormatDouble(cost, 0),
                      feasible ? "yes" : "no"});
        if (feasible && (!best || cost < best->cost_usd)) {
          best = Plan{machine->name,          gpus,
                      codec.Label(),          CommPrimitiveName(primitive),
                      hours,                  cost};
        }
      }
    }
  }
  table.Print(std::cout);

  if (best) {
    std::cout << "\nCheapest feasible plan: " << best->machine << " with "
              << best->gpus << " GPU(s), " << best->codec << " over "
              << best->primitive << " -- "
              << FormatDouble(best->hours, 1) << " h, $"
              << FormatDouble(best->cost_usd, 0) << ".\n";
  } else {
    std::cout << "\nNo EC2 P2 configuration meets the deadline; relax it "
                 "or accept a partially trained model.\n";
  }
  return 0;
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  const std::string network = argc > 1 ? argv[1] : "ResNet50";
  const double deadline_hours = argc > 2 ? std::atof(argv[2]) : 200.0;
  return lpsgd::Run(network, deadline_hours);
}
