// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Configurable training driver: pick the task, model, GPU count,
// precision, and primitive from the command line and watch synchronous
// data-parallel training run with full communication accounting.
//
//   ./train_cli [--task image|sequence] [--model mlp|alexnet|resnet|lstm]
//               [--codec <spec>] [--gpus N] [--batch N] [--epochs N]
//               [--lr F] [--primitive mpi|nccl] [--seed N] [--threads N]
//               [--fault_plan <spec>] [--checkpoint_every N]
//               [--max_retries N] [--profile_out <path>]
//               [--flight_recorder <prefix>]
//               [--simd auto|scalar|avx2|neon]
//               [--save_dir <dir>] [--save_every N]
//               [--checkpoint_keep N] [--resume 0|1]
//
//   ./train_cli --model resnet --codec 1bit*:16 --gpus 8 --epochs 15
//   ./train_cli --task sequence --model lstm --codec q2 --threads 4
//   ./train_cli --fault_plan "fail@3x2;crash@9:1" --checkpoint_every 4
//               --max_retries 1
//
// --threads sets the host worker count for the per-rank work (0 = one
// per hardware thread, 1 = serial); results are identical either way.
//
// Codec grammar (from the codec registry; a bad spec prints the full
// per-family help): 32bit | 1bit | 1bit*[:<bucket>] | q<bits>[:<bucket>]
//   | aq<bits>[:<bucket>] | nuq<bits>[:<bucket>] | ecq<bits>[:<bucket>]
//   | terngrad[:clip=<c>] | topk:<density> — families also take
//   key=value parameters, e.g. q4:bucket=512,norm=l2.
//
// Fault-plan grammar (';'-separated): straggle@<iter>:<seconds> |
//   fail@<iter>[x<count>] | corrupt@<iter>[x<count>] | crash@<iter>:<rank>
//   | torn@<iter> | shortwrite@<iter> | enospc@<iter>[x<count>]
//   | kill@<iter> | seed=<n>. Faults replay deterministically;
// --checkpoint_every enables rollback-and-replay, --max_retries the
// per-exchange retry budget, and a crashed rank is dropped with training
// renormalized over the survivors. Storage verbs corrupt durable
// checkpoint writes; kill@ aborts the process loop right after the
// durable save at that iteration (exit code 3).
//
// --save_dir enables durable crash-consistent checkpoints (written every
// --save_every iterations plus once at the end; --checkpoint_keep
// retains the newest N). --resume 1 restores the newest valid checkpoint
// from --save_dir and trains the remaining epochs; pass the fault plan
// WITHOUT the kill@ verb on the resumed run or it fires again.
//
// --profile_out enables the step-phase profiler, prints the per-phase
// breakdown table after training, and writes the profile JSON to <path>
// (plus a Chrome trace next to it at <path>.trace.json).
// --flight_recorder enables the fault flight recorder; each non-OK
// exchange dumps its recent history to <prefix>.<n>.json ("-" records in
// memory only).
// --simd pins the codec kernel dispatch (default: LPSGD_SIMD env, else
// CPU detection); "scalar" forces the golden reference kernels. Results
// are bit-identical under every mode.
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "base/simd/simd.h"
#include "base/strings.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "obs/profile.h"
#include "quant/registry.h"

namespace lpsgd {
namespace {

struct Args {
  std::string task = "image";
  std::string model = "alexnet";
  std::string codec = "q4";
  std::string primitive = "mpi";
  int gpus = 4;
  int batch = 32;
  int epochs = 15;
  float lr = 0.05f;
  uint64_t seed = 42;
  int threads = 0;  // 0 = one worker per hardware thread
  std::string fault_plan;  // empty = no injected faults
  int checkpoint_every = 0;  // 0 = no in-memory checkpoints
  int max_retries = 0;  // per-exchange retry budget
  std::string profile_out;       // empty = profiler disabled
  std::string flight_recorder;   // empty = flight recorder disabled
  std::string simd;  // empty = LPSGD_SIMD env, else CPU detection
  std::string save_dir;   // empty = durable checkpoints disabled
  int save_every = 0;     // durable save cadence in iterations (0 = end only)
  int checkpoint_keep = 3;  // newest durable checkpoints retained
  int resume = 0;           // 1 = restore newest checkpoint from save_dir
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << flag << "\n";
      return false;
    }
    const std::string value = argv[i + 1];
    if (flag == "--task") {
      args->task = value;
    } else if (flag == "--model") {
      args->model = value;
    } else if (flag == "--codec") {
      args->codec = value;
    } else if (flag == "--primitive") {
      args->primitive = value;
    } else if (flag == "--gpus") {
      args->gpus = std::atoi(value.c_str());
    } else if (flag == "--batch") {
      args->batch = std::atoi(value.c_str());
    } else if (flag == "--epochs") {
      args->epochs = std::atoi(value.c_str());
    } else if (flag == "--lr") {
      args->lr = static_cast<float>(std::atof(value.c_str()));
    } else if (flag == "--seed") {
      args->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--threads") {
      args->threads = std::atoi(value.c_str());
    } else if (flag == "--fault_plan") {
      args->fault_plan = value;
    } else if (flag == "--checkpoint_every") {
      args->checkpoint_every = std::atoi(value.c_str());
    } else if (flag == "--max_retries") {
      args->max_retries = std::atoi(value.c_str());
    } else if (flag == "--profile_out") {
      args->profile_out = value;
    } else if (flag == "--flight_recorder") {
      args->flight_recorder = value;
    } else if (flag == "--simd") {
      args->simd = value;
    } else if (flag == "--save_dir") {
      args->save_dir = value;
    } else if (flag == "--save_every") {
      args->save_every = std::atoi(value.c_str());
    } else if (flag == "--checkpoint_keep") {
      args->checkpoint_keep = std::atoi(value.c_str());
    } else if (flag == "--resume") {
      args->resume = std::atoi(value.c_str());
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

int Run(const Args& args) {
  if (!args.simd.empty()) {
    if (Status status = SetSimdMode(args.simd); !status.ok()) {
      std::cerr << status << " (--simd takes auto|scalar|avx2|neon)\n";
      return 1;
    }
  }
  auto spec = ParseCodecSpec(args.codec);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\nregistered codecs:\n";
    for (const std::string& line : CodecRegistry::Global().HelpLines()) {
      std::cerr << "  " << line << "\n";
    }
    return 1;
  }

  // Datasets.
  std::unique_ptr<Dataset> train, test;
  SyncTrainer::NetworkFactory factory;
  if (args.task == "image") {
    SyntheticImageOptions options;
    options.num_classes = 10;
    options.channels = 1;
    options.height = 8;
    options.width = 8;
    options.num_samples = 512;
    options.signal = 1.2f;
    options.noise = 0.8f;
    options.seed = args.seed;
    train = std::make_unique<SyntheticImageDataset>(options);
    options.num_samples = 256;
    options.sample_offset = 1 << 20;
    test = std::make_unique<SyntheticImageDataset>(options);

    if (args.model == "mlp") {
      factory = [](uint64_t seed) { return BuildMlp({64, 48, 10}, seed); };
    } else if (args.model == "alexnet") {
      factory = [](uint64_t seed) {
        return BuildMiniAlexNet(1, 8, 10, seed);
      };
    } else if (args.model == "resnet") {
      factory = [](uint64_t seed) {
        return BuildMiniResNetTwoStage(1, 8, 8, 10, seed);
      };
    } else {
      std::cerr << "image task supports --model mlp|alexnet|resnet\n";
      return 1;
    }
  } else if (args.task == "sequence") {
    SyntheticSequenceOptions options;
    options.num_classes = 8;
    options.time_steps = 10;
    options.frame_dim = 12;
    options.num_samples = 256;
    options.noise = 1.0f;
    options.seed = args.seed;
    train = std::make_unique<SyntheticSequenceDataset>(options);
    options.num_samples = 128;
    options.sample_offset = 1 << 20;
    test = std::make_unique<SyntheticSequenceDataset>(options);
    factory = [](uint64_t seed) {
      return BuildDeepLstmClassifier(12, 16, 2, 8, seed);
    };
    if (args.model != "lstm") {
      std::cerr << "(sequence task always uses --model lstm)\n";
    }
  } else {
    std::cerr << "unknown task: " << args.task << "\n";
    return 1;
  }

  TrainerOptions options;
  options.num_gpus = args.gpus;
  options.global_batch_size = args.batch;
  options.learning_rate = args.lr;
  options.codec = *spec;
  options.primitive =
      args.primitive == "nccl" ? CommPrimitive::kNccl : CommPrimitive::kMpi;
  options.seed = args.seed;
  options.execution.intra_op_threads = args.threads;
  if (!args.fault_plan.empty()) {
    auto plan = fault::FaultPlan::Parse(args.fault_plan);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    options.fault_tolerance.plan = *plan;
  }
  options.fault_tolerance.checkpoint_every = args.checkpoint_every;
  options.fault_tolerance.retry.max_retries = args.max_retries;
  if (!args.save_dir.empty()) {
    options.durable_checkpoint.save_dir = args.save_dir;
    options.durable_checkpoint.save_every = args.save_every;
    options.durable_checkpoint.keep = args.checkpoint_keep;
  }

  if (!args.profile_out.empty()) {
    obs::Profiler::Global().set_enabled(true);
  }
  if (!args.flight_recorder.empty()) {
    obs::FlightRecorder::Global().set_enabled(true);
    if (args.flight_recorder != "-") {
      obs::FlightRecorder::Global().set_output_prefix(args.flight_recorder);
    }
  }

  int epochs_to_run = args.epochs;
  StatusOr<std::unique_ptr<SyncTrainer>> trainer =
      InvalidArgumentError("trainer not constructed");
  if (args.resume != 0) {
    if (args.save_dir.empty()) {
      std::cerr << "--resume 1 needs --save_dir\n";
      return 1;
    }
    auto manager =
        ckpt::CheckpointManager::Create(options.durable_checkpoint);
    if (!manager.ok()) {
      std::cerr << manager.status() << "\n";
      return 1;
    }
    auto restored = (*manager)->RestoreLatest();
    if (!restored.ok()) {
      std::cerr << restored.status() << "\n";
      return 1;
    }
    std::cout << "resuming from " << restored->path << " (iteration "
              << restored->state.iteration << ", "
              << restored->state.epochs_completed
              << " epochs completed)\n";
    epochs_to_run = args.epochs - restored->state.epochs_completed;
    trainer = SyncTrainer::Restore(factory, options, restored->state);
  } else {
    trainer = SyncTrainer::Create(factory, options);
  }
  if (!trainer.ok()) {
    std::cerr << trainer.status() << "\n";
    return 1;
  }

  std::cout << "Training " << args.model << " on " << args.task
            << " task: " << args.gpus << " simulated GPUs, "
            << spec->Label() << " over " << args.primitive << ", batch "
            << args.batch << ", lr " << args.lr << ", execution "
            << (*trainer)->options().execution.Description() << ", simd "
            << SimdIsaName(ActiveSimdIsa()) << "\n";
  const fault::FaultToleranceOptions& ft =
      (*trainer)->options().fault_tolerance;
  if (ft.enabled()) {
    std::cout << "fault tolerance: plan \""
              << (ft.plan.empty() ? std::string("none")
                                  : ft.plan.ToString())
              << "\", checkpoint every " << ft.checkpoint_every
              << " steps, " << ft.retry.max_retries
              << " retries per exchange\n";
  }
  std::cout << "\n";
  std::cout << "epoch  train_loss  train_acc  test_acc  test_top5\n";
  auto metrics = (*trainer)->Train(*train, *test, epochs_to_run);
  if (!metrics.ok()) {
    if (fault::IsProcessKill(metrics.status())) {
      // The durable checkpoint for this iteration landed before the kill
      // fired; a restart with --resume 1 (and the kill@ verb stripped
      // from the plan) picks up from it.
      std::cerr << "simulated crash: " << metrics.status() << "\n";
      return 3;
    }
    std::cerr << metrics.status() << "\n";
    return 1;
  }
  if (!args.save_dir.empty()) {
    if (Status status = (*trainer)->SaveDurableNow(); !status.ok()) {
      std::cerr << "final checkpoint save failed: " << status << "\n";
      return 1;
    }
  }
  for (const EpochMetrics& m : *metrics) {
    std::cout << "  " << m.epoch << "\t" << FormatDouble(m.train_loss, 4)
              << "\t" << FormatDouble(m.train_accuracy * 100.0, 1) << "%\t"
              << FormatDouble(m.test_accuracy * 100.0, 1) << "%\t"
              << FormatDouble(m.test_top5_accuracy * 100.0, 1) << "%\n";
  }

  const CommStats& comm = (*trainer)->total_comm();
  std::cout << "\ncommunication: "
            << HumanBytes(static_cast<double>(comm.wire_bytes))
            << " on the wire (fp32 would be "
            << HumanBytes(static_cast<double>(comm.raw_bytes)) << ", "
            << FormatDouble(comm.CompressionRatio(), 1)
            << "x compression), " << comm.messages << " messages, "
            << HumanSeconds(comm.TotalSeconds()) << " simulated\n";
  if ((*trainer)->live_gpus() != (*trainer)->num_gpus()) {
    std::cout << "degraded: finished on " << (*trainer)->live_gpus()
              << " of " << (*trainer)->num_gpus()
              << " ranks (crashed ranks dropped)\n";
  }

  if (!args.profile_out.empty()) {
    obs::Profiler& profiler = obs::Profiler::Global();
    std::cout << "\nstep-phase breakdown ("
              << profiler.steps_recorded() << " steps):\n";
    profiler.PrintTable(std::cout);
    if (Status status = profiler.WriteFile(args.profile_out);
        !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    const std::string trace_path = StrCat(args.profile_out, ".trace.json");
    if (Status status = profiler.WriteChromeTraceFile(trace_path);
        !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "profile written to " << args.profile_out
              << " (trace: " << trace_path << ")\n";
  }
  if (!args.flight_recorder.empty()) {
    std::cout << "flight recorder: "
              << obs::FlightRecorder::Global().dump_count()
              << " dump(s), "
              << obs::FlightRecorder::Global().record_count()
              << " records\n";
  }
  return 0;
}

}  // namespace
}  // namespace lpsgd

int main(int argc, char** argv) {
  lpsgd::Args args;
  if (!lpsgd::ParseArgs(argc, argv, &args)) return 1;
  return lpsgd::Run(args);
}
