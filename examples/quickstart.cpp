// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Quickstart: train a small model with synchronous data-parallel SGD on
// four simulated GPUs, exchanging gradients as 4-bit QSGD over the MPI
// reduce-and-broadcast engine, and report accuracy plus what the
// compression saved on the wire.
//
//   ./quickstart
#include <iostream>

#include "base/strings.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

int main() {
  using namespace lpsgd;  // NOLINT(build/namespaces)

  // 1. A synthetic image-classification task (train/test from the same
  //    distribution, disjoint sample ranges).
  SyntheticImageOptions data_options;
  data_options.num_classes = 5;
  data_options.channels = 1;
  data_options.height = 8;
  data_options.width = 8;
  data_options.num_samples = 512;
  SyntheticImageDataset train(data_options);
  data_options.num_samples = 256;
  data_options.sample_offset = 1 << 20;
  SyntheticImageDataset test(data_options);

  // 2. Training configuration: 4 simulated GPUs on an EC2 p2.8xlarge,
  //    gradients quantized with QSGD 4bit (bucket 512, the paper's
  //    accuracy-preserving setting).
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = QsgdSpec(4);
  options.primitive = CommPrimitive::kMpi;
  options.machine = Ec2P2_8xlarge();

  // 3. Every rank builds the same model; the trainer keeps replicas
  //    bit-identical through the synchronous exchange.
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({64, 48, 5}, seed); }, options);
  if (!trainer.ok()) {
    std::cerr << "trainer creation failed: " << trainer.status() << "\n";
    return 1;
  }

  auto metrics = (*trainer)->Train(train, test, /*epochs=*/10);
  if (!metrics.ok()) {
    std::cerr << "training failed: " << metrics.status() << "\n";
    return 1;
  }

  std::cout << "epoch  train_loss  test_accuracy\n";
  for (const EpochMetrics& m : *metrics) {
    std::cout << "  " << m.epoch << "    " << FormatDouble(m.train_loss, 4)
              << "      " << FormatDouble(m.test_accuracy * 100.0, 1)
              << "%\n";
  }

  const CommStats& comm = (*trainer)->total_comm();
  std::cout << "\ngradient traffic: " << HumanBytes(comm.wire_bytes)
            << " on the wire instead of " << HumanBytes(comm.raw_bytes)
            << " (" << FormatDouble(comm.CompressionRatio(), 1)
            << "x compression)\n";
  std::cout << "simulated communication time: "
            << HumanSeconds(comm.TotalSeconds()) << " over "
            << comm.messages << " messages\n";
  return 0;
}
