// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Domain example: speech-style sequence classification with an LSTM under
// aggressive gradient compression. Recurrent networks tolerate very low
// communication precision (Section 5.1), so this example trains with
// 1bitSGD and reports the end-to-end virtual training time the paper's
// AN4 LSTM would see on EC2 with MPI at that precision.
//
//   ./speech_lstm
#include <iostream>

#include "base/strings.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "sim/perf_model.h"

int main() {
  using namespace lpsgd;  // NOLINT(build/namespaces)

  SyntheticSequenceOptions data_options;
  data_options.num_classes = 8;
  data_options.time_steps = 10;
  data_options.frame_dim = 12;
  data_options.num_samples = 256;
  data_options.noise = 1.0f;
  SyntheticSequenceDataset train(data_options);
  data_options.num_samples = 128;
  data_options.sample_offset = 1 << 20;
  SyntheticSequenceDataset test(data_options);

  // Figure 4: the AN4 LSTM runs on up to 2 GPUs with global batch 16.
  TrainerOptions options;
  options.num_gpus = 2;
  options.global_batch_size = 16;
  options.learning_rate = 0.15f;
  options.codec = OneBitSgdSpec();
  options.primitive = CommPrimitive::kMpi;
  options.machine = Ec2P2_8xlarge();

  // Charge the compute time of the paper's real 13M-parameter LSTM so the
  // virtual clock reads like the full-scale experiment.
  auto lstm_stats = FindNetworkStats("LSTM");
  if (!lstm_stats.ok()) {
    std::cerr << lstm_stats.status() << "\n";
    return 1;
  }
  PerfModel perf(*lstm_stats, options.machine);
  auto est = perf.Estimate(options.codec, options.primitive, 2);
  if (!est.ok()) {
    std::cerr << est.status() << "\n";
    return 1;
  }
  options.virtual_compute_seconds_per_iter = est->compute_seconds;

  // Two stacked LSTM layers, in miniature of the paper's 3-LSTM AN4 net.
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) {
        return BuildDeepLstmClassifier(/*frame_dim=*/12, /*hidden_dim=*/16,
                                       /*num_lstm_layers=*/2,
                                       /*num_classes=*/8, seed);
      },
      options);
  if (!trainer.ok()) {
    std::cerr << trainer.status() << "\n";
    return 1;
  }

  auto metrics = (*trainer)->Train(train, test, /*epochs=*/15);
  if (!metrics.ok()) {
    std::cerr << metrics.status() << "\n";
    return 1;
  }

  std::cout << "epoch  train_loss  test_acc  virtual_time\n";
  for (const EpochMetrics& m : *metrics) {
    if (m.epoch % 3 != 0 && m.epoch != 14) continue;
    std::cout << "  " << m.epoch << "     " << FormatDouble(m.train_loss, 3)
              << "      " << FormatDouble(m.test_accuracy * 100.0, 1)
              << "%    " << HumanSeconds(m.virtual_seconds) << "\n";
  }

  const CommStats& comm = (*trainer)->total_comm();
  std::cout << "\n1bitSGD sent " << HumanBytes(comm.wire_bytes)
            << " instead of " << HumanBytes(comm.raw_bytes) << " ("
            << FormatDouble(comm.CompressionRatio(), 1)
            << "x less traffic) with no accuracy penalty on this "
               "recurrent task.\n";
  return 0;
}
