// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CLI around the calibrated performance model: estimate any single
// configuration of the paper's trade-off space.
//
//   ./perf_explorer <network> <machine> <mpi|nccl> <codec> <gpus>
//   ./perf_explorer AlexNet p2.8xlarge mpi q4 8
//   ./perf_explorer VGG19 DGX-1 nccl 32bit 8
//   ./perf_explorer ResNet50 p2.16xlarge mpi 1bit*:64 16
//
// Codec grammar: 32bit | 1bit | 1bit* | 1bit*:<bucket> | q<bits>[:<bucket>]
//                | topk:<density>
#include <iostream>
#include <string>

#include "base/strings.h"
#include "machine/specs.h"
#include "quant/codec.h"
#include "sim/perf_model.h"

int main(int argc, char** argv) {
  using namespace lpsgd;  // NOLINT(build/namespaces)
  const std::string network = argc > 1 ? argv[1] : "AlexNet";
  const std::string machine_name = argc > 2 ? argv[2] : "p2.8xlarge";
  const std::string primitive_name = argc > 3 ? argv[3] : "mpi";
  const std::string codec_text = argc > 4 ? argv[4] : "q4";
  const int gpus = argc > 5 ? std::atoi(argv[5]) : 8;

  auto stats = FindNetworkStats(network);
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return 1;
  }
  auto machine = FindMachine(machine_name);
  if (!machine.ok()) {
    std::cerr << machine.status() << "\n";
    return 1;
  }
  auto spec = ParseCodecSpec(codec_text);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 1;
  }
  const CommPrimitive primitive = primitive_name == "nccl"
                                      ? CommPrimitive::kNccl
                                      : CommPrimitive::kMpi;

  PerfModel model(*stats, *machine);
  auto est = model.Estimate(*spec, primitive, gpus);
  if (!est.ok()) {
    std::cerr << est.status() << "\n";
    return 1;
  }

  std::cout << network << " on " << machine->name << " x" << gpus
            << " GPUs, " << spec->Label() << " over "
            << CommPrimitiveName(primitive) << "\n\n";
  std::cout << "  global batch:        " << est->global_batch << " ("
            << est->per_gpu_batch << " per GPU)\n";
  std::cout << "  computation:         "
            << HumanSeconds(est->compute_seconds) << " per iteration\n";
  std::cout << "  quantize/unquantize: "
            << HumanSeconds(est->encode_seconds) << "\n";
  std::cout << "  communication:       " << HumanSeconds(est->comm_seconds)
            << " (" << HumanBytes(static_cast<double>(est->wire_bytes))
            << " on the wire, vs "
            << HumanBytes(static_cast<double>(est->raw_bytes))
            << " fp32)\n";
  std::cout << "  iteration:           "
            << HumanSeconds(est->IterationSeconds()) << " ("
            << FormatDouble(est->SamplesPerSecond(), 1) << " samples/s)\n";
  std::cout << "  with ideal overlap:  "
            << HumanSeconds(est->OverlappedIterationSeconds()) << " ("
            << FormatDouble(est->OverlappedSamplesPerSecond(), 1)
            << " samples/s)\n";
  std::cout << "  epoch:               "
            << HumanSeconds(est->EpochSeconds(stats->dataset_samples))
            << "\n";
  const double recipe_hours = est->EpochSeconds(stats->dataset_samples) *
                              stats->recipe_epochs / 3600.0;
  std::cout << "  published recipe:    " << stats->recipe_epochs
            << " epochs = " << FormatDouble(recipe_hours, 1) << " h, $"
            << FormatDouble(recipe_hours * machine->price_per_hour_usd, 0)
            << " at $" << FormatDouble(machine->price_per_hour_usd, 1)
            << "/h\n";
  return 0;
}
