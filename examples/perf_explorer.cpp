// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CLI around the calibrated performance model: estimate any single
// configuration of the paper's trade-off space.
//
//   ./perf_explorer <network> <machine> <mpi|nccl> <codec> <gpus>
//                   [--threads N] [--profile_out <path>]
//                   [--simd auto|scalar|avx2|neon]
//   ./perf_explorer AlexNet p2.8xlarge mpi q4 8
//   ./perf_explorer VGG19 DGX-1 nccl 32bit 8
//   ./perf_explorer ResNet50 p2.16xlarge mpi 1bit*:64 16 --threads 4
//
// Codec grammar (from the codec registry; a bad spec prints the full
// per-family help): 32bit | 1bit | 1bit*[:<bucket>] | q<bits>[:<bucket>]
//   | aq<bits>[:<bucket>] | nuq<bits>[:<bucket>] | ecq<bits>[:<bucket>]
//   | terngrad[:clip=<c>] | topk:<density> — families also take
//   key=value parameters, e.g. q4:bucket=512,norm=l2.
//
// --profile_out writes the estimated iteration as a profiler breakdown
// (virtual compute/encode/wire phases) so model estimates and measured
// training runs share one JSON schema and table format.
// --simd pins the codec kernel dispatch; the estimate itself is
// closed-form, but the header reports the effective ISA so perf-model
// headers line up with measured-run headers.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/simd/simd.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "machine/specs.h"
#include "obs/profile.h"
#include "quant/codec.h"
#include "quant/registry.h"
#include "sim/perf_model.h"

int main(int argc, char** argv) {
  using namespace lpsgd;  // NOLINT(build/namespaces)
  // Split --threads (as "--threads N" or "--threads=N") out of the
  // positional arguments.
  int threads = 0;  // 0 = one worker per hardware thread
  std::string profile_out;
  std::string simd_mode;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --threads\n";
        return 1;
      }
      threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + std::string("--threads=").size());
    } else if (arg == "--profile_out") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --profile_out\n";
        return 1;
      }
      profile_out = argv[++i];
    } else if (arg.rfind("--profile_out=", 0) == 0) {
      profile_out = arg.substr(std::string("--profile_out=").size());
    } else if (arg == "--simd") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --simd\n";
        return 1;
      }
      simd_mode = argv[++i];
    } else if (arg.rfind("--simd=", 0) == 0) {
      simd_mode = arg.substr(std::string("--simd=").size());
    } else {
      positional.push_back(arg);
    }
  }
  if (!simd_mode.empty()) {
    if (Status status = SetSimdMode(simd_mode); !status.ok()) {
      std::cerr << status << " (--simd takes auto|scalar|avx2|neon)\n";
      return 1;
    }
  }
  const std::string network =
      positional.size() > 0 ? positional[0] : "AlexNet";
  const std::string machine_name =
      positional.size() > 1 ? positional[1] : "p2.8xlarge";
  const std::string primitive_name =
      positional.size() > 2 ? positional[2] : "mpi";
  const std::string codec_text = positional.size() > 3 ? positional[3] : "q4";
  const int gpus = positional.size() > 4 ? std::atoi(positional[4].c_str()) : 8;

  auto stats = FindNetworkStats(network);
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return 1;
  }
  auto machine = FindMachine(machine_name);
  if (!machine.ok()) {
    std::cerr << machine.status() << "\n";
    return 1;
  }
  auto spec = ParseCodecSpec(codec_text);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\nregistered codecs:\n";
    for (const std::string& line : CodecRegistry::Global().HelpLines()) {
      std::cerr << "  " << line << "\n";
    }
    return 1;
  }
  const CommPrimitive primitive = primitive_name == "nccl"
                                      ? CommPrimitive::kNccl
                                      : CommPrimitive::kMpi;

  PerfModel model(*stats, *machine);
  auto est = model.Estimate(*spec, primitive, gpus);
  if (!est.ok()) {
    std::cerr << est.status() << "\n";
    return 1;
  }

  // The estimate itself is closed-form; the header still reports the
  // effective execution context so run headers are uniform across tools.
  ExecutionContext execution;
  execution.intra_op_threads = threads;
  std::cout << network << " on " << machine->name << " x" << gpus
            << " GPUs, " << spec->Label() << " over "
            << CommPrimitiveName(primitive) << ", execution "
            << execution.Description() << ", simd "
            << SimdIsaName(ActiveSimdIsa()) << "\n\n";
  std::cout << "  global batch:        " << est->global_batch << " ("
            << est->per_gpu_batch << " per GPU)\n";
  std::cout << "  computation:         "
            << HumanSeconds(est->compute_seconds) << " per iteration\n";
  std::cout << "  quantize/unquantize: "
            << HumanSeconds(est->encode_seconds) << "\n";
  std::cout << "  communication:       " << HumanSeconds(est->comm_seconds)
            << " (" << HumanBytes(static_cast<double>(est->wire_bytes))
            << " on the wire, vs "
            << HumanBytes(static_cast<double>(est->raw_bytes))
            << " fp32)\n";
  std::cout << "  iteration:           "
            << HumanSeconds(est->IterationSeconds()) << " ("
            << FormatDouble(est->SamplesPerSecond(), 1) << " samples/s)\n";
  std::cout << "  with ideal overlap:  "
            << HumanSeconds(est->OverlappedIterationSeconds()) << " ("
            << FormatDouble(est->OverlappedSamplesPerSecond(), 1)
            << " samples/s)\n";
  std::cout << "  epoch:               "
            << HumanSeconds(est->EpochSeconds(stats->dataset_samples))
            << "\n";
  const double recipe_hours = est->EpochSeconds(stats->dataset_samples) *
                              stats->recipe_epochs / 3600.0;
  std::cout << "  published recipe:    " << stats->recipe_epochs
            << " epochs = " << FormatDouble(recipe_hours, 1) << " h, $"
            << FormatDouble(recipe_hours * machine->price_per_hour_usd, 0)
            << " at $" << FormatDouble(machine->price_per_hour_usd, 1)
            << "/h\n";

  if (!profile_out.empty()) {
    // Export the estimate through the profiler so it lands in the same
    // schema (and table) as a measured training run's breakdown.
    obs::Profiler profiler(/*enabled=*/true);
    profiler.BeginStep(0);
    profiler.AddVirtual(obs::kPhaseForward, est->compute_seconds);
    profiler.AddVirtual(obs::kPhaseEncode, est->encode_seconds);
    profiler.AddVirtual(obs::kPhaseWire, est->comm_seconds);
    profiler.EndStep(est->IterationSeconds());
    std::cout << "\nestimated iteration breakdown:\n";
    profiler.PrintTable(std::cout);
    if (Status status = profiler.WriteFile(profile_out); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "profile written to " << profile_out << "\n";
  }
  return 0;
}
