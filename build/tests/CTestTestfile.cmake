# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;27;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(quant_test "/root/repo/build/tests/quant_test")
set_tests_properties(quant_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;35;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(comm_test "/root/repo/build/tests/comm_test")
set_tests_properties(comm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;46;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;51;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;57;lpsgd_add_test;/root/repo/tests/CMakeLists.txt;0;")
