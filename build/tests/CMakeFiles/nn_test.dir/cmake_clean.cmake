file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/checkpoint_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/checkpoint_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/dropout_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/dropout_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/layers_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/model_zoo_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/model_zoo_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/network_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/network_test.cc.o.d"
  "nn_test"
  "nn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
