
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/convergence_test.cc" "tests/CMakeFiles/core_test.dir/core/convergence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/convergence_test.cc.o.d"
  "/root/repo/tests/core/trainer_checkpoint_test.cc" "tests/CMakeFiles/core_test.dir/core/trainer_checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/trainer_checkpoint_test.cc.o.d"
  "/root/repo/tests/core/trainer_conv_test.cc" "tests/CMakeFiles/core_test.dir/core/trainer_conv_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/trainer_conv_test.cc.o.d"
  "/root/repo/tests/core/trainer_test.cc" "tests/CMakeFiles/core_test.dir/core/trainer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/trainer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lpsgd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lpsgd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lpsgd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lpsgd_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lpsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lpsgd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lpsgd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lpsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lpsgd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
