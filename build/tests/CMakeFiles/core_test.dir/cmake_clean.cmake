file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/convergence_test.cc.o"
  "CMakeFiles/core_test.dir/core/convergence_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/trainer_checkpoint_test.cc.o"
  "CMakeFiles/core_test.dir/core/trainer_checkpoint_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/trainer_conv_test.cc.o"
  "CMakeFiles/core_test.dir/core/trainer_conv_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/trainer_test.cc.o"
  "CMakeFiles/core_test.dir/core/trainer_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
