file(REMOVE_RECURSE
  "CMakeFiles/quant_test.dir/quant/adaptive_qsgd_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/adaptive_qsgd_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/codec_fuzz_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/codec_fuzz_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/codec_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/codec_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/one_bit_sgd_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/one_bit_sgd_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/policy_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/policy_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/qsgd_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/qsgd_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/spec_parse_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/spec_parse_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/topk_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/topk_test.cc.o.d"
  "CMakeFiles/quant_test.dir/quant/wire_format_test.cc.o"
  "CMakeFiles/quant_test.dir/quant/wire_format_test.cc.o.d"
  "quant_test"
  "quant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
