file(REMOVE_RECURSE
  "CMakeFiles/comm_test.dir/comm/allreduce_test.cc.o"
  "CMakeFiles/comm_test.dir/comm/allreduce_test.cc.o.d"
  "CMakeFiles/comm_test.dir/comm/cost_model_test.cc.o"
  "CMakeFiles/comm_test.dir/comm/cost_model_test.cc.o.d"
  "CMakeFiles/comm_test.dir/comm/mpi_requantize_test.cc.o"
  "CMakeFiles/comm_test.dir/comm/mpi_requantize_test.cc.o.d"
  "comm_test"
  "comm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
