file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/cost_frontier_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/cost_frontier_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/perf_model_claims_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/perf_model_claims_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/perf_model_nccl_band_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/perf_model_nccl_band_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
