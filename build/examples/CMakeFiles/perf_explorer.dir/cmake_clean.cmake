file(REMOVE_RECURSE
  "CMakeFiles/perf_explorer.dir/perf_explorer.cpp.o"
  "CMakeFiles/perf_explorer.dir/perf_explorer.cpp.o.d"
  "perf_explorer"
  "perf_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
