# Empty dependencies file for speech_lstm.
# This may be replaced when dependencies are built.
