file(REMOVE_RECURSE
  "CMakeFiles/speech_lstm.dir/speech_lstm.cpp.o"
  "CMakeFiles/speech_lstm.dir/speech_lstm.cpp.o.d"
  "speech_lstm"
  "speech_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
