# Empty dependencies file for bench_extension_topk.
# This may be replaced when dependencies are built.
