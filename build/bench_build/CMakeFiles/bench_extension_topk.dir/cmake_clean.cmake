file(REMOVE_RECURSE
  "../bench/bench_extension_topk"
  "../bench/bench_extension_topk.pdb"
  "CMakeFiles/bench_extension_topk.dir/bench_extension_topk.cc.o"
  "CMakeFiles/bench_extension_topk.dir/bench_extension_topk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
