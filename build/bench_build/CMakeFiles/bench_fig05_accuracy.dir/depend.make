# Empty dependencies file for bench_fig05_accuracy.
# This may be replaced when dependencies are built.
