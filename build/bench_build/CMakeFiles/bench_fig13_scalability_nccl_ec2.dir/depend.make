# Empty dependencies file for bench_fig13_scalability_nccl_ec2.
# This may be replaced when dependencies are built.
