file(REMOVE_RECURSE
  "../bench/bench_fig13_scalability_nccl_ec2"
  "../bench/bench_fig13_scalability_nccl_ec2.pdb"
  "CMakeFiles/bench_fig13_scalability_nccl_ec2.dir/bench_fig13_scalability_nccl_ec2.cc.o"
  "CMakeFiles/bench_fig13_scalability_nccl_ec2.dir/bench_fig13_scalability_nccl_ec2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scalability_nccl_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
