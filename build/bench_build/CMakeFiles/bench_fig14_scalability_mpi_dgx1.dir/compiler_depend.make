# Empty compiler generated dependencies file for bench_fig14_scalability_mpi_dgx1.
# This may be replaced when dependencies are built.
