# Empty compiler generated dependencies file for bench_fig11_nccl_table.
# This may be replaced when dependencies are built.
