file(REMOVE_RECURSE
  "../bench/bench_ablation_layer_sensitivity"
  "../bench/bench_ablation_layer_sensitivity.pdb"
  "CMakeFiles/bench_ablation_layer_sensitivity.dir/bench_ablation_layer_sensitivity.cc.o"
  "CMakeFiles/bench_ablation_layer_sensitivity.dir/bench_ablation_layer_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_layer_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
