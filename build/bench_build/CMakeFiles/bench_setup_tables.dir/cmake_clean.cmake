file(REMOVE_RECURSE
  "../bench/bench_setup_tables"
  "../bench/bench_setup_tables.pdb"
  "CMakeFiles/bench_setup_tables.dir/bench_setup_tables.cc.o"
  "CMakeFiles/bench_setup_tables.dir/bench_setup_tables.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setup_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
