file(REMOVE_RECURSE
  "../bench/bench_ablation_error_feedback"
  "../bench/bench_ablation_error_feedback.pdb"
  "CMakeFiles/bench_ablation_error_feedback.dir/bench_ablation_error_feedback.cc.o"
  "CMakeFiles/bench_ablation_error_feedback.dir/bench_ablation_error_feedback.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_error_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
