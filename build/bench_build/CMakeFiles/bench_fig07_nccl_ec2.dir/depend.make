# Empty dependencies file for bench_fig07_nccl_ec2.
# This may be replaced when dependencies are built.
