# Empty compiler generated dependencies file for bench_fig16_cost_extrapolation.
# This may be replaced when dependencies are built.
