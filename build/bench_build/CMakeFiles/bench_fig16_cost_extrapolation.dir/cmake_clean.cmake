file(REMOVE_RECURSE
  "../bench/bench_fig16_cost_extrapolation"
  "../bench/bench_fig16_cost_extrapolation.pdb"
  "CMakeFiles/bench_fig16_cost_extrapolation.dir/bench_fig16_cost_extrapolation.cc.o"
  "CMakeFiles/bench_fig16_cost_extrapolation.dir/bench_fig16_cost_extrapolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cost_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
