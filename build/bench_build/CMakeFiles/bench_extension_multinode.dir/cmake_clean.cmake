file(REMOVE_RECURSE
  "../bench/bench_extension_multinode"
  "../bench/bench_extension_multinode.pdb"
  "CMakeFiles/bench_extension_multinode.dir/bench_extension_multinode.cc.o"
  "CMakeFiles/bench_extension_multinode.dir/bench_extension_multinode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
