file(REMOVE_RECURSE
  "../bench/bench_micro_allreduce"
  "../bench/bench_micro_allreduce.pdb"
  "CMakeFiles/bench_micro_allreduce.dir/bench_micro_allreduce.cc.o"
  "CMakeFiles/bench_micro_allreduce.dir/bench_micro_allreduce.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
