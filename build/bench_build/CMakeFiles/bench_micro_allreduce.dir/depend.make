# Empty dependencies file for bench_micro_allreduce.
# This may be replaced when dependencies are built.
