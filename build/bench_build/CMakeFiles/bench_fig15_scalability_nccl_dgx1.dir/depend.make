# Empty dependencies file for bench_fig15_scalability_nccl_dgx1.
# This may be replaced when dependencies are built.
