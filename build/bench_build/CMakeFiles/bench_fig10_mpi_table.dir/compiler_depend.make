# Empty compiler generated dependencies file for bench_fig10_mpi_table.
# This may be replaced when dependencies are built.
