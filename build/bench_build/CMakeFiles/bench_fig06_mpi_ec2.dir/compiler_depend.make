# Empty compiler generated dependencies file for bench_fig06_mpi_ec2.
# This may be replaced when dependencies are built.
