# Empty compiler generated dependencies file for lpsgd_bench_util.
# This may be replaced when dependencies are built.
