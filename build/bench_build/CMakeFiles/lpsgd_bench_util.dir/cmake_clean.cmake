file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/lpsgd_bench_util.dir/bench_util.cc.o.d"
  "liblpsgd_bench_util.a"
  "liblpsgd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
