file(REMOVE_RECURSE
  "liblpsgd_bench_util.a"
)
