# Empty compiler generated dependencies file for bench_fig09_nccl_dgx1.
# This may be replaced when dependencies are built.
