file(REMOVE_RECURSE
  "../bench/bench_fig08_mpi_dgx1"
  "../bench/bench_fig08_mpi_dgx1.pdb"
  "CMakeFiles/bench_fig08_mpi_dgx1.dir/bench_fig08_mpi_dgx1.cc.o"
  "CMakeFiles/bench_fig08_mpi_dgx1.dir/bench_fig08_mpi_dgx1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_mpi_dgx1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
