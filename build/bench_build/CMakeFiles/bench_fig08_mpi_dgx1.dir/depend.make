# Empty dependencies file for bench_fig08_mpi_dgx1.
# This may be replaced when dependencies are built.
