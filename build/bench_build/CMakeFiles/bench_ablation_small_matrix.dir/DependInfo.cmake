
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_small_matrix.cc" "bench_build/CMakeFiles/bench_ablation_small_matrix.dir/bench_ablation_small_matrix.cc.o" "gcc" "bench_build/CMakeFiles/bench_ablation_small_matrix.dir/bench_ablation_small_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/lpsgd_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lpsgd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lpsgd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lpsgd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lpsgd_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lpsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lpsgd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lpsgd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lpsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lpsgd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
