file(REMOVE_RECURSE
  "../bench/bench_ablation_small_matrix"
  "../bench/bench_ablation_small_matrix.pdb"
  "CMakeFiles/bench_ablation_small_matrix.dir/bench_ablation_small_matrix.cc.o"
  "CMakeFiles/bench_ablation_small_matrix.dir/bench_ablation_small_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_small_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
