# Empty compiler generated dependencies file for bench_ablation_small_matrix.
# This may be replaced when dependencies are built.
