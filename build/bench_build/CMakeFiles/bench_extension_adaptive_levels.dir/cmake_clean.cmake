file(REMOVE_RECURSE
  "../bench/bench_extension_adaptive_levels"
  "../bench/bench_extension_adaptive_levels.pdb"
  "CMakeFiles/bench_extension_adaptive_levels.dir/bench_extension_adaptive_levels.cc.o"
  "CMakeFiles/bench_extension_adaptive_levels.dir/bench_extension_adaptive_levels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_adaptive_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
