# Empty compiler generated dependencies file for lpsgd_data.
# This may be replaced when dependencies are built.
