file(REMOVE_RECURSE
  "liblpsgd_data.a"
)
