file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_data.dir/dataset.cc.o"
  "CMakeFiles/lpsgd_data.dir/dataset.cc.o.d"
  "CMakeFiles/lpsgd_data.dir/synthetic.cc.o"
  "CMakeFiles/lpsgd_data.dir/synthetic.cc.o.d"
  "liblpsgd_data.a"
  "liblpsgd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
