# Empty compiler generated dependencies file for lpsgd_tensor.
# This may be replaced when dependencies are built.
