file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_tensor.dir/ops.cc.o"
  "CMakeFiles/lpsgd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/lpsgd_tensor.dir/shape.cc.o"
  "CMakeFiles/lpsgd_tensor.dir/shape.cc.o.d"
  "CMakeFiles/lpsgd_tensor.dir/tensor.cc.o"
  "CMakeFiles/lpsgd_tensor.dir/tensor.cc.o.d"
  "liblpsgd_tensor.a"
  "liblpsgd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
