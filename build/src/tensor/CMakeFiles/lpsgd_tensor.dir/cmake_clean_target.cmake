file(REMOVE_RECURSE
  "liblpsgd_tensor.a"
)
