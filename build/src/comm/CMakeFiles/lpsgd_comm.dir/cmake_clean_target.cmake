file(REMOVE_RECURSE
  "liblpsgd_comm.a"
)
