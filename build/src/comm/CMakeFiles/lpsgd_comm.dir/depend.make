# Empty dependencies file for lpsgd_comm.
# This may be replaced when dependencies are built.
