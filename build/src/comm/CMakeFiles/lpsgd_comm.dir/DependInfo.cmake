
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/allreduce.cc" "src/comm/CMakeFiles/lpsgd_comm.dir/allreduce.cc.o" "gcc" "src/comm/CMakeFiles/lpsgd_comm.dir/allreduce.cc.o.d"
  "/root/repo/src/comm/cost_model.cc" "src/comm/CMakeFiles/lpsgd_comm.dir/cost_model.cc.o" "gcc" "src/comm/CMakeFiles/lpsgd_comm.dir/cost_model.cc.o.d"
  "/root/repo/src/comm/mpi_reduce_bcast.cc" "src/comm/CMakeFiles/lpsgd_comm.dir/mpi_reduce_bcast.cc.o" "gcc" "src/comm/CMakeFiles/lpsgd_comm.dir/mpi_reduce_bcast.cc.o.d"
  "/root/repo/src/comm/nccl_ring.cc" "src/comm/CMakeFiles/lpsgd_comm.dir/nccl_ring.cc.o" "gcc" "src/comm/CMakeFiles/lpsgd_comm.dir/nccl_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/lpsgd_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/lpsgd_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lpsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lpsgd_base.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lpsgd_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
