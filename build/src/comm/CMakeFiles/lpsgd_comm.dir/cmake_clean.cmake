file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_comm.dir/allreduce.cc.o"
  "CMakeFiles/lpsgd_comm.dir/allreduce.cc.o.d"
  "CMakeFiles/lpsgd_comm.dir/cost_model.cc.o"
  "CMakeFiles/lpsgd_comm.dir/cost_model.cc.o.d"
  "CMakeFiles/lpsgd_comm.dir/mpi_reduce_bcast.cc.o"
  "CMakeFiles/lpsgd_comm.dir/mpi_reduce_bcast.cc.o.d"
  "CMakeFiles/lpsgd_comm.dir/nccl_ring.cc.o"
  "CMakeFiles/lpsgd_comm.dir/nccl_ring.cc.o.d"
  "liblpsgd_comm.a"
  "liblpsgd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
