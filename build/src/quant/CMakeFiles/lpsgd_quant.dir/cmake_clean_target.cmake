file(REMOVE_RECURSE
  "liblpsgd_quant.a"
)
