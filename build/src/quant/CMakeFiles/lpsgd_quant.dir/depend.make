# Empty dependencies file for lpsgd_quant.
# This may be replaced when dependencies are built.
