
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/adaptive_qsgd.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/adaptive_qsgd.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/adaptive_qsgd.cc.o.d"
  "/root/repo/src/quant/codec.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/codec.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/codec.cc.o.d"
  "/root/repo/src/quant/full_precision.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/full_precision.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/full_precision.cc.o.d"
  "/root/repo/src/quant/one_bit_sgd.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/one_bit_sgd.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/one_bit_sgd.cc.o.d"
  "/root/repo/src/quant/policy.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/policy.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/policy.cc.o.d"
  "/root/repo/src/quant/qsgd.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/qsgd.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/qsgd.cc.o.d"
  "/root/repo/src/quant/topk.cc" "src/quant/CMakeFiles/lpsgd_quant.dir/topk.cc.o" "gcc" "src/quant/CMakeFiles/lpsgd_quant.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/lpsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lpsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lpsgd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
