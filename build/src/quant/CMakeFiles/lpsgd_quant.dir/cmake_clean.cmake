file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_quant.dir/adaptive_qsgd.cc.o"
  "CMakeFiles/lpsgd_quant.dir/adaptive_qsgd.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/codec.cc.o"
  "CMakeFiles/lpsgd_quant.dir/codec.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/full_precision.cc.o"
  "CMakeFiles/lpsgd_quant.dir/full_precision.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/one_bit_sgd.cc.o"
  "CMakeFiles/lpsgd_quant.dir/one_bit_sgd.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/policy.cc.o"
  "CMakeFiles/lpsgd_quant.dir/policy.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/qsgd.cc.o"
  "CMakeFiles/lpsgd_quant.dir/qsgd.cc.o.d"
  "CMakeFiles/lpsgd_quant.dir/topk.cc.o"
  "CMakeFiles/lpsgd_quant.dir/topk.cc.o.d"
  "liblpsgd_quant.a"
  "liblpsgd_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
