# Empty compiler generated dependencies file for lpsgd_machine.
# This may be replaced when dependencies are built.
