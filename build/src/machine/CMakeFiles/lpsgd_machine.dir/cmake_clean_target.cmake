file(REMOVE_RECURSE
  "liblpsgd_machine.a"
)
