file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_machine.dir/specs.cc.o"
  "CMakeFiles/lpsgd_machine.dir/specs.cc.o.d"
  "liblpsgd_machine.a"
  "liblpsgd_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
