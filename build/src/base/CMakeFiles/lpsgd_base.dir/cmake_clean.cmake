file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_base.dir/bit_packing.cc.o"
  "CMakeFiles/lpsgd_base.dir/bit_packing.cc.o.d"
  "CMakeFiles/lpsgd_base.dir/logging.cc.o"
  "CMakeFiles/lpsgd_base.dir/logging.cc.o.d"
  "CMakeFiles/lpsgd_base.dir/rng.cc.o"
  "CMakeFiles/lpsgd_base.dir/rng.cc.o.d"
  "CMakeFiles/lpsgd_base.dir/status.cc.o"
  "CMakeFiles/lpsgd_base.dir/status.cc.o.d"
  "CMakeFiles/lpsgd_base.dir/strings.cc.o"
  "CMakeFiles/lpsgd_base.dir/strings.cc.o.d"
  "CMakeFiles/lpsgd_base.dir/table_printer.cc.o"
  "CMakeFiles/lpsgd_base.dir/table_printer.cc.o.d"
  "liblpsgd_base.a"
  "liblpsgd_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
