file(REMOVE_RECURSE
  "liblpsgd_base.a"
)
