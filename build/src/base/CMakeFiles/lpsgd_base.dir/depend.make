# Empty dependencies file for lpsgd_base.
# This may be replaced when dependencies are built.
