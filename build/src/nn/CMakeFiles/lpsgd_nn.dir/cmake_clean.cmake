file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_nn.dir/activation.cc.o"
  "CMakeFiles/lpsgd_nn.dir/activation.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/batchnorm.cc.o"
  "CMakeFiles/lpsgd_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/conv2d.cc.o"
  "CMakeFiles/lpsgd_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/dense.cc.o"
  "CMakeFiles/lpsgd_nn.dir/dense.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/dropout.cc.o"
  "CMakeFiles/lpsgd_nn.dir/dropout.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/loss.cc.o"
  "CMakeFiles/lpsgd_nn.dir/loss.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/lstm.cc.o"
  "CMakeFiles/lpsgd_nn.dir/lstm.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/model_zoo.cc.o"
  "CMakeFiles/lpsgd_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/network.cc.o"
  "CMakeFiles/lpsgd_nn.dir/network.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/optimizer.cc.o"
  "CMakeFiles/lpsgd_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/lpsgd_nn.dir/pool.cc.o"
  "CMakeFiles/lpsgd_nn.dir/pool.cc.o.d"
  "liblpsgd_nn.a"
  "liblpsgd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
