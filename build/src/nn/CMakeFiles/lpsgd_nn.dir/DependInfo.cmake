
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/nn/CMakeFiles/lpsgd_nn.dir/pool.cc.o" "gcc" "src/nn/CMakeFiles/lpsgd_nn.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/lpsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lpsgd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
