# Empty compiler generated dependencies file for lpsgd_nn.
# This may be replaced when dependencies are built.
