file(REMOVE_RECURSE
  "liblpsgd_nn.a"
)
