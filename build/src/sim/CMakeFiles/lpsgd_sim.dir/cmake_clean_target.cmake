file(REMOVE_RECURSE
  "liblpsgd_sim.a"
)
