file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_sim.dir/perf_model.cc.o"
  "CMakeFiles/lpsgd_sim.dir/perf_model.cc.o.d"
  "liblpsgd_sim.a"
  "liblpsgd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
