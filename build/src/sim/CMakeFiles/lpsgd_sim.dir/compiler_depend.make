# Empty compiler generated dependencies file for lpsgd_sim.
# This may be replaced when dependencies are built.
