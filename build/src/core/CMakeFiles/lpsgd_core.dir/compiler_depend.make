# Empty compiler generated dependencies file for lpsgd_core.
# This may be replaced when dependencies are built.
