file(REMOVE_RECURSE
  "CMakeFiles/lpsgd_core.dir/experiment.cc.o"
  "CMakeFiles/lpsgd_core.dir/experiment.cc.o.d"
  "CMakeFiles/lpsgd_core.dir/trainer.cc.o"
  "CMakeFiles/lpsgd_core.dir/trainer.cc.o.d"
  "liblpsgd_core.a"
  "liblpsgd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpsgd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
