file(REMOVE_RECURSE
  "liblpsgd_core.a"
)
