// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Seeded chaos runs (ISSUE: deterministic fault injection and recovery):
// a training run that survives stragglers, transient exchange failures,
// and corrupted wire bytes via retry + rollback-and-replay must end in a
// final checkpoint bit-equal to the fault-free run, with every recovery
// metric matching the fault plan exactly. A rank crash instead degrades
// to the survivors and completes.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace lpsgd {
namespace {

SyntheticImageDataset MakeImages(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

SyncTrainer::NetworkFactory MlpFactory() {
  return [](uint64_t seed) { return BuildMlp({16, 12, 4}, seed); };
}

TrainerOptions BaseOptions(const CodecSpec& codec, CommPrimitive primitive) {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = codec;
  options.primitive = primitive;
  options.seed = 7;
  options.execution = ExecutionContext::Serial();
  return options;
}

struct RunResult {
  std::vector<EpochMetrics> metrics;
  std::string checkpoint;
  int live_gpus = 0;
};

// Runs `epochs` epochs and returns the metrics plus the final checkpoint
// bytes. Fails the test (and returns empty) if anything errors.
RunResult RunTraining(TrainerOptions options, const Dataset& train,
                      const Dataset& test, int epochs) {
  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  EXPECT_TRUE(trainer.ok()) << trainer.status();
  if (!trainer.ok()) return {};
  auto metrics = (*trainer)->Train(train, test, epochs);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  if (!metrics.ok()) return {};
  std::ostringstream checkpoint;
  EXPECT_TRUE((*trainer)->SaveCheckpoint(checkpoint).ok());
  return RunResult{*std::move(metrics), checkpoint.str(),
                   (*trainer)->live_gpus()};
}

// Counter deltas around one chaos run, with the global registry enabled
// for the duration (it starts disabled; restored afterwards).
struct FaultCounters {
  int64_t injected = 0;
  int64_t retries = 0;
  int64_t rollbacks = 0;
  int64_t checksum_failures = 0;

  static FaultCounters Snapshot() {
    const auto& registry = obs::MetricsRegistry::Global();
    return FaultCounters{registry.CounterValue("fault/injected"),
                         registry.CounterValue("comm/retries"),
                         registry.CounterValue("trainer/rollbacks"),
                         registry.CounterValue("comm/checksum_failures")};
  }

  FaultCounters Since(const FaultCounters& before) const {
    return FaultCounters{injected - before.injected,
                         retries - before.retries,
                         rollbacks - before.rollbacks,
                         checksum_failures - before.checksum_failures};
  }
};

class MetricsGuard {
 public:
  MetricsGuard() : was_(obs::MetricsRegistry::Global().enabled()) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  ~MetricsGuard() { obs::MetricsRegistry::Global().set_enabled(was_); }

 private:
  bool was_;
};

// Enables the global flight recorder (memory-only) for one test and
// restores the previous state afterwards.
class FlightRecorderGuard {
 public:
  FlightRecorderGuard() : was_(obs::FlightRecorder::Global().enabled()) {
    obs::FlightRecorder::Global().set_enabled(true);
    obs::FlightRecorder::Global().Reset();
  }
  ~FlightRecorderGuard() {
    obs::FlightRecorder::Global().Reset();
    obs::FlightRecorder::Global().set_enabled(was_);
  }

 private:
  bool was_;
};

// The quality metrics (loss/accuracy per epoch) must be exactly equal;
// communication accounting legitimately differs (retries, replay, and
// straggler delays all cost extra virtual time and bytes).
void ExpectSameLearningCurve(const std::vector<EpochMetrics>& fault_free,
                             const std::vector<EpochMetrics>& recovered) {
  ASSERT_EQ(fault_free.size(), recovered.size());
  for (size_t e = 0; e < fault_free.size(); ++e) {
    SCOPED_TRACE(e);
    EXPECT_DOUBLE_EQ(fault_free[e].train_loss, recovered[e].train_loss);
    EXPECT_DOUBLE_EQ(fault_free[e].train_accuracy,
                     recovered[e].train_accuracy);
    EXPECT_DOUBLE_EQ(fault_free[e].test_loss, recovered[e].test_loss);
    EXPECT_DOUBLE_EQ(fault_free[e].test_accuracy,
                     recovered[e].test_accuracy);
  }
}

struct ChaosConfig {
  const char* name;
  CodecSpec codec;
  CommPrimitive primitive;
};

class ChaosRecoveryTest : public ::testing::TestWithParam<ChaosConfig> {};

// 128 samples / batch 32 = 4 iterations per epoch; 2 epochs = iterations
// 0..7. The plan strikes a straggler at 2, two consecutive transient
// failures at 3 (which with max_retries=1 exhausts the exchange budget
// and forces a trainer rollback), and one corrupted exchange at 5 (which
// a single retry absorbs). Exact expected accounting:
//   fault/injected          5  (straggle twice: original + replay;
//                               fail twice; corrupt once)
//   comm/retries            2  (one failed retry at 3, one good at 5)
//   trainer/rollbacks       1  (budget exhausted at iteration 3)
//   comm/checksum_failures  1  (the corruption probe's decode)
TEST_P(ChaosRecoveryTest, RecoveredRunIsBitEqualToFaultFreeRun) {
  MetricsGuard metrics;
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);
  const ChaosConfig& config = GetParam();

  const RunResult fault_free = RunTraining(
      BaseOptions(config.codec, config.primitive), train, test, 2);
  ASSERT_FALSE(fault_free.checkpoint.empty());

  TrainerOptions faulted = BaseOptions(config.codec, config.primitive);
  auto plan = fault::FaultPlan::Parse("straggle@2:0.5;fail@3x2;corrupt@5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  faulted.fault_tolerance.plan = *plan;
  faulted.fault_tolerance.retry.max_retries = 1;
  faulted.fault_tolerance.checkpoint_every = 2;

  const FaultCounters before = FaultCounters::Snapshot();
  const RunResult recovered = RunTraining(faulted, train, test, 2);
  const FaultCounters delta = FaultCounters::Snapshot().Since(before);

  EXPECT_EQ(recovered.checkpoint, fault_free.checkpoint)
      << "recovery did not reproduce the fault-free parameters bit-for-bit";
  ExpectSameLearningCurve(fault_free.metrics, recovered.metrics);
  EXPECT_EQ(recovered.live_gpus, 4);

  EXPECT_EQ(delta.injected, 5);
  EXPECT_EQ(delta.retries, 2);
  EXPECT_EQ(delta.rollbacks, 1);
  EXPECT_EQ(delta.checksum_failures, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, ChaosRecoveryTest,
    ::testing::Values(
        ChaosConfig{"Fp32Mpi", FullPrecisionSpec(), CommPrimitive::kMpi},
        ChaosConfig{"Fp32Nccl", FullPrecisionSpec(), CommPrimitive::kNccl},
        ChaosConfig{"Qsgd4Mpi", QsgdSpec(4), CommPrimitive::kMpi},
        ChaosConfig{"Qsgd4Nccl", QsgdSpec(4), CommPrimitive::kNccl}),
    [](const ::testing::TestParamInfo<ChaosConfig>& info) {
      return info.param.name;
    });

// Replaying the identical seed and plan must reproduce the identical run:
// checkpoints and learning curves are bit-equal between two chaos runs.
TEST(ChaosRecoveryTest, SameSeedReplaysIdentically) {
  MetricsGuard metrics;
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(QsgdSpec(4), CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("straggle@2:0.5;fail@3x2;corrupt@5");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.fault_tolerance.retry.max_retries = 1;
  options.fault_tolerance.checkpoint_every = 2;

  const RunResult first = RunTraining(options, train, test, 2);
  const RunResult second = RunTraining(options, train, test, 2);
  ASSERT_FALSE(first.checkpoint.empty());
  EXPECT_EQ(first.checkpoint, second.checkpoint);
  ExpectSameLearningCurve(first.metrics, second.metrics);
}

// A rank crash at iteration 5 (epoch 2) aborts the exchange; the trainer
// drops the dead rank, rolls back to the epoch's snapshot, replays, and
// finishes on the 3 survivors. Exactly one injection (the ABORTED
// exchange) and one rollback; the rebuilt aggregator has the satisfied
// crash stripped, so nothing fires again.
TEST(ChaosRecoveryTest, RankCrashDegradesToSurvivors) {
  MetricsGuard metrics;
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(QsgdSpec(4), CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("crash@5:1");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.fault_tolerance.retry.max_retries = 1;
  options.fault_tolerance.checkpoint_every = 2;

  const FaultCounters before = FaultCounters::Snapshot();
  const RunResult result = RunTraining(options, train, test, 2);
  const FaultCounters delta = FaultCounters::Snapshot().Since(before);

  ASSERT_EQ(result.metrics.size(), 2u);
  EXPECT_EQ(result.live_gpus, 3);
  ASSERT_FALSE(result.checkpoint.empty());
  // Both epochs trained on real data (batches re-trimmed to multiples of
  // the 3 survivors after the drop).
  EXPECT_GT(result.metrics[1].train_accuracy, 0.0);

  EXPECT_EQ(delta.injected, 1);
  EXPECT_EQ(delta.rollbacks, 1);
  EXPECT_EQ(delta.retries, 0);
  EXPECT_EQ(delta.checksum_failures, 0);
}

// Without checkpoints (and without retry budget) a crash still degrades:
// the failed iteration committed nothing, so the trainer just drops the
// rank and re-runs the current batch on the survivors.
TEST(ChaosRecoveryTest, RankCrashRecoversWithoutCheckpoints) {
  MetricsGuard metrics;
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(FullPrecisionSpec(),
                                       CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("crash@2:0");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;

  const FaultCounters before = FaultCounters::Snapshot();
  const RunResult result = RunTraining(options, train, test, 2);
  const FaultCounters delta = FaultCounters::Snapshot().Since(before);

  ASSERT_EQ(result.metrics.size(), 2u);
  EXPECT_EQ(result.live_gpus, 3);
  EXPECT_EQ(delta.injected, 1);
  EXPECT_EQ(delta.rollbacks, 0);
  EXPECT_EQ(delta.retries, 0);
}

// Disabling degrade-to-survivors turns the crash into a hard run failure.
TEST(ChaosRecoveryTest, CrashFailsRunWhenDegradeDisabled) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(FullPrecisionSpec(),
                                       CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("crash@1:2");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.fault_tolerance.degrade_to_survivors = false;

  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, 1);
  ASSERT_FALSE(metrics.ok());
  int rank = -1;
  EXPECT_TRUE(fault::IsRankCrash(metrics.status(), &rank));
  EXPECT_EQ(rank, 2);
}

// Every injected failure surfaces as exactly one flight-recorder dump:
// two transient failures at iteration 1 (each non-OK exchange below the
// retry layer is dumped by the observer before the retry re-attempts), one
// corrupted exchange at 3, and the ABORTED crash at 5. The replay after
// degrading to survivors injects nothing, so the total stays 4 and the
// last dump's trigger is the crash.
TEST(ChaosRecoveryTest, FlightRecorderDumpsOncePerInjectedFailure) {
  MetricsGuard metrics;
  FlightRecorderGuard flight;
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(QsgdSpec(4), CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("fail@1x2;corrupt@3;crash@5:1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  options.fault_tolerance.plan = *plan;
  options.fault_tolerance.retry.max_retries = 2;
  options.fault_tolerance.checkpoint_every = 2;

  const RunResult result = RunTraining(options, train, test, 2);
  ASSERT_EQ(result.metrics.size(), 2u);
  EXPECT_EQ(result.live_gpus, 3);

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  EXPECT_EQ(recorder.dump_count(), 4)
      << "expected one dump per injected failure (2 fails + corrupt + crash)";

  // The last dump is the crash; validate the documented schema.
  const obs::JsonValue dump = recorder.LastDump();
  EXPECT_EQ(dump.At("schema_version").AsInt(), 1);
  EXPECT_EQ(dump.At("kind").AsString(), "flight_record");
  const obs::JsonValue& trigger = dump.At("trigger");
  EXPECT_EQ(trigger.At("code_name").AsString(), "ABORTED");
  EXPECT_EQ(trigger.At("iteration").AsInt(), 5);
  EXPECT_GE(trigger.At("sequence").AsInt(), 0);
  EXPECT_GE(dump.At("metric_deltas").At("fault/injected").AsInt(), 1);

  // The ring history carries the earlier failures' trigger markers and the
  // successful exchanges between them.
  const auto& records = dump.At("records").AsArray();
  ASSERT_FALSE(records.empty());
  bool saw_unavailable_marker = false;
  bool saw_ok_exchange = false;
  for (const obs::JsonValue& record : records) {
    const std::string& label = record.At("label").AsString();
    if (label == "fail:UNAVAILABLE") saw_unavailable_marker = true;
    if (label == "exchange_ok") saw_ok_exchange = true;
  }
  EXPECT_TRUE(saw_unavailable_marker);
  EXPECT_TRUE(saw_ok_exchange);

  // Schema-valid means it round-trips through the JSON parser.
  auto parsed = obs::JsonValue::Parse(dump.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("trigger").At("code_name").AsString(), "ABORTED");
}

// With the recorder disabled (the default), the same chaos run files
// nothing: no records, no dumps.
TEST(ChaosRecoveryTest, DisabledFlightRecorderStaysEmptyUnderChaos) {
  MetricsGuard metrics;
  obs::FlightRecorder::Global().Reset();
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options = BaseOptions(QsgdSpec(4), CommPrimitive::kMpi);
  auto plan = fault::FaultPlan::Parse("fail@1x2;corrupt@3");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.fault_tolerance.retry.max_retries = 2;

  const RunResult result = RunTraining(options, train, test, 1);
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_EQ(obs::FlightRecorder::Global().dump_count(), 0);
  EXPECT_EQ(obs::FlightRecorder::Global().record_count(), 0);
}

}  // namespace
}  // namespace lpsgd
