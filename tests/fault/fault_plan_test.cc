// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// FaultPlan grammar: Parse/ToString round-trips, canonical forms, error
// reporting, and the crash-event helpers the trainer's recovery path uses.
#include "fault/fault_plan.h"

#include <string>

#include <gtest/gtest.h>

namespace lpsgd {
namespace fault {
namespace {

TEST(FaultPlanTest, ParsesEveryDirectiveKind) {
  auto plan =
      FaultPlan::Parse("straggle@3:0.5;fail@5x2;corrupt@7;crash@9:1;seed=42");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->events.size(), 4u);

  EXPECT_EQ(plan->events[0].kind, FaultKind::kStraggle);
  EXPECT_EQ(plan->events[0].iteration, 3);
  EXPECT_DOUBLE_EQ(plan->events[0].delay_seconds, 0.5);

  EXPECT_EQ(plan->events[1].kind, FaultKind::kTransientFail);
  EXPECT_EQ(plan->events[1].iteration, 5);
  EXPECT_EQ(plan->events[1].count, 2);

  EXPECT_EQ(plan->events[2].kind, FaultKind::kCorruptWire);
  EXPECT_EQ(plan->events[2].iteration, 7);
  EXPECT_EQ(plan->events[2].count, 1);

  EXPECT_EQ(plan->events[3].kind, FaultKind::kRankCrash);
  EXPECT_EQ(plan->events[3].iteration, 9);
  EXPECT_EQ(plan->events[3].rank, 1);

  EXPECT_EQ(plan->seed, 42u);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlanTest, ToStringRoundTripsExactly) {
  const std::string specs[] = {
      "straggle@3:0.5;fail@5x2;corrupt@7;crash@9:1;seed=42",
      "fail@0",
      "corrupt@12x3",
      "straggle@1:0.25;straggle@2:0.25",
      "crash@100:7",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    auto plan = FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const std::string canonical = plan->ToString();
    auto reparsed = FaultPlan::Parse(canonical);
    ASSERT_TRUE(reparsed.ok())
        << "ToString produced unparseable \"" << canonical
        << "\": " << reparsed.status();
    EXPECT_EQ(reparsed->ToString(), canonical);
    ASSERT_EQ(reparsed->events.size(), plan->events.size());
    for (size_t i = 0; i < plan->events.size(); ++i) {
      EXPECT_EQ(reparsed->events[i].kind, plan->events[i].kind);
      EXPECT_EQ(reparsed->events[i].iteration, plan->events[i].iteration);
      EXPECT_EQ(reparsed->events[i].count, plan->events[i].count);
      EXPECT_DOUBLE_EQ(reparsed->events[i].delay_seconds,
                       plan->events[i].delay_seconds);
      EXPECT_EQ(reparsed->events[i].rank, plan->events[i].rank);
    }
    EXPECT_EQ(reparsed->seed, plan->seed);
  }
}

TEST(FaultPlanTest, CanonicalFormOmitsDefaults) {
  // A count of 1 and the default seed are not spelled out.
  auto plan = FaultPlan::Parse("fail@4x1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ToString(), "fail@4");

  auto seeded = FaultPlan::Parse("fail@4;seed=9");
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->ToString(), "fail@4;seed=9");
}

TEST(FaultPlanTest, EmptyTextIsEmptyPlan) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToString(), "");
}

TEST(FaultPlanTest, RejectsMalformedDirectives) {
  const std::string bad[] = {
      "fail",            // missing @<iter>
      "fail@",           // missing iteration
      "fail@x2",         // missing iteration
      "fail@-1",         // negative iteration
      "fail@3x0",        // zero count
      "fail@3x-2",       // negative count
      "straggle@3",      // missing :<seconds>
      "straggle@3:-1",   // negative delay
      "crash@3",         // missing :<rank>
      "crash@3:-1",      // negative rank
      "explode@3",       // unknown kind
      "seed=",           // missing value
      "seed=banana",     // non-numeric seed
      "knob=3",          // unknown key
  };
  for (const std::string& spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_FALSE(FaultPlan::Parse(spec).ok());
  }
}

TEST(FaultPlanTest, WithoutCrashesDropsOnlyCrashEvents) {
  auto plan = FaultPlan::Parse("fail@2;crash@4:0;corrupt@6;crash@8:1;seed=5");
  ASSERT_TRUE(plan.ok());
  FaultPlan survivors = plan->WithoutCrashes();
  ASSERT_EQ(survivors.events.size(), 2u);
  EXPECT_EQ(survivors.events[0].kind, FaultKind::kTransientFail);
  EXPECT_EQ(survivors.events[0].iteration, 2);
  EXPECT_EQ(survivors.events[1].kind, FaultKind::kCorruptWire);
  EXPECT_EQ(survivors.events[1].iteration, 6);
  EXPECT_EQ(survivors.seed, 5u) << "seed must survive the crash filter";
}

// Storage verbs (ISSUE: durable checkpointing): torn@, shortwrite@,
// enospc@[xN], and kill@ parse, round-trip through ToString, and the
// helpers the checkpoint layer keys off them report correctly.
TEST(FaultPlanTest, ParsesStorageAndKillDirectives) {
  auto plan = FaultPlan::Parse("torn@4;shortwrite@6;enospc@8x3;kill@10");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->events.size(), 4u);

  EXPECT_EQ(plan->events[0].kind, FaultKind::kTornWrite);
  EXPECT_EQ(plan->events[0].iteration, 4);

  EXPECT_EQ(plan->events[1].kind, FaultKind::kShortWrite);
  EXPECT_EQ(plan->events[1].iteration, 6);

  EXPECT_EQ(plan->events[2].kind, FaultKind::kDiskFull);
  EXPECT_EQ(plan->events[2].iteration, 8);
  EXPECT_EQ(plan->events[2].count, 3);

  EXPECT_EQ(plan->events[3].kind, FaultKind::kKill);
  EXPECT_EQ(plan->events[3].iteration, 10);
}

TEST(FaultPlanTest, StorageDirectivesRoundTripExactly) {
  const std::string specs[] = {
      "torn@4",
      "shortwrite@0",
      "enospc@8",
      "enospc@8x3",
      "kill@10",
      "torn@4;shortwrite@6;enospc@8x3;kill@10;seed=9",
      "fail@2x2;torn@4;crash@6:1;kill@8",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    auto plan = FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(plan->ToString(), spec);
  }
}

TEST(FaultPlanTest, RejectsMalformedStorageDirectivesNamingTheToken) {
  // Each rejection message must carry the offending token so a long
  // plan's error is actionable.
  const std::pair<std::string, std::string> bad[] = {
      {"torn", "torn"},                 // missing @<iter>
      {"torn@", "torn@"},               // missing iteration
      {"torn@-1", "torn@-1"},           // negative iteration
      {"torn@4x2", "torn@4x2"},         // torn takes no count
      {"shortwrite@", "shortwrite@"},   // missing iteration
      {"shortwrite@2x2", "shortwrite@2x2"},  // no count allowed
      {"enospc@3x0", "enospc@3x0"},     // zero count
      {"enospc@3x-2", "enospc@3x-2"},   // negative count
      {"kill@", "kill@"},               // missing iteration
      {"kill@1:2", "kill@1:2"},         // kill takes no argument
      {"kill@banana", "kill@banana"},   // non-numeric iteration
  };
  for (const auto& [spec, token] : bad) {
    SCOPED_TRACE(spec);
    auto plan = FaultPlan::Parse(spec);
    ASSERT_FALSE(plan.ok());
    EXPECT_NE(plan.status().message().find(token), std::string::npos)
        << "rejection \"" << plan.status().message()
        << "\" does not name the offending token";
  }
}

TEST(FaultPlanTest, UnknownVerbRejectionListsTheKnownVerbs) {
  auto plan = FaultPlan::Parse("explode@3");
  ASSERT_FALSE(plan.ok());
  const std::string message(plan.status().message());
  EXPECT_NE(message.find("explode@3"), std::string::npos);
  for (const char* verb : {"torn", "shortwrite", "enospc", "kill"}) {
    EXPECT_NE(message.find(verb), std::string::npos)
        << "error should advertise the new verb " << verb;
  }
}

TEST(FaultPlanTest, StorageAndKillHelpers) {
  auto plan = FaultPlan::Parse("torn@4;kill@10");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->HasStorageFaults());
  EXPECT_TRUE(plan->KillsAt(10));
  EXPECT_FALSE(plan->KillsAt(4));

  auto exchange_only = FaultPlan::Parse("fail@2;crash@4:0;kill@6");
  ASSERT_TRUE(exchange_only.ok());
  EXPECT_FALSE(exchange_only->HasStorageFaults())
      << "kill is a process fault, not a storage fault";

  auto storage_only = FaultPlan::Parse("enospc@2x2;shortwrite@4");
  ASSERT_TRUE(storage_only.ok());
  EXPECT_TRUE(storage_only->HasStorageFaults());
  EXPECT_FALSE(storage_only->KillsAt(2));
}

TEST(FaultPlanTest, ProcessKillErrorRoundTrips) {
  const Status killed = ProcessKillError(7);
  EXPECT_FALSE(killed.ok());
  EXPECT_TRUE(IsProcessKill(killed));
  // Disjoint from the rank-crash channel even though both are ABORTED.
  int rank = -1;
  EXPECT_FALSE(IsRankCrash(killed, &rank));
  EXPECT_FALSE(IsProcessKill(RankCrashError(7)));
  EXPECT_FALSE(IsProcessKill(OkStatus()));
  EXPECT_FALSE(IsProcessKill(AbortedError("unrelated")));
}

TEST(FaultPlanTest, RankCrashErrorRoundTrips) {
  const Status crash = RankCrashError(3);
  EXPECT_FALSE(crash.ok());
  int rank = -1;
  EXPECT_TRUE(IsRankCrash(crash, &rank));
  EXPECT_EQ(rank, 3);

  int untouched = -1;
  EXPECT_FALSE(IsRankCrash(OkStatus(), &untouched));
  EXPECT_FALSE(IsRankCrash(InternalError("unrelated"), &untouched));
  EXPECT_EQ(untouched, -1);
}

}  // namespace
}  // namespace fault
}  // namespace lpsgd
