// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Checkpoint-reader fuzz harness: arbitrary bytes through
// ckpt::Deserialize. The contract under test is the one format.h pins
// for the durable wire format: EVERY malformed input — truncated,
// bit-flipped, hostile counts, trailing garbage — must return DATA_LOSS
// with bounded allocation, never crash, hang, OOM, or return OK for
// damaged bytes (the harness runs under ASan+UBSan in CI).
//
// Two build modes share FuzzOne():
//  * -DLPSGD_USE_LIBFUZZER (clang only): a libFuzzer entry point,
//    `cmake -DLPSGD_FUZZER=ON` + `ckpt_decode_fuzz corpus/`.
//  * default (any compiler, what CI's ctest runs): a standalone driver
//    that replays a built-in seed corpus — valid checkpoints serialized
//    in-process — then hammers FuzzOne with seeded deterministic
//    mutations of those seeds (`--runs N`, default 12000).
//    `--write_seed_corpus <dir>` exports the seeds for libFuzzer runs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/status.h"
#include "ckpt/format.h"

namespace {

// The single input-processing function both build modes exercise. A
// non-OK decode must be DATA_LOSS — the restore path's fallback logic
// keys off that one code — and any other outcome aborts the process so
// the fuzzer registers a finding.
void FuzzOne(const uint8_t* data, size_t size) {
  lpsgd::StatusOr<lpsgd::ckpt::TrainerState> decoded =
      lpsgd::ckpt::Deserialize(data, size);
  if (!decoded.ok() &&
      decoded.status().code() != lpsgd::StatusCode::kDataLoss) {
    std::fprintf(stderr,
                 "ckpt_decode_fuzz: non-DATA_LOSS failure on %zu bytes: %s\n",
                 size, decoded.status().ToString().c_str());
    std::abort();
  }
}

}  // namespace

#if defined(LPSGD_USE_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#else  // standalone deterministic driver

#include <fstream>
#include <random>

namespace {

// Golden seeds: valid serialized checkpoints of varying shape — a full
// state with residuals and aggregator payloads, a minimal empty one, and
// a large-tensor one — so mutations start inside the accept path instead
// of dying at the magic check.
std::vector<std::vector<uint8_t>> BuildSeedInputs() {
  using lpsgd::ckpt::TrainerState;
  std::vector<TrainerState> states;

  TrainerState full;
  full.seed = 42;
  full.codec = "qsgd4:512";
  full.rank_count = 4;
  full.iteration = 17;
  full.epochs_completed = 2;
  full.epoch_batch_cursor = 3;
  full.epoch_loss_sum = 1.25;
  full.epoch_correct = 96;
  full.epoch_samples = 128;
  full.virtual_seconds = 0.75;
  full.params.push_back({"fc1/w", {3, 2}, {1, 2, 3, 4, 5, 6}});
  full.params.push_back({"fc1/b", {2}, {0.5F, -0.5F}});
  full.optimizer.push_back({"fc1/w", {3, 2}, {6, 5, 4, 3, 2, 1}});
  full.residuals = {{{0.1F, 0.2F}, {0.3F}},
                    {{-0.1F, -0.2F}, {-0.3F}},
                    {{0.0F, 0.0F}, {0.0F}},
                    {{1.0F, 1.0F}, {1.0F}}};
  full.aggregator_state = {{0.5F, 0.5F}, {0.25F}};
  full.rng_streams = {{"init", 42}, {"shuffle", 42 ^ 0xdadaULL}};
  states.push_back(full);

  TrainerState minimal;
  minimal.seed = 1;
  minimal.codec = "fp32";
  minimal.rank_count = 1;
  states.push_back(minimal);

  TrainerState big;
  big.seed = 3;
  big.codec = "topk:0.1";
  big.rank_count = 2;
  big.iteration = 1000;
  lpsgd::ckpt::TensorEntry tensor;
  tensor.name = "conv/w";
  tensor.dims = {16, 16};
  tensor.data.assign(256, 0.125F);
  big.params.push_back(tensor);
  states.push_back(big);

  std::vector<std::vector<uint8_t>> seeds;
  for (const TrainerState& state : states) {
    const std::string bytes = lpsgd::ckpt::Serialize(state);
    seeds.emplace_back(bytes.begin(), bytes.end());
  }
  // Degenerate inputs: empty, one byte, magic-only.
  seeds.push_back({});
  seeds.push_back({0x4b});
  seeds.push_back({0x4b, 0x43, 0x50, 0x4c});
  return seeds;
}

void Mutate(std::mt19937_64* rng, std::vector<uint8_t>* input) {
  const int ops = 1 + static_cast<int>((*rng)() % 8);
  for (int op = 0; op < ops; ++op) {
    switch ((*rng)() % 6) {
      case 0:  // flip one bit
        if (!input->empty()) {
          (*input)[(*rng)() % input->size()] ^=
              static_cast<uint8_t>(1U << ((*rng)() % 8));
        }
        break;
      case 1:  // rewrite one byte
        if (!input->empty()) {
          (*input)[(*rng)() % input->size()] =
              static_cast<uint8_t>((*rng)());
        }
        break;
      case 2:  // truncate
        if (!input->empty()) {
          input->resize((*rng)() % input->size());
        }
        break;
      case 3: {  // extend with junk
        const size_t extra = (*rng)() % 64;
        for (size_t i = 0; i < extra; ++i) {
          input->push_back(static_cast<uint8_t>((*rng)()));
        }
        break;
      }
      case 4:  // overwrite a span with 0xff (hostile lengths/counts)
        if (!input->empty()) {
          size_t begin = (*rng)() % input->size();
          size_t len = 1 + (*rng)() % 16;
          for (size_t i = begin; i < input->size() && i < begin + len; ++i) {
            (*input)[i] = 0xff;
          }
        }
        break;
      default:  // duplicate a span onto another position
        if (input->size() > 8) {
          const size_t from = (*rng)() % (input->size() - 4);
          const size_t to = (*rng)() % (input->size() - 4);
          for (size_t i = 0; i < 4; ++i) (*input)[to + i] = (*input)[from + i];
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runs = 12000;
  std::string corpus_dir;
  std::string write_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) {
      runs = std::atoll(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--write_seed_corpus" && i + 1 < argc) {
      write_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ckpt_decode_fuzz [--runs N] [--corpus dir] "
                   "[--write_seed_corpus dir]\n");
      return 2;
    }
  }

  std::vector<std::vector<uint8_t>> seeds = BuildSeedInputs();
  if (!write_dir.empty()) {
    for (size_t i = 0; i < seeds.size(); ++i) {
      const std::string path =
          write_dir + "/seed_" + std::to_string(i) + ".bin";
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      out.write(reinterpret_cast<const char*>(seeds[i].data()),
                static_cast<std::streamsize>(seeds[i].size()));
    }
    std::printf("ckpt_decode_fuzz: wrote %zu seed(s) to %s\n",
                seeds.size(), write_dir.c_str());
    return 0;
  }
  if (!corpus_dir.empty()) {
    // Extra corpus entries are replayed verbatim alongside the built-ins.
    for (size_t i = 0;; ++i) {
      std::ifstream in(corpus_dir + "/seed_" + std::to_string(i) + ".bin",
                       std::ios::binary);
      if (!in) break;
      seeds.emplace_back(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    }
  }

  int64_t executed = 0;
  for (const std::vector<uint8_t>& seed : seeds) {
    FuzzOne(seed.data(), seed.size());
    ++executed;
  }
  std::mt19937_64 rng(0xcec4b10b);
  while (executed < runs) {
    std::vector<uint8_t> input = seeds[rng() % seeds.size()];
    Mutate(&rng, &input);
    FuzzOne(input.data(), input.size());
    ++executed;
  }
  std::printf("ckpt_decode_fuzz: %lld input(s) executed, no crashes\n",
              static_cast<long long>(executed));
  return 0;
}

#endif  // LPSGD_USE_LIBFUZZER
