// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Decode-path fuzz harness: arbitrary bytes through every registered
// codec's Decode (and DecodeSparse where supported) plus the BitReader /
// UnpackIndexRun primitives underneath them. The contract under test is
// the one DESIGN.md pins for the wire format: a mis-sized, truncated, or
// tampered blob must surface as a Status error (DataLoss) with the output
// buffers untouched — never a crash, hang, or out-of-bounds access (the
// harness is run under ASan+UBSan in CI).
//
// Two build modes share FuzzOne():
//  * -DLPSGD_USE_LIBFUZZER (clang only): a libFuzzer entry point,
//    `cmake -DLPSGD_FUZZER=ON` + `codec_decode_fuzz corpus/`.
//  * default (any compiler, what CI's ctest runs): a standalone driver
//    that replays the built-in seed corpus — valid wire blobs encoded
//    in-process — and then hammers FuzzOne with seeded deterministic
//    mutations of those seeds (`--runs N`, default 12000).
//    `--write_seed_corpus <dir>` exports the seeds for libFuzzer runs.
//
// Input layout: data[0] picks the codec spec, data[1]/data[2] the shape
// (bounded), data[3] the bit width for the primitive checks, data[3:] is
// the wire blob.
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "base/bit_packing.h"
#include "base/status.h"
#include "quant/codec.h"
#include "quant/workspace.h"
#include "tensor/shape.h"

namespace {

std::vector<lpsgd::CodecSpec> FuzzSpecs() {
  return {lpsgd::FullPrecisionSpec(),
          lpsgd::OneBitSgdSpec(),
          lpsgd::OneBitSgdReshapedSpec(7),
          lpsgd::OneBitSgdReshapedSpec(64),
          lpsgd::QsgdSpec(2),
          lpsgd::QsgdSpec(4),
          lpsgd::QsgdSpec(8),
          lpsgd::QsgdSpec(16),
          lpsgd::AdaptiveQsgdSpec(4),
          lpsgd::TernGradSpec(),
          lpsgd::TernGradSpec(64, 2.5),
          lpsgd::NuqsgdSpec(4),
          lpsgd::EcqSgdSpec(4),
          lpsgd::TopKSpec(0.1)};
}

const std::vector<std::unique_ptr<lpsgd::GradientCodec>>& FuzzCodecs() {
  static const auto* codecs = [] {
    auto* built = new std::vector<std::unique_ptr<lpsgd::GradientCodec>>();
    for (const lpsgd::CodecSpec& spec : FuzzSpecs()) {
      lpsgd::StatusOr<std::unique_ptr<lpsgd::GradientCodec>> codec =
          spec.Create();
      if (codec.ok()) built->push_back(std::move(*codec));
    }
    return built;
  }();
  return *codecs;
}

lpsgd::Shape ShapeFromHeader(const uint8_t* data) {
  return lpsgd::Shape({1 + data[1] % 64, 1 + data[2] % 64});
}

// The single input-processing function both build modes exercise. Must
// never crash, whatever the bytes.
void FuzzOne(const uint8_t* data, size_t size) {
  if (size < 4) return;
  const auto& codecs = FuzzCodecs();
  if (codecs.empty()) return;
  const lpsgd::GradientCodec& codec =
      *codecs[data[0] % codecs.size()];
  const lpsgd::Shape shape = ShapeFromHeader(data);
  const int64_t n = shape.element_count();

  const uint8_t* blob = data + 4;
  const int64_t blob_size = static_cast<int64_t>(size) - 4;

  lpsgd::CodecWorkspace workspace;
  std::vector<float> out(static_cast<size_t>(n), 0.0F);
  lpsgd::Status dense = codec.Decode(blob, blob_size, shape, &workspace,
                                     out.data());
  (void)dense;  // ok for a valid blob, an error otherwise — never a crash

  const int64_t sparse_count = codec.SparseCount(shape);
  if (sparse_count > 0) {
    std::vector<uint32_t> indices(static_cast<size_t>(sparse_count), 0);
    std::vector<float> values(static_cast<size_t>(sparse_count), 0.0F);
    lpsgd::Status sparse =
        codec.DecodeSparse(blob, blob_size, shape, &workspace,
                           indices.data(), values.data());
    (void)sparse;
  }

  // The bit-stream primitives under the codecs, bounded so every word the
  // reader loads exists: reading `count` fields at `bits` per value
  // consumes ceil(count / (32 / bits)) words.
  const size_t word_count = (size - 4) / 4;
  if (word_count > 0) {
    std::vector<uint32_t> words(word_count, 0);
    std::memcpy(words.data(), blob, word_count * 4);

    const int bits = 1 + data[3] % 32;
    const int64_t per_word = 32 / bits;
    const int64_t max_fields =
        per_word * static_cast<int64_t>(word_count);
    lpsgd::BitReader reader(words.data(), bits);
    uint32_t sink = 0;
    const int64_t fields = max_fields < 1024 ? max_fields : 1024;
    for (int64_t i = 0; i < fields; ++i) sink ^= reader.Next();

    // UnpackIndexRun on arbitrary words must reject malformed runs
    // (out-of-range or non-increasing indices) rather than scatter from
    // them.
    const int64_t element_count = 1 + (data[1] << 8 | data[2]);
    const int width = lpsgd::IndexBitWidth(element_count);
    const int64_t idx_per_word = 32 / width;
    int64_t count = 1 + data[3] % 64;
    if (count > idx_per_word * static_cast<int64_t>(word_count)) {
      count = idx_per_word * static_cast<int64_t>(word_count);
    }
    if (count > 0) {
      std::vector<uint32_t> indices(static_cast<size_t>(count), 0);
      const bool valid = lpsgd::UnpackIndexRun(words.data(), count,
                                               element_count,
                                               indices.data());
      if (valid) sink ^= indices.back();
    }
    // Defeat dead-code elimination of the read loops.
    volatile uint32_t keep = sink;
    (void)keep;
  }
}

}  // namespace

#if defined(LPSGD_USE_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#else  // standalone deterministic driver

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace {

// Golden seeds: for every codec, a correctly-sized valid wire blob (header
// + Encode output) so mutations start from deep inside the accept path
// (checksum-valid, size-valid) instead of dying at the size check.
std::vector<std::vector<uint8_t>> BuildSeedInputs() {
  std::vector<std::vector<uint8_t>> seeds;
  std::mt19937 gradient_rng(0x5eed);
  std::normal_distribution<float> normal(0.0F, 1.0F);
  const auto& codecs = FuzzCodecs();
  for (size_t ci = 0; ci < codecs.size(); ++ci) {
    std::vector<uint8_t> input = {static_cast<uint8_t>(ci), 5, 7, 13};
    const lpsgd::Shape shape = ShapeFromHeader(input.data());
    std::vector<float> grad(static_cast<size_t>(shape.element_count()));
    for (float& g : grad) g = normal(gradient_rng);
    std::vector<float> error(grad.size(), 0.0F);
    std::vector<uint8_t> blob;
    codecs[ci]->Encode(grad.data(), shape, /*stochastic_tag=*/ci, &error,
                       &blob);
    input.insert(input.end(), blob.begin(), blob.end());
    seeds.push_back(std::move(input));
  }
  // A few degenerate inputs: empty blob, header-only, single byte.
  seeds.push_back({0, 1, 1, 0});
  seeds.push_back({7});
  return seeds;
}

void Mutate(std::mt19937_64* rng, std::vector<uint8_t>* input) {
  const int ops = 1 + static_cast<int>((*rng)() % 8);
  for (int op = 0; op < ops; ++op) {
    switch ((*rng)() % 6) {
      case 0:  // flip one bit
        if (!input->empty()) {
          (*input)[(*rng)() % input->size()] ^=
              static_cast<uint8_t>(1U << ((*rng)() % 8));
        }
        break;
      case 1:  // rewrite one byte
        if (!input->empty()) {
          (*input)[(*rng)() % input->size()] =
              static_cast<uint8_t>((*rng)());
        }
        break;
      case 2:  // truncate
        if (!input->empty()) {
          input->resize((*rng)() % input->size());
        }
        break;
      case 3: {  // extend with junk
        const size_t extra = (*rng)() % 64;
        for (size_t i = 0; i < extra; ++i) {
          input->push_back(static_cast<uint8_t>((*rng)()));
        }
        break;
      }
      case 4:  // zero a span
        if (!input->empty()) {
          size_t begin = (*rng)() % input->size();
          size_t len = 1 + (*rng)() % 16;
          for (size_t i = begin; i < input->size() && i < begin + len; ++i) {
            (*input)[i] = 0;
          }
        }
        break;
      default:  // duplicate a span onto another position
        if (input->size() > 8) {
          const size_t from = (*rng)() % (input->size() - 4);
          const size_t to = (*rng)() % (input->size() - 4);
          for (size_t i = 0; i < 4; ++i) (*input)[to + i] = (*input)[from + i];
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runs = 12000;
  std::string corpus_dir;
  std::string write_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) {
      runs = std::atoll(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--write_seed_corpus" && i + 1 < argc) {
      write_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: codec_decode_fuzz [--runs N] [--corpus dir] "
                   "[--write_seed_corpus dir]\n");
      return 2;
    }
  }

  std::vector<std::vector<uint8_t>> seeds = BuildSeedInputs();
  if (!write_dir.empty()) {
    for (size_t i = 0; i < seeds.size(); ++i) {
      const std::string path =
          write_dir + "/seed_" + std::to_string(i) + ".bin";
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      out.write(reinterpret_cast<const char*>(seeds[i].data()),
                static_cast<std::streamsize>(seeds[i].size()));
    }
    std::printf("codec_decode_fuzz: wrote %zu seed(s) to %s\n",
                seeds.size(), write_dir.c_str());
    return 0;
  }
  if (!corpus_dir.empty()) {
    // Extra corpus entries are replayed verbatim alongside the built-ins.
    for (size_t i = 0;; ++i) {
      std::ifstream in(corpus_dir + "/seed_" + std::to_string(i) + ".bin",
                       std::ios::binary);
      if (!in) break;
      seeds.emplace_back(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    }
  }

  int64_t executed = 0;
  for (const std::vector<uint8_t>& seed : seeds) {
    FuzzOne(seed.data(), seed.size());
    ++executed;
  }
  std::mt19937_64 rng(0xc0dec0de);
  while (executed < runs) {
    std::vector<uint8_t> input = seeds[rng() % seeds.size()];
    Mutate(&rng, &input);
    FuzzOne(input.data(), input.size());
    ++executed;
  }
  std::printf("codec_decode_fuzz: %lld input(s) executed, no crashes\n",
              static_cast<long long>(executed));
  return 0;
}

#endif  // LPSGD_USE_LIBFUZZER
