// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "sim/perf_model.h"

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

PerfModel AlexNetOn(const MachineSpec& machine) {
  auto stats = FindNetworkStats("AlexNet");
  CHECK_OK(stats.status());
  return PerfModel(*stats, machine);
}

TEST(PerfModelTest, SingleGpuHasNoCommunication) {
  PerfModel model = AlexNetOn(Ec2P2Xlarge());
  auto est = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->comm_seconds, 0.0);
  EXPECT_EQ(est->encode_seconds, 0.0);
  EXPECT_GT(est->compute_seconds, 0.0);
  // Calibration point: 256-sample batch at 240.8 samples/sec.
  EXPECT_NEAR(est->SamplesPerSecond(), 240.8, 0.1);
}

TEST(PerfModelTest, RejectsInvalidConfigurations) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  EXPECT_FALSE(model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 16)
                   .ok());  // machine has 8 GPUs
  EXPECT_FALSE(
      model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 0).ok());

  PerfModel big = AlexNetOn(Ec2P2_16xlarge());
  EXPECT_TRUE(
      big.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 16).ok());
  // NCCL unavailable beyond 8 GPUs (Section 5.2).
  EXPECT_FALSE(
      big.Estimate(FullPrecisionSpec(), CommPrimitive::kNccl, 16).ok());

  auto lstm = FindNetworkStats("LSTM");
  ASSERT_TRUE(lstm.ok());
  PerfModel lstm_model(*lstm, Ec2P2_8xlarge());
  // Figure 4 has no LSTM batch size beyond 2 GPUs ("NA").
  EXPECT_FALSE(
      lstm_model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 4).ok());
}

TEST(PerfModelTest, BatchBookkeeping) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  auto est = model.Estimate(QsgdSpec(4), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->global_batch, 256);
  EXPECT_EQ(est->per_gpu_batch, 32);
  EXPECT_EQ(est->codec_label, "QSGD 4bit (b=512)");
}

TEST(PerfModelTest, EpochSecondsConsistentWithSamplesPerSecond) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  auto est = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(est.ok());
  const double epoch_s = est->EpochSeconds(1281167);
  EXPECT_NEAR(epoch_s * est->SamplesPerSecond(), 1281167.0,
              1281167.0 * 1e-9);
}

TEST(PerfModelTest, QuantizationReducesWireBytes) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  auto fp = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  auto q4 = model.Estimate(QsgdSpec(4), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(fp->wire_bytes, fp->raw_bytes);
  EXPECT_LT(q4->wire_bytes, fp->wire_bytes / 5);
  EXPECT_LT(q4->comm_seconds, fp->comm_seconds);
  EXPECT_GT(q4->encode_seconds, 0.0);
}

TEST(PerfModelTest, ComputeTimeIdenticalAcrossPrecisions) {
  // "the computation time stays the same across different precision
  // settings" (Section 5.2).
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  auto fp = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  auto q2 = model.Estimate(QsgdSpec(2), CommPrimitive::kMpi, 8);
  auto one_bit = model.Estimate(OneBitSgdSpec(), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(fp.ok());
  EXPECT_DOUBLE_EQ(fp->compute_seconds, q2->compute_seconds);
  EXPECT_DOUBLE_EQ(fp->compute_seconds, one_bit->compute_seconds);
}

TEST(PerfModelTest, Dgx1ComputeFasterThanK80) {
  PerfModel ec2 = AlexNetOn(Ec2P2_8xlarge());
  PerfModel dgx = AlexNetOn(Dgx1());
  auto ec2_est = ec2.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  auto dgx_est = dgx.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(ec2_est.ok());
  ASSERT_TRUE(dgx_est.ok());
  EXPECT_NEAR(ec2_est->compute_seconds / dgx_est->compute_seconds, 1.4,
              1e-6);
}

TEST(PerfModelTest, ScalabilityBaselineIsOne) {
  PerfModel model = AlexNetOn(Ec2P2_16xlarge());
  auto s1 = model.Scalability(FullPrecisionSpec(), CommPrimitive::kMpi, 1);
  ASSERT_TRUE(s1.ok());
  EXPECT_DOUBLE_EQ(*s1, 1.0);
}

TEST(PerfModelTest, RecipeCostPositiveAndScalesWithPrice) {
  auto resnet = FindNetworkStats("ResNet50");
  ASSERT_TRUE(resnet.ok());
  PerfModel on8(*resnet, Ec2P2_8xlarge());
  auto cost8 = on8.RecipeCostUsd(QsgdSpec(8), CommPrimitive::kNccl, 8);
  ASSERT_TRUE(cost8.ok());
  EXPECT_GT(*cost8, 10.0);     // training ResNet50 is not free
  EXPECT_LT(*cost8, 100000.0);  // nor absurd
}

TEST(PerfModelTest, ScaledModelIncreasesCommNotCompute) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  auto base = model.EstimateScaledModel(QsgdSpec(8), CommPrimitive::kNccl,
                                        8, 1.0);
  auto big = model.EstimateScaledModel(QsgdSpec(8), CommPrimitive::kNccl,
                                       8, 50.0);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_DOUBLE_EQ(base->compute_seconds, big->compute_seconds);
  EXPECT_GT(big->comm_seconds, 10.0 * base->comm_seconds);
  EXPECT_FALSE(
      model.EstimateScaledModel(QsgdSpec(8), CommPrimitive::kNccl, 8, 0.5)
          .ok());
}

TEST(PerfModelTest, ModelSizeToComputeRatio) {
  PerfModel model = AlexNetOn(Ec2P2_8xlarge());
  // AlexNet: ~250 MB / 1.4 GFLOPs ~ 178 MB/GFLOPs.
  EXPECT_NEAR(model.ModelSizeToComputeRatio(), 178.0, 15.0);
  EXPECT_NEAR(model.ModelSizeToComputeRatio(10.0),
              10.0 * model.ModelSizeToComputeRatio(), 1.0);
}

TEST(PerfModelTest, EstimateConfigurationConvenience) {
  auto est = EstimateConfiguration("VGG19", Ec2P2_8xlarge(), QsgdSpec(4),
                                   CommPrimitive::kMpi, 8);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->network, "VGG19");
  EXPECT_FALSE(EstimateConfiguration("NoSuchNet", Ec2P2_8xlarge(),
                                     QsgdSpec(4), CommPrimitive::kMpi, 8)
                   .ok());
}

TEST(PerfModelTest, CommFractionBetweenZeroAndOne) {
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    ASSERT_TRUE(stats.ok());
    PerfModel model(*stats, Ec2P2_16xlarge());
    for (int gpus : {2, 4, 8, 16}) {
      auto est =
          model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, gpus);
      ASSERT_TRUE(est.ok()) << name << " " << gpus;
      EXPECT_GT(est->CommFraction(), 0.0);
      EXPECT_LT(est->CommFraction(), 1.0);
    }
  }
}

TEST(PerfEstimateTest, RatioHelpersGuardZeroDenominators) {
  // A default-constructed estimate has no timings and no batch: every
  // ratio helper must return 0 instead of inf/NaN.
  PerfEstimate empty;
  EXPECT_DOUBLE_EQ(empty.CommFraction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.SamplesPerSecond(), 0.0);
  EXPECT_DOUBLE_EQ(empty.OverlappedSamplesPerSecond(), 0.0);
  EXPECT_DOUBLE_EQ(empty.EpochSeconds(1000), 0.0);
}

TEST(PerfEstimateTest, SerializesToRunReportEntry) {
  auto est = AlexNetOn(Ec2P2_8xlarge())
                 .Estimate(QsgdSpec(4), CommPrimitive::kMpi, 4);
  ASSERT_TRUE(est.ok()) << est.status();
  const obs::JsonValue v = PerfEstimateToJson(*est);
  EXPECT_EQ(v.At("network").AsString(), "AlexNet");
  EXPECT_EQ(v.At("primitive").AsString(), "MPI");
  EXPECT_EQ(v.At("gpus").AsInt(), 4);
  EXPECT_EQ(v.At("wire_bytes").AsInt(), est->wire_bytes);
  EXPECT_DOUBLE_EQ(v.At("comm_fraction").AsDouble(), est->CommFraction());
}

}  // namespace
}  // namespace lpsgd
