// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Shape assertions: the perf model must reproduce the *qualitative*
// findings of Section 5 (who wins, by roughly what factor, where the
// crossovers fall), and land within a loose quantitative band of the
// paper's Figure 10/11 measurements. These tests pin the calibration of
// machine/specs.cc.
#include <cmath>

#include <gtest/gtest.h>

#include "sim/perf_model.h"

namespace lpsgd {
namespace {

double Sps(const std::string& net, const MachineSpec& machine,
           const CodecSpec& spec, CommPrimitive prim, int gpus) {
  auto est = EstimateConfiguration(net, machine, spec, prim, gpus);
  CHECK_OK(est.status());
  return est->SamplesPerSecond();
}

// --- Quantitative band vs Figure 10 (MPI on EC2) -------------------------

struct Figure10Case {
  const char* network;
  const char* precision;  // "32bit", "Q4", "1b", "1b*"
  int gpus;
  double paper_samples_per_sec;
};

CodecSpec SpecFor(const std::string& label) {
  if (label == "32bit") return FullPrecisionSpec();
  if (label == "Q2") return QsgdSpec(2);
  if (label == "Q4") return QsgdSpec(4);
  if (label == "Q8") return QsgdSpec(8);
  if (label == "Q16") return QsgdSpec(16);
  if (label == "1b") return OneBitSgdSpec();
  if (label == "1b*") return OneBitSgdReshapedSpec(64);
  CHECK(false) << label;
  return {};
}

class Figure10BandTest : public ::testing::TestWithParam<Figure10Case> {};

TEST_P(Figure10BandTest, ModelWithinFactorTwoOfPaper) {
  const Figure10Case& c = GetParam();
  auto machine = Ec2MachineForGpus(c.gpus);
  ASSERT_TRUE(machine.ok());
  const double modeled = Sps(c.network, *machine, SpecFor(c.precision),
                             CommPrimitive::kMpi, c.gpus);
  const double ratio = modeled / c.paper_samples_per_sec;
  EXPECT_GT(ratio, 0.5) << c.network << " " << c.precision << " x"
                        << c.gpus << " modeled=" << modeled;
  EXPECT_LT(ratio, 2.0) << c.network << " " << c.precision << " x"
                        << c.gpus << " modeled=" << modeled;
}

INSTANTIATE_TEST_SUITE_P(
    Figure10, Figure10BandTest,
    ::testing::Values(
        Figure10Case{"AlexNet", "32bit", 8, 272.90},
        Figure10Case{"AlexNet", "32bit", 16, 192.10},
        Figure10Case{"AlexNet", "Q4", 8, 964.90},
        Figure10Case{"AlexNet", "Q8", 8, 739.10},
        Figure10Case{"AlexNet", "1b", 8, 971.10},
        Figure10Case{"AlexNet", "1b*", 8, 761.20},
        Figure10Case{"VGG19", "32bit", 8, 53.95},
        Figure10Case{"VGG19", "Q4", 8, 151.65},
        Figure10Case{"VGG19", "Q2", 16, 170.50},
        Figure10Case{"ResNet50", "32bit", 8, 247.90},
        Figure10Case{"ResNet50", "Q4", 8, 326.10},
        Figure10Case{"ResNet50", "1b", 8, 160.15},
        Figure10Case{"ResNet50", "1b*", 8, 296.70},
        Figure10Case{"ResNet152", "32bit", 8, 73.90},
        Figure10Case{"ResNet152", "Q4", 16, 203.20},
        Figure10Case{"BN-Inception", "32bit", 8, 473.75},
        Figure10Case{"BN-Inception", "Q4", 8, 593.40}),
    [](const ::testing::TestParamInfo<Figure10Case>& info) {
      std::string name = std::string(info.param.network) + "_" +
                         info.param.precision + "_x" +
                         std::to_string(info.param.gpus);
      for (char& c : name) {
        if (c == '-' || c == '*') c = '_';
      }
      return name;
    });

// --- Qualitative claims from Section 5 -----------------------------------

TEST(PaperClaimsTest, LowPrecisionHelpsALotOnMpiCommDominatedNets) {
  // Section 5.2: ~3-4x end-to-end speedup on AlexNet/VGG with MPI, 8 GPUs.
  const MachineSpec m = Ec2P2_8xlarge();
  const double alex_speedup =
      Sps("AlexNet", m, QsgdSpec(4), CommPrimitive::kMpi, 8) /
      Sps("AlexNet", m, FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  EXPECT_GT(alex_speedup, 2.0);
  const double vgg_speedup =
      Sps("VGG19", m, QsgdSpec(4), CommPrimitive::kMpi, 8) /
      Sps("VGG19", m, FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  EXPECT_GT(vgg_speedup, 2.0);
}

TEST(PaperClaimsTest, LowPrecisionBarelyHelpsComputeDominatedNets) {
  // "For networks with small model, we observe almost no speedup."
  const MachineSpec m = Ec2P2_8xlarge();
  const double inception_speedup =
      Sps("BN-Inception", m, QsgdSpec(4), CommPrimitive::kMpi, 8) /
      Sps("BN-Inception", m, FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  EXPECT_LT(inception_speedup, 1.6);
  EXPECT_GT(inception_speedup, 1.0);
}

TEST(PaperClaimsTest, NcclFullPrecisionBeatsMpiLowPrecisionOnAlexNetVgg) {
  // Section 5.2, "NCCL vs. MPI": 32bit NCCL can outrun low-precision MPI.
  const MachineSpec m = Ec2P2_8xlarge();
  EXPECT_GT(Sps("AlexNet", m, FullPrecisionSpec(), CommPrimitive::kNccl, 8),
            Sps("AlexNet", m, QsgdSpec(4), CommPrimitive::kMpi, 8));
  EXPECT_GT(Sps("VGG19", m, FullPrecisionSpec(), CommPrimitive::kNccl, 8),
            Sps("VGG19", m, QsgdSpec(4), CommPrimitive::kMpi, 8));
}

TEST(PaperClaimsTest, NcclQuantizationGainsAreLimited) {
  // Section 5.2: with NCCL the speedup from quantization is small; VGG is
  // the largest at ~1.4-1.5x.
  const MachineSpec m = Ec2P2_8xlarge();
  for (const char* net : {"AlexNet", "ResNet50", "ResNet152",
                          "BN-Inception"}) {
    const double speedup =
        Sps(net, m, QsgdSpec(4), CommPrimitive::kNccl, 8) /
        Sps(net, m, FullPrecisionSpec(), CommPrimitive::kNccl, 8);
    EXPECT_LT(speedup, 1.35) << net;
  }
  const double vgg_speedup =
      Sps("VGG19", m, QsgdSpec(4), CommPrimitive::kNccl, 8) /
      Sps("VGG19", m, FullPrecisionSpec(), CommPrimitive::kNccl, 8);
  EXPECT_GT(vgg_speedup, 1.02);
  EXPECT_LT(vgg_speedup, 1.7);
}

TEST(PaperClaimsTest, DiminishingReturnsBelowFourBits) {
  // Section 5.2 "Extremely Low Precision": 1-2 bit rarely beats 4-bit.
  const MachineSpec m = Ec2P2_8xlarge();
  for (const char* net : {"AlexNet", "VGG19", "ResNet50", "ResNet152"}) {
    const double q4 = Sps(net, m, QsgdSpec(4), CommPrimitive::kMpi, 8);
    const double q2 = Sps(net, m, QsgdSpec(2), CommPrimitive::kMpi, 8);
    EXPECT_LT(q2 / q4, 1.25) << net;
  }
}

TEST(PaperClaimsTest, StockOneBitSlowerThanFullPrecisionOnConvNets) {
  // Section 3.2: per-column 1bitSGD can be slower than even 32bit on
  // heavily convolutional networks (ResNet, Inception).
  const MachineSpec m = Ec2P2_8xlarge();
  for (const char* net : {"ResNet50", "ResNet152", "BN-Inception"}) {
    EXPECT_LT(Sps(net, m, OneBitSgdSpec(), CommPrimitive::kMpi, 8),
              Sps(net, m, FullPrecisionSpec(), CommPrimitive::kMpi, 8))
        << net;
  }
}

TEST(PaperClaimsTest, ReshapingFixesOneBitOnConvNets) {
  // "We observe up to 4x speedup compared with the original CNTK
  // implementation."
  const MachineSpec m = Ec2P2_8xlarge();
  for (const char* net : {"ResNet50", "ResNet152"}) {
    const double stock = Sps(net, m, OneBitSgdSpec(), CommPrimitive::kMpi, 8);
    const double reshaped =
        Sps(net, m, OneBitSgdReshapedSpec(64), CommPrimitive::kMpi, 8);
    EXPECT_GT(reshaped / stock, 1.5) << net;
  }
}

TEST(PaperClaimsTest, StockOneBitStillFineOnFcDominatedAlexNet) {
  // AlexNet's parameters live in dense layers with large columns, so the
  // stock variant keeps its compression there (Figure 10: 971 vs 272).
  const MachineSpec m = Ec2P2_8xlarge();
  EXPECT_GT(Sps("AlexNet", m, OneBitSgdSpec(), CommPrimitive::kMpi, 8),
            2.0 * Sps("AlexNet", m, FullPrecisionSpec(),
                      CommPrimitive::kMpi, 8));
}

TEST(PaperClaimsTest, SixteenGpusRarelyWorthDoubleThePrice) {
  // Section 5.3 / Insight 5: few scenarios justify p2.16xlarge over
  // p2.8xlarge. Going 8 -> 16 GPUs must yield < 2x throughput at 32bit.
  for (const char* net : {"AlexNet", "VGG19", "ResNet50",
                          "BN-Inception"}) {
    const double on8 = Sps(net, Ec2P2_8xlarge(), FullPrecisionSpec(),
                           CommPrimitive::kMpi, 8);
    const double on16 = Sps(net, Ec2P2_16xlarge(), FullPrecisionSpec(),
                            CommPrimitive::kMpi, 16);
    EXPECT_LT(on16 / on8, 2.0) << net;
  }
  // AlexNet actually gets SLOWER at 16 GPUs (Figure 10: 192 vs 273).
  EXPECT_LT(Sps("AlexNet", Ec2P2_16xlarge(), FullPrecisionSpec(),
                CommPrimitive::kMpi, 16),
            Sps("AlexNet", Ec2P2_8xlarge(), FullPrecisionSpec(),
                CommPrimitive::kMpi, 8));
}

TEST(PaperClaimsTest, QuantizationRestoresScalabilityUnderMpi) {
  // Section 5.3: ResNet152 scales almost linearly once quantized; 32bit
  // scalability at 16 GPUs is much lower.
  auto stats = FindNetworkStats("ResNet152");
  ASSERT_TRUE(stats.ok());
  PerfModel model(*stats, Ec2P2_16xlarge());
  auto s32 = model.Scalability(FullPrecisionSpec(), CommPrimitive::kMpi, 16);
  auto q4 = model.Scalability(QsgdSpec(4), CommPrimitive::kMpi, 16);
  ASSERT_TRUE(s32.ok());
  ASSERT_TRUE(q4.ok());
  EXPECT_GT(*q4, *s32 * 1.5);
  EXPECT_GT(*q4, 8.0);
}

TEST(PaperClaimsTest, VggSuperlinearScalingAtEightGpus) {
  // Section 5.2 "Super-Linear Scaling": VGG19 at 8 GPUs (per-GPU batch
  // 16) exceeds 8x with NCCL.
  auto stats = FindNetworkStats("VGG19");
  ASSERT_TRUE(stats.ok());
  PerfModel model(*stats, Ec2P2_8xlarge());
  auto s = model.Scalability(FullPrecisionSpec(), CommPrimitive::kNccl, 8);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(*s, 8.0);
}

TEST(PaperClaimsTest, DgxMpiStillBenefitsFromQuantization) {
  // Section 5.2 "Fast Interconnect with Slow/Fast Primitives": with MPI
  // on DGX-1, quantization still gives large speedups (up to ~5x on VGG).
  const MachineSpec dgx = Dgx1();
  const double vgg_speedup =
      Sps("VGG19", dgx, QsgdSpec(4), CommPrimitive::kMpi, 8) /
      Sps("VGG19", dgx, FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  EXPECT_GT(vgg_speedup, 2.0);

  const double nccl_speedup =
      Sps("VGG19", dgx, QsgdSpec(4), CommPrimitive::kNccl, 8) /
      Sps("VGG19", dgx, FullPrecisionSpec(), CommPrimitive::kNccl, 8);
  EXPECT_LT(nccl_speedup, 1.7);
}

TEST(PaperClaimsTest, ExtrapolationSpeedupGrowsAndIsBoundedByFour) {
  // Figure 16 (right): 8-bit-over-32-bit NCCL speedup rises with the
  // model-size/compute ratio and is upper-bounded by the 4x bandwidth
  // ratio.
  auto stats = FindNetworkStats("AlexNet");
  ASSERT_TRUE(stats.ok());
  PerfModel model(*stats, Ec2P2_8xlarge());
  double previous = 0.0;
  for (double scale : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    auto q8 = model.EstimateScaledModel(QsgdSpec(8), CommPrimitive::kNccl,
                                        8, scale);
    auto fp = model.EstimateScaledModel(FullPrecisionSpec(),
                                        CommPrimitive::kNccl, 8, scale);
    ASSERT_TRUE(q8.ok());
    ASSERT_TRUE(fp.ok());
    const double speedup = fp->IterationSeconds() / q8->IterationSeconds();
    EXPECT_GE(speedup, previous * 0.999) << scale;
    EXPECT_LT(speedup, 4.0) << scale;
    previous = speedup;
  }
  // Approaches (but never reaches) the 4x bandwidth bound; the residual
  // gap is the quantize/unquantize kernel time a native low-precision
  // NCCL would still pay.
  EXPECT_GT(previous, 2.5);
}

TEST(PaperClaimsTest, CommunicationShareOrdersNetworksCorrectly) {
  // AlexNet/VGG are communication-dominated; Inception/ResNet50 are
  // computation-dominated (Section 5.2).
  const MachineSpec m = Ec2P2_8xlarge();
  auto frac = [&](const char* net) {
    auto est = EstimateConfiguration(net, m, FullPrecisionSpec(),
                                     CommPrimitive::kMpi, 8);
    CHECK_OK(est.status());
    return est->CommFraction();
  };
  EXPECT_GT(frac("AlexNet"), frac("BN-Inception"));
  EXPECT_GT(frac("VGG19"), frac("ResNet50"));
  EXPECT_GT(frac("AlexNet"), 0.5);
  EXPECT_LT(frac("BN-Inception"), 0.5);
}

}  // namespace
}  // namespace lpsgd
