// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Quantitative band vs Figure 11 (NCCL on EC2), plus properties of the
// overlap model. Companion to perf_model_claims_test.cc.
#include <gtest/gtest.h>

#include "sim/perf_model.h"

namespace lpsgd {
namespace {

struct Figure11Case {
  const char* network;
  int bits;  // 0 = full precision
  int gpus;
  double paper_samples_per_sec;
};

class Figure11BandTest : public ::testing::TestWithParam<Figure11Case> {};

TEST_P(Figure11BandTest, ModelWithinFactorTwoOfPaper) {
  const Figure11Case& c = GetParam();
  auto machine = Ec2MachineForGpus(c.gpus);
  ASSERT_TRUE(machine.ok());
  const CodecSpec spec =
      c.bits == 0 ? FullPrecisionSpec() : QsgdSpec(c.bits);
  auto est = EstimateConfiguration(c.network, *machine, spec,
                                   CommPrimitive::kNccl, c.gpus);
  ASSERT_TRUE(est.ok());
  const double ratio = est->SamplesPerSecond() / c.paper_samples_per_sec;
  EXPECT_GT(ratio, 0.5) << c.network << " Q" << c.bits << " x" << c.gpus
                        << " modeled=" << est->SamplesPerSecond();
  EXPECT_LT(ratio, 2.0) << c.network << " Q" << c.bits << " x" << c.gpus
                        << " modeled=" << est->SamplesPerSecond();
}

INSTANTIATE_TEST_SUITE_P(
    Figure11, Figure11BandTest,
    ::testing::Values(Figure11Case{"AlexNet", 0, 8, 1138.30},
                      Figure11Case{"AlexNet", 4, 8, 1247.70},
                      Figure11Case{"AlexNet", 0, 2, 458.20},
                      Figure11Case{"VGG19", 0, 8, 163.10},
                      Figure11Case{"VGG19", 4, 8, 179.50},
                      Figure11Case{"ResNet50", 0, 8, 291.10},
                      Figure11Case{"ResNet50", 2, 8, 304.10},
                      Figure11Case{"ResNet152", 0, 8, 112.10},
                      Figure11Case{"ResNet152", 4, 4, 62.10},
                      Figure11Case{"BN-Inception", 0, 8, 486.70},
                      Figure11Case{"BN-Inception", 4, 8, 598.90}),
    [](const ::testing::TestParamInfo<Figure11Case>& info) {
      std::string name = std::string(info.param.network) + "_Q" +
                         std::to_string(info.param.bits) + "_x" +
                         std::to_string(info.param.gpus);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(OverlapModelTest, OverlappedNeverSlowerNeverFasterThanBothBounds) {
  for (const std::string& name : PerformanceFigureNetworks()) {
    auto stats = FindNetworkStats(name);
    ASSERT_TRUE(stats.ok());
    PerfModel model(*stats, Ec2P2_8xlarge());
    for (CommPrimitive primitive :
         {CommPrimitive::kMpi, CommPrimitive::kNccl}) {
      for (const CodecSpec& spec : {FullPrecisionSpec(), QsgdSpec(4)}) {
        auto est = model.Estimate(spec, primitive, 8);
        ASSERT_TRUE(est.ok()) << name;
        EXPECT_LE(est->OverlappedIterationSeconds(),
                  est->IterationSeconds());
        EXPECT_GE(est->OverlappedIterationSeconds(), est->compute_seconds);
        EXPECT_GE(est->OverlappedIterationSeconds(),
                  est->comm_seconds + est->encode_seconds - 1e-12);
      }
    }
  }
}

TEST(OverlapModelTest, OverlapCannotHideFullPrecisionMpiOnAlexNet) {
  // The insight the bench_ablation_overlap binary prints: on MPI AlexNet
  // fp32 the exchange exceeds the computation, so even ideal overlap
  // leaves communication exposed and quantization still pays.
  auto stats = FindNetworkStats("AlexNet");
  ASSERT_TRUE(stats.ok());
  PerfModel model(*stats, Ec2P2_8xlarge());
  auto fp = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(fp.ok());
  EXPECT_GT(fp->comm_seconds, fp->compute_seconds);
  auto q4 = model.Estimate(QsgdSpec(4), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(q4.ok());
  EXPECT_LT(q4->OverlappedIterationSeconds(),
            fp->OverlappedIterationSeconds() / 2.0);
}

TEST(TopKPerfTest, HighDensityTopKBarelyBeatsFp32OnTheWire) {
  // Section 7's argument quantified: at 25% density the traffic cut is
  // only 2x; QSGD 4bit manages ~7.9x.
  auto stats = FindNetworkStats("BN-Inception");
  ASSERT_TRUE(stats.ok());
  PerfModel model(*stats, Ec2P2_8xlarge());
  auto fp = model.Estimate(FullPrecisionSpec(), CommPrimitive::kMpi, 8);
  auto topk = model.Estimate(TopKSpec(0.25), CommPrimitive::kMpi, 8);
  auto q4 = model.Estimate(QsgdSpec(4), CommPrimitive::kMpi, 8);
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(topk.ok());
  ASSERT_TRUE(q4.ok());
  const double topk_cut = static_cast<double>(fp->wire_bytes) /
                          static_cast<double>(topk->wire_bytes);
  const double q4_cut = static_cast<double>(fp->wire_bytes) /
                        static_cast<double>(q4->wire_bytes);
  EXPECT_LT(topk_cut, 2.5);
  EXPECT_GT(q4_cut, 6.0);
}

}  // namespace
}  // namespace lpsgd
