// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Figure 16 (left) shape: the EC2 price/accuracy frontier is monotone with
// diminishing returns, and the model-size/compute ratios order the
// networks the way Section 6 discusses.
#include <gtest/gtest.h>

#include "sim/perf_model.h"

namespace lpsgd {
namespace {

// Cheapest recipe cost across EC2 configurations with 8-bit QSGD over
// NCCL (full precision at 1 GPU), the Figure 16 setting.
double CheapestRecipeCostUsd(const std::string& network) {
  auto stats = FindNetworkStats(network);
  CHECK_OK(stats.status());
  double best = 1e18;
  for (int gpus : {1, 2, 4, 8}) {
    if (stats->batch_for_gpus.find(gpus) == stats->batch_for_gpus.end()) {
      continue;
    }
    auto machine = Ec2MachineForGpus(gpus);
    CHECK_OK(machine.status());
    PerfModel model(*stats, *machine);
    const CodecSpec codec = gpus == 1 ? FullPrecisionSpec() : QsgdSpec(8);
    auto cost = model.RecipeCostUsd(codec, CommPrimitive::kNccl, gpus);
    if (cost.ok()) best = std::min(best, *cost);
  }
  return best;
}

TEST(CostFrontierTest, CostRisesWithAccuracyAcrossTheThreeNetworks) {
  const double alexnet = CheapestRecipeCostUsd("AlexNet");
  const double resnet50 = CheapestRecipeCostUsd("ResNet50");
  const double resnet152 = CheapestRecipeCostUsd("ResNet152");
  EXPECT_LT(alexnet, resnet50);
  EXPECT_LT(resnet50, resnet152);
  // Rough magnitudes from the paper's log-scale axis: ~10^2, high 10^2s,
  // >2x10^3.
  EXPECT_GT(alexnet, 30.0);
  EXPECT_LT(alexnet, 500.0);
  EXPECT_GT(resnet152, 1000.0);
  EXPECT_LT(resnet152, 10000.0);
}

TEST(CostFrontierTest, DiminishingAccuracyReturnsPerDollar) {
  // AlexNet -> ResNet50 buys ~15 points; ResNet50 -> ResNet152 buys ~2
  // points for more money (Section 5.4).
  auto alexnet = FindNetworkStats("AlexNet");
  auto resnet50 = FindNetworkStats("ResNet50");
  auto resnet152 = FindNetworkStats("ResNet152");
  ASSERT_TRUE(alexnet.ok());
  ASSERT_TRUE(resnet50.ok());
  ASSERT_TRUE(resnet152.ok());
  const double step1_points =
      resnet50->recipe_accuracy_percent - alexnet->recipe_accuracy_percent;
  const double step2_points = resnet152->recipe_accuracy_percent -
                              resnet50->recipe_accuracy_percent;
  const double step1_dollars =
      CheapestRecipeCostUsd("ResNet50") - CheapestRecipeCostUsd("AlexNet");
  const double step2_dollars = CheapestRecipeCostUsd("ResNet152") -
                               CheapestRecipeCostUsd("ResNet50");
  const double step1_points_per_dollar = step1_points / step1_dollars;
  const double step2_points_per_dollar = step2_points / step2_dollars;
  EXPECT_GT(step1_points_per_dollar, 5.0 * step2_points_per_dollar);
}

TEST(CostFrontierTest, ModelSizeToComputeRatiosOrderNetworks) {
  // AlexNet has by far the largest MB/GFLOPs ratio (the reason it is the
  // extrapolation base); ResNet50 and BN-Inception sit at the low end.
  auto ratio = [](const std::string& name) {
    auto stats = FindNetworkStats(name);
    CHECK_OK(stats.status());
    PerfModel model(*stats, Ec2P2_8xlarge());
    return model.ModelSizeToComputeRatio();
  };
  EXPECT_GT(ratio("AlexNet"), ratio("VGG19"));
  EXPECT_GT(ratio("VGG19"), ratio("ResNet50"));
  EXPECT_GT(ratio("ResNet50"), ratio("ResNet152"));
  EXPECT_GT(ratio("AlexNet"), 10.0 * ratio("ResNet152"));
}

}  // namespace
}  // namespace lpsgd
