// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "data/synthetic.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(SyntheticImageTest, LabelsRoughlyBalanced) {
  SyntheticImageOptions options;
  options.num_classes = 5;
  options.num_samples = 5000;
  SyntheticImageDataset dataset(options);
  std::map<int, int> counts;
  for (int64_t i = 0; i < dataset.NumSamples(); ++i) {
    ++counts[dataset.LabelOf(i)];
  }
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [label, count] : counts) {
    EXPECT_GT(count, 800) << "label " << label;
    EXPECT_LT(count, 1200) << "label " << label;
  }
}

TEST(SyntheticImageTest, DisjointOffsetsGiveDifferentSamples) {
  SyntheticImageOptions train_options;
  train_options.height = 4;
  train_options.width = 4;
  train_options.num_samples = 100;
  SyntheticImageOptions test_options = train_options;
  test_options.sample_offset = 100;
  SyntheticImageDataset train(train_options);
  SyntheticImageDataset test(test_options);

  std::vector<float> a(16), b(16);
  train.FillSample(0, a.data());
  test.FillSample(0, b.data());
  EXPECT_NE(a, b);
}

TEST(SyntheticImageTest, SameSeedSameData) {
  SyntheticImageOptions options;
  options.height = 4;
  options.width = 4;
  options.num_samples = 10;
  SyntheticImageDataset d1(options);
  SyntheticImageDataset d2(options);
  std::vector<float> a(16), b(16);
  d1.FillSample(7, a.data());
  d2.FillSample(7, b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(d1.LabelOf(7), d2.LabelOf(7));
}

TEST(SyntheticImageTest, SignalToNoiseControlsSeparation) {
  // With zero noise, samples of the same class are identical (pure
  // prototype); with noise they differ.
  SyntheticImageOptions clean;
  clean.height = 4;
  clean.width = 4;
  clean.noise = 0.0f;
  clean.num_samples = 50;
  SyntheticImageDataset dataset(clean);
  int64_t i = 0, j = 1;
  while (dataset.LabelOf(j) != dataset.LabelOf(i)) ++j;
  std::vector<float> a(16), b(16);
  dataset.FillSample(i, a.data());
  dataset.FillSample(j, b.data());
  EXPECT_EQ(a, b);
}

TEST(SyntheticImageTest, SampleShapeMatchesOptions) {
  SyntheticImageOptions options;
  options.channels = 3;
  options.height = 6;
  options.width = 5;
  SyntheticImageDataset dataset(options);
  EXPECT_EQ(dataset.SampleShape(), Shape({3, 6, 5}));
}

TEST(SyntheticSequenceTest, ShapeAndDeterminism) {
  SyntheticSequenceOptions options;
  options.time_steps = 7;
  options.frame_dim = 5;
  options.num_samples = 20;
  SyntheticSequenceDataset d1(options);
  SyntheticSequenceDataset d2(options);
  EXPECT_EQ(d1.SampleShape(), Shape({7, 5}));
  std::vector<float> a(35), b(35);
  d1.FillSample(3, a.data());
  d2.FillSample(3, b.data());
  EXPECT_EQ(a, b);
}

TEST(SyntheticSequenceTest, LabelsInRange) {
  SyntheticSequenceOptions options;
  options.num_classes = 6;
  options.num_samples = 500;
  SyntheticSequenceDataset dataset(options);
  std::map<int, int> counts;
  for (int64_t i = 0; i < dataset.NumSamples(); ++i) {
    const int label = dataset.LabelOf(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 6);
    ++counts[label];
  }
  EXPECT_EQ(counts.size(), 6u);
}

TEST(SyntheticSequenceTest, NoiseZeroYieldsAnchorLikeSequences) {
  SyntheticSequenceOptions options;
  options.noise = 0.0f;
  options.num_samples = 100;
  SyntheticSequenceDataset dataset(options);
  // Two same-class samples with the same temporal shift are identical;
  // at minimum, same-class samples must be far closer than cross-class.
  std::vector<float> a(static_cast<size_t>(options.time_steps) *
                       options.frame_dim);
  dataset.FillSample(0, a.data());
  for (float v : a) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace lpsgd
