// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "data/dataset.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace lpsgd {
namespace {

SyntheticImageDataset SmallDataset(int64_t samples = 100) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = samples;
  return SyntheticImageDataset(options);
}

TEST(MakeBatchTest, ShapesAndLabels) {
  const SyntheticImageDataset dataset = SmallDataset();
  const Batch batch = MakeBatch(dataset, {0, 5, 7});
  EXPECT_EQ(batch.size(), 3);
  EXPECT_EQ(batch.inputs.shape(), Shape({3, 1, 4, 4}));
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(batch.labels[static_cast<size_t>(i)], 0);
    EXPECT_LT(batch.labels[static_cast<size_t>(i)], 4);
  }
  EXPECT_EQ(batch.labels[0], dataset.LabelOf(0));
  EXPECT_EQ(batch.labels[1], dataset.LabelOf(5));
}

TEST(MakeBatchTest, SameIndexProducesSameSample) {
  const SyntheticImageDataset dataset = SmallDataset();
  const Batch a = MakeBatch(dataset, {3});
  const Batch b = MakeBatch(dataset, {3});
  for (int64_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs.at(i), b.inputs.at(i));
  }
}

TEST(BatchIteratorTest, CoversEverySampleExactlyOncePerEpoch) {
  const SyntheticImageDataset dataset = SmallDataset(97);
  BatchIterator it(&dataset, 10, /*seed=*/5);
  it.StartEpoch(0);
  Batch batch;
  int64_t total = 0;
  int batches = 0;
  while (it.NextBatch(&batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 97);
  EXPECT_EQ(batches, 10);  // 9 full + 1 partial
  EXPECT_EQ(it.NumBatchesPerEpoch(), 10);
}

TEST(BatchIteratorTest, ShuffleIsDeterministicPerEpoch) {
  const SyntheticImageDataset dataset = SmallDataset(50);
  BatchIterator a(&dataset, 50, 9);
  BatchIterator b(&dataset, 50, 9);
  a.StartEpoch(3);
  b.StartEpoch(3);
  Batch batch_a, batch_b;
  ASSERT_TRUE(a.NextBatch(&batch_a));
  ASSERT_TRUE(b.NextBatch(&batch_b));
  EXPECT_EQ(batch_a.labels, batch_b.labels);
}

TEST(BatchIteratorTest, DifferentEpochsShuffleDifferently) {
  const SyntheticImageDataset dataset = SmallDataset(50);
  BatchIterator it(&dataset, 50, 9);
  it.StartEpoch(0);
  Batch epoch0;
  ASSERT_TRUE(it.NextBatch(&epoch0));
  it.StartEpoch(1);
  Batch epoch1;
  ASSERT_TRUE(it.NextBatch(&epoch1));
  EXPECT_NE(epoch0.labels, epoch1.labels);
}

TEST(BatchIteratorTest, EpochOrderIsPureFunctionOfSeedAndEpoch) {
  // Regression test: the shuffle must NOT depend on which epochs were
  // visited before (a fresh iterator jumping straight to epoch 3 must see
  // the same order as one that walked epochs 0-2). SyncTrainer's
  // split-vs-continuous training equivalence depends on this.
  const SyntheticImageDataset dataset = SmallDataset(64);
  BatchIterator walked(&dataset, 64, 11);
  for (int e = 0; e <= 3; ++e) walked.StartEpoch(e);
  BatchIterator jumped(&dataset, 64, 11);
  jumped.StartEpoch(3);

  Batch a, b;
  ASSERT_TRUE(walked.NextBatch(&a));
  ASSERT_TRUE(jumped.NextBatch(&b));
  EXPECT_EQ(a.labels, b.labels);
  for (int64_t i = 0; i < a.inputs.size(); ++i) {
    ASSERT_EQ(a.inputs.at(i), b.inputs.at(i));
  }
}

TEST(BatchIteratorTest, BatchLargerThanDatasetYieldsOneBatch) {
  const SyntheticImageDataset dataset = SmallDataset(10);
  BatchIterator it(&dataset, 64, 2);
  it.StartEpoch(0);
  Batch batch;
  ASSERT_TRUE(it.NextBatch(&batch));
  EXPECT_EQ(batch.size(), 10);
  EXPECT_FALSE(it.NextBatch(&batch));
  EXPECT_EQ(it.NumBatchesPerEpoch(), 1);
}

TEST(BatchIteratorTest, ExhaustedEpochReturnsFalse) {
  const SyntheticImageDataset dataset = SmallDataset(10);
  BatchIterator it(&dataset, 10, 1);
  it.StartEpoch(0);
  Batch batch;
  EXPECT_TRUE(it.NextBatch(&batch));
  EXPECT_FALSE(it.NextBatch(&batch));
  it.StartEpoch(1);
  EXPECT_TRUE(it.NextBatch(&batch));
}

}  // namespace
}  // namespace lpsgd
