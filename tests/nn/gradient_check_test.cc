// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Numerical gradient checks: every layer's Backward must match central
// finite differences of its Forward, for both input gradients and
// parameter gradients. This is the strongest correctness property the NN
// substrate has, so it runs for every layer type including composites.
#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/network.h"
#include "nn/pool.h"

namespace lpsgd {
namespace {

// Scalar probe loss: L = sum_i c_i * out_i with fixed random c.
double ProbeLoss(const Tensor& out, const Tensor& probe) {
  double loss = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    loss += static_cast<double>(out.at(i)) * probe.at(i);
  }
  return loss;
}

struct GradCheckCase {
  std::string name;
  std::function<std::unique_ptr<Layer>(Rng*)> make_layer;
  Shape input_shape;  // including batch dimension
  double tolerance = 2e-2;
};

class LayerGradientCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(LayerGradientCheck, BackwardMatchesFiniteDifferences) {
  const GradCheckCase& test_case = GetParam();
  Rng rng(123);
  std::unique_ptr<Layer> layer = test_case.make_layer(&rng);

  Tensor input(test_case.input_shape);
  Rng data_rng(321);
  input.FillGaussian(&data_rng, 1.0f);

  Tensor first_out = layer->Forward(input, /*training=*/true);
  Tensor probe(first_out.shape());
  probe.FillGaussian(&data_rng, 1.0f);

  // Analytic gradients.
  std::vector<ParamRef> params;
  layer->CollectParams(&params);
  for (ParamRef& p : params) p.grad->SetZero();
  Tensor input_grad = layer->Backward(probe);

  const float eps = 1e-2f;

  // Input gradient check on a sample of coordinates.
  const int64_t input_stride = std::max<int64_t>(1, input.size() / 24);
  for (int64_t i = 0; i < input.size(); i += input_stride) {
    const float saved = input.at(i);
    input.at(i) = saved + eps;
    const double plus = ProbeLoss(layer->Forward(input, true), probe);
    input.at(i) = saved - eps;
    const double minus = ProbeLoss(layer->Forward(input, true), probe);
    input.at(i) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(input_grad.at(i), numeric,
                test_case.tolerance * (1.0 + std::abs(numeric)))
        << test_case.name << " input coordinate " << i;
  }
  // Restore caches for parameter checks.
  layer->Forward(input, true);

  // Parameter gradient check on a sample of coordinates per parameter.
  for (ParamRef& p : params) {
    Tensor& value = *p.value;
    const int64_t stride = std::max<int64_t>(1, value.size() / 16);
    for (int64_t i = 0; i < value.size(); i += stride) {
      const float saved = value.at(i);
      value.at(i) = saved + eps;
      const double plus = ProbeLoss(layer->Forward(input, true), probe);
      value.at(i) = saved - eps;
      const double minus = ProbeLoss(layer->Forward(input, true), probe);
      value.at(i) = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(p.grad->at(i), numeric,
                  test_case.tolerance * (1.0 + std::abs(numeric)))
          << test_case.name << " param " << p.name << " coordinate " << i;
    }
  }
}

std::unique_ptr<Layer> MakeResidual(Rng* rng) {
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Conv2dLayer>("c1", 2, 2, 3, 1, 1, rng));
  // Tanh rather than ReLU: finite differences need a smooth activation
  // (ReLU kinks near zero would dominate the error budget).
  inner.push_back(
      std::make_unique<ActivationLayer>("t", ActivationKind::kTanh));
  inner.push_back(std::make_unique<Conv2dLayer>("c2", 2, 2, 3, 1, 1, rng));
  return std::make_unique<ResidualBlock>("res", std::move(inner));
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradientCheck,
    ::testing::Values(
        GradCheckCase{"dense",
                      [](Rng* rng) {
                        return std::make_unique<DenseLayer>("fc", 5, 4, rng);
                      },
                      Shape({3, 5})},
        GradCheckCase{"tanh",
                      [](Rng*) {
                        return std::make_unique<ActivationLayer>(
                            "t", ActivationKind::kTanh);
                      },
                      Shape({4, 6})},
        GradCheckCase{"sigmoid",
                      [](Rng*) {
                        return std::make_unique<ActivationLayer>(
                            "s", ActivationKind::kSigmoid);
                      },
                      Shape({4, 6})},
        GradCheckCase{"conv_3x3_pad",
                      [](Rng* rng) {
                        return std::make_unique<Conv2dLayer>("c", 2, 3, 3, 1,
                                                             1, rng);
                      },
                      Shape({2, 2, 5, 5})},
        GradCheckCase{"conv_stride2_nopad",
                      [](Rng* rng) {
                        return std::make_unique<Conv2dLayer>("c", 1, 2, 2, 2,
                                                             0, rng);
                      },
                      Shape({2, 1, 6, 6})},
        GradCheckCase{"global_avg_pool",
                      [](Rng*) {
                        return std::make_unique<GlobalAvgPoolLayer>("gap");
                      },
                      Shape({2, 3, 4, 4})},
        GradCheckCase{"flatten",
                      [](Rng*) {
                        return std::make_unique<FlattenLayer>("f");
                      },
                      Shape({2, 3, 2, 2})},
        GradCheckCase{"batchnorm_2d",
                      [](Rng*) {
                        return std::make_unique<BatchNormLayer>("bn", 4);
                      },
                      Shape({6, 4}), /*tolerance=*/4e-2},
        GradCheckCase{"batchnorm_4d",
                      [](Rng*) {
                        return std::make_unique<BatchNormLayer>("bn", 2);
                      },
                      Shape({3, 2, 3, 3}), /*tolerance=*/4e-2},
        GradCheckCase{"lstm",
                      [](Rng* rng) {
                        return std::make_unique<LstmLayer>("l", 3, 4, rng);
                      },
                      Shape({2, 4, 3}), /*tolerance=*/3e-2},
        GradCheckCase{"lstm_sequences",
                      [](Rng* rng) {
                        return std::make_unique<LstmLayer>(
                            "l", 3, 4, rng, /*return_sequences=*/true);
                      },
                      Shape({2, 4, 3}), /*tolerance=*/3e-2},
        GradCheckCase{"residual_conv", MakeResidual, Shape({2, 2, 4, 4})}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return info.param.name;
    });

// Max pooling is piecewise-linear; finite differences are only valid when
// the perturbation does not flip the argmax, so it is checked separately
// with well-separated inputs.
TEST(MaxPoolGradientCheck, BackwardMatchesFiniteDifferences) {
  MaxPool2dLayer pool("pool", 2, 2);
  Tensor input(Shape({1, 1, 4, 4}));
  // Strictly increasing values: argmax positions are stable under +-eps.
  for (int64_t i = 0; i < input.size(); ++i) {
    input.at(i) = static_cast<float>(i);
  }
  Tensor out = pool.Forward(input, true);
  Rng rng(5);
  Tensor probe(out.shape());
  probe.FillGaussian(&rng, 1.0f);
  Tensor input_grad = pool.Backward(probe);

  const float eps = 0.01f;
  for (int64_t i = 0; i < input.size(); ++i) {
    const float saved = input.at(i);
    input.at(i) = saved + eps;
    const double plus = ProbeLoss(pool.Forward(input, true), probe);
    input.at(i) = saved - eps;
    const double minus = ProbeLoss(pool.Forward(input, true), probe);
    input.at(i) = saved;
    EXPECT_NEAR(input_grad.at(i), (plus - minus) / (2.0 * eps), 1e-3)
        << "coordinate " << i;
  }
}

}  // namespace
}  // namespace lpsgd
