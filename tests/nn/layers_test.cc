// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/pool.h"

namespace lpsgd {
namespace {

TEST(DenseLayerTest, ComputesAffineMap) {
  Rng rng(1);
  DenseLayer layer("fc", 2, 3, &rng);
  std::vector<ParamRef> params;
  layer.CollectParams(&params);
  ASSERT_EQ(params.size(), 2u);
  // Set W = [[1,0],[0,1],[1,1]] and b = [0.5, -0.5, 0].
  Tensor& w = *params[0].value;
  w.at(0, 0) = 1;
  w.at(0, 1) = 0;
  w.at(1, 0) = 0;
  w.at(1, 1) = 1;
  w.at(2, 0) = 1;
  w.at(2, 1) = 1;
  Tensor& b = *params[1].value;
  b.at(0) = 0.5f;
  b.at(1) = -0.5f;

  Tensor input(Shape({1, 2}));
  input.at(0) = 2.0f;
  input.at(1) = 3.0f;
  Tensor out = layer.Forward(input, true);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 5.0f);
}

TEST(DenseLayerTest, ParamMetadata) {
  Rng rng(1);
  DenseLayer layer("fc6", 9216, 4096, &rng);
  std::vector<ParamRef> params;
  layer.CollectParams(&params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "fc6/W");
  EXPECT_EQ(params[0].kind, ParamKind::kFullyConnected);
  // Dense quantization columns have out_features elements (large).
  EXPECT_EQ(params[0].quant_shape.rows(), 4096);
  EXPECT_EQ(params[1].kind, ParamKind::kBias);
}

TEST(ActivationLayerTest, ReluClampsNegatives) {
  ActivationLayer relu("relu", ActivationKind::kRelu);
  Tensor input(Shape({1, 4}));
  input.at(0) = -1.0f;
  input.at(1) = 0.0f;
  input.at(2) = 2.0f;
  input.at(3) = -0.5f;
  Tensor out = relu.Forward(input, true);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2), 2.0f);

  Tensor grad(Shape({1, 4}), 1.0f);
  Tensor in_grad = relu.Backward(grad);
  EXPECT_FLOAT_EQ(in_grad.at(0), 0.0f);  // blocked where output <= 0
  EXPECT_FLOAT_EQ(in_grad.at(2), 1.0f);
}

TEST(ActivationLayerTest, SigmoidAndTanhRanges) {
  ActivationLayer sigmoid("s", ActivationKind::kSigmoid);
  ActivationLayer tanh_layer("t", ActivationKind::kTanh);
  Tensor input(Shape({1, 2}));
  input.at(0) = 100.0f;
  input.at(1) = -100.0f;
  Tensor s = sigmoid.Forward(input, true);
  EXPECT_NEAR(s.at(0), 1.0f, 1e-5);
  EXPECT_NEAR(s.at(1), 0.0f, 1e-5);
  Tensor t = tanh_layer.Forward(input, true);
  EXPECT_NEAR(t.at(0), 1.0f, 1e-5);
  EXPECT_NEAR(t.at(1), -1.0f, 1e-5);
}

TEST(Conv2dLayerTest, IdentityKernelCopiesInput) {
  Rng rng(3);
  Conv2dLayer conv("conv", 1, 1, 1, 1, 0, &rng);
  std::vector<ParamRef> params;
  conv.CollectParams(&params);
  params[0].value->Fill(1.0f);  // 1x1 kernel = identity
  params[1].value->SetZero();

  Tensor input(Shape({1, 1, 2, 2}));
  for (int i = 0; i < 4; ++i) input.at(i) = static_cast<float>(i + 1);
  Tensor out = conv.Forward(input, true);
  EXPECT_EQ(out.shape(), input.shape());
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out.at(i), input.at(i));
}

TEST(Conv2dLayerTest, KnownThreeByThreeSum) {
  Rng rng(3);
  Conv2dLayer conv("conv", 1, 1, 3, 1, 1, &rng);
  std::vector<ParamRef> params;
  conv.CollectParams(&params);
  params[0].value->Fill(1.0f);  // box filter
  params[1].value->SetZero();

  Tensor input(Shape({1, 1, 3, 3}), 1.0f);
  Tensor out = conv.Forward(input, true);
  // Center pixel sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(out.at(1 * 3 + 1), 9.0f);  // center pixel
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);          // corner pixel
}

TEST(Conv2dLayerTest, QuantShapeExposesKernelWidthAsRows) {
  Rng rng(3);
  Conv2dLayer conv("conv", 64, 128, 3, 1, 1, &rng);
  std::vector<ParamRef> params;
  conv.CollectParams(&params);
  // The CNTK layout that makes stock 1bitSGD pathological: rows = 3.
  EXPECT_EQ(params[0].quant_shape.rows(), 3);
  EXPECT_EQ(params[0].quant_shape.element_count(), 3 * 3 * 64 * 128);
  EXPECT_EQ(params[0].kind, ParamKind::kConvolutional);
}

TEST(MaxPool2dLayerTest, PicksWindowMaximaAndRoutesGradients) {
  MaxPool2dLayer pool("pool", 2, 2);
  Tensor input(Shape({1, 1, 2, 4}));
  const float values[] = {1, 5, 2, 3, 4, 0, 9, 8};
  std::copy(values, values + 8, input.data());
  Tensor out = pool.Forward(input, true);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1), 9.0f);

  Tensor grad(out.shape());
  grad.at(0) = 10.0f;
  grad.at(1) = 20.0f;
  Tensor in_grad = pool.Backward(grad);
  EXPECT_FLOAT_EQ(in_grad.at(1), 10.0f);  // position of the 5
  EXPECT_FLOAT_EQ(in_grad.at(6), 20.0f);  // position of the 9
  EXPECT_FLOAT_EQ(in_grad.at(0), 0.0f);
}

TEST(GlobalAvgPoolLayerTest, AveragesPlanes) {
  GlobalAvgPoolLayer gap("gap");
  Tensor input(Shape({1, 2, 2, 2}));
  for (int i = 0; i < 4; ++i) input.at(i) = 2.0f;        // channel 0
  for (int i = 4; i < 8; ++i) input.at(i) = float(i);    // channel 1: 4..7
  Tensor out = gap.Forward(input, true);
  EXPECT_EQ(out.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 5.5f);
}

TEST(FlattenLayerTest, RoundTripsShape) {
  FlattenLayer flatten("flat");
  Tensor input(Shape({2, 3, 4, 5}));
  Tensor out = flatten.Forward(input, true);
  EXPECT_EQ(out.shape(), Shape({2, 60}));
  Tensor grad(out.shape());
  Tensor in_grad = flatten.Backward(grad);
  EXPECT_EQ(in_grad.shape(), input.shape());
}

TEST(BatchNormLayerTest, NormalizesPerChannelInTraining) {
  BatchNormLayer bn("bn", 2);
  Rng rng(5);
  Tensor input(Shape({8, 2}));
  for (int64_t r = 0; r < 8; ++r) {
    input.at(r, 0) = static_cast<float>(rng.NextGaussian() * 3.0 + 10.0);
    input.at(r, 1) = static_cast<float>(rng.NextGaussian() * 0.5 - 4.0);
  }
  Tensor out = bn.Forward(input, /*training=*/true);
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int64_t r = 0; r < 8; ++r) mean += out.at(r, c);
    mean /= 8;
    for (int64_t r = 0; r < 8; ++r) {
      var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormLayerTest, EvalUsesRunningStatistics) {
  BatchNormLayer bn("bn", 1);
  Tensor input(Shape({4, 1}));
  input.at(0) = 1;
  input.at(1) = 2;
  input.at(2) = 3;
  input.at(3) = 4;
  // Several training passes to move the running stats toward the batch
  // statistics (momentum 0.9).
  for (int i = 0; i < 50; ++i) bn.Forward(input, true);
  Tensor eval_out = bn.Forward(input, /*training=*/false);
  // Eval normalization with running stats should roughly center the data.
  double mean = 0.0;
  for (int i = 0; i < 4; ++i) mean += eval_out.at(i);
  EXPECT_NEAR(mean / 4.0, 0.0, 0.05);
}

TEST(LstmLayerTest, OutputShapeAndDeterminism) {
  Rng rng(9);
  LstmLayer lstm("lstm", 4, 6, &rng);
  Tensor input(Shape({3, 5, 4}));
  Rng data_rng(10);
  input.FillGaussian(&data_rng, 1.0f);
  Tensor out1 = lstm.Forward(input, true);
  Tensor out2 = lstm.Forward(input, true);
  EXPECT_EQ(out1.shape(), Shape({3, 6}));
  for (int64_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1.at(i), out2.at(i));
  }
}

TEST(LstmLayerTest, HiddenStateBounded) {
  // h = o * tanh(c) with o in (0,1): |h| < 1 always.
  Rng rng(11);
  LstmLayer lstm("lstm", 3, 5, &rng);
  Tensor input(Shape({2, 20, 3}));
  Rng data_rng(12);
  input.FillGaussian(&data_rng, 5.0f);
  Tensor out = lstm.Forward(input, true);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(std::abs(out.at(i)), 1.0f);
  }
}

TEST(LstmLayerTest, SequenceOrderMatters) {
  Rng rng(13);
  LstmLayer lstm("lstm", 2, 4, &rng);
  Tensor input(Shape({1, 3, 2}));
  for (int i = 0; i < 6; ++i) input.at(i) = static_cast<float>(i);
  Tensor forward_out = lstm.Forward(input, true);

  Tensor reversed(Shape({1, 3, 2}));
  for (int t = 0; t < 3; ++t) {
    for (int d = 0; d < 2; ++d) {
      reversed.at(t * 2 + d) = input.at((2 - t) * 2 + d);
    }
  }
  Tensor reversed_out = lstm.Forward(reversed, true);
  bool any_diff = false;
  for (int64_t i = 0; i < forward_out.size(); ++i) {
    if (std::abs(forward_out.at(i) - reversed_out.at(i)) > 1e-6) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace lpsgd
