// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include <sstream>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/network.h"

namespace lpsgd {
namespace {

TEST(CheckpointTest, RoundTripRestoresExactWeights) {
  Network original = BuildMiniAlexNet(1, 8, 10, 42);
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveParams(buffer).ok());

  Network restored = BuildMiniAlexNet(1, 8, 10, 99);  // different init
  ASSERT_TRUE(restored.LoadParams(buffer).ok());

  auto a = original.Params();
  auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].value->size(); ++j) {
      ASSERT_EQ(a[i].value->at(j), b[i].value->at(j))
          << a[i].name << "[" << j << "]";
    }
  }
}

TEST(CheckpointTest, RestoredNetworkProducesIdenticalOutputs) {
  Network original = BuildMiniResNet(1, 8, 2, 8, 10, 7);
  // Run a forward in training mode so batch-norm running stats change;
  // note the checkpoint covers trainable parameters (running stats are
  // re-estimated, as in CNTK's 1-bit checkpointing).
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveParams(buffer).ok());
  Network restored = BuildMiniResNet(1, 8, 2, 8, 10, 1234);
  ASSERT_TRUE(restored.LoadParams(buffer).ok());

  Rng rng(5);
  Tensor input(Shape({3, 1, 8, 8}));
  input.FillGaussian(&rng, 1.0f);
  Tensor out_a = original.Forward(input, /*training=*/true);
  Tensor out_b = restored.Forward(input, /*training=*/true);
  for (int64_t i = 0; i < out_a.size(); ++i) {
    ASSERT_EQ(out_a.at(i), out_b.at(i));
  }
}

TEST(CheckpointTest, RejectsWrongArchitecture) {
  Network original = BuildMlp({16, 8, 4}, 1);
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveParams(buffer).ok());

  Network different = BuildMlp({16, 12, 4}, 1);  // different hidden size
  auto status = different.LoadParams(buffer);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsWrongParameterCount) {
  Network original = BuildMlp({16, 8, 4}, 1);
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveParams(buffer).ok());

  Network deeper = BuildMlp({16, 8, 8, 4}, 1);
  EXPECT_FALSE(deeper.LoadParams(buffer).ok());
}

TEST(CheckpointTest, RejectsGarbageStream) {
  std::stringstream buffer("this is not a checkpoint at all");
  Network net = BuildMlp({4, 2}, 1);
  auto status = net.LoadParams(buffer);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not an LPSGD checkpoint"),
            std::string::npos);
}

TEST(CheckpointTest, TruncatedStreamLeavesNetworkUntouched) {
  Network original = BuildMlp({16, 8, 4}, 1);
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveParams(buffer).ok());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);

  Network victim = BuildMlp({16, 8, 4}, 77);
  // Snapshot current weights.
  std::vector<float> before;
  for (const ParamRef& p : victim.Params()) {
    before.insert(before.end(), p.value->data(),
                  p.value->data() + p.value->size());
  }
  EXPECT_FALSE(victim.LoadParams(truncated).ok());
  size_t k = 0;
  for (const ParamRef& p : victim.Params()) {
    for (int64_t j = 0; j < p.value->size(); ++j, ++k) {
      ASSERT_EQ(p.value->at(j), before[k]);
    }
  }
}

}  // namespace
}  // namespace lpsgd
