// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/network.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/pool.h"

namespace lpsgd {
namespace {

Network TwoLayerNet(uint64_t seed) {
  return BuildMlp({4, 8, 3}, seed);
}

TEST(NetworkTest, ForwardProducesLogits) {
  Network net = TwoLayerNet(1);
  Tensor input(Shape({5, 4}));
  Rng rng(2);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({5, 3}));
}

TEST(NetworkTest, ParamsAreStableReferences) {
  Network net = TwoLayerNet(1);
  auto params1 = net.Params();
  auto params2 = net.Params();
  ASSERT_EQ(params1.size(), params2.size());
  for (size_t i = 0; i < params1.size(); ++i) {
    EXPECT_EQ(params1[i].value, params2[i].value);
    EXPECT_EQ(params1[i].grad, params2[i].grad);
  }
}

TEST(NetworkTest, ParameterCount) {
  Network net = TwoLayerNet(1);
  // fc0: 4*8 + 8; fc1: 8*3 + 3.
  EXPECT_EQ(net.ParameterCount(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(NetworkTest, ZeroGradsClearsAccumulation) {
  Network net = TwoLayerNet(1);
  Tensor input(Shape({2, 4}), 1.0f);
  Tensor logits = net.Forward(input, true);
  LossResult loss = SoftmaxCrossEntropy(logits, {0, 1});
  net.Backward(loss.logits_grad);
  double grad_norm = 0.0;
  for (const ParamRef& p : net.Params()) grad_norm += p.grad->SumSquares();
  EXPECT_GT(grad_norm, 0.0);
  net.ZeroGrads();
  for (const ParamRef& p : net.Params()) {
    EXPECT_EQ(p.grad->SumSquares(), 0.0);
  }
}

TEST(NetworkTest, CopyParamsFromMakesReplicasIdentical) {
  Network a = TwoLayerNet(1);
  Network b = TwoLayerNet(99);  // different init
  b.CopyParamsFrom(a);
  Tensor input(Shape({3, 4}));
  Rng rng(5);
  input.FillGaussian(&rng, 1.0f);
  Tensor out_a = a.Forward(input, false);
  Tensor out_b = b.Forward(input, false);
  for (int64_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a.at(i), out_b.at(i));
  }
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionHasLowLoss) {
  Tensor logits(Shape({1, 3}));
  logits.at(0) = 100.0f;  // class 0 dominant
  LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(result.loss_sum, 1e-3);
  EXPECT_EQ(result.correct, 1);
}

TEST(SoftmaxCrossEntropyTest, UniformPredictionLossIsLogC) {
  Tensor logits(Shape({2, 4}));
  LossResult result = SoftmaxCrossEntropy(logits, {1, 2});
  EXPECT_NEAR(result.loss_sum / 2.0, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOneHotOverBatch) {
  Tensor logits(Shape({2, 2}));
  logits.at(0, 0) = 1.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {0, 1});
  // Row sums of the gradient are zero (softmax property).
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(result.logits_grad.at(r, 0) + result.logits_grad.at(r, 1),
                0.0f, 1e-6);
  }
  // True-class entries are negative, others positive.
  EXPECT_LT(result.logits_grad.at(0, 0), 0.0f);
  EXPECT_GT(result.logits_grad.at(0, 1), 0.0f);
  EXPECT_LT(result.logits_grad.at(1, 1), 0.0f);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifferences) {
  Rng rng(7);
  Tensor logits(Shape({3, 4}));
  logits.FillGaussian(&rng, 1.0f);
  const std::vector<int> labels = {0, 3, 2};
  LossResult result = SoftmaxCrossEntropy(logits, labels);

  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double plus =
        SoftmaxCrossEntropy(logits, labels).loss_sum / labels.size();
    logits.at(i) = saved - eps;
    const double minus =
        SoftmaxCrossEntropy(logits, labels).loss_sum / labels.size();
    logits.at(i) = saved;
    EXPECT_NEAR(result.logits_grad.at(i), (plus - minus) / (2 * eps), 1e-3);
  }
}

TEST(EvaluateSoftmaxCrossEntropyTest, MatchesTrainingLoss) {
  Rng rng(8);
  Tensor logits(Shape({5, 3}));
  logits.FillGaussian(&rng, 2.0f);
  const std::vector<int> labels = {0, 1, 2, 1, 0};
  LossResult train = SoftmaxCrossEntropy(logits, labels);
  EvalResult eval = EvaluateSoftmaxCrossEntropy(logits, labels);
  EXPECT_DOUBLE_EQ(train.loss_sum, eval.loss_sum);
  EXPECT_EQ(train.correct, eval.correct);
}

TEST(LabelInTopKTest, CountsStrictlyLargerLogits) {
  Tensor logits(Shape({1, 6}));
  const float values[] = {0.9f, 0.1f, 0.8f, 0.7f, 0.6f, 0.5f};
  std::copy(values, values + 6, logits.data());
  // Ranking: 0 > 2 > 3 > 4 > 5 > 1.
  EXPECT_TRUE(LabelInTopK(logits, 0, 0, 1));
  EXPECT_FALSE(LabelInTopK(logits, 0, 2, 1));
  EXPECT_TRUE(LabelInTopK(logits, 0, 2, 2));
  EXPECT_TRUE(LabelInTopK(logits, 0, 5, 5));
  EXPECT_FALSE(LabelInTopK(logits, 0, 1, 5));
  EXPECT_TRUE(LabelInTopK(logits, 0, 1, 6));  // k >= classes
}

TEST(LabelInTopKTest, TiesFavorTheLabel) {
  Tensor logits(Shape({1, 3}));
  logits.Fill(1.0f);
  for (int label = 0; label < 3; ++label) {
    EXPECT_TRUE(LabelInTopK(logits, 0, label, 1));
  }
}

TEST(EvalResultTest, TopFiveAtLeastTopOne) {
  Rng rng(21);
  Tensor logits(Shape({50, 10}));
  logits.FillGaussian(&rng, 1.0f);
  std::vector<int> labels(50);
  for (int i = 0; i < 50; ++i) labels[static_cast<size_t>(i)] = i % 10;
  const EvalResult result = EvaluateSoftmaxCrossEntropy(logits, labels);
  EXPECT_GE(result.correct_top5, result.correct);
  EXPECT_LE(result.correct_top5, 50);
  // Random 10-class logits: top-5 should catch roughly half.
  EXPECT_GT(result.correct_top5, 10);
}

TEST(SgdMomentumOptimizerTest, PlainSgdStep) {
  Network net = BuildMlp({2, 1}, 3);
  auto params = net.Params();
  params[0].value->Fill(1.0f);
  params[0].grad->Fill(0.5f);
  params[1].value->Fill(0.0f);
  params[1].grad->Fill(0.0f);

  SgdMomentumOptimizer optimizer(/*learning_rate=*/0.1f, /*momentum=*/0.0f);
  optimizer.Step(params);
  EXPECT_NEAR(params[0].value->at(0), 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(SgdMomentumOptimizerTest, MomentumAccumulatesVelocity) {
  Network net = BuildMlp({1, 1}, 3);
  auto params = net.Params();
  params[0].value->Fill(0.0f);
  SgdMomentumOptimizer optimizer(1.0f, 0.9f);

  // Constant gradient 1: velocity 1, 1.9, 2.71, ...
  params[0].grad->Fill(1.0f);
  optimizer.Step(params);
  EXPECT_NEAR(params[0].value->at(0), -1.0f, 1e-6);
  params[0].grad->Fill(1.0f);
  optimizer.Step(params);
  EXPECT_NEAR(params[0].value->at(0), -1.0f - 1.9f, 1e-5);
}

TEST(ResidualBlockTest, IdentityInnerDoublesInput) {
  // inner = Flatten (identity on {b, n}): output = x + x.
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<FlattenLayer>("id"));
  ResidualBlock block("res", std::move(inner));
  Tensor input(Shape({2, 3}));
  for (int64_t i = 0; i < 6; ++i) input.at(i) = static_cast<float>(i);
  Tensor out = block.Forward(input, true);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(out.at(i), 2.0f * input.at(i));
  }
  Tensor grad(out.shape(), 1.0f);
  Tensor in_grad = block.Backward(grad);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(in_grad.at(i), 2.0f);
}

}  // namespace
}  // namespace lpsgd
