// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/model_zoo.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/loss.h"

namespace lpsgd {
namespace {

TEST(PaperNetworksTest, ContainsAllSevenNetworks) {
  const auto& nets = PaperNetworks();
  ASSERT_EQ(nets.size(), 7u);
  for (const char* name : {"AlexNet", "VGG19", "BN-Inception", "ResNet50",
                           "ResNet152", "ResNet110", "LSTM"}) {
    EXPECT_TRUE(FindNetworkStats(name).ok()) << name;
  }
  EXPECT_FALSE(FindNetworkStats("GPT-4").ok());
}

// Parameter counts should land near Figure 3's reported sizes.
struct ParamCountCase {
  const char* name;
  int64_t figure3_params;
  double tolerance;  // relative
};

class ParamCountTest : public ::testing::TestWithParam<ParamCountCase> {};

TEST_P(ParamCountTest, MatchesFigure3) {
  const ParamCountCase& c = GetParam();
  auto stats = FindNetworkStats(c.name);
  ASSERT_TRUE(stats.ok());
  const double actual = static_cast<double>(stats->TotalParams());
  const double expected = static_cast<double>(c.figure3_params);
  EXPECT_NEAR(actual / expected, 1.0, c.tolerance)
      << c.name << " has " << stats->TotalParams() << " params";
}

INSTANTIATE_TEST_SUITE_P(
    Figure3, ParamCountTest,
    ::testing::Values(ParamCountCase{"AlexNet", 62000000, 0.05},
                      ParamCountCase{"VGG19", 143000000, 0.05},
                      ParamCountCase{"BN-Inception", 11000000, 0.10},
                      ParamCountCase{"ResNet50", 25000000, 0.10},
                      ParamCountCase{"ResNet152", 60000000, 0.10},
                      // Figure 3 rounds ResNet110 down to 1M; the real
                      // architecture has ~1.7M.
                      ParamCountCase{"ResNet110", 1700000, 0.10},
                      ParamCountCase{"LSTM", 13000000, 0.10}));

TEST(PaperNetworksTest, BatchSizesMatchFigure4) {
  auto alexnet = FindNetworkStats("AlexNet");
  ASSERT_TRUE(alexnet.ok());
  for (int gpus : {1, 2, 4, 8, 16}) {
    EXPECT_EQ(alexnet->BatchForGpus(gpus), 256);
  }
  auto vgg = FindNetworkStats("VGG19");
  ASSERT_TRUE(vgg.ok());
  EXPECT_EQ(vgg->BatchForGpus(1), 32);
  EXPECT_EQ(vgg->BatchForGpus(8), 128);
  auto resnet152 = FindNetworkStats("ResNet152");
  ASSERT_TRUE(resnet152.ok());
  EXPECT_EQ(resnet152->BatchForGpus(16), 256);
  auto lstm = FindNetworkStats("LSTM");
  ASSERT_TRUE(lstm.ok());
  EXPECT_EQ(lstm->BatchForGpus(2), 16);
  EXPECT_EQ(lstm->batch_for_gpus.count(8), 0u);  // "NA" in Figure 4
}

TEST(PaperNetworksTest, RecipesMatchFigure3) {
  auto inception = FindNetworkStats("BN-Inception");
  ASSERT_TRUE(inception.ok());
  EXPECT_EQ(inception->recipe_epochs, 300);
  EXPECT_DOUBLE_EQ(inception->initial_learning_rate, 3.6);
  auto alexnet = FindNetworkStats("AlexNet");
  ASSERT_TRUE(alexnet.ok());
  EXPECT_EQ(alexnet->recipe_epochs, 112);
  EXPECT_DOUBLE_EQ(alexnet->initial_learning_rate, 0.07);
}

TEST(PaperNetworksTest, ConvNetworksHaveSmallRowConvMatrices) {
  // The CNTK column artefact requires convolution rows of 1-7.
  for (const char* name : {"ResNet50", "ResNet152", "BN-Inception"}) {
    auto stats = FindNetworkStats(name);
    ASSERT_TRUE(stats.ok());
    bool has_rows_le_3 = false;
    for (const MatrixStat& m : stats->matrices) {
      if (m.kind == ParamKind::kConvolutional) {
        EXPECT_LE(m.rows, 11) << name;
        if (m.rows <= 3) has_rows_le_3 = true;
      }
    }
    EXPECT_TRUE(has_rows_le_3) << name;
  }
}

TEST(PaperNetworksTest, VggHasSuperlinearBatchEfficiency) {
  auto vgg = FindNetworkStats("VGG19");
  ASSERT_TRUE(vgg.ok());
  EXPECT_GT(vgg->EfficiencyAt(16), 1.3);
  EXPECT_DOUBLE_EQ(vgg->EfficiencyAt(32), 1.0);
}

TEST(PaperNetworksTest, PerformanceFigureNetworksAreImageNetNets) {
  const auto names = PerformanceFigureNetworks();
  EXPECT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    auto stats = FindNetworkStats(name);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->dataset, "ImageNet") << name;
  }
}

// --- Trainable builders -------------------------------------------------

TEST(BuildersTest, MlpForwardBackwardShapes) {
  Network net = BuildMlp({16, 32, 5}, 1);
  Tensor input(Shape({4, 16}));
  Rng rng(2);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({4, 5}));
  LossResult loss = SoftmaxCrossEntropy(logits, {0, 1, 2, 3});
  net.Backward(loss.logits_grad);
}

TEST(BuildersTest, MiniAlexNetHasConvAndDenseParams) {
  Network net = BuildMiniAlexNet(1, 8, 10, 7);
  Tensor input(Shape({2, 1, 8, 8}));
  Rng rng(3);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));

  bool has_conv = false, has_dense = false;
  for (const ParamRef& p : net.Params()) {
    has_conv |= p.kind == ParamKind::kConvolutional;
    has_dense |= p.kind == ParamKind::kFullyConnected;
  }
  EXPECT_TRUE(has_conv);
  EXPECT_TRUE(has_dense);
}

TEST(BuildersTest, MiniResNetRunsForwardBackward) {
  Network net = BuildMiniResNet(1, 8, /*num_blocks=*/2, /*width=*/8, 10, 5);
  Tensor input(Shape({2, 1, 8, 8}));
  Rng rng(4);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
  LossResult loss = SoftmaxCrossEntropy(logits, {3, 7});
  net.Backward(loss.logits_grad);
  double grad_norm = 0.0;
  for (const ParamRef& p : net.Params()) grad_norm += p.grad->SumSquares();
  EXPECT_GT(grad_norm, 0.0);
}

TEST(BuildersTest, LstmClassifierRunsForwardBackward) {
  Network net = BuildLstmClassifier(6, 12, 4, 9);
  Tensor input(Shape({3, 5, 6}));
  Rng rng(5);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({3, 4}));
  LossResult loss = SoftmaxCrossEntropy(logits, {0, 1, 2});
  net.Backward(loss.logits_grad);
}

TEST(BuildersTest, DeepLstmClassifierStacksRecurrentLayers) {
  Network net = BuildDeepLstmClassifier(6, 10, /*num_lstm_layers=*/3, 4, 9);
  Tensor input(Shape({2, 5, 6}));
  Rng rng(6);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, true);
  EXPECT_EQ(logits.shape(), Shape({2, 4}));
  LossResult loss = SoftmaxCrossEntropy(logits, {0, 3});
  net.Backward(loss.logits_grad);

  // Three LSTM layers x 3 params + dense x 2.
  EXPECT_EQ(net.Params().size(), 3u * 3u + 2u);
  double grad_norm = 0.0;
  for (const ParamRef& p : net.Params()) grad_norm += p.grad->SumSquares();
  EXPECT_GT(grad_norm, 0.0);
}

TEST(BuildersTest, SameSeedSameInitialization) {
  Network a = BuildMiniAlexNet(1, 8, 10, 42);
  Network b = BuildMiniAlexNet(1, 8, 10, 42);
  auto pa = a.Params();
  auto pb = b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].value->size(); ++j) {
      ASSERT_EQ(pa[i].value->at(j), pb[i].value->at(j));
    }
  }
}

}  // namespace
}  // namespace lpsgd
