// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "nn/dropout.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"

namespace lpsgd {
namespace {

TEST(DropoutTest, EvaluationIsIdentity) {
  DropoutLayer dropout("drop", 0.5f, 1);
  Tensor input(Shape({4, 8}), 3.0f);
  Tensor out = dropout.Forward(input, /*training=*/false);
  for (int64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out.at(i), 3.0f);
  Tensor grad(out.shape(), 1.0f);
  Tensor in_grad = dropout.Backward(grad);
  for (int64_t i = 0; i < in_grad.size(); ++i) EXPECT_EQ(in_grad.at(i), 1.0f);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  DropoutLayer dropout("drop", 0.0f, 1);
  Tensor input(Shape({16}), 2.0f);
  Tensor out = dropout.Forward(input, true);
  for (int64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out.at(i), 2.0f);
}

TEST(DropoutTest, DropsApproximatelyRateFraction) {
  DropoutLayer dropout("drop", 0.3f, 2);
  Tensor input(Shape({20000}), 1.0f);
  Tensor out = dropout.Forward(input, true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.at(i), 1.0f / 0.7f, 1e-5);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.3, 0.02);
}

TEST(DropoutTest, ExpectationPreserved) {
  DropoutLayer dropout("drop", 0.4f, 3);
  Tensor input(Shape({50000}), 1.0f);
  Tensor out = dropout.Forward(input, true);
  double sum = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) sum += out.at(i);
  EXPECT_NEAR(sum / out.size(), 1.0, 0.02);
}

TEST(DropoutTest, BackwardRoutesOnlyThroughKeptUnits) {
  DropoutLayer dropout("drop", 0.5f, 4);
  Tensor input(Shape({256}), 1.0f);
  Tensor out = dropout.Forward(input, true);
  Tensor grad(out.shape(), 1.0f);
  Tensor in_grad = dropout.Backward(grad);
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.at(i) == 0.0f) {
      EXPECT_EQ(in_grad.at(i), 0.0f) << i;
    } else {
      EXPECT_NEAR(in_grad.at(i), 2.0f, 1e-5) << i;  // 1/(1-0.5)
    }
  }
}

TEST(DropoutTest, ReplicasWithSameSeedDrawSameMasks) {
  DropoutLayer a("drop", 0.5f, 7);
  DropoutLayer b("drop", 0.5f, 7);
  Tensor input(Shape({128}), 1.0f);
  // Advance both through the same number of forward calls.
  for (int step = 0; step < 3; ++step) {
    Tensor out_a = a.Forward(input, true);
    Tensor out_b = b.Forward(input, true);
    for (int64_t i = 0; i < out_a.size(); ++i) {
      ASSERT_EQ(out_a.at(i), out_b.at(i)) << "step " << step << " i " << i;
    }
  }
}

TEST(DropoutTest, MasksChangeBetweenForwardCalls) {
  DropoutLayer dropout("drop", 0.5f, 8);
  Tensor input(Shape({256}), 1.0f);
  Tensor first = dropout.Forward(input, true);
  Tensor second = dropout.Forward(input, true);
  int differences = 0;
  for (int64_t i = 0; i < first.size(); ++i) {
    if (first.at(i) != second.at(i)) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST(MiniResNetTwoStageTest, ForwardBackwardAndProjectionShapes) {
  Network net = BuildMiniResNetTwoStage(1, 8, /*width=*/4, 10, 11);
  Tensor input(Shape({2, 1, 8, 8}));
  Rng rng(12);
  input.FillGaussian(&rng, 1.0f);
  Tensor logits = net.Forward(input, /*training=*/true);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
  LossResult loss = SoftmaxCrossEntropy(logits, {1, 2});
  net.Backward(loss.logits_grad);

  // The projection shortcut contributes a 1x1 convolution: quantization
  // rows of 1 — the stock-1bitSGD worst case — must be present.
  bool has_rows_one_conv = false;
  double grad_norm = 0.0;
  for (const ParamRef& p : net.Params()) {
    grad_norm += p.grad->SumSquares();
    if (p.kind == ParamKind::kConvolutional && p.quant_shape.rows() == 1) {
      has_rows_one_conv = true;
    }
  }
  EXPECT_TRUE(has_rows_one_conv);
  EXPECT_GT(grad_norm, 0.0);
}

TEST(MiniResNetTwoStageTest, TrainsOnEasyTask) {
  // Smoke convergence: a couple of epochs must move the loss down.
  Network net = BuildMiniResNetTwoStage(1, 8, 4, 4, 13);
  // (Training through SyncTrainer is covered elsewhere; this just checks
  // the network is optimizable standalone.)
  Rng rng(14);
  Tensor input(Shape({8, 1, 8, 8}));
  input.FillGaussian(&rng, 1.0f);
  const std::vector<int> labels = {0, 1, 2, 3, 0, 1, 2, 3};
  SgdMomentumOptimizer optimizer(0.05f, 0.9f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    net.ZeroGrads();
    Tensor logits = net.Forward(input, true);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    if (step == 0) first_loss = loss.loss_sum;
    last_loss = loss.loss_sum;
    net.Backward(loss.logits_grad);
    optimizer.Step(net.Params());
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
}

}  // namespace
}  // namespace lpsgd
