// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// The CI performance-regression gate (ISSUE: profiling and attribution):
// a synthetic 20% throughput drop must fail a 10%-tolerance gate, a
// uniform machine-wide slowdown must pass in normalized mode, vanished
// benchmarks always fail, and profile documents gate on absolute
// share-point growth.
#include "obs/bench_gate.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace lpsgd {
namespace tools {
namespace {

obs::JsonValue ParseOrDie(const std::string& json) {
  auto doc = obs::JsonValue::Parse(json);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.ok() ? *std::move(doc) : obs::JsonValue();
}

// google-benchmark shaped document; scores are name -> items_per_second.
obs::JsonValue BenchDoc(double ref, double encode, double decode) {
  std::ostringstream json;
  json << R"({"benchmarks": [)"
       << R"({"name": "BM_Ref/1024", "run_type": "iteration",)"
       << R"( "items_per_second": )" << ref << "},"
       << R"({"name": "BM_Encode/1024", "run_type": "iteration",)"
       << R"( "items_per_second": )" << encode << "},"
       << R"({"name": "BM_Encode/1024_mean", "run_type": "aggregate",)"
       << R"( "items_per_second": 1.0},)"
       << R"({"name": "BM_Decode/1024", "run_type": "iteration",)"
       << R"( "items_per_second": )" << decode << "}]}";
  return ParseOrDie(json.str());
}

obs::JsonValue ProfileDoc(double forward, double encode, double wire) {
  std::ostringstream json;
  json << R"({"kind": "profile", "totals": {"phases": {)"
       << R"("forward": {"wall_share": )" << forward << "},"
       << R"("encode": {"wall_share": )" << encode << "},"
       << R"("wire": {"wall_share": )" << wire << "}}}}";
  return ParseOrDie(json.str());
}

TEST(BenchGateTest, ScoresSkipAggregateRows) {
  auto scores = BenchmarkScores(BenchDoc(100.0, 50.0, 25.0));
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_EQ(scores->size(), 3u);
  EXPECT_DOUBLE_EQ(scores->at("BM_Encode/1024"), 50.0);
  EXPECT_EQ(scores->count("BM_Encode/1024_mean"), 0u);
}

TEST(BenchGateTest, WithinTolerancePasses) {
  BenchGateOptions options;
  options.tolerance = 0.25;
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  BenchDoc(95.0, 47.0, 24.0), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->kind, "benchmark");
  EXPECT_EQ(result->regressions(), 0);
  EXPECT_EQ(result->findings.size(), 3u);
}

// The acceptance scenario: a synthetic 20% drop against a 10% gate.
TEST(BenchGateTest, TwentyPercentRegressionFailsTenPercentGate) {
  BenchGateOptions options;
  options.tolerance = 0.10;
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  BenchDoc(100.0, 40.0, 25.0), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->regressions(), 1);
  for (const BenchGateFinding& finding : result->findings) {
    if (finding.name != "BM_Encode/1024") continue;
    EXPECT_TRUE(finding.regressed);
    EXPECT_NEAR(finding.change, -0.2, 1e-12);
  }
}

// A uniformly half-speed machine changes every absolute score but no
// relative one: normalized mode passes where absolute mode fails.
TEST(BenchGateTest, NormalizedModeSurvivesUniformMachineSlowdown) {
  const obs::JsonValue baseline = BenchDoc(100.0, 50.0, 25.0);
  const obs::JsonValue candidate = BenchDoc(50.0, 25.0, 12.5);

  BenchGateOptions absolute;
  absolute.tolerance = 0.10;
  auto raw = CompareBenchmarks(baseline, candidate, absolute);
  ASSERT_TRUE(raw.ok());
  EXPECT_FALSE(raw->ok()) << "absolute mode should see the 2x slowdown";

  BenchGateOptions normalized = absolute;
  normalized.reference = "BM_Ref/1024";
  auto relative = CompareBenchmarks(baseline, candidate, normalized);
  ASSERT_TRUE(relative.ok()) << relative.status();
  EXPECT_TRUE(relative->normalized);
  EXPECT_TRUE(relative->ok())
      << "normalized mode must ignore machine-wide speed changes";
}

TEST(BenchGateTest, NormalizedModeStillCatchesRelativeRegression) {
  BenchGateOptions options;
  options.tolerance = 0.10;
  options.reference = "BM_Ref/1024";
  // Machine is 2x slower AND encode lost another 2x relative to it.
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  BenchDoc(50.0, 12.5, 12.5), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->regressions(), 1);
  EXPECT_FALSE(result->ok());
}

TEST(BenchGateTest, MissingReferenceIsAnError) {
  BenchGateOptions options;
  options.reference = "BM_DoesNotExist/1";
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  BenchDoc(100.0, 50.0, 25.0), options);
  EXPECT_FALSE(result.ok());
}

TEST(BenchGateTest, VanishedBenchmarkFailsTheGate) {
  const obs::JsonValue baseline = BenchDoc(100.0, 50.0, 25.0);
  const obs::JsonValue candidate = ParseOrDie(
      R"({"benchmarks": [{"name": "BM_Ref/1024", "run_type": "iteration",
          "items_per_second": 100.0}]})");
  auto result = CompareBenchmarks(baseline, candidate, BenchGateOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->regressions(), 0);
  ASSERT_EQ(result->missing.size(), 2u);
}

TEST(BenchGateTest, ProfileSharesGateOnAbsoluteGrowth) {
  BenchGateOptions options;
  options.share_tolerance = 0.10;
  // encode grows from 30% to 45% of the step: 15 share points > 10.
  auto result = CompareBenchmarks(ProfileDoc(0.6, 0.3, 0.1),
                                  ProfileDoc(0.45, 0.45, 0.1), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kind, "profile");
  EXPECT_EQ(result->regressions(), 1);
  for (const BenchGateFinding& finding : result->findings) {
    EXPECT_EQ(finding.regressed, finding.name == "encode");
  }

  // Within tolerance: 5 share points pass.
  auto small = CompareBenchmarks(ProfileDoc(0.6, 0.3, 0.1),
                                 ProfileDoc(0.55, 0.35, 0.1), options);
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->ok());
}

TEST(BenchGateTest, PhaseAbsentFromCandidateIsNotAFailure) {
  // No retry time this run: the phase vanishes from the candidate, which
  // is an improvement, not a coverage hole.
  const obs::JsonValue baseline = ParseOrDie(
      R"({"kind": "profile", "totals": {"phases": {
          "forward": {"wall_share": 0.9}, "retry": {"wall_share": 0.1}}}})");
  auto result = CompareBenchmarks(baseline, ProfileDoc(0.9, 0.05, 0.05),
                                  BenchGateOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(result->missing.empty());
}

TEST(BenchGateTest, MismatchedDocumentKindsAreRejected) {
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  ProfileDoc(0.6, 0.3, 0.1),
                                  BenchGateOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(BenchGateTest, JsonReportRoundTrips) {
  BenchGateOptions options;
  options.tolerance = 0.10;
  auto result = CompareBenchmarks(BenchDoc(100.0, 50.0, 25.0),
                                  BenchDoc(100.0, 40.0, 25.0), options);
  ASSERT_TRUE(result.ok());
  auto parsed = obs::JsonValue::Parse(result->ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("kind").AsString(), "bench_gate");
  EXPECT_EQ(parsed->At("compared_kind").AsString(), "benchmark");
  EXPECT_EQ(parsed->At("regressions").AsInt(), 1);
  EXPECT_FALSE(parsed->At("ok").AsBool());
  EXPECT_EQ(parsed->At("findings").AsArray().size(), 3u);

  std::ostringstream table;
  result->PrintTable(table);
  EXPECT_NE(table.str().find("REGRESSED"), std::string::npos);
}

TEST(BenchGateTest, FileFrontEndComparesOnDisk) {
  const std::string dir = ::testing::TempDir();
  const std::string baseline_path = dir + "/bench_gate_baseline.json";
  const std::string candidate_path = dir + "/bench_gate_candidate.json";
  {
    std::ofstream baseline(baseline_path);
    baseline << BenchDoc(100.0, 50.0, 25.0).Dump(2);
    std::ofstream candidate(candidate_path);
    candidate << BenchDoc(98.0, 49.0, 24.5).Dump(2);
  }
  auto result =
      CompareBenchmarkFiles(baseline_path, candidate_path, BenchGateOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ok());

  EXPECT_FALSE(
      CompareBenchmarkFiles(dir + "/nope.json", candidate_path,
                            BenchGateOptions{})
          .ok());
}

}  // namespace
}  // namespace tools
}  // namespace lpsgd
