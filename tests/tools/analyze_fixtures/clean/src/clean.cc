// Fixture for tools/analyze (never compiled): hot path calling a pure
// helper, consistently ordered locks, and an inspected Status. Every pass
// must come back empty.
struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct Status {
  bool ok() const;
};

Mutex first;
Mutex second;

Status Fallible();

float Accumulate(const float* values, int n) {
  float total = 0.0F;
  for (int i = 0; i < n; ++i) {
    total += values[i];
  }
  return total;
}

LPSGD_HOT_PATH
float HotReduce(const float* values, int n) {
  return Accumulate(values, n);
}

void OrderedOne() {
  MutexLock lf(first);
  MutexLock ls(second);
}

void OrderedTwo() {
  MutexLock lf(first);
  MutexLock ls(second);
}

int Checked() {
  Status s = Fallible();
  return s.ok() ? 1 : 0;
}
