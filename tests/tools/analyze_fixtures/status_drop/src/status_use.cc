// Fixture for tools/analyze (never compiled): Status values that are
// overwritten or scope-exited without inspection (two findings), plus a
// retry loop whose per-iteration assignment IS inspected (no finding).
struct Status {
  bool ok() const;
};

Status Fallible();
Status Another();

void Dropped() {
  Status s = Fallible();
  s = Another();
  if (!s.ok()) {
    return;
  }
}

void ScopeExit() {
  Status s = Fallible();
}

int Retry() {
  Status s;
  for (int i = 0; i < 3; ++i) {
    s = Fallible();
    if (s.ok()) {
      break;
    }
  }
  return s.ok() ? 1 : 0;
}
