// Fixture for tools/analyze (never compiled): a three-lock acquisition
// cycle (a -> b in TakeAB, b -> c in TakeBC, c -> a in TakeCA) plus a
// self-deadlock where Reenter holds `a` across a call to a helper that
// acquires `a` again.
struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};

Mutex a;
Mutex b;
Mutex c;

void TakeAB() {
  MutexLock la(a);
  MutexLock lb(b);
}

void TakeBC() {
  MutexLock lb(b);
  MutexLock lc(c);
}

void TakeCA() {
  MutexLock lc(c);
  MutexLock la(a);
}

void GrabAAgain() {
  MutexLock inner(a);
}

void Reenter() {
  MutexLock outer(a);
  GrabAAgain();
}
