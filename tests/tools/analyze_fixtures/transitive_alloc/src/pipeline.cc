// Fixture for tools/analyze (never compiled): an allocation two call hops
// away from an LPSGD_HOT_PATH region. The purity pass must walk
// HotLoop -> Stage1 -> Stage2 and flag the push_back in Stage2.
#include <vector>

void Stage2(std::vector<int>& out) {
  out.push_back(1);
}

void Stage1(std::vector<int>& out) {
  Stage2(out);
}

LPSGD_HOT_PATH
void HotLoop(std::vector<int>& out) {
  Stage1(out);
}
