// Fixture for tools/analyze (never compiled): LPSGD_HOT_CALLEE_OK both in
// its valid form (ColdLog allocates but is exempted, so no finding) and in
// its stale form (NeverCalled is not reachable from any hot region, so the
// annotation itself must be flagged).
#include <string>
#include <vector>

void ColdLog(std::vector<int>& sink) {
  sink.push_back(1);
}

LPSGD_HOT_CALLEE_OK(ColdLog);  // cold error path only
LPSGD_HOT_CALLEE_OK(NeverCalled);  // stale: nothing hot reaches it

LPSGD_HOT_PATH
void HotStep(std::vector<int>& sink, bool error) {
  if (error) {
    ColdLog(sink);
  }
}
