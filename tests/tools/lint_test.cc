// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Fixture-driven tests for the repo lint (tools/lint/lpsgd_lint.h), plus
// the self-test that the shipped tree lints clean. Fixtures live in
// tests/tools/fixtures/ (LPSGD_LINT_FIXTURE_DIR); the shipped tree is
// reached through LPSGD_SOURCE_ROOT. Both are injected by tests/CMakeLists.
#include "lint/lpsgd_lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace lpsgd {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(LPSGD_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> RulesOf(const std::vector<LintIssue>& issues) {
  std::vector<std::string> rules;
  for (const auto& issue : issues) rules.push_back(issue.rule);
  return rules;
}

int CountRule(const std::vector<LintIssue>& issues, const std::string& rule) {
  const std::vector<std::string> rules = RulesOf(issues);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

TEST(StripCommentsAndStringsTest, BlanksCommentsAndLiteralsKeepsLines) {
  const std::string stripped = StripCommentsAndStrings(
      "int a; // new int\n"
      "const char* s = \"x.resize(3)\";\n"
      "/* malloc(\n"
      "   7) */ int b;\n");
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_EQ(stripped.find("resize"), std::string::npos);
  EXPECT_EQ(stripped.find("malloc"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure must survive so issue line numbers stay true.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
}

TEST(HotPathLintTest, CatchesEveryAllocationKind) {
  const std::string contents = ReadFixture("hot_path_bad.cc");
  const std::vector<LintIssue> issues =
      LintFileContents("src/fixture/hot_path_bad.cc", contents, LintOptions{});
  EXPECT_EQ(CountRule(issues, "hot-path-alloc"), 4) << [&] {
    std::string all;
    for (const auto& issue : issues) all += issue.ToString() + "\n";
    return all;
  }();
  // The by-value vector, resize, push_back, and `new` land on their exact
  // lines (the fixture numbers them in comments).
  ASSERT_EQ(issues.size(), 4u);
  EXPECT_EQ(issues[0].line, 10);
  EXPECT_EQ(issues[1].line, 11);
  EXPECT_EQ(issues[2].line, 13);
  EXPECT_EQ(issues[3].line, 15);
  // The identical calls in the unmarked ColdSetup function do not fire.
  for (const auto& issue : issues) EXPECT_LT(issue.line, 20);
}

TEST(HotPathLintTest, CleanHotPathPasses) {
  const std::string contents = ReadFixture("hot_path_clean.cc");
  const std::vector<LintIssue> issues = LintFileContents(
      "src/fixture/hot_path_clean.cc", contents, LintOptions{});
  EXPECT_TRUE(issues.empty())
      << (issues.empty() ? std::string() : issues[0].ToString());
}

TEST(HotPathLintTest, MarkerOnDeclarationIsIgnored) {
  const std::vector<LintIssue> issues = LintFileContents(
      "src/fixture/decl.h",
      "LPSGD_HOT_PATH\n"
      "void Encode(const float* grad, std::vector<unsigned char>* out);\n"
      "inline void Setup(std::vector<float>* v) { v->resize(8); }\n",
      LintOptions{});
  EXPECT_TRUE(issues.empty());
}

TEST(AnnotationTypoTest, CatchesMisspelledAnnotations) {
  const std::string contents = ReadFixture("annotation_typo.cc");
  const std::vector<LintIssue> issues = LintFileContents(
      "src/fixture/annotation_typo.cc", contents, LintOptions{});
  EXPECT_EQ(CountRule(issues, "annotation-typo"), 3);
  std::string all;
  for (const auto& issue : issues) all += issue.ToString() + "\n";
  EXPECT_NE(all.find("LPSGD_ACQUIRES"), std::string::npos) << all;
  EXPECT_NE(all.find("LPSGD_GUARDED_BY_"), std::string::npos) << all;
  EXPECT_NE(all.find("LPSGD_HOTPATH"), std::string::npos) << all;
  // Correct spellings do not fire.
  EXPECT_EQ(all.find("LPSGD_REQUIRES "), std::string::npos) << all;
}

TEST(BannedTest, FlagsIostreamAndFunctionsHonoringSuppressions) {
  const std::string contents = ReadFixture("banned.cc");
  const std::vector<LintIssue> issues =
      LintFileContents("src/fixture/banned.cc", contents, LintOptions{});
  EXPECT_EQ(CountRule(issues, "banned-include"), 1);
  // rand() fires; strcpy() is covered by the allow comment above it.
  EXPECT_EQ(CountRule(issues, "banned-function"), 1);
  for (const auto& issue : issues) {
    EXPECT_EQ(issue.message.find("strcpy"), std::string::npos)
        << issue.ToString();
  }
}

TEST(BannedTest, RulesAreScopedToLibraryCode) {
  const std::string contents = ReadFixture("banned.cc");
  // The same contents under tests/ only trip the banned-function rule
  // scoping (tests may use iostream freely).
  const std::vector<LintIssue> issues =
      LintFileContents("tests/fixture/banned.cc", contents, LintOptions{});
  EXPECT_EQ(CountRule(issues, "banned-include"), 0);
  EXPECT_EQ(CountRule(issues, "banned-function"), 0);
}

TEST(SimdConfinementTest, IntrinsicsHeaderOnlyInSimdTus) {
  const std::string contents =
      "#include <immintrin.h>\n"
      "int x;\n";
  // In a *_simd.cc TU the include is the point of the file.
  EXPECT_EQ(CountRule(LintFileContents("src/quant/qsgd_simd.cc", contents,
                                       LintOptions{}),
                      "simd-include-confined"),
            0);
  // Anywhere else it leaks raw intrinsics past the dispatch layer.
  EXPECT_EQ(CountRule(LintFileContents("src/quant/qsgd.cc", contents,
                                       LintOptions{}),
                      "simd-include-confined"),
            1);
  EXPECT_EQ(CountRule(LintFileContents("src/base/rng.h",
                                       "#include <arm_neon.h>\n",
                                       LintOptions{}),
                      "simd-include-confined"),
            1);
}

TEST(SimdConfinementTest, IncFragmentOnlyIncludedFromSimdTus) {
  const std::string contents = "#include \"quant/lanes_common.inc\"\n";
  EXPECT_EQ(CountRule(LintFileContents("src/quant/ecq_sgd_simd.cc", contents,
                                       LintOptions{}),
                      "simd-include-confined"),
            0);
  EXPECT_EQ(CountRule(LintFileContents("src/quant/ecq_sgd.cc", contents,
                                       LintOptions{}),
                      "simd-include-confined"),
            1);
}

TEST(SimdConfinementTest, IntrinsicCallsRequireHotPathBody) {
  const std::string in_hot_body =
      "LPSGD_HOT_PATH\n"
      "void Kernel(float* out) { _mm256_zeroupper(); }\n";
  const std::string outside_hot_body =
      "void Kernel(float* out) { _mm256_zeroupper(); }\n";
  EXPECT_TRUE(LintFileContents("src/quant/terngrad_simd.cc", in_hot_body,
                               LintOptions{})
                  .empty());
  EXPECT_EQ(CountRule(LintFileContents("src/quant/terngrad_simd.cc",
                                       outside_hot_body, LintOptions{}),
                      "simd-hot-path"),
            1);
  // In a non-SIMD file the same call is a confinement violation instead.
  EXPECT_EQ(CountRule(LintFileContents("src/quant/terngrad.cc",
                                       outside_hot_body, LintOptions{}),
                      "simd-include-confined"),
            1);
  // .inc lane-helper fragments may hold intrinsics (inside hot bodies).
  EXPECT_TRUE(LintFileContents("src/quant/lanes_common.inc", in_hot_body,
                               LintOptions{})
                  .empty());
}

TEST(SimdConfinementTest, ScopedToLibraryCode) {
  const std::string contents =
      "#include <immintrin.h>\n"
      "void T() { _mm256_zeroupper(); }\n";
  const std::vector<LintIssue> issues =
      LintFileContents("tests/fixture/simd_test.cc", contents, LintOptions{});
  EXPECT_EQ(CountRule(issues, "simd-include-confined"), 0);
  EXPECT_EQ(CountRule(issues, "simd-hot-path"), 0);
}

// The cold-path rule (ISSUE: durable checkpointing): src/ckpt/ must stay
// LPSGD_HOT_PATH-free — checkpoint I/O is between-iteration work, and a
// marker there would drag fsync-adjacent code under the hot-path alloc
// rule while advertising perf guarantees the subsystem does not make.
TEST(ColdPathMarkerTest, HotPathMarkerInCkptIsFlagged) {
  const std::string contents =
      "LPSGD_HOT_PATH void Publish() { DoWrite(); }\n";
  EXPECT_EQ(CountRule(LintFileContents("src/ckpt/foo.cc", contents,
                                       LintOptions{}),
                      "cold-path-marker"),
            1);
  EXPECT_EQ(CountRule(LintFileContents("src/ckpt/foo.h", contents,
                                       LintOptions{}),
                      "cold-path-marker"),
            1);
}

TEST(ColdPathMarkerTest, ScopedToColdDirectoriesInSrc) {
  const std::string contents =
      "LPSGD_HOT_PATH void Encode() { Work(); }\n";
  // The marker is the whole point everywhere else in src/.
  EXPECT_EQ(CountRule(LintFileContents("src/quant/foo.cc", contents,
                                       LintOptions{}),
                      "cold-path-marker"),
            0);
  // Tests and tools are out of scope.
  EXPECT_EQ(CountRule(LintFileContents("tests/ckpt/foo.cc", contents,
                                       LintOptions{}),
                      "cold-path-marker"),
            0);
}

TEST(ColdPathMarkerTest, MarkerInCommentOrSuppressedIsIgnored) {
  EXPECT_EQ(CountRule(LintFileContents(
                          "src/ckpt/foo.cc",
                          "// LPSGD_HOT_PATH is deliberately absent here\n",
                          LintOptions{}),
                      "cold-path-marker"),
            0);
  EXPECT_EQ(CountRule(LintFileContents(
                          "src/ckpt/foo.cc",
                          "// lpsgd-lint: allow(cold-path-marker) why\n"
                          "LPSGD_HOT_PATH void F() { G(); }\n",
                          LintOptions{}),
                      "cold-path-marker"),
            0);
}

TEST(SelfContainmentTest, GoodHeaderPasses) {
  auto issues = CheckHeaderSelfContained(
      FixturePath("self_contained_good.h"), "self_contained_good.h",
      LPSGD_LINT_FIXTURE_DIR, "c++ -std=c++20", "lint_test_work");
  ASSERT_TRUE(issues.ok()) << issues.status().ToString();
  EXPECT_TRUE(issues->empty()) << (*issues)[0].ToString();
}

TEST(SelfContainmentTest, BadHeaderReportsFileAndCompilerError) {
  auto issues = CheckHeaderSelfContained(
      FixturePath("self_contained_bad.h"), "self_contained_bad.h",
      LPSGD_LINT_FIXTURE_DIR, "c++ -std=c++20", "lint_test_work");
  ASSERT_TRUE(issues.ok()) << issues.status().ToString();
  EXPECT_EQ(CountRule(*issues, "missing-include-guard"), 1);
  ASSERT_EQ(CountRule(*issues, "header-not-self-contained"), 1);
  for (const auto& issue : *issues) {
    EXPECT_NE(issue.file.find("self_contained_bad.h"), std::string::npos);
    EXPECT_EQ(issue.line, 1);
  }
}

// The shipped tree must lint clean: this is the same check the CI lint job
// runs (minus the per-header compiles, which the job adds via
// --check_headers). It also verifies the required LPSGD_HOT_PATH marker
// coverage — deleting a marker from a codec fails here, not silently.
TEST(TreeLintTest, ShippedTreeIsClean) {
  auto issues = LintTree(LPSGD_SOURCE_ROOT, LintOptions{});
  ASSERT_TRUE(issues.ok()) << issues.status().ToString();
  std::string all;
  for (const auto& issue : *issues) all += issue.ToString() + "\n";
  EXPECT_TRUE(issues->empty()) << all;
}

}  // namespace
}  // namespace lint
}  // namespace lpsgd
