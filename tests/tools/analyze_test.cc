// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Fixture-driven tests for the whole-program analyzer
// (tools/analyze/lpsgd_analyze.h): each fixture mini-repo under
// tests/tools/analyze_fixtures/ (LPSGD_ANALYZE_FIXTURE_DIR) reproduces one
// intended violation — a two-hop transitive allocation, a three-lock
// acquisition cycle, a dropped Status — and the self-test asserts the
// shipped tree analyzes clean against the committed baseline
// (tools/analyze/baseline.txt). Paths are injected by tests/CMakeLists.
#include "analyze/lpsgd_analyze.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace lpsgd {
namespace analyze {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(LPSGD_ANALYZE_FIXTURE_DIR) + "/" + name;
}

Model AnalyzeFixture(const std::string& name) {
  Model model;
  StatusOr<int> files = BuildModelFromTree(FixtureRoot(name), &model);
  EXPECT_TRUE(files.ok()) << files.status().ToString();
  EXPECT_GT(*files, 0) << "fixture " << name << " has no source files";
  return model;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// --- Pass 1: transitive hot-path purity -----------------------------------

TEST(PurityPassTest, FlagsAllocationTwoHopsFromHotRegion) {
  const Model model = AnalyzeFixture("transitive_alloc");
  const std::vector<Finding> findings = RunPurityPass(model);
  ASSERT_EQ(CountRule(findings, "hot-path-transitive-alloc"), 1);
  const Finding& f = findings.front();
  EXPECT_EQ(f.file, "src/pipeline.cc");
  EXPECT_EQ(f.symbol, "Stage2");
  EXPECT_NE(f.detail.find("push_back"), std::string::npos);
  // The call chain names the hot root and every intermediate hop.
  EXPECT_NE(f.note.find("HotLoop [hot] -> Stage1 -> Stage2"),
            std::string::npos)
      << f.note;
}

TEST(PurityPassTest, HotCalleeOkExemptsAndStaleExemptionIsAFinding) {
  const Model model = AnalyzeFixture("exemptions");
  const std::vector<Finding> findings = RunPurityPass(model);
  // ColdLog allocates but carries LPSGD_HOT_CALLEE_OK: exempt.
  EXPECT_EQ(CountRule(findings, "hot-path-transitive-alloc"), 0);
  // NeverCalled is named by an annotation nothing consults: stale.
  ASSERT_EQ(CountRule(findings, "stale-hot-callee-ok"), 1);
  const auto stale = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == "stale-hot-callee-ok"; });
  EXPECT_EQ(stale->symbol, "NeverCalled");
  EXPECT_EQ(stale->file, "src/exempt.cc");
}

// --- Pass 2: lock-order cycles --------------------------------------------

TEST(LockOrderPassTest, FindsThreeLockCycleAndSelfDeadlock) {
  const Model model = AnalyzeFixture("lock_cycle");
  const std::vector<Finding> findings = RunLockOrderPass(model);
  ASSERT_EQ(CountRule(findings, "lock-order-cycle"), 2) << [&] {
    std::string all;
    for (const Finding& f : findings) all += FormatFinding(f) + "\n";
    return all;
  }();
  // The a -> b -> c -> a cycle, canonicalized to start at the smallest id.
  const bool has_cycle = std::any_of(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.symbol == "a -> b -> c -> a"; });
  EXPECT_TRUE(has_cycle);
  // Reenter holds `a` across a call whose callee re-acquires `a`.
  const auto self = std::find_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.detail.find("re-acquired") != std::string::npos;
      });
  ASSERT_NE(self, findings.end());
  EXPECT_EQ(self->symbol, "a");
  EXPECT_NE(self->detail.find("Reenter"), std::string::npos);
}

// --- Pass 3: status drops -------------------------------------------------

TEST(StatusDropPassTest, FlagsOverwriteAndScopeExitButNotInspectedLoop) {
  const Model model = AnalyzeFixture("status_drop");
  const std::vector<Finding> findings = RunStatusDropPass(model);
  ASSERT_EQ(CountRule(findings, "status-drop"), 2) << [&] {
    std::string all;
    for (const Finding& f : findings) all += FormatFinding(f) + "\n";
    return all;
  }();
  const bool overwritten = std::any_of(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.symbol == "Dropped" &&
               f.detail.find("overwritten") != std::string::npos;
      });
  const bool dropped = std::any_of(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.symbol == "ScopeExit" &&
               f.detail.find("scope-exited") != std::string::npos;
      });
  EXPECT_TRUE(overwritten);
  EXPECT_TRUE(dropped);
  // Retry()'s in-loop assignment is inspected via s.ok(): no finding.
  for (const Finding& f : findings) EXPECT_NE(f.symbol, "Retry");
}

// --- Clean fixture --------------------------------------------------------

TEST(AnalyzeTest, CleanFixtureHasNoFindings) {
  const Model model = AnalyzeFixture("clean");
  const std::vector<Finding> findings = RunAllPasses(model);
  EXPECT_TRUE(findings.empty()) << [&] {
    std::string all;
    for (const Finding& f : findings) all += FormatFinding(f) + "\n";
    return all;
  }();
}

// --- Model internals ------------------------------------------------------

TEST(CanonicalLockIdTest, NormalizesAccessPaths) {
  EXPECT_EQ(CanonicalLockId("mu_", "ThreadPool"), "ThreadPool::mu_");
  EXPECT_EQ(CanonicalLockId("this->mu_", "ThreadPool"), "ThreadPool::mu_");
  EXPECT_EQ(CanonicalLockId("batch->mu", ""), "batch.mu");
  EXPECT_EQ(CanonicalLockId("  batch . mu ", ""), "batch.mu");
  EXPECT_EQ(CanonicalLockId("&mu_", "Registry"), "Registry::mu_");
  EXPECT_EQ(CanonicalLockId("other.mu_", "Registry"), "other.mu_");
}

TEST(ModelTest, ResolvePrefersSameTranslationUnit) {
  Model model;
  AddTranslationUnit("src/a.cc", "void Helper() {}\nvoid CallA() { Helper(); }\n",
                     &model);
  AddTranslationUnit("src/b.cc", "void Helper() {}\n", &model);
  FinalizeModel(&model);
  ASSERT_EQ(model.by_name.at("Helper").size(), 2U);
  const std::vector<int> same_tu = model.Resolve("Helper", 0);
  ASSERT_EQ(same_tu.size(), 1U);
  EXPECT_EQ(model.functions[static_cast<size_t>(same_tu[0])].tu_index, 0);
  // From a TU with no candidate, every definition is considered.
  EXPECT_EQ(model.Resolve("Helper", 7).size(), 2U);
}

// --- Baseline ratchet -----------------------------------------------------

TEST(BaselineTest, ParseIgnoresCommentsAndBlankLines) {
  const std::set<std::string> entries = ParseBaseline(
      "# header comment\n"
      "\n"
      "rule|src/a.cc|Fn|detail\n"
      "  rule2|src/b.cc|Gn|detail2  \n");
  EXPECT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries.count("rule|src/a.cc|Fn|detail"), 1U);
  EXPECT_EQ(entries.count("rule2|src/b.cc|Gn|detail2"), 1U);
}

TEST(BaselineTest, FingerprintExcludesLineNumber) {
  Finding f;
  f.rule = "status-drop";
  f.file = "src/x.cc";
  f.line = 42;
  f.symbol = "Fn";
  f.detail = "d";
  f.note = "volatile context";
  EXPECT_EQ(f.Fingerprint(), "status-drop|src/x.cc|Fn|d");
}

TEST(BaselineTest, RatchetFlagsFreshAndStale) {
  Finding known;
  known.rule = "r";
  known.file = "f";
  known.symbol = "s";
  known.detail = "d";
  Finding fresh = known;
  fresh.detail = "other";
  const BaselineCheck check = CheckAgainstBaseline(
      {known, fresh}, {"r|f|s|d", "r|gone|s|d"});
  ASSERT_EQ(check.fresh.size(), 1U);
  EXPECT_EQ(check.fresh[0].detail, "other");
  ASSERT_EQ(check.stale.size(), 1U);
  EXPECT_EQ(check.stale[0], "r|gone|s|d");
  ASSERT_EQ(check.suppressed.size(), 1U);
}

// --- Self-run: the shipped tree must analyze clean ------------------------

TEST(AnalyzeSelfTest, RepositoryIsCleanAgainstCommittedBaseline) {
  Model model;
  StatusOr<int> files = BuildModelFromTree(LPSGD_SOURCE_ROOT, &model);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  EXPECT_GT(*files, 100);  // the whole tree, not a stray subdir
  const std::vector<Finding> findings = RunAllPasses(model);
  StatusOr<std::string> baseline_text = srctext::ReadFileToString(
      std::string(LPSGD_SOURCE_ROOT) + "/tools/analyze/baseline.txt");
  ASSERT_TRUE(baseline_text.ok()) << baseline_text.status().ToString();
  const BaselineCheck check =
      CheckAgainstBaseline(findings, ParseBaseline(*baseline_text));
  std::string fresh_report;
  for (const Finding& f : check.fresh) {
    fresh_report += FormatFinding(f) + "\n";
  }
  EXPECT_TRUE(check.fresh.empty()) << "new findings:\n" << fresh_report;
  std::string stale_report;
  for (const std::string& e : check.stale) stale_report += e + "\n";
  EXPECT_TRUE(check.stale.empty()) << "stale baseline entries:\n"
                                   << stale_report;
}

}  // namespace
}  // namespace analyze
}  // namespace lpsgd
