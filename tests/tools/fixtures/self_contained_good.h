// Lint fixture: a header that includes everything it uses — the generated
// single-include translation unit compiles on its own.
#ifndef LPSGD_TESTS_TOOLS_FIXTURES_SELF_CONTAINED_GOOD_H_
#define LPSGD_TESTS_TOOLS_FIXTURES_SELF_CONTAINED_GOOD_H_

#include <string>
#include <vector>

namespace fixture {

struct Record {
  std::string name;
  std::vector<int> values;
};

}  // namespace fixture

#endif  // LPSGD_TESTS_TOOLS_FIXTURES_SELF_CONTAINED_GOOD_H_
