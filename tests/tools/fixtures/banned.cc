// Lint fixture: banned include and banned functions, one of each
// suppressed with a justified allow comment.
#include <cstring>
#include <iostream>

namespace fixture {

int UnseededNoise() {
  return rand();  // banned-function: non-deterministic
}

void CopyName(char* dst, const char* src) {
  // lpsgd-lint: allow(banned-function) bounded by caller contract (fixture)
  strcpy(dst, src);
}

void Greet() { std::cout << "hello\n"; }

}  // namespace fixture
