// Lint fixture: an LPSGD_HOT_PATH region that follows the hot-path calling
// convention — pointers/references to reused buffers, free-function
// EnsureSize, no growth calls. Expected findings: none.
#include <vector>

namespace fixture {

float* EnsureSize(std::vector<float>* buf, unsigned long n);

LPSGD_HOT_PATH
void HotEncode(const float* grad, int n, std::vector<float>* out) {
  // "out->resize(n)" in a comment and in a string must not fire:
  const char* note = "calls out->resize(n) lazily";
  (void)note;
  float* dst = EnsureSize(out, static_cast<unsigned long>(n));
  std::vector<float>& alias = *out;  // reference declaration is allowed
  (void)alias;
  for (int i = 0; i < n; ++i) dst[i] = grad[i];
}

}  // namespace fixture
