// Lint fixture: identifiers that look like base/thread_annotations.h
// macros but are misspelled. A typo'd annotation expands to nothing (or
// fails to expand at all), silently disabling the Clang thread-safety
// analysis — so each must be reported (rule annotation-typo).
namespace fixture {

struct Widget {
  void Lock() LPSGD_ACQUIRES();     // typo: LPSGD_ACQUIRE
  int value LPSGD_GUARDED_BY_(mu);  // typo: LPSGD_GUARDED_BY
  int mu;
};

LPSGD_HOTPATH                       // typo: LPSGD_HOT_PATH
void HotButUnprotected();

// Correct spellings must not be reported:
void Fine() LPSGD_REQUIRES(mu);
LPSGD_HOT_PATH
void AlsoFine();

}  // namespace fixture
