// Lint fixture: uses std::string without including <string> (and has no
// include guard), so the generated translation unit fails to compile and
// both header-hygiene rules fire.

namespace fixture {

struct Record {
  std::string name;
};

}  // namespace fixture
