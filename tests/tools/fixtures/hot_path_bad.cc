// Lint fixture: an LPSGD_HOT_PATH region that violates the
// zero-allocation invariant four distinct ways. Expected findings (rule
// hot-path-alloc), one per numbered line comment.
#include <vector>

namespace fixture {

LPSGD_HOT_PATH
void HotEncode(const float* grad, int n, std::vector<unsigned char>* out) {
  std::vector<float> staging(static_cast<unsigned long>(n));  // (1) by-value
  out->resize(static_cast<unsigned long>(n));                 // (2) resize
  for (int i = 0; i < n; ++i) {
    staging.push_back(grad[i]);                               // (3) push_back
  }
  float* spill = new float[16];                               // (4) new
  delete[] spill;
}

// Unmarked function: the same calls are fine outside a hot region.
void ColdSetup(std::vector<float>* buffer, int n) {
  buffer->resize(static_cast<unsigned long>(n));
}

}  // namespace fixture
