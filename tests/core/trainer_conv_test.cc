// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Trainer integration with the richer layer types: batch-norm statistics,
// dropout masks, residual projections, and the TopK codec — everything
// must preserve the bit-identical-replicas invariant and train.
#include <memory>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/model_zoo.h"
#include "nn/pool.h"

namespace lpsgd {
namespace {

SyntheticImageDataset ImageData(int64_t n, uint64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 8;
  options.width = 8;
  options.num_samples = n;
  options.signal = 1.5f;
  options.noise = 0.6f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

void ExpectReplicasIdentical(SyncTrainer& trainer, int gpus) {
  auto params0 = trainer.replica(0).Params();
  for (int r = 1; r < gpus; ++r) {
    auto params = trainer.replica(r).Params();
    for (size_t m = 0; m < params.size(); ++m) {
      for (int64_t i = 0; i < params[m].value->size(); ++i) {
        ASSERT_EQ(params[m].value->at(i), params0[m].value->at(i))
            << "rank " << r << " matrix " << m;
      }
    }
  }
}

TEST(TrainerConvTest, ResidualProjectionNetTrainsAndStaysConsistent) {
  const auto train = ImageData(128);
  const auto test = ImageData(64, 1 << 20);
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = QsgdSpec(4);
  options.seed = 5;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) {
        return BuildMiniResNetTwoStage(1, 8, 4, 4, seed);
      },
      options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 4);
  ASSERT_TRUE(metrics.ok());
  ExpectReplicasIdentical(**trainer, 4);
  EXPECT_LT(metrics->back().train_loss, metrics->front().train_loss);
}

TEST(TrainerConvTest, DropoutNetworkKeepsReplicasIdentical) {
  // Each replica owns its own DropoutLayer, but identical seeds + lockstep
  // forward counts mean identical masks — without that, replicas would
  // diverge immediately.
  const auto train = ImageData(128);
  const auto test = ImageData(64, 1 << 20);
  auto factory = [](uint64_t seed) {
    Rng rng(seed);
    Network net;
    net.Add(std::make_unique<FlattenLayer>("flat"));
    net.Add(std::make_unique<DenseLayer>("fc1", 64, 32, &rng));
    net.Add(
        std::make_unique<ActivationLayer>("relu", ActivationKind::kRelu));
    net.Add(std::make_unique<DropoutLayer>("drop", 0.3f, seed ^ 0xd0d0));
    net.Add(std::make_unique<DenseLayer>("fc2", 32, 4, &rng));
    return net;
  };
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = OneBitSgdReshapedSpec(16);
  options.seed = 6;
  auto trainer = SyncTrainer::Create(factory, options);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE((*trainer)->Train(train, test, 3).ok());
  ExpectReplicasIdentical(**trainer, 4);
}

TEST(TrainerConvTest, TopKCodecTrainsWithErrorAccumulation) {
  const auto train = ImageData(128);
  const auto test = ImageData(64, 1 << 20);
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = TopKSpec(0.2);
  options.seed = 7;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({64, 32, 4}, seed); }, options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 6);
  ASSERT_TRUE(metrics.ok());
  ExpectReplicasIdentical(**trainer, 4);
  EXPECT_GT(metrics->back().test_accuracy, 0.5);
  // Sparse exchange really reduced the traffic.
  EXPECT_LT((*trainer)->total_comm().wire_bytes,
            (*trainer)->total_comm().raw_bytes);
}

TEST(TrainerConvTest, AdaptiveQsgdTrains) {
  const auto train = ImageData(128);
  const auto test = ImageData(64, 1 << 20);
  TrainerOptions options;
  options.num_gpus = 2;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = AdaptiveQsgdSpec(4);
  options.seed = 8;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({64, 32, 4}, seed); }, options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 6);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->back().test_accuracy, 0.5);
}

TEST(TrainerConvTest, Top5AtLeastTop1InMetrics) {
  const auto train = ImageData(96);
  const auto test = ImageData(64, 1 << 20);
  TrainerOptions options;
  options.num_gpus = 2;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = FullPrecisionSpec();
  options.seed = 9;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({64, 16, 4}, seed); }, options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 2);
  ASSERT_TRUE(metrics.ok());
  for (const EpochMetrics& m : *metrics) {
    EXPECT_GE(m.test_top5_accuracy, m.test_accuracy);
    // 4-class task: top-5 is trivially 1.
    EXPECT_DOUBLE_EQ(m.test_top5_accuracy, 1.0);
  }
}

}  // namespace
}  // namespace lpsgd
