// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Breakdown completeness (ISSUE: profiling and attribution): with the
// global profiler enabled, a serial training run must attribute >= 99% of
// every step's measured wall time to named phases, exercise each phase the
// step actually contains, and leave the global profiler untouched while
// disabled.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "obs/profile.h"

namespace lpsgd {
namespace {

SyntheticImageDataset Images(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

class ProfilerGuard {
 public:
  ProfilerGuard() : was_(obs::Profiler::Global().enabled()) {
    obs::Profiler::Global().set_enabled(true);
    obs::Profiler::Global().Reset();
  }
  ~ProfilerGuard() {
    obs::Profiler::Global().Reset();
    obs::Profiler::Global().set_enabled(was_);
  }

 private:
  bool was_;
};

// A wide-enough MLP that each step does real work (milliseconds, not
// microseconds), so fixed per-step bookkeeping cannot eat into coverage.
TrainerOptions ProfiledOptions() {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 64;
  options.learning_rate = 0.05f;
  options.codec = QsgdSpec(4);
  options.primitive = CommPrimitive::kMpi;
  options.seed = 13;
  options.execution = ExecutionContext::Serial();
  return options;
}

TEST(TrainerProfileTest, BreakdownCoversAtLeast99PercentOfStepWall) {
  ProfilerGuard guard;
  const auto train = Images(128);
  const auto test = Images(32, 1 << 20);

  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({16, 512, 256, 4}, seed); },
      ProfiledOptions());
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, /*epochs=*/1);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  obs::Profiler& profiler = obs::Profiler::Global();
  // 128 samples / batch 64 = 2 iterations, each one recorded step.
  ASSERT_EQ(profiler.steps_recorded(), 2);

  const obs::TimeBreakdown totals = profiler.Totals();
  EXPECT_EQ(totals.steps, 2);
  EXPECT_GT(totals.wall_total, 0.0);
  EXPECT_GE(totals.Coverage(), 0.99)
      << "attributed " << totals.AttributedWall() << "s of "
      << totals.wall_total << "s measured step wall";

  // Every phase a quantized synchronous step contains was actually hit.
  for (int phase : {obs::kPhaseForward, obs::kPhaseBackward,
                    obs::kPhaseOptimizer, obs::kPhaseEncode,
                    obs::kPhaseDecode, obs::kPhaseSum}) {
    EXPECT_GT(totals.phases.calls[phase], 0)
        << "phase " << obs::ProfilePhaseName(phase) << " never recorded";
  }
  // The cost model's simulated comm time lands on the wire phase.
  EXPECT_GT(totals.phases.virt[obs::kPhaseWire], 0.0);

  // Per-step coverage holds too, not just in aggregate.
  for (const obs::TimeBreakdown& step : profiler.Steps()) {
    EXPECT_GE(step.Coverage(), 0.99) << "step " << step.step;
    EXPECT_GT(step.virtual_total, 0.0);
  }
}

TEST(TrainerProfileTest, DisabledProfilerSeesNothingFromTraining) {
  obs::Profiler& profiler = obs::Profiler::Global();
  ASSERT_FALSE(profiler.enabled());
  profiler.Reset();

  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({16, 8, 4}, seed); },
      ProfiledOptions());
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  const auto train = Images(64);
  const auto test = Images(32, 1 << 20);
  ASSERT_TRUE((*trainer)->Train(train, test, 1).ok());

  EXPECT_EQ(profiler.steps_recorded(), 0);
  EXPECT_EQ(profiler.Totals().AttributedWall(), 0.0);
}

}  // namespace
}  // namespace lpsgd
