// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// The execution-model invariant (DESIGN.md, "Execution model"): the host
// thread count is a pure scheduling knob. A serial run and an 8-thread run
// must produce byte-identical checkpoints and identical epoch metrics —
// every floating-point reduction order is fixed by the call sites, and all
// randomness flows from counter-based tags.
#include <cctype>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

SyntheticImageDataset MakeImages(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

struct RunResult {
  std::vector<EpochMetrics> metrics;
  std::string checkpoint;
};

RunResult RunTraining(const SyncTrainer::NetworkFactory& factory,
                      TrainerOptions options, const Dataset& train,
                      const Dataset& test, int epochs) {
  auto trainer = SyncTrainer::Create(factory, options);
  EXPECT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, epochs);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  std::ostringstream checkpoint;
  EXPECT_TRUE((*trainer)->SaveCheckpoint(checkpoint).ok());
  return RunResult{*std::move(metrics), checkpoint.str()};
}

// Every field except wall_seconds (host time can never match) must be
// exactly equal.
void ExpectIdenticalMetrics(const std::vector<EpochMetrics>& serial,
                            const std::vector<EpochMetrics>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    SCOPED_TRACE(e);
    EXPECT_EQ(serial[e].epoch, parallel[e].epoch);
    EXPECT_DOUBLE_EQ(serial[e].train_loss, parallel[e].train_loss);
    EXPECT_DOUBLE_EQ(serial[e].train_accuracy, parallel[e].train_accuracy);
    EXPECT_DOUBLE_EQ(serial[e].test_loss, parallel[e].test_loss);
    EXPECT_DOUBLE_EQ(serial[e].test_accuracy, parallel[e].test_accuracy);
    EXPECT_DOUBLE_EQ(serial[e].test_top5_accuracy,
                     parallel[e].test_top5_accuracy);
    EXPECT_DOUBLE_EQ(serial[e].virtual_seconds, parallel[e].virtual_seconds);
    EXPECT_DOUBLE_EQ(serial[e].comm.comm_seconds,
                     parallel[e].comm.comm_seconds);
    EXPECT_DOUBLE_EQ(serial[e].comm.encode_seconds,
                     parallel[e].comm.encode_seconds);
    EXPECT_EQ(serial[e].comm.wire_bytes, parallel[e].comm.wire_bytes);
    EXPECT_EQ(serial[e].comm.raw_bytes, parallel[e].comm.raw_bytes);
    EXPECT_EQ(serial[e].comm.messages, parallel[e].comm.messages);
  }
}

class ThreadCountDeterminismTest
    : public ::testing::TestWithParam<CodecSpec> {};

TEST_P(ThreadCountDeterminismTest, SerialMatchesEightThreads) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);
  const auto factory = [](uint64_t seed) {
    return BuildMlp({16, 12, 4}, seed);
  };

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = GetParam();
  options.seed = 7;

  options.execution = ExecutionContext::Serial();
  const RunResult serial = RunTraining(factory, options, train, test, 2);
  options.execution = ExecutionContext::WithThreads(8);
  const RunResult parallel = RunTraining(factory, options, train, test, 2);

  ExpectIdenticalMetrics(serial.metrics, parallel.metrics);
  ASSERT_FALSE(serial.checkpoint.empty());
  EXPECT_EQ(serial.checkpoint, parallel.checkpoint)
      << "checkpoints diverge between thread counts";
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ThreadCountDeterminismTest,
    ::testing::Values(FullPrecisionSpec(), QsgdSpec(4),
                      OneBitSgdReshapedSpec(16), TopKSpec(0.25)),
    [](const ::testing::TestParamInfo<CodecSpec>& info) {
      std::string out;
      for (char c : info.param.Label()) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

TEST(ThreadCountDeterminismTest, NcclRingSerialMatchesEightThreads) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);
  const auto factory = [](uint64_t seed) {
    return BuildMlp({16, 12, 4}, seed);
  };

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.codec = QsgdSpec(4);
  options.primitive = CommPrimitive::kNccl;
  options.seed = 11;

  options.execution = ExecutionContext::Serial();
  const RunResult serial = RunTraining(factory, options, train, test, 2);
  options.execution = ExecutionContext::WithThreads(8);
  const RunResult parallel = RunTraining(factory, options, train, test, 2);

  ExpectIdenticalMetrics(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.checkpoint, parallel.checkpoint);
}

// Convolutional path (im2col, batchnorm, dropout state) under parallel
// ranks: the heaviest per-rank compute must stay deterministic too.
TEST(ThreadCountDeterminismTest, ConvNetSerialMatchesFourThreads) {
  SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.channels = 1;
  image_options.height = 8;
  image_options.width = 8;
  image_options.num_samples = 64;
  image_options.signal = 1.2f;
  image_options.noise = 0.8f;
  const SyntheticImageDataset train(image_options);
  image_options.num_samples = 32;
  image_options.sample_offset = 1 << 20;
  const SyntheticImageDataset test(image_options);

  const auto factory = [](uint64_t seed) {
    return BuildMiniAlexNet(1, 8, 10, seed);
  };
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 16;
  options.codec = OneBitSgdReshapedSpec(16);
  options.seed = 3;

  options.execution = ExecutionContext::Serial();
  const RunResult serial = RunTraining(factory, options, train, test, 1);
  options.execution = ExecutionContext::WithThreads(4);
  const RunResult parallel = RunTraining(factory, options, train, test, 1);

  ExpectIdenticalMetrics(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.checkpoint, parallel.checkpoint);
}

}  // namespace
}  // namespace lpsgd
