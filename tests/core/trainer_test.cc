// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

SyncTrainer::NetworkFactory MlpFactory(std::vector<int64_t> dims) {
  return [dims](uint64_t seed) { return BuildMlp(dims, seed); };
}

SyntheticImageDataset TrainSet(int64_t n = 256) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  return SyntheticImageDataset(options);
}

SyntheticImageDataset TestSet(int64_t n = 128) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = 1 << 20;
  return SyntheticImageDataset(options);
}

TrainerOptions BaseOptions(int gpus, CodecSpec codec) {
  TrainerOptions options;
  options.num_gpus = gpus;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = codec;
  options.seed = 7;
  return options;
}

TEST(SyncTrainerTest, RejectsIndivisibleBatch) {
  TrainerOptions options = BaseOptions(3, FullPrecisionSpec());
  options.global_batch_size = 32;  // not divisible by 3
  auto trainer = SyncTrainer::Create(MlpFactory({16, 8, 4}), options);
  EXPECT_FALSE(trainer.ok());
  EXPECT_EQ(trainer.status().code(), StatusCode::kInvalidArgument);
}

TEST(SyncTrainerTest, RejectsZeroGpus) {
  TrainerOptions options = BaseOptions(0, FullPrecisionSpec());
  EXPECT_FALSE(SyncTrainer::Create(MlpFactory({16, 8, 4}), options).ok());
}

TEST(TrainerOptionsValidateTest, AcceptsDefaults) {
  EXPECT_TRUE(BaseOptions(4, FullPrecisionSpec()).Validate().ok());
}

TEST(TrainerOptionsValidateTest, RejectsZeroGpus) {
  TrainerOptions options = BaseOptions(0, FullPrecisionSpec());
  const Status status = options.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TrainerOptionsValidateTest, RejectsBatchSmallerThanGpus) {
  TrainerOptions options = BaseOptions(8, FullPrecisionSpec());
  options.global_batch_size = 4;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerOptionsValidateTest, RejectsIndivisibleBatch) {
  TrainerOptions options = BaseOptions(3, FullPrecisionSpec());
  options.global_batch_size = 32;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerOptionsValidateTest, RejectsNonPositiveLearningRate) {
  TrainerOptions options = BaseOptions(2, FullPrecisionSpec());
  options.learning_rate = 0.0f;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.learning_rate = -0.1f;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerOptionsValidateTest, RejectsUnsortedLrSchedule) {
  TrainerOptions options = BaseOptions(2, FullPrecisionSpec());
  options.lr_schedule = {{5, 0.01f}, {3, 0.001f}};
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.lr_schedule = {{3, 0.01f}, {3, 0.001f}};  // duplicate epoch
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.lr_schedule = {{3, 0.01f}, {5, 0.001f}};
  EXPECT_TRUE(options.Validate().ok());
}

TEST(TrainerOptionsValidateTest, RejectsNonPositiveEvalBatch) {
  TrainerOptions options = BaseOptions(2, FullPrecisionSpec());
  options.eval_batch_size = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerOptionsValidateTest, RejectsNegativeThreadRequest) {
  TrainerOptions options = BaseOptions(2, FullPrecisionSpec());
  options.execution.intra_op_threads = -2;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  // Create surfaces the same rejection.
  EXPECT_FALSE(SyncTrainer::Create(MlpFactory({16, 8, 4}), options).ok());
}

// Central invariant of synchronous data-parallel SGD: all replicas remain
// bit-identical after every iteration, for every codec.
class ReplicaConsistencyTest
    : public ::testing::TestWithParam<CodecSpec> {};

TEST_P(ReplicaConsistencyTest, ReplicasStayIdentical) {
  TrainerOptions options = BaseOptions(4, GetParam());
  auto trainer = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  ASSERT_TRUE(trainer.ok());
  const auto train = TrainSet();
  const auto test = TestSet(32);
  ASSERT_TRUE((*trainer)->Train(train, test, 2).ok());

  auto params0 = (*trainer)->replica(0).Params();
  for (int r = 1; r < 4; ++r) {
    auto params = (*trainer)->replica(r).Params();
    ASSERT_EQ(params.size(), params0.size());
    for (size_t m = 0; m < params.size(); ++m) {
      for (int64_t i = 0; i < params[m].value->size(); ++i) {
        ASSERT_EQ(params[m].value->at(i), params0[m].value->at(i))
            << "rank " << r << " matrix " << m << " elem " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ReplicaConsistencyTest,
    ::testing::Values(FullPrecisionSpec(), QsgdSpec(4), QsgdSpec(8),
                      OneBitSgdSpec(), OneBitSgdReshapedSpec(16),
                      TopKSpec(0.25), AdaptiveQsgdSpec(4), TernGradSpec(),
                      NuqsgdSpec(4), EcqSgdSpec(4)),
    [](const ::testing::TestParamInfo<CodecSpec>& info) {
      std::string name = info.param.Label();
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

// Regression: the NCCL ring really encodes sparse codecs (allgather of
// Top-K blobs), so the trainer must size their error-feedback residuals
// under kNccl too — not only for MPI. This crashed before the fix: the
// sparse encode CHECKed on an empty residual buffer.
TEST(SyncTrainerTest, SparseCodecTrainsOverNccl) {
  TrainerOptions options = BaseOptions(4, TopKSpec(0.25));
  options.primitive = CommPrimitive::kNccl;
  auto trainer = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  ASSERT_TRUE(trainer.ok());
  const auto train = TrainSet();
  const auto test = TestSet(32);
  ASSERT_TRUE((*trainer)->Train(train, test, 2).ok());
  EXPECT_GT((*trainer)->total_comm().wire_bytes, 0);
}

// K-GPU full-precision training must match 1-GPU training with the same
// global batch (Section 2.1: synchronous SGD with K workers is equivalent
// to large-batch sequential SGD).
TEST(SyncTrainerTest, FullPrecisionParallelMatchesSequential) {
  const auto train = TrainSet();
  const auto test = TestSet(32);

  TrainerOptions seq_options = BaseOptions(1, FullPrecisionSpec());
  TrainerOptions par_options = BaseOptions(4, FullPrecisionSpec());
  auto sequential = SyncTrainer::Create(MlpFactory({16, 12, 4}), seq_options);
  auto parallel = SyncTrainer::Create(MlpFactory({16, 12, 4}), par_options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());

  auto seq_metrics = (*sequential)->Train(train, test, 3);
  auto par_metrics = (*parallel)->Train(train, test, 3);
  ASSERT_TRUE(seq_metrics.ok());
  ASSERT_TRUE(par_metrics.ok());

  for (size_t e = 0; e < seq_metrics->size(); ++e) {
    EXPECT_NEAR((*seq_metrics)[e].train_loss, (*par_metrics)[e].train_loss,
                2e-3)
        << "epoch " << e;
    EXPECT_NEAR((*seq_metrics)[e].test_accuracy,
                (*par_metrics)[e].test_accuracy, 0.05)
        << "epoch " << e;
  }
}

TEST(SyncTrainerTest, DeterministicAcrossRuns) {
  const auto train = TrainSet();
  const auto test = TestSet(32);
  TrainerOptions options = BaseOptions(2, QsgdSpec(4));
  auto a = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  auto b = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ma = (*a)->Train(train, test, 2);
  auto mb = (*b)->Train(train, test, 2);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  for (size_t e = 0; e < ma->size(); ++e) {
    EXPECT_DOUBLE_EQ((*ma)[e].train_loss, (*mb)[e].train_loss);
    EXPECT_DOUBLE_EQ((*ma)[e].test_accuracy, (*mb)[e].test_accuracy);
  }
}

TEST(SyncTrainerTest, CommStatsAccumulate) {
  const auto train = TrainSet();
  const auto test = TestSet(32);
  TrainerOptions options = BaseOptions(4, QsgdSpec(4));
  auto trainer = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 1);
  ASSERT_TRUE(metrics.ok());
  const CommStats& total = (*trainer)->total_comm();
  EXPECT_GT(total.wire_bytes, 0);
  EXPECT_GT(total.raw_bytes, total.wire_bytes);
  EXPECT_GT(total.comm_seconds, 0.0);
  EXPECT_GT((*trainer)->virtual_seconds(), 0.0);
  EXPECT_GT((*metrics)[0].comm.messages, 0);
}

TEST(SyncTrainerTest, VirtualComputeTimeCharged) {
  const auto train = TrainSet(64);
  const auto test = TestSet(32);
  TrainerOptions options = BaseOptions(2, FullPrecisionSpec());
  options.virtual_compute_seconds_per_iter = 1.5;
  auto trainer = SyncTrainer::Create(MlpFactory({16, 8, 4}), options);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE((*trainer)->Train(train, test, 1).ok());
  // 64 samples / 32 batch = 2 iterations -> at least 3 virtual seconds.
  EXPECT_GE((*trainer)->virtual_seconds(), 3.0);
}

TEST(SyncTrainerTest, NcclPrimitiveTrainsAndSimulatesPayload) {
  const auto train = TrainSet();
  const auto test = TestSet(32);
  TrainerOptions options = BaseOptions(4, QsgdSpec(4));
  options.primitive = CommPrimitive::kNccl;
  auto trainer = SyncTrainer::Create(MlpFactory({16, 12, 4}), options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 2);
  ASSERT_TRUE(metrics.ok());
  // Simulated low-precision NCCL: compressed wire bytes...
  EXPECT_LT((*trainer)->total_comm().wire_bytes,
            (*trainer)->total_comm().raw_bytes);

  // ...but gradients (and thus training) identical to full-precision NCCL.
  TrainerOptions fp_options = BaseOptions(4, FullPrecisionSpec());
  fp_options.primitive = CommPrimitive::kNccl;
  auto fp_trainer = SyncTrainer::Create(MlpFactory({16, 12, 4}), fp_options);
  ASSERT_TRUE(fp_trainer.ok());
  auto fp_metrics = (*fp_trainer)->Train(train, test, 2);
  ASSERT_TRUE(fp_metrics.ok());
  EXPECT_DOUBLE_EQ((*metrics)[1].train_loss, (*fp_metrics)[1].train_loss);
}

TEST(SyncTrainerTest, LearningRateScheduleApplies) {
  const auto train = TrainSet(64);
  const auto test = TestSet(32);
  TrainerOptions options = BaseOptions(1, FullPrecisionSpec());
  options.learning_rate = 0.1f;
  options.lr_schedule = {{1, 0.0000001f}};  // effectively freeze at epoch 1
  auto trainer = SyncTrainer::Create(MlpFactory({16, 8, 4}), options);
  ASSERT_TRUE(trainer.ok());
  auto metrics = (*trainer)->Train(train, test, 3);
  ASSERT_TRUE(metrics.ok());
  // With a frozen LR from epoch 1 on, epochs 1 and 2 see (almost) the same
  // weights -> nearly identical test loss.
  EXPECT_NEAR((*metrics)[1].test_loss, (*metrics)[2].test_loss, 1e-2);
}

TEST(SyncTrainerTest, EvaluateCountsAllSamples) {
  const auto train = TrainSet(64);
  const auto test = TestSet(100);
  TrainerOptions options = BaseOptions(1, FullPrecisionSpec());
  options.eval_batch_size = 32;  // forces multiple eval batches
  auto trainer = SyncTrainer::Create(MlpFactory({16, 8, 4}), options);
  ASSERT_TRUE(trainer.ok());
  const EvalResult eval = (*trainer)->Evaluate(test);
  EXPECT_GE(eval.correct, 0);
  EXPECT_LE(eval.correct, 100);
  EXPECT_GT(eval.loss_sum, 0.0);
}

}  // namespace
}  // namespace lpsgd
