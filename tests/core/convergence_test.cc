// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// End-to-end convergence properties: the accuracy findings of Section 5.1
// at miniature scale. These use a small MLP on the synthetic image task so
// each run takes well under a second.
#include <gtest/gtest.h>

#include "base/strings.h"
#include "core/experiment.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

SyntheticImageDataset MakeTrain() {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 6;
  options.width = 6;
  options.num_samples = 512;
  options.signal = 1.5f;
  options.noise = 0.8f;
  return SyntheticImageDataset(options);
}

SyntheticImageDataset MakeTest() {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 6;
  options.width = 6;
  options.num_samples = 256;
  options.signal = 1.5f;
  options.noise = 0.8f;
  options.sample_offset = 1 << 20;
  return SyntheticImageDataset(options);
}

SyncTrainer::NetworkFactory Factory() {
  return [](uint64_t seed) { return BuildMlp({36, 24, 4}, seed); };
}

TrainerOptions Options(CodecSpec codec) {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.08f;
  options.codec = codec;
  options.seed = 11;
  return options;
}

double FinalAccuracy(CodecSpec codec, int epochs = 12) {
  const auto train = MakeTrain();
  const auto test = MakeTest();
  auto trainer = SyncTrainer::Create(Factory(), Options(codec));
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, epochs);
  CHECK_OK(metrics.status());
  return metrics->back().test_accuracy;
}

// A deliberately hard variant (more classes, more noise, fewer epochs) on
// which quantization damage is visible before accuracy saturates.
SyntheticImageOptions HardOptions() {
  SyntheticImageOptions options;
  options.num_classes = 8;
  options.channels = 1;
  options.height = 6;
  options.width = 6;
  options.signal = 1.0f;
  options.noise = 1.6f;
  return options;
}

EpochMetrics HardTaskMetrics(CodecSpec codec, int epochs = 8) {
  SyntheticImageOptions train_options = HardOptions();
  train_options.num_samples = 512;
  SyntheticImageOptions test_options = HardOptions();
  test_options.num_samples = 256;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.06f;
  options.codec = codec;
  options.seed = 13;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({36, 24, 8}, seed); }, options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, epochs);
  CHECK_OK(metrics.status());
  return metrics->back();
}

double HardTaskAccuracy(CodecSpec codec, int epochs = 8) {
  return HardTaskMetrics(codec, epochs).test_accuracy;
}

// Full-batch training loss: with the whole dataset in one batch the
// gradients are deterministic, which isolates the quantizer's own noise —
// the setting where error feedback's effect is provable (the residual
// cancels the quantization error over time; without it, sign-style
// updates random-walk around the optimum at a loss floor).
double FullBatchFinalLoss(CodecSpec codec, int epochs) {
  SyntheticImageOptions train_options = HardOptions();
  train_options.num_samples = 32;
  train_options.noise = 0.5f;
  SyntheticImageOptions test_options = HardOptions();
  test_options.num_samples = 32;
  test_options.sample_offset = 1 << 20;
  const SyntheticImageDataset train(train_options);
  const SyntheticImageDataset test(test_options);

  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;  // full batch
  options.learning_rate = 0.05f;
  options.codec = codec;
  options.seed = 13;
  auto trainer = SyncTrainer::Create(
      [](uint64_t s) { return BuildMlp({36, 24, 8}, s); }, options);
  CHECK_OK(trainer.status());
  auto metrics = (*trainer)->Train(train, test, epochs);
  CHECK_OK(metrics.status());
  return metrics->back().train_loss;
}

TEST(ConvergenceTest, FullPrecisionLearnsTheTask) {
  EXPECT_GT(FinalAccuracy(FullPrecisionSpec()), 0.85);
}

TEST(ConvergenceTest, Qsgd4BitMatchesFullPrecision) {
  // Section 5.1: "using 4-bit gradients always preserves the same
  // accuracy".
  const double fp = FinalAccuracy(FullPrecisionSpec());
  const double q4 = FinalAccuracy(QsgdSpec(4));
  EXPECT_GT(q4, fp - 0.05);
}

TEST(ConvergenceTest, Qsgd8BitMatchesFullPrecision) {
  const double fp = FinalAccuracy(FullPrecisionSpec());
  const double q8 = FinalAccuracy(QsgdSpec(8));
  EXPECT_GT(q8, fp - 0.05);
}

TEST(ConvergenceTest, OneBitWithErrorFeedbackMatchesFullPrecision) {
  // Section 5.1: 1bitSGD reaches the same accuracy as full precision —
  // the "impressive accuracy of the 1bitSGD error-correction techniques".
  const double fp = FinalAccuracy(FullPrecisionSpec());
  const double one_bit = FinalAccuracy(OneBitSgdReshapedSpec(16));
  EXPECT_GT(one_bit, fp - 0.06);
}

TEST(ConvergenceTest, ErrorFeedbackIsWhatRescuesOneBit) {
  // Ablation (DESIGN.md): removing the error accumulator from 1bitSGD
  // must hurt convergence measurably.
  // Coarse buckets make the uncompensated quantization error large. The
  // damage shows up in the optimization trajectory (training loss floor),
  // which is the quantity error feedback provably repairs.
  CodecSpec with_ef = OneBitSgdReshapedSpec(512);
  CodecSpec without_ef = with_ef;
  without_ef.error_feedback = false;
  const double with_loss = FullBatchFinalLoss(with_ef, /*epochs=*/60);
  const double without_loss = FullBatchFinalLoss(without_ef, /*epochs=*/60);
  EXPECT_LT(with_loss, 0.5 * without_loss);
}

TEST(ConvergenceTest, HugeBucketsHurtLowBitAccuracy) {
  // Section 5.1 "Impact of Bucket Size": 4bit with an oversized bucket is
  // measurably worse than with the tuned bucket.
  CodecSpec tuned = QsgdSpec(2);     // bucket 128
  CodecSpec oversized = QsgdSpec(2);
  oversized.bucket_size = 1 << 20;   // one bucket for everything
  oversized.norm = QsgdNorm::kL2;    // variance scales with dimension
  CodecSpec tuned_l2 = tuned;
  tuned_l2.norm = QsgdNorm::kL2;
  const double tuned_accuracy = HardTaskAccuracy(tuned_l2);
  const double oversized_accuracy = HardTaskAccuracy(oversized);
  EXPECT_GT(tuned_accuracy, oversized_accuracy + 0.03);
}

TEST(ConvergenceTest, RunAccuracyComparisonProducesAlignedSeries) {
  const auto train = MakeTrain();
  const auto test = MakeTest();
  std::vector<AccuracyRunConfig> configs;
  configs.push_back({"32bit", FullPrecisionSpec(), {}});
  configs.push_back({"QSGD 4bit", QsgdSpec(4), {}});
  auto series = RunAccuracyComparison(Factory(), Options(FullPrecisionSpec()),
                                      train, test, configs, 3);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ((*series)[0].label, "32bit");
  EXPECT_EQ((*series)[0].epochs.size(), 3u);
  EXPECT_EQ((*series)[1].epochs.size(), 3u);
  EXPECT_GT((*series)[0].FinalTestAccuracy(), 0.3);
  EXPECT_GE((*series)[0].BestTestAccuracy(),
            (*series)[0].FinalTestAccuracy());

  const std::string table = FormatAccuracyTable(*series);
  EXPECT_NE(table.find("32bit"), std::string::npos);
  EXPECT_NE(table.find("QSGD 4bit"), std::string::npos);
}

TEST(ConvergenceTest, MetricsToCsvIsWellFormed) {
  const auto train = MakeTrain();
  const auto test = MakeTest();
  std::vector<AccuracyRunConfig> configs;
  configs.push_back({"32bit", FullPrecisionSpec(), {}});
  configs.push_back({"QSGD 4bit", QsgdSpec(4), {}});
  auto series = RunAccuracyComparison(Factory(), Options(FullPrecisionSpec()),
                                      train, test, configs, 2);
  ASSERT_TRUE(series.ok());
  const std::string csv = MetricsToCsv(*series);

  // Header + 2 configs x 2 epochs = 5 lines; every line has 9 fields.
  const std::vector<std::string> lines = StrSplit(csv, '\n');
  ASSERT_EQ(lines.size(), 6u);  // trailing newline -> empty last element
  EXPECT_TRUE(lines.back().empty());
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(StrSplit(lines[i], ',').size(), 9u) << lines[i];
  }
  EXPECT_NE(csv.find("\"QSGD 4bit\",1,"), std::string::npos) << csv;
}

}  // namespace
}  // namespace lpsgd
