// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include <sstream>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

SyncTrainer::NetworkFactory Factory() {
  return [](uint64_t seed) { return BuildMlp({16, 12, 4}, seed); };
}

SyntheticImageDataset Data(int64_t n, uint64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

TrainerOptions Options(CodecSpec codec) {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = codec;
  options.seed = 3;
  return options;
}

TEST(TrainerCheckpointTest, RestoreReproducesEvaluation) {
  const auto train = Data(128);
  const auto test = Data(64, 1 << 20);

  auto source = SyncTrainer::Create(Factory(), Options(QsgdSpec(4)));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->Train(train, test, 3).ok());
  const EvalResult source_eval = (*source)->Evaluate(test);

  std::stringstream checkpoint;
  ASSERT_TRUE((*source)->SaveCheckpoint(checkpoint).ok());

  auto restored = SyncTrainer::Create(Factory(), Options(QsgdSpec(4)));
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->LoadCheckpoint(checkpoint).ok());
  const EvalResult restored_eval = (*restored)->Evaluate(test);
  EXPECT_EQ(restored_eval.correct, source_eval.correct);
  EXPECT_DOUBLE_EQ(restored_eval.loss_sum, source_eval.loss_sum);
}

TEST(TrainerCheckpointTest, AllReplicasRestored) {
  const auto train = Data(128);
  const auto test = Data(64, 1 << 20);
  auto source = SyncTrainer::Create(Factory(), Options(FullPrecisionSpec()));
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->Train(train, test, 2).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE((*source)->SaveCheckpoint(checkpoint).ok());

  auto restored =
      SyncTrainer::Create(Factory(), Options(OneBitSgdReshapedSpec(16)));
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->LoadCheckpoint(checkpoint).ok());
  auto params0 = (*restored)->replica(0).Params();
  for (int r = 1; r < 4; ++r) {
    auto params = (*restored)->replica(r).Params();
    for (size_t m = 0; m < params.size(); ++m) {
      for (int64_t i = 0; i < params[m].value->size(); ++i) {
        ASSERT_EQ(params[m].value->at(i), params0[m].value->at(i));
      }
    }
  }
}

TEST(TrainerCheckpointTest, TrainingContinuesAfterRestore) {
  const auto train = Data(256);
  const auto test = Data(128, 1 << 20);
  auto trainer = SyncTrainer::Create(Factory(), Options(QsgdSpec(8)));
  ASSERT_TRUE(trainer.ok());
  auto first = (*trainer)->Train(train, test, 4);
  ASSERT_TRUE(first.ok());
  std::stringstream checkpoint;
  ASSERT_TRUE((*trainer)->SaveCheckpoint(checkpoint).ok());

  auto resumed = SyncTrainer::Create(Factory(), Options(QsgdSpec(8)));
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->LoadCheckpoint(checkpoint).ok());
  auto more = (*resumed)->Train(train, test, 3);
  ASSERT_TRUE(more.ok());
  // Restored training should keep (or improve on) the checkpointed loss,
  // not restart from scratch.
  EXPECT_LT(more->back().train_loss, first->front().train_loss);
}

TEST(TrainerCheckpointTest, RejectsMismatchedArchitecture) {
  auto source = SyncTrainer::Create(Factory(), Options(FullPrecisionSpec()));
  ASSERT_TRUE(source.ok());
  std::stringstream checkpoint;
  ASSERT_TRUE((*source)->SaveCheckpoint(checkpoint).ok());

  auto other = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({16, 8, 4}, seed); },
      Options(FullPrecisionSpec()));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE((*other)->LoadCheckpoint(checkpoint).ok());
}

// Regression (ISSUE: durable checkpointing, hardened stream I/O): a
// checkpoint truncated anywhere — header, tensor payload, or the final
// bytes — must fail LoadCheckpoint with a non-OK status, never load a
// half-restored model. Exercises the short-read detection on the stream
// path.
TEST(TrainerCheckpointTest, TruncatedCheckpointIsRejected) {
  auto source = SyncTrainer::Create(Factory(), Options(FullPrecisionSpec()));
  ASSERT_TRUE(source.ok());
  std::stringstream checkpoint;
  ASSERT_TRUE((*source)->SaveCheckpoint(checkpoint).ok());
  const std::string bytes = checkpoint.str();
  ASSERT_FALSE(bytes.empty());

  // A spread of strict prefixes, including the pathological 0- and 1-byte
  // files and a cut one byte short of complete.
  const size_t cuts[] = {0, 1, 4, bytes.size() / 2, bytes.size() - 1};
  for (const size_t cut : cuts) {
    SCOPED_TRACE(cut);
    auto fresh = SyncTrainer::Create(Factory(), Options(FullPrecisionSpec()));
    ASSERT_TRUE(fresh.ok());
    std::stringstream truncated(bytes.substr(0, cut));
    const Status loaded = (*fresh)->LoadCheckpoint(truncated);
    EXPECT_FALSE(loaded.ok())
        << "a truncated checkpoint (cut at " << cut << ") must not load";
  }
}

// A stream that enters the failed state mid-write surfaces as a non-OK
// SaveCheckpoint, not a silently short checkpoint.
TEST(TrainerCheckpointTest, FailedStreamFailsSave) {
  auto source = SyncTrainer::Create(Factory(), Options(FullPrecisionSpec()));
  ASSERT_TRUE(source.ok());
  std::stringstream sink;
  sink.setstate(std::ios::badbit);
  EXPECT_FALSE((*source)->SaveCheckpoint(sink).ok());
}

// Trainer epochs are resumable even without checkpoints: Train() twice is
// equivalent to one longer Train() (epoch counters and shuffles line up).
TEST(TrainerResumabilityTest, SplitTrainingMatchesContinuous) {
  const auto train = Data(128);
  const auto test = Data(64, 1 << 20);
  auto split = SyncTrainer::Create(Factory(), Options(QsgdSpec(4)));
  auto continuous = SyncTrainer::Create(Factory(), Options(QsgdSpec(4)));
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(continuous.ok());

  auto part1 = (*split)->Train(train, test, 2);
  auto part2 = (*split)->Train(train, test, 2);
  auto full = (*continuous)->Train(train, test, 4);
  ASSERT_TRUE(part1.ok());
  ASSERT_TRUE(part2.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ((*part2)[1].train_loss, (*full)[3].train_loss);
  EXPECT_DOUBLE_EQ((*part2)[1].test_accuracy, (*full)[3].test_accuracy);
}

}  // namespace
}  // namespace lpsgd
