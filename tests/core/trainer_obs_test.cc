// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Smoke test for the observability instrumentation threaded through the
// trainer and aggregators: one epoch with the global registry enabled must
// leave trainer/* and comm/* metrics that agree with the trainer's own
// accounting.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace lpsgd {
namespace {

SyntheticImageDataset SmallSet(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

class TrainerObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_metrics_ = obs::MetricsRegistry::Global().enabled();
    was_trace_ = obs::Tracer::Global().enabled();
    was_report_ = obs::RunReport::Global().enabled();
    obs::MetricsRegistry::Global().set_enabled(true);
    obs::Tracer::Global().set_enabled(true);
    obs::RunReport::Global().set_enabled(true);
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
    obs::RunReport::Global().Reset();
  }

  void TearDown() override {
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Reset();
    obs::RunReport::Global().Reset();
    obs::MetricsRegistry::Global().set_enabled(was_metrics_);
    obs::Tracer::Global().set_enabled(was_trace_);
    obs::RunReport::Global().set_enabled(was_report_);
  }

  bool was_metrics_ = false;
  bool was_trace_ = false;
  bool was_report_ = false;
};

TEST_F(TrainerObservabilityTest, OneEpochPopulatesConsistentMetrics) {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.codec = QsgdSpec(4);
  options.seed = 11;
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({16, 8, 4}, seed); }, options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();

  const SyntheticImageDataset train = SmallSet(64);
  const SyntheticImageDataset test = SmallSet(32, /*offset=*/1 << 20);
  auto metrics = (*trainer)->Train(train, test, /*epochs=*/1);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  // Trainer-side instrumentation: 64 samples / batch 32 = 2 iterations.
  EXPECT_EQ(reg.CounterValue("trainer/iterations"), 2);
  EXPECT_EQ(reg.CounterValue("trainer/samples"), 64);
  EXPECT_EQ(reg.CounterValue("trainer/epochs"), 1);
  EXPECT_EQ(reg.HistogramFor("trainer/iteration_seconds").count, 2);
  EXPECT_GT(reg.HistogramFor("trainer/iteration_seconds").sum, 0.0);
  EXPECT_GT(reg.GaugeValue("trainer/virtual_seconds"), 0.0);
  EXPECT_EQ(reg.HistogramFor("trainer/eval_seconds").count, 1);

  // Comm-side instrumentation must agree exactly with the trainer's own
  // cumulative accounting (the aggregator is the sole comm/* writer).
  const CommStats& total = (*trainer)->total_comm();
  EXPECT_GT(total.wire_bytes, 0);
  EXPECT_EQ(reg.CounterValue("comm/wire_bytes"), total.wire_bytes);
  EXPECT_EQ(reg.CounterValue("comm/raw_bytes"), total.raw_bytes);
  EXPECT_EQ(reg.CounterValue("comm/messages"), total.messages);
  EXPECT_EQ(reg.CounterValue("comm/allreduce_calls"), 2);

  // Quantized training must have exercised the codec hooks.
  EXPECT_GT(reg.CounterValue("quant/qsgd/encode_calls"), 0);
  EXPECT_GT(reg.HistogramFor("quant/encode_seconds").count, 0);

  // The tracer captured iteration spans with virtual-clock annotations.
  bool found_iteration_span = false;
  for (const obs::TraceEvent& e : obs::Tracer::Global().Events()) {
    if (e.name == "trainer/iteration") {
      found_iteration_span = true;
      EXPECT_GE(e.virtual_end, e.virtual_start);
    }
  }
  EXPECT_TRUE(found_iteration_span);

  // The run report carries one "epoch" entry matching the returned metrics.
  obs::RunReport& report = obs::RunReport::Global();
  ASSERT_EQ(report.entry_count(), 1u);
  const obs::JsonValue doc = report.ToJson(&reg);
  const auto& entries = doc.At("entries").AsArray();
  EXPECT_EQ(entries[0].At("kind").AsString(), "epoch");
  EXPECT_EQ(entries[0].At("wire_bytes").AsInt(), total.wire_bytes);
  EXPECT_DOUBLE_EQ(entries[0].At("test_accuracy").AsDouble(),
                   metrics->back().test_accuracy);
}

TEST_F(TrainerObservabilityTest, DisabledRegistryStaysEmpty) {
  obs::MetricsRegistry::Global().set_enabled(false);
  obs::Tracer::Global().set_enabled(false);
  obs::RunReport::Global().set_enabled(false);

  TrainerOptions options;
  options.num_gpus = 2;
  options.global_batch_size = 32;
  options.codec = FullPrecisionSpec();
  auto trainer = SyncTrainer::Create(
      [](uint64_t seed) { return BuildMlp({16, 8, 4}, seed); }, options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  const SyntheticImageDataset train = SmallSet(32);
  const SyntheticImageDataset test = SmallSet(32, /*offset=*/1 << 20);
  ASSERT_TRUE((*trainer)->Train(train, test, 1).ok());

  EXPECT_TRUE(obs::MetricsRegistry::Global().Names().empty());
  EXPECT_EQ(obs::Tracer::Global().event_count(), 0u);
  EXPECT_EQ(obs::RunReport::Global().entry_count(), 0u);
}

}  // namespace
}  // namespace lpsgd
