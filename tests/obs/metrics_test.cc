// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lpsgd {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.CounterValue("comm/wire_bytes"), 0);
  reg.Count("comm/wire_bytes", 128);
  reg.Count("comm/wire_bytes", 64);
  reg.Count("comm/messages");
  EXPECT_EQ(reg.CounterValue("comm/wire_bytes"), 192);
  EXPECT_EQ(reg.CounterValue("comm/messages"), 1);
}

TEST(MetricsRegistryTest, GaugesLastWriteWins) {
  MetricsRegistry reg;
  reg.SetGauge("trainer/virtual_seconds", 1.5);
  reg.SetGauge("trainer/virtual_seconds", 2.5);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("trainer/virtual_seconds"), 2.5);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("absent"), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  reg.ObserveWithBounds("lat", 0.5, {1.0, 10.0});
  reg.ObserveWithBounds("lat", 5.0, {1.0, 10.0});
  reg.ObserveWithBounds("lat", 50.0, {1.0, 10.0});  // overflow bucket

  const HistogramSnapshot snap = reg.HistogramFor("lat");
  ASSERT_EQ(snap.bounds.size(), 2u);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1);  // <= 1.0
  EXPECT_EQ(snap.counts[1], 1);  // <= 10.0
  EXPECT_EQ(snap.counts[2], 1);  // > 10.0
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 55.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 18.5);
}

TEST(MetricsRegistryTest, DefaultBoundsCoverTimingsAndByteCounts) {
  const std::vector<double>& bounds = MetricsRegistry::DefaultBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.front(), 1e-9);
  EXPECT_GE(bounds.back(), 1e12);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, DisabledRegistryIgnoresMutations) {
  MetricsRegistry reg(/*enabled=*/false);
  reg.Count("c", 7);
  reg.SetGauge("g", 1.0);
  reg.Observe("h", 1.0);
  EXPECT_EQ(reg.CounterValue("c"), 0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("g"), 0.0);
  EXPECT_EQ(reg.HistogramFor("h").count, 0);
  EXPECT_TRUE(reg.Names().empty());
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIncrements; ++i) {
        reg.Count("shared/counter");
        reg.Observe("shared/histogram", 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("shared/counter"), kThreads * kIncrements);
  EXPECT_EQ(reg.HistogramFor("shared/histogram").count,
            kThreads * kIncrements);
}

TEST(MetricsRegistryTest, ResetDropsMetricsKeepsFlag) {
  MetricsRegistry reg;
  reg.Count("a");
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("a"), 0);
  EXPECT_TRUE(reg.enabled());
}

TEST(MetricsRegistryTest, JsonExportParsesBack) {
  MetricsRegistry reg;
  reg.Count("comm/wire_bytes", 42);
  reg.SetGauge("trainer/virtual_seconds", 3.25);
  reg.Observe("quant/encode_seconds", 1e-4);

  auto parsed = JsonValue::Parse(reg.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("counters").At("comm/wire_bytes").AsInt(), 42);
  EXPECT_DOUBLE_EQ(
      parsed->At("gauges").At("trainer/virtual_seconds").AsDouble(), 3.25);
  const JsonValue& hist =
      parsed->At("histograms").At("quant/encode_seconds");
  EXPECT_EQ(hist.At("count").AsInt(), 1);
  EXPECT_DOUBLE_EQ(hist.At("sum").AsDouble(), 1e-4);
}

TEST(MetricsRegistryTest, PrintTableListsEveryMetric) {
  MetricsRegistry reg;
  reg.Count("comm/messages", 3);
  reg.SetGauge("trainer/virtual_seconds", 1.0);
  reg.Observe("quant/encode_seconds", 0.5);
  std::ostringstream os;
  reg.PrintTable(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("comm/messages"), std::string::npos);
  EXPECT_NE(table.find("trainer/virtual_seconds"), std::string::npos);
  EXPECT_NE(table.find("quant/encode_seconds"), std::string::npos);
}

TEST(MetricsRegistryTest, QuantilesInterpolateInsideBuckets) {
  MetricsRegistry reg;
  // 20 integer observations 1..20 over bounds {10, 20}: ten per bucket.
  for (int v = 1; v <= 20; ++v) {
    reg.ObserveWithBounds("q", static_cast<double>(v), {10.0, 20.0});
  }
  const HistogramSnapshot snap = reg.HistogramFor("q");
  // p50 = rank 10, the last observation of bucket 0: exactly its bound.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 10.0);
  // p95 = rank 19, 9/10 through bucket (10, 20].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 19.0);
  // p99 = rank 20, the top of the histogram.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 20.0);
  // q=0 still returns a value inside the first bucket, above the min.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.9);
}

TEST(MetricsRegistryTest, QuantilesClampToObservedRange) {
  MetricsRegistry reg;
  reg.ObserveWithBounds("single", 5.0, {10.0});
  // One observation: every quantile is that observation, not the bucket
  // bound above it.
  EXPECT_DOUBLE_EQ(reg.HistogramFor("single").Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(reg.HistogramFor("single").Quantile(0.99), 5.0);

  reg.ObserveWithBounds("overflow", 50.0, {10.0});
  // Overflow bucket interpolates up to the observed max.
  EXPECT_DOUBLE_EQ(reg.HistogramFor("overflow").Quantile(0.99), 50.0);

  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, JsonAndTableExportQuantiles) {
  MetricsRegistry reg;
  for (int v = 1; v <= 20; ++v) {
    reg.ObserveWithBounds("lat", static_cast<double>(v), {10.0, 20.0});
  }
  const JsonValue json = reg.ToJson();
  const JsonValue& entry = json.At("histograms").At("lat");
  EXPECT_DOUBLE_EQ(entry.At("p50").AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(entry.At("p95").AsDouble(), 19.0);
  EXPECT_DOUBLE_EQ(entry.At("p99").AsDouble(), 20.0);

  std::ostringstream os;
  reg.PrintTable(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsElapsedIntoGlobalHistogram) {
  MetricsRegistry& global = MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.set_enabled(true);
  global.Reset();
  {
    ScopedTimer timer("test/scoped_seconds");
  }
  EXPECT_EQ(global.HistogramFor("test/scoped_seconds").count, 1);
  EXPECT_GE(global.HistogramFor("test/scoped_seconds").sum, 0.0);
  global.Reset();
  global.set_enabled(was_enabled);
}

}  // namespace
}  // namespace obs
}  // namespace lpsgd
