// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "obs/json.h"
#include "quant/codec.h"
#include "quant/workspace.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace obs {
namespace {

// Enables the global profiler for one test and restores it after (the
// PhaseTimer fast path consults the global flag, not a local instance).
class ProfileGuard {
 public:
  ProfileGuard() : was_(Profiler::Global().enabled()) {
    Profiler::Global().set_enabled(true);
    Profiler::Global().Reset();
  }
  ~ProfileGuard() {
    Profiler::Global().Reset();
    Profiler::Global().set_enabled(was_);
  }

 private:
  bool was_;
};

class FlightGuard {
 public:
  FlightGuard() : was_(FlightRecorder::Global().enabled()) {
    FlightRecorder::Global().set_enabled(true);
    FlightRecorder::Global().Reset();
  }
  ~FlightGuard() {
    FlightRecorder::Global().Reset();
    FlightRecorder::Global().set_output_prefix("");
    FlightRecorder::Global().set_enabled(was_);
  }

 private:
  bool was_;
};

TEST(PhaseTimesTest, AddMergeAndTotals) {
  PhaseTimes times;
  times.Add(kPhaseEncode, 0.25);
  times.Add(kPhaseEncode, 0.25);
  times.AddVirtual(kPhaseWire, 1.5);
  EXPECT_DOUBLE_EQ(times.wall[kPhaseEncode], 0.5);
  EXPECT_EQ(times.calls[kPhaseEncode], 2);
  EXPECT_DOUBLE_EQ(times.WallTotal(), 0.5);
  EXPECT_DOUBLE_EQ(times.VirtualTotal(), 1.5);

  PhaseTimes other;
  other.Add(kPhaseDecode, 0.5);
  times.Merge(other);
  EXPECT_DOUBLE_EQ(times.WallTotal(), 1.0);
  EXPECT_EQ(times.calls[kPhaseDecode], 1);

  times.Clear();
  EXPECT_DOUBLE_EQ(times.WallTotal(), 0.0);
  EXPECT_DOUBLE_EQ(times.VirtualTotal(), 0.0);
  EXPECT_EQ(times.calls[kPhaseEncode], 0);
}

TEST(PhaseTimesTest, PhaseNamesAreStable) {
  EXPECT_STREQ(ProfilePhaseName(kPhaseForward), "forward");
  EXPECT_STREQ(ProfilePhaseName(kPhaseBackward), "backward");
  EXPECT_STREQ(ProfilePhaseName(kPhaseOptimizer), "optimizer");
  EXPECT_STREQ(ProfilePhaseName(kPhaseEncode), "encode");
  EXPECT_STREQ(ProfilePhaseName(kPhaseWire), "wire");
  EXPECT_STREQ(ProfilePhaseName(kPhaseDecode), "decode");
  EXPECT_STREQ(ProfilePhaseName(kPhaseSum), "sum");
  EXPECT_STREQ(ProfilePhaseName(kPhaseRetry), "retry");
}

TEST(TimeBreakdownTest, CoverageIsAttributedOverMeasured) {
  TimeBreakdown breakdown;
  breakdown.wall_total = 2.0;
  breakdown.phases.Add(kPhaseForward, 1.0);
  breakdown.phases.Add(kPhaseBackward, 0.98);
  EXPECT_DOUBLE_EQ(breakdown.AttributedWall(), 1.98);
  EXPECT_DOUBLE_EQ(breakdown.Coverage(), 0.99);
  // Nothing measured yet: coverage is vacuously complete, not NaN.
  EXPECT_DOUBLE_EQ(TimeBreakdown{}.Coverage(), 1.0);
}

TEST(ProfilerTest, StepsFoldIntoHistoryAndTotals) {
  Profiler profiler(/*enabled=*/true);
  for (int64_t step = 0; step < 3; ++step) {
    profiler.BeginStep(step);
    profiler.AddPhase(kPhaseForward, 0.5);
    profiler.AddVirtual(kPhaseWire, 2.0);
    profiler.EndStep(/*virtual_seconds=*/2.5);
  }

  EXPECT_EQ(profiler.steps_recorded(), 3);
  const TimeBreakdown last = profiler.LastStep();
  EXPECT_EQ(last.step, 2);
  EXPECT_DOUBLE_EQ(last.phases.wall[kPhaseForward], 0.5);
  EXPECT_GE(last.wall_total, 0.0);

  const TimeBreakdown totals = profiler.Totals();
  EXPECT_EQ(totals.steps, 3);
  EXPECT_DOUBLE_EQ(totals.phases.wall[kPhaseForward], 1.5);
  EXPECT_DOUBLE_EQ(totals.virtual_total, 7.5);

  const std::vector<TimeBreakdown> steps = profiler.Steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps.front().step, 0);
  EXPECT_EQ(steps.back().step, 2);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler profiler(/*enabled=*/false);
  profiler.BeginStep(0);
  profiler.AddPhase(kPhaseForward, 1.0);
  profiler.EndStep(1.0);
  EXPECT_EQ(profiler.steps_recorded(), 0);
  EXPECT_DOUBLE_EQ(profiler.Totals().phases.WallTotal(), 0.0);
}

TEST(ProfilerTest, AbandonedStepIsDiscardedByNextBegin) {
  Profiler profiler(/*enabled=*/true);
  profiler.BeginStep(0);
  profiler.AddPhase(kPhaseForward, 1.0);  // step 0 never ends (failed)
  profiler.BeginStep(1);
  profiler.AddPhase(kPhaseBackward, 0.25);
  profiler.EndStep(0.0);

  EXPECT_EQ(profiler.steps_recorded(), 1);
  const TimeBreakdown totals = profiler.Totals();
  EXPECT_DOUBLE_EQ(totals.phases.wall[kPhaseForward], 0.0);
  EXPECT_DOUBLE_EQ(totals.phases.wall[kPhaseBackward], 0.25);
}

TEST(ProfilerTest, JsonExportMatchesSchema) {
  Profiler profiler(/*enabled=*/true);
  profiler.BeginStep(7);
  profiler.AddPhase(kPhaseEncode, 0.125);
  profiler.AddVirtual(kPhaseWire, 3.0);
  profiler.EndStep(3.0);

  // Round-trip through the serializer: the export must stay parseable.
  auto parsed = JsonValue::Parse(profiler.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = *parsed;
  EXPECT_EQ(root.At("schema_version").AsInt(), 1);
  EXPECT_EQ(root.At("kind").AsString(), "profile");
  EXPECT_EQ(root.At("steps_recorded").AsInt(), 1);

  const JsonValue& totals = root.At("totals");
  EXPECT_TRUE(totals.Has("coverage"));
  EXPECT_TRUE(totals.Has("attributed_wall"));
  const JsonValue& phases = totals.At("phases");
  for (int p = 0; p < kNumProfilePhases; ++p) {
    ASSERT_TRUE(phases.Has(ProfilePhaseName(p))) << ProfilePhaseName(p);
    const JsonValue& entry = phases.At(ProfilePhaseName(p));
    EXPECT_TRUE(entry.Has("wall"));
    EXPECT_TRUE(entry.Has("virtual"));
    EXPECT_TRUE(entry.Has("calls"));
    EXPECT_TRUE(entry.Has("wall_share"));
  }
  EXPECT_DOUBLE_EQ(
      phases.At("encode").At("wall_share").AsDouble(), 1.0);

  const JsonValue& steps = root.At("steps");
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps.AsArray()[0].At("step").AsInt(), 7);
}

TEST(ProfilerTest, ChromeTraceLaysPhasesOnStepSpan) {
  Profiler profiler(/*enabled=*/true);
  profiler.BeginStep(3);
  profiler.AddPhase(kPhaseForward, 0.25);
  profiler.AddPhase(kPhaseSum, 0.5);
  profiler.EndStep(1.0);

  const JsonValue trace = profiler.ToChromeTraceJson();
  ASSERT_TRUE(trace.Has("traceEvents"));
  const auto& events = trace.At("traceEvents").AsArray();
  // Two active phases plus the step lane.
  ASSERT_EQ(events.size(), 3u);
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.At("ph").AsString(), "X");
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("dur"));
    EXPECT_TRUE(event.Has("tid"));
  }
  EXPECT_EQ(events.back().At("name").AsString(), "step");
  EXPECT_TRUE(events.back().At("args").Has("coverage"));
}

TEST(ProfilerTest, TableListsEveryPhaseAndCoverage) {
  Profiler profiler(/*enabled=*/true);
  profiler.BeginStep(0);
  profiler.AddPhase(kPhaseDecode, 0.5);
  profiler.EndStep(0.5);

  std::ostringstream os;
  profiler.PrintTable(os);
  const std::string table = os.str();
  for (int p = 0; p < kNumProfilePhases; ++p) {
    EXPECT_NE(table.find(ProfilePhaseName(p)), std::string::npos);
  }
  EXPECT_NE(table.find("total (measured)"), std::string::npos);
  EXPECT_NE(table.find("% covered"), std::string::npos);
}

TEST(ProfilerTest, WriteFilesProduceParseableJson) {
  Profiler profiler(/*enabled=*/true);
  profiler.BeginStep(0);
  profiler.AddPhase(kPhaseForward, 0.1);
  profiler.EndStep(0.1);

  const std::string base = ::testing::TempDir() + "/profile_test_out";
  const std::string profile_path = base + ".json";
  const std::string trace_path = base + ".trace.json";
  ASSERT_TRUE(profiler.WriteFile(profile_path).ok());
  ASSERT_TRUE(profiler.WriteChromeTraceFile(trace_path).ok());
  for (const std::string& path : {profile_path, trace_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_TRUE(JsonValue::Parse(contents.str()).ok()) << path;
    std::remove(path.c_str());
  }
}

TEST(PhaseTimerTest, RecordsIntoSinkWhileGloballyEnabled) {
  ProfileGuard guard;
  PhaseTimes times;
  {
    PhaseTimer timer(&times, kPhaseEncode);
  }
  EXPECT_EQ(times.calls[kPhaseEncode], 1);
  EXPECT_GE(times.wall[kPhaseEncode], 0.0);
}

TEST(PhaseTimerTest, DisabledTimerNeverTouchesSink) {
  ASSERT_FALSE(ProfileEnabled());
  PhaseTimes times;
  {
    PhaseTimer timer(&times, kPhaseEncode);
  }
  EXPECT_EQ(times.calls[kPhaseEncode], 0);
  EXPECT_DOUBLE_EQ(times.wall[kPhaseEncode], 0.0);
}

// The acceptance bound from the ISSUE: with the profiler disabled, the
// PhaseTimer instrumentation on the codec hot path costs <= 1% of encode
// throughput. Both loops are measured min-of-trials (the minimum is the
// noise-free estimate); the instrumented loop adds a timer per encode
// exactly like the codec hot paths do.
TEST(PhaseTimerTest, DisabledOverheadOnEncodeHotPathIsUnderOnePercent) {
  ASSERT_FALSE(ProfileEnabled());
  const int64_t n = 3 << 17;  // ~393k elements, ~1 ms per encode
  Tensor grad(Shape({n}));
  Rng rng(42);
  grad.FillGaussian(&rng, 1.0f);
  auto codec = CreateCodec(QsgdSpec(4));
  ASSERT_TRUE(codec.ok());
  CodecWorkspace workspace;
  std::vector<uint8_t> blob;
  PhaseTimes times;

  constexpr int kTrials = 9;
  constexpr int kEncodesPerTrial = 4;
  uint64_t tag = 0;
  // Warm up the workspace/blob capacities out of the measurement.
  (*codec)->Encode(grad.data(), grad.shape(), tag++, nullptr, &workspace,
                   &blob);

  // Interleave the two variants so machine noise (e.g. the rest of the
  // test suite running in parallel) hits both minimum pools symmetrically.
  double plain = 1e300;
  double instrumented = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    double start = MonotonicSeconds();
    for (int i = 0; i < kEncodesPerTrial; ++i) {
      (*codec)->Encode(grad.data(), grad.shape(), tag++, nullptr,
                       &workspace, &blob);
    }
    plain = std::min(plain, MonotonicSeconds() - start);

    start = MonotonicSeconds();
    for (int i = 0; i < kEncodesPerTrial; ++i) {
      PhaseTimer timer(&times, kPhaseEncode);
      (*codec)->Encode(grad.data(), grad.shape(), tag++, nullptr,
                       &workspace, &blob);
    }
    instrumented = std::min(instrumented, MonotonicSeconds() - start);
  }

  EXPECT_EQ(times.calls[kPhaseEncode], 0) << "timers ran while disabled";
  // <= 1% relative plus a tiny absolute guard for clock granularity.
  EXPECT_LE(instrumented, plain * 1.01 + 20e-6)
      << "disabled-profiler overhead above 1%: plain " << plain
      << "s vs instrumented " << instrumented << "s";
}

TEST(FlightRecorderTest, DisabledRecorderDropsRecords) {
  FlightRecorder recorder(/*enabled=*/false);
  recorder.Record(0, kPhaseEncode, 0, 0, 0.1, 0.0, "encode");
  recorder.OnExchangeFailure(DataLossError("x"), 0);
  EXPECT_EQ(recorder.record_count(), 0);
  EXPECT_EQ(recorder.dump_count(), 0);
  EXPECT_TRUE(recorder.LastDump().is_null());
}

TEST(FlightRecorderTest, DumpCarriesTriggerRecordsAndDeltas) {
  FlightRecorder recorder(/*enabled=*/true);
  recorder.Record(4, kPhaseEncode, 2, 1, 0.25, 0.0, "encode");
  recorder.Record(4, -1, -1, -1, 0.5, 1.5, "step");
  recorder.OnExchangeFailure(DataLossError("checksum mismatch"), 5);

  EXPECT_EQ(recorder.dump_count(), 1);
  // The trigger itself lands in the ring after the dump.
  EXPECT_EQ(recorder.record_count(), 3);

  auto parsed = JsonValue::Parse(recorder.LastDump().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& dump = *parsed;
  EXPECT_EQ(dump.At("schema_version").AsInt(), 1);
  EXPECT_EQ(dump.At("kind").AsString(), "flight_record");
  const JsonValue& trigger = dump.At("trigger");
  EXPECT_EQ(trigger.At("code_name").AsString(), "DATA_LOSS");
  EXPECT_EQ(trigger.At("iteration").AsInt(), 5);
  EXPECT_NE(trigger.At("message").AsString().find("checksum"),
            std::string::npos);
  EXPECT_TRUE(dump.Has("metric_deltas"));
  EXPECT_TRUE(dump.At("metric_deltas").Has("comm/retries"));

  const auto& records = dump.At("records").AsArray();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].At("label").AsString(), "encode");
  EXPECT_EQ(records[0].At("phase_name").AsString(), "encode");
  EXPECT_EQ(records[0].At("matrix").AsInt(), 2);
  EXPECT_EQ(records[1].At("label").AsString(), "step");
}

TEST(FlightRecorderTest, RingKeepsOnlyTheMostRecentRecords) {
  FlightRecorder recorder(/*enabled=*/true);
  const int64_t total = static_cast<int64_t>(FlightRecorder::kCapacity) + 16;
  for (int64_t i = 0; i < total; ++i) {
    recorder.Record(i, kPhaseSum, -1, -1, 0.0, 0.0, "sum");
  }
  recorder.OnExchangeFailure(UnavailableError("boom"), total);

  const JsonValue dump = recorder.LastDump();
  const auto& records = dump.At("records").AsArray();
  ASSERT_EQ(records.size(), FlightRecorder::kCapacity);
  // Oldest retained record is exactly `capacity` back from the end.
  EXPECT_EQ(records.front().At("sequence").AsInt(),
            total - static_cast<int64_t>(FlightRecorder::kCapacity));
  EXPECT_EQ(records.back().At("sequence").AsInt(), total - 1);
}

TEST(FlightRecorderTest, PrefixWritesOneFilePerDump) {
  FlightRecorder recorder(/*enabled=*/true);
  const std::string prefix = ::testing::TempDir() + "/flight_test";
  recorder.set_output_prefix(prefix);
  recorder.Record(0, kPhaseWire, -1, -1, 0.0, 0.0, "wire");
  recorder.OnExchangeFailure(DeadlineExceededError("late"), 1);
  recorder.OnExchangeFailure(AbortedError("rank 2 crashed"), 2);
  EXPECT_EQ(recorder.dump_count(), 2);

  for (int dump = 0; dump < 2; ++dump) {
    const std::string path =
        prefix + "." + std::to_string(dump) + ".json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream contents;
    contents << in.rdbuf();
    auto parsed = JsonValue::Parse(contents.str());
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status();
    EXPECT_EQ(parsed->At("kind").AsString(), "flight_record");
    std::remove(path.c_str());
  }
  // The second dump's history contains the first failure's marker record.
  const JsonValue last = recorder.LastDump();
  const auto& records = last.At("records").AsArray();
  bool found_fail_marker = false;
  for (const JsonValue& record : records) {
    if (record.At("label").AsString().rfind("fail:", 0) == 0) {
      found_fail_marker = true;
    }
  }
  EXPECT_TRUE(found_fail_marker);
}

TEST(FlightRecorderTest, ProfilerEndStepFeedsRecorder) {
  ProfileGuard profile_guard;
  FlightGuard flight_guard;
  Profiler& profiler = Profiler::Global();
  profiler.BeginStep(11);
  profiler.AddPhase(kPhaseForward, 0.5);
  profiler.AddVirtual(kPhaseWire, 2.0);
  profiler.EndStep(2.0);

  // One record per active phase (forward, wire) plus the step span.
  EXPECT_EQ(FlightRecorder::Global().record_count(), 3);
  FlightRecorder::Global().OnExchangeFailure(InternalError("x"), 11);
  const JsonValue dump = FlightRecorder::Global().LastDump();
  const auto& records = dump.At("records").AsArray();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].At("phase_name").AsString(), "forward");
  EXPECT_EQ(records[1].At("phase_name").AsString(), "wire");
  EXPECT_EQ(records[2].At("label").AsString(), "step");
  EXPECT_EQ(records[2].At("step").AsInt(), 11);
}

}  // namespace
}  // namespace obs
}  // namespace lpsgd
