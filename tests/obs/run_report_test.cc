// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/run_report.h"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace obs {
namespace {

JsonValue MakeEntryFields(int gpus) {
  JsonValue fields = JsonValue::Object();
  fields.Set("network", "AlexNet");
  fields.Set("gpus", gpus);
  return fields;
}

TEST(RunReportTest, ProducesSchemaVersionedDocument) {
  RunReport report;
  report.set_binary("unit_test");
  report.SetMeta("machine", "EC2 p2.8xlarge");
  report.AddEntry("perf_estimate", MakeEntryFields(4));
  report.AddEntry("perf_estimate", MakeEntryFields(8));
  ASSERT_EQ(report.entry_count(), 2u);

  MetricsRegistry metrics;
  metrics.Count("comm/wire_bytes", 777);

  std::ostringstream os;
  ASSERT_TRUE(report.Write(os, &metrics).ok());
  auto parsed = JsonValue::Parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("schema_version").AsInt(), 1);
  EXPECT_EQ(parsed->At("binary").AsString(), "unit_test");
  EXPECT_EQ(parsed->At("meta").At("machine").AsString(), "EC2 p2.8xlarge");
  const auto& entries = parsed->At("entries").AsArray();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].At("kind").AsString(), "perf_estimate");
  EXPECT_EQ(entries[1].At("gpus").AsInt(), 8);
  EXPECT_EQ(parsed->At("metrics").At("counters").At("comm/wire_bytes")
                .AsInt(),
            777);
}

TEST(RunReportTest, OmitsMetricsSectionWithoutRegistry) {
  RunReport report;
  const JsonValue doc = report.ToJson(nullptr);
  EXPECT_FALSE(doc.Has("metrics"));
  EXPECT_EQ(doc.At("schema_version").AsInt(), 1);
}

TEST(RunReportTest, DisabledReportDropsEntries) {
  RunReport report(/*enabled=*/false);
  report.AddEntry("perf_estimate", MakeEntryFields(2));
  EXPECT_EQ(report.entry_count(), 0u);
}

TEST(RunReportTest, ResetKeepsBinaryName) {
  RunReport report;
  report.set_binary("bench_x");
  report.SetMeta("k", "v");
  report.AddEntry("epoch", JsonValue::Object());
  report.Reset();
  EXPECT_EQ(report.entry_count(), 0u);
  const JsonValue doc = report.ToJson(nullptr);
  EXPECT_EQ(doc.At("binary").AsString(), "bench_x");
  EXPECT_TRUE(doc.At("meta").AsObject().empty());
}

}  // namespace
}  // namespace obs
}  // namespace lpsgd
