// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/json.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace lpsgd {
namespace obs {
namespace {

TEST(JsonValueTest, BuildsAndDumpsObjects) {
  JsonValue v = JsonValue::Object();
  v.Set("name", "qsgd");
  v.Set("bits", 4);
  v.Set("ratio", 0.125);
  v.Set("enabled", true);
  v.Set("missing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append(2);
  v.Set("counts", std::move(arr));

  const std::string compact = v.Dump();
  EXPECT_EQ(compact,
            "{\"bits\":4,\"counts\":[1,2],\"enabled\":true,"
            "\"missing\":null,\"name\":\"qsgd\",\"ratio\":0.125}");
}

TEST(JsonValueTest, RoundTripsThroughParse) {
  JsonValue v = JsonValue::Object();
  v.Set("text", "line1\nline2\t\"quoted\"");
  v.Set("big", int64_t{1} << 40);
  v.Set("small", -3.5e-9);
  JsonValue nested = JsonValue::Object();
  nested.Set("k", 42);
  v.Set("nested", std::move(nested));

  auto parsed = JsonValue::Parse(v.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("text").AsString(), "line1\nline2\t\"quoted\"");
  EXPECT_EQ(parsed->At("big").AsInt(), int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(parsed->At("small").AsDouble(), -3.5e-9);
  EXPECT_EQ(parsed->At("nested").At("k").AsInt(), 42);
}

TEST(JsonValueTest, ParsesEscapesAndUnicode) {
  auto parsed = JsonValue::Parse(R"({"s": "aé\n\\", "t": [true, null]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("s").AsString(), "a\xc3\xa9\n\\");
  ASSERT_EQ(parsed->At("t").AsArray().size(), 2u);
  EXPECT_TRUE(parsed->At("t").AsArray()[0].AsBool());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonValueTest, NonFiniteNumbersSerializeAsNull) {
  JsonValue v = JsonValue::Array();
  v.Append(std::nan(""));
  v.Append(1.0 / 0.0);
  EXPECT_EQ(v.Dump(), "[null,null]");
}

}  // namespace
}  // namespace obs
}  // namespace lpsgd
