// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace lpsgd {
namespace obs {
namespace {

TEST(TracerTest, RecordsSpansWithAnnotations) {
  Tracer tracer;
  const uint64_t plain = tracer.Begin("iteration", "trainer");
  tracer.End(plain);
  const uint64_t with_virtual = tracer.Begin("allreduce", "comm");
  tracer.EndWithVirtual(with_virtual, 1.0, 1.5);
  const uint64_t with_bytes = tracer.Begin("encode", "quant");
  tracer.EndWithBytes(with_bytes, 4096);

  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "iteration");
  EXPECT_EQ(events[0].category, "trainer");
  EXPECT_GE(events[0].wall_duration, 0.0);
  EXPECT_DOUBLE_EQ(events[1].virtual_start, 1.0);
  EXPECT_DOUBLE_EQ(events[1].virtual_end, 1.5);
  EXPECT_EQ(events[2].arg_bytes, 4096);
}

TEST(TracerTest, DisabledTracerHandsOutNullHandles) {
  Tracer tracer(/*enabled=*/false);
  const uint64_t handle = tracer.Begin("x", "y");
  EXPECT_EQ(handle, 0u);
  tracer.End(handle);  // must be a safe no-op
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, HandlesFromBeforeResetAreIgnored) {
  Tracer tracer;
  const uint64_t stale = tracer.Begin("pre-reset", "t");
  tracer.Reset();
  tracer.End(stale);  // stale handle: must not touch the emptied buffer
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  Tracer tracer;
  const uint64_t a = tracer.Begin("iteration", "trainer");
  tracer.EndWithVirtual(a, 0.0, 0.25);
  const uint64_t b = tracer.Begin("matrix \"W0\"\n", "comm");  // escapes
  tracer.EndWithBytes(b, 512);

  std::ostringstream os;
  ASSERT_TRUE(tracer.WriteChromeTrace(os).ok());

  // The acceptance check: the emitted document must parse back as JSON
  // and follow the trace_event shape chrome://tracing expects.
  auto parsed = JsonValue::Parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->At("displayTimeUnit").AsString(), "ms");
  const auto& events = parsed->At("traceEvents").AsArray();
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.At("ph").AsString(), "X");
    EXPECT_TRUE(e.Has("name"));
    EXPECT_TRUE(e.Has("cat"));
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
    EXPECT_GE(e.At("ts").AsDouble(), 0.0);
    EXPECT_GE(e.At("dur").AsDouble(), 0.0);
  }
  EXPECT_EQ(events[0].At("name").AsString(), "iteration");
  EXPECT_DOUBLE_EQ(
      events[0].At("args").At("virtual_duration_s").AsDouble(), 0.25);
  EXPECT_EQ(events[1].At("args").At("bytes").AsInt(), 512);
}

TEST(TraceSpanTest, RaiiSpanLandsInGlobalTracer) {
  Tracer& global = Tracer::Global();
  const bool was_enabled = global.enabled();
  global.set_enabled(true);
  global.Reset();
  {
    TraceSpan span("scoped", "test");
    span.set_virtual_range(2.0, 3.0);
  }
  const std::vector<TraceEvent> events = global.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_DOUBLE_EQ(events[0].virtual_start, 2.0);
  EXPECT_DOUBLE_EQ(events[0].virtual_end, 3.0);
  global.Reset();
  global.set_enabled(was_enabled);
}

}  // namespace
}  // namespace obs
}  // namespace lpsgd
