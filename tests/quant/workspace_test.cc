// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Allocation-regression tests for the codec workspace design (DESIGN.md
// "Hot-path kernels and workspaces"): after warmup, Encode/Decode through a
// CodecWorkspace must never touch the heap, and the MPI aggregator's
// persistent exchange buffers must stop growing. This test overrides the
// global allocator to count allocations, so it lives in its own binary
// (quant_workspace_test) and must not be merged into quant_test.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "comm/allreduce.h"
#include "comm/mpi_reduce_bcast.h"
#include "machine/specs.h"
#include "obs/metrics.h"
#include "quant/codec.h"
#include "quant/workspace.h"
#include "tensor/shape.h"

namespace {

// Allocation counting is armed only around the exact calls under test, so
// gtest bookkeeping between assertions is not counted.
std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};

}  // namespace

// noinline keeps the replaced operators out of callers, so the optimizer
// cannot pair an inlined free() against what it believes is the built-in
// allocator (-Wmismatched-new-delete) — and every allocation goes through
// the counter.
__attribute__((noinline)) void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

__attribute__((noinline)) void* operator new[](std::size_t size) {
  return operator new(size);
}

__attribute__((noinline)) void operator delete(void* ptr) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete[](void* ptr) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete(void* ptr,
                                               std::size_t) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete[](void* ptr,
                                                 std::size_t) noexcept {
  std::free(ptr);
}

namespace lpsgd {
namespace {

struct CodecCase {
  const char* name;
  CodecSpec spec;
};

CodecSpec QsgdWith(QsgdNorm norm, QsgdLevelScheme levels) {
  CodecSpec spec = QsgdSpec(4);
  spec.bucket_size = 512;
  spec.norm = norm;
  spec.levels = levels;
  return spec;
}

std::vector<CodecCase> AllCodecCases() {
  return {
      {"fp32", FullPrecisionSpec()},
      {"qsgd4", QsgdWith(QsgdNorm::kMax, QsgdLevelScheme::kSignMagnitude)},
      {"qsgd4_l2_sym", QsgdWith(QsgdNorm::kL2, QsgdLevelScheme::kSymmetric)},
      {"aqsgd4", AdaptiveQsgdSpec(4)},
      {"one_bit_stock", OneBitSgdSpec()},
      {"one_bit_star", OneBitSgdReshapedSpec(64)},
      {"topk_25pct", TopKSpec(0.25)},
      {"terngrad", TernGradSpec()},
      {"terngrad_clip", TernGradSpec(256, 2.5)},
      {"nuq4", NuqsgdSpec(4)},
      {"ecq4", EcqSgdSpec(4)},
  };
}

std::vector<float> TestGradient(int64_t n, uint64_t seed) {
  std::vector<float> grad(static_cast<size_t>(n));
  Rng rng(seed);
  for (auto& g : grad) {
    g = static_cast<float>(rng.NextGaussian());
  }
  return grad;
}

// Tentpole invariant: once the workspace (and the caller's blob) have grown
// to the matrix size, further Encode/Decode rounds allocate nothing — for
// every codec, including the stochastic and error-feedback ones.
TEST(WorkspaceAllocationTest, CodecPathAllocatesNothingAfterWarmup) {
  auto& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(false);  // metric mutation is not part of the path

  const int64_t n = 4096;
  const Shape shape({64, 64});
  const std::vector<float> grad = TestGradient(n, 0xa110cULL);

  for (const CodecCase& c : AllCodecCases()) {
    SCOPED_TRACE(c.name);
    auto codec = c.spec.Create();
    ASSERT_TRUE(codec.ok());
    std::vector<float> error(static_cast<size_t>(n), 0.0f);
    std::vector<float>* error_ptr =
        (*codec)->UsesErrorFeedback() ? &error : nullptr;
    CodecWorkspace ws;
    std::vector<uint8_t> blob;
    std::vector<float> decoded(static_cast<size_t>(n));

    // Two warmup rounds grow every buffer to its steady-state capacity.
    for (uint64_t round = 0; round < 2; ++round) {
      (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/round,
                       error_ptr, &ws, &blob);
      CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                       &ws, decoded.data()));
    }

    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/2, error_ptr,
                     &ws, &blob);
    CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                     &ws, decoded.data()));
    g_count_allocations.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0);
  }

  registry.set_enabled(was_enabled);
}

// A workspace carries no cross-call state: bytes produced through a
// workspace dirtied by every other codec must equal bytes from a fresh one.
TEST(WorkspaceTest, DirtyWorkspaceProducesIdenticalBytes) {
  const int64_t n = 1000;
  const Shape shape({25, 40});
  const std::vector<float> grad = TestGradient(n, 0xd1f7ULL);
  const std::vector<CodecCase> cases = AllCodecCases();

  for (const CodecCase& c : cases) {
    SCOPED_TRACE(c.name);
    auto codec = c.spec.Create();
    ASSERT_TRUE(codec.ok());

    CodecWorkspace dirty;
    std::vector<uint8_t> scratch_blob;
    std::vector<float> scratch_out(static_cast<size_t>(n));
    for (const CodecCase& other : cases) {
      auto other_codec = other.spec.Create();
      ASSERT_TRUE(other_codec.ok());
      std::vector<float> other_error(static_cast<size_t>(n), 0.0f);
      (*other_codec)
          ->Encode(grad.data(), shape, /*stochastic_tag=*/99,
                   (*other_codec)->UsesErrorFeedback() ? &other_error
                                                       : nullptr,
                   &dirty, &scratch_blob);
      CHECK_OK((*other_codec)
          ->Decode(scratch_blob.data(),
                   static_cast<int64_t>(scratch_blob.size()), shape, &dirty,
                   scratch_out.data()));
    }

    std::vector<float> error_fresh(static_cast<size_t>(n), 0.0f);
    std::vector<float> error_dirty(static_cast<size_t>(n), 0.0f);
    const bool uses_error = (*codec)->UsesErrorFeedback();
    CodecWorkspace fresh;
    std::vector<uint8_t> blob_fresh;
    std::vector<uint8_t> blob_dirty;
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/7,
                     uses_error ? &error_fresh : nullptr, &fresh,
                     &blob_fresh);
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/7,
                     uses_error ? &error_dirty : nullptr, &dirty,
                     &blob_dirty);
    EXPECT_EQ(blob_fresh, blob_dirty);
    EXPECT_EQ(error_fresh, error_dirty);

    std::vector<float> out_fresh(static_cast<size_t>(n));
    std::vector<float> out_dirty(static_cast<size_t>(n));
    CHECK_OK((*codec)->Decode(blob_fresh.data(),
                     static_cast<int64_t>(blob_fresh.size()), shape, &fresh,
                     out_fresh.data()));
    CHECK_OK((*codec)->Decode(blob_dirty.data(),
                     static_cast<int64_t>(blob_dirty.size()), shape, &dirty,
                     out_dirty.data()));
    EXPECT_EQ(0, std::memcmp(out_fresh.data(), out_dirty.data(),
                             static_cast<size_t>(n) * sizeof(float)));
  }
}

// The legacy (workspace-less) overloads must agree with the workspace path
// byte for byte — they are the same kernels through a local workspace.
TEST(WorkspaceTest, LegacyOverloadsMatchWorkspaceOverloads) {
  const int64_t n = 1000;
  const Shape shape({25, 40});
  const std::vector<float> grad = TestGradient(n, 0x1e9acULL);

  for (const CodecCase& c : AllCodecCases()) {
    SCOPED_TRACE(c.name);
    auto codec = c.spec.Create();
    ASSERT_TRUE(codec.ok());
    const bool uses_error = (*codec)->UsesErrorFeedback();

    std::vector<float> error_legacy(static_cast<size_t>(n), 0.0f);
    std::vector<uint8_t> blob_legacy;
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/13,
                     uses_error ? &error_legacy : nullptr, &blob_legacy);

    std::vector<float> error_ws(static_cast<size_t>(n), 0.0f);
    CodecWorkspace ws;
    std::vector<uint8_t> blob_ws;
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/13,
                     uses_error ? &error_ws : nullptr, &ws, &blob_ws);

    EXPECT_EQ(blob_legacy, blob_ws);
    EXPECT_EQ(error_legacy, error_ws);

    std::vector<float> out_legacy(static_cast<size_t>(n));
    std::vector<float> out_ws(static_cast<size_t>(n));
    CHECK_OK((*codec)->Decode(blob_legacy.data(),
                     static_cast<int64_t>(blob_legacy.size()), shape,
                     out_legacy.data()));
    CHECK_OK((*codec)->Decode(blob_ws.data(), static_cast<int64_t>(blob_ws.size()),
                     shape, &ws, out_ws.data()));
    EXPECT_EQ(0, std::memcmp(out_legacy.data(), out_ws.data(),
                             static_cast<size_t>(n) * sizeof(float)));
  }
}

TEST(WorkspaceTest, EnsureSizeRecordsGrowthOnlyWhenCapacityGrows) {
  auto& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const int64_t events_before =
      registry.CounterValue("quant/workspace/grow_events");
  const int64_t bytes_before =
      registry.CounterValue("quant/workspace/grown_bytes");

  std::vector<float> buf;
  quant_internal::EnsureSize(&buf, 100);
  EXPECT_EQ(registry.CounterValue("quant/workspace/grow_events"),
            events_before + 1);
  EXPECT_GE(registry.CounterValue("quant/workspace/grown_bytes"),
            bytes_before + static_cast<int64_t>(100 * sizeof(float)));

  // Same size again, and a shrink within capacity: no further growth.
  const int64_t events_grown =
      registry.CounterValue("quant/workspace/grow_events");
  quant_internal::EnsureSize(&buf, 100);
  quant_internal::EnsureSize(&buf, 17);
  quant_internal::EnsureSize(&buf, 100);
  EXPECT_EQ(registry.CounterValue("quant/workspace/grow_events"),
            events_grown);

  registry.set_enabled(was_enabled);
}

// The MPI aggregator reaches a steady state: its per-slot workspaces and
// per-matrix exchange buffers grow during warmup and then stop — watched
// through the quant/workspace/grow_events counter, which every EnsureSize
// growth bumps.
TEST(WorkspaceAllocationTest, AggregatorWorkspaceGrowthStopsAfterWarmup) {
  auto& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const int k = 4;
  for (const CodecCase& c :
       {CodecCase{"qsgd4",
                  QsgdWith(QsgdNorm::kMax, QsgdLevelScheme::kSignMagnitude)},
        CodecCase{"one_bit_star", OneBitSgdReshapedSpec(64)},
        // Sparse path: the persistent (index, value) runs must reach a
        // steady state just like the dense decode buffers.
        CodecCase{"topk_25pct", TopKSpec(0.25)}}) {
    SCOPED_TRACE(c.name);
    auto aggregator = MpiReduceBcastAggregator::Create(
        k, c.spec, Ec2P2_8xlarge(), ExecutionContext::Serial());
    ASSERT_TRUE(aggregator.ok());

    // Two quantized matrices of different sizes plus one policy-bypassed
    // matrix exercising the full-precision pipeline's persistent sums.
    const std::vector<Shape> shapes = {Shape({16, 32}), Shape({25, 40}),
                                       Shape({8, 8})};
    std::vector<std::vector<std::vector<float>>> grads(shapes.size());
    std::vector<std::vector<std::vector<float>>> errors(shapes.size());
    for (size_t m = 0; m < shapes.size(); ++m) {
      const size_t n = static_cast<size_t>(shapes[m].element_count());
      for (int r = 0; r < k; ++r) {
        grads[m].push_back(
            TestGradient(static_cast<int64_t>(n),
                         0xbeefULL + m * 31 + static_cast<uint64_t>(r)));
        errors[m].emplace_back(n, 0.0f);
      }
    }

    auto run_once = [&](int64_t iteration) {
      std::vector<MatrixSlot> slots(shapes.size());
      for (size_t m = 0; m < shapes.size(); ++m) {
        slots[m].quant_shape = shapes[m];
        slots[m].quantized = m != 2;  // matrix 2 takes the fp pipeline
        for (int r = 0; r < k; ++r) {
          slots[m].rank_grads.push_back(
              grads[m][static_cast<size_t>(r)].data());
          slots[m].rank_errors.push_back(&errors[m][static_cast<size_t>(r)]);
        }
      }
      auto stats = (*aggregator)->AllReduce(&slots, iteration);
      ASSERT_TRUE(stats.ok());
    };

    run_once(0);
    run_once(1);
    const int64_t grow_events_after_warmup =
        registry.CounterValue("quant/workspace/grow_events");
    for (int64_t iteration = 2; iteration < 6; ++iteration) {
      run_once(iteration);
    }
    EXPECT_EQ(registry.CounterValue("quant/workspace/grow_events"),
              grow_events_after_warmup)
        << "aggregator exchange buffers grew after warmup";
  }

  registry.set_enabled(was_enabled);
}

// The NCCL ring's sparse allgather path reaches the same steady state:
// per-slot workspaces, per-(matrix, rank) index/value runs, and the
// per-matrix scatter-add aggregate all stop growing after warmup.
TEST(WorkspaceAllocationTest, NcclSparseBuffersStopGrowingAfterWarmup) {
  auto& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const int k = 4;
  auto aggregator =
      CreateAggregator(CommPrimitive::kNccl, k, TopKSpec(0.25),
                       Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(aggregator.ok());

  const std::vector<Shape> shapes = {Shape({16, 32}), Shape({25, 40})};
  std::vector<std::vector<std::vector<float>>> grads(shapes.size());
  std::vector<std::vector<std::vector<float>>> errors(shapes.size());
  for (size_t m = 0; m < shapes.size(); ++m) {
    const size_t n = static_cast<size_t>(shapes[m].element_count());
    for (int r = 0; r < k; ++r) {
      grads[m].push_back(
          TestGradient(static_cast<int64_t>(n),
                       0xcafeULL + m * 31 + static_cast<uint64_t>(r)));
      errors[m].emplace_back(n, 0.0f);
    }
  }
  auto run_once = [&](int64_t iteration) {
    std::vector<MatrixSlot> slots(shapes.size());
    for (size_t m = 0; m < shapes.size(); ++m) {
      slots[m].quant_shape = shapes[m];
      for (int r = 0; r < k; ++r) {
        slots[m].rank_grads.push_back(
            grads[m][static_cast<size_t>(r)].data());
        slots[m].rank_errors.push_back(&errors[m][static_cast<size_t>(r)]);
      }
    }
    auto stats = (*aggregator)->AllReduce(&slots, iteration);
    ASSERT_TRUE(stats.ok());
  };

  run_once(0);
  run_once(1);
  const int64_t grow_events_after_warmup =
      registry.CounterValue("quant/workspace/grow_events");
  for (int64_t iteration = 2; iteration < 6; ++iteration) {
    run_once(iteration);
  }
  EXPECT_EQ(registry.CounterValue("quant/workspace/grow_events"),
            grow_events_after_warmup)
      << "NCCL sparse exchange buffers grew after warmup";

  registry.set_enabled(was_enabled);
}

// A failed exchange must leave the aggregator's persistent buffers and
// owner-side residuals safe to reuse: with the caller's slot state
// restored (the retry wrapper's job, emulated here) and the same iteration
// re-run, the continuation must be bit-identical to a run that never saw
// the failure. Exercised for both failure points — a rank blob corrupted
// in the reduce stage, and the aggregate blob corrupted in the broadcast
// stage after the owner residuals were already advanced.
TEST(WorkspaceTest, ExchangeStateSafeToReuseAfterFailedExchange) {
  const int k = 4;
  const std::vector<Shape> shapes = {Shape({16, 32}), Shape({25, 40})};
  const int64_t iterations = 6;

  for (const CodecCase& c :
       {CodecCase{"one_bit_star", OneBitSgdReshapedSpec(64)},
        CodecCase{"topk_25pct", TopKSpec(0.25)},
        CodecCase{"qsgd4",
                  QsgdWith(QsgdNorm::kMax, QsgdLevelScheme::kSignMagnitude)}}) {
    SCOPED_TRACE(c.name);

    using State = std::vector<std::vector<std::vector<float>>>;  // [m][r]
    const auto make_state = [&](State* grads, State* errors) {
      grads->assign(shapes.size(), {});
      errors->assign(shapes.size(), {});
      for (size_t m = 0; m < shapes.size(); ++m) {
        const size_t n = static_cast<size_t>(shapes[m].element_count());
        for (int r = 0; r < k; ++r) {
          (*grads)[m].push_back(
              TestGradient(static_cast<int64_t>(n),
                           0xfa17ULL + m * 31 + static_cast<uint64_t>(r)));
          (*errors)[m].emplace_back(n, 0.0f);
        }
      }
    };
    const auto run_iteration = [&](MpiReduceBcastAggregator* aggregator,
                                   State* grads, State* errors,
                                   int64_t iteration) {
      std::vector<MatrixSlot> slots(shapes.size());
      for (size_t m = 0; m < shapes.size(); ++m) {
        slots[m].quant_shape = shapes[m];
        slots[m].quantized = true;
        for (int r = 0; r < k; ++r) {
          slots[m].rank_grads.push_back(
              (*grads)[m][static_cast<size_t>(r)].data());
          slots[m].rank_errors.push_back(
              &(*errors)[m][static_cast<size_t>(r)]);
        }
      }
      return (*aggregator).AllReduce(&slots, iteration);
    };

    // Reference: the same schedule with no failures.
    auto reference = MpiReduceBcastAggregator::Create(
        k, c.spec, Ec2P2_8xlarge(), ExecutionContext::Serial());
    ASSERT_TRUE(reference.ok());
    State ref_grads, ref_errors;
    make_state(&ref_grads, &ref_errors);
    for (int64_t it = 0; it < iterations; ++it) {
      ASSERT_TRUE(
          run_iteration(reference->get(), &ref_grads, &ref_errors, it).ok());
    }

    auto faulty = MpiReduceBcastAggregator::Create(
        k, c.spec, Ec2P2_8xlarge(), ExecutionContext::Serial());
    ASSERT_TRUE(faulty.ok());
    State grads, errors;
    make_state(&grads, &errors);
    for (int64_t it = 0; it < iterations; ++it) {
      const bool fail_reduce = it == 1;
      const bool fail_bcast = it == 3;
      if (fail_reduce || fail_bcast) {
        // Emulate the retry wrapper: snapshot caller state, provoke a
        // checksum failure, restore, and retry the same iteration.
        const State grads_snapshot = grads;
        const State errors_snapshot = errors;
        (*faulty)->set_wire_tamper(
            [&](int64_t, int64_t matrix, int rank, uint8_t* data,
                int64_t size) {
              const bool hit = fail_reduce ? (matrix == 1 && rank == 2)
                                           : (matrix == 0 && rank == -1);
              if (hit && size > 0) data[size / 2] ^= 0x10;
              return hit;
            });
        ASSERT_FALSE(
            run_iteration(faulty->get(), &grads, &errors, it).ok());
        (*faulty)->set_wire_tamper(nullptr);
        grads = grads_snapshot;
        errors = errors_snapshot;
      }
      ASSERT_TRUE(run_iteration(faulty->get(), &grads, &errors, it).ok());
    }

    EXPECT_EQ(ref_grads, grads)
        << "aggregated gradients diverged after a failed exchange";
    EXPECT_EQ(ref_errors, errors)
        << "error-feedback residuals diverged after a failed exchange";
  }
}

}  // namespace
}  // namespace lpsgd
