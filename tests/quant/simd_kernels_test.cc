// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// SIMD/scalar bit-identity property tests: for every codec configuration,
// the blob bytes, the error-feedback state, and the decoded floats produced
// under a forced vector ISA must be byte-for-byte what the scalar golden
// reference produces. Lengths are chosen to hit every head/tile/tail split
// of the vector kernels (word-straddling buckets, sub-word tails, exact
// tile multiples); wire_format_test.cc pins the absolute bytes, this file
// pins scalar==SIMD at sizes the goldens do not cover.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd/simd.h"
#include "quant/codec.h"
#include "quant/workspace.h"
#include "tensor/shape.h"

namespace lpsgd {
namespace {

std::vector<float> PropertyGradient(int64_t n) {
  std::vector<float> grad(static_cast<size_t>(n));
  Rng rng(0x51D5EEDULL + static_cast<uint64_t>(n));
  for (auto& g : grad) g = static_cast<float>(rng.NextGaussian());
  // Edge values the lane math must carry through unchanged: signed zeros,
  // subnormals, and a zero stretch that produces zero-scale buckets.
  if (n > 0) grad[0] = -0.0f;
  if (n > 1) grad[1] = 0.0f;
  if (n > 2) grad[2] = 1e-42f;
  if (n > 3) grad[3] = -1e-42f;
  for (int64_t i = 10; i < 40 && i < n; ++i) grad[static_cast<size_t>(i)] = 0.0f;
  return grad;
}

// Lengths covering the kernel structure: empty-ish, sub-word, word-straddle,
// exact words, tile boundary (64 words per tile), and large odd sizes.
const int64_t kLengths[] = {1,   2,   3,   5,    7,    8,    9,   15,  16,
                            17,  31,  32,  33,   63,   64,   65,  100, 127,
                            255, 256, 257, 511,  513,  1000, 1023, 1024,
                            1025, 2048, 2051};

struct PropertyCase {
  const char* name;
  CodecSpec spec;
};

CodecSpec Qsgd(int bits, int64_t bucket, QsgdNorm norm, QsgdLevelScheme lv) {
  CodecSpec spec = QsgdSpec(bits);
  spec.bucket_size = bucket;
  spec.norm = norm;
  spec.levels = lv;
  return spec;
}

CodecSpec OneBitStar(int64_t bucket, bool ef) {
  CodecSpec spec = OneBitSgdReshapedSpec(bucket);
  spec.error_feedback = ef;
  return spec;
}

CodecSpec Nuq(int bits, int64_t bucket) {
  CodecSpec spec = NuqsgdSpec(bits);
  spec.bucket_size = bucket;
  return spec;
}

CodecSpec Ecq(int bits, int64_t bucket, bool ef) {
  CodecSpec spec = EcqSgdSpec(bits);
  spec.bucket_size = bucket;
  spec.error_feedback = ef;
  return spec;
}

std::vector<PropertyCase> PropertyCases() {
  const QsgdNorm kL2 = QsgdNorm::kL2;
  const QsgdNorm kMax = QsgdNorm::kMax;
  const QsgdLevelScheme kSm = QsgdLevelScheme::kSignMagnitude;
  const QsgdLevelScheme kSy = QsgdLevelScheme::kSymmetric;
  return {
      {"fp32", FullPrecisionSpec()},
      {"q2_b4", Qsgd(2, 4, kMax, kSm)},
      {"q2_b33", Qsgd(2, 33, kMax, kSm)},  // bucket straddles field words
      {"q4_b7", Qsgd(4, 7, kMax, kSm)},
      {"q4_b512", Qsgd(4, 512, kMax, kSm)},
      {"q4_b512_l2", Qsgd(4, 512, kL2, kSm)},
      {"q4_b512_sym", Qsgd(4, 512, kMax, kSy)},
      {"q4_b512_l2_sym", Qsgd(4, 512, kL2, kSy)},
      {"q8_b100", Qsgd(8, 100, kMax, kSm)},
      {"q16_b3", Qsgd(16, 3, kMax, kSm)},
      {"q16_b512", Qsgd(16, 512, kMax, kSm)},
      {"nuq4_b4", Nuq(4, 4)},
      {"nuq4_b512", Nuq(4, 512)},
      {"nuq8_b100", Nuq(8, 100)},
      {"ecq4_b4", Ecq(4, 4, true)},
      {"ecq4_b512", Ecq(4, 512, true)},
      {"ecq4_b512_no_ef", Ecq(4, 512, false)},
      {"ecq8_b100", Ecq(8, 100, true)},
      {"terngrad", TernGradSpec()},
      {"terngrad_b256", TernGradSpec(256)},
      {"terngrad_clip", TernGradSpec(0, 2.5)},
      {"one_bit_stock", OneBitSgdSpec()},
      {"one_bit_star_b4", OneBitStar(4, true)},
      {"one_bit_star_b64", OneBitStar(64, true)},
      {"one_bit_star_b64_no_ef", OneBitStar(64, false)},
      {"topk_1pct", TopKSpec(0.01)},
      {"topk_25pct", TopKSpec(0.25)},
  };
}

struct CodecRun {
  std::vector<uint8_t> blob1;   // fresh error-feedback state
  std::vector<uint8_t> blob2;   // after one error-feedback round
  std::vector<float> error;     // error-feedback state after round 2
  std::vector<float> decoded;   // round-2 blob decoded
};

CodecRun RunCodec(const CodecSpec& spec, const std::vector<float>& grad) {
  CodecRun run;
  auto codec = spec.Create();
  EXPECT_TRUE(codec.ok());
  if (!codec.ok()) return run;
  const int64_t n = static_cast<int64_t>(grad.size());
  const Shape shape({n});
  run.error.assign(grad.size(), 0.0f);
  std::vector<float>* error_ptr =
      (*codec)->UsesErrorFeedback() ? &run.error : nullptr;
  (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/777, error_ptr,
                   &run.blob1);
  (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/778, error_ptr,
                   &run.blob2);
  run.decoded.assign(grad.size(), 0.0f);
  EXPECT_TRUE((*codec)
                  ->Decode(run.blob2.data(),
                           static_cast<int64_t>(run.blob2.size()), shape,
                           run.decoded.data())
                  .ok());
  return run;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(SimdKernelsTest, EveryIsaMatchesScalarByteForByte) {
  const std::vector<PropertyCase> cases = PropertyCases();
  for (const int64_t n : kLengths) {
    const std::vector<float> grad = PropertyGradient(n);
    for (const PropertyCase& c : cases) {
      SCOPED_TRACE(testing::Message() << c.name << " n=" << n);
      CodecRun scalar_run;
      {
        ScopedSimdIsa force(SimdIsa::kScalar);
        scalar_run = RunCodec(c.spec, grad);
      }
      for (const SimdIsa isa : {SimdIsa::kAvx2, SimdIsa::kNeon}) {
        SCOPED_TRACE(SimdIsaName(isa));
        ScopedSimdIsa force(isa);
        const CodecRun simd_run = RunCodec(c.spec, grad);
        EXPECT_EQ(scalar_run.blob1, simd_run.blob1);
        EXPECT_EQ(scalar_run.blob2, simd_run.blob2);
        EXPECT_TRUE(BitwiseEqual(scalar_run.error, simd_run.error));
        EXPECT_TRUE(BitwiseEqual(scalar_run.decoded, simd_run.decoded));
      }
    }
  }
}

// Same property through the explicit-workspace overloads the exchange hot
// path uses — a warm workspace skips the growth path, so the SIMD kernels
// run against reused buffers here rather than fresh ones.
TEST(SimdKernelsTest, WorkspaceOverloadsMatchScalarByteForByte) {
  const int64_t kWorkspaceLengths[] = {7, 65, 513, 1025};
  const std::vector<PropertyCase> cases = PropertyCases();
  for (const int64_t n : kWorkspaceLengths) {
    const std::vector<float> grad = PropertyGradient(n);
    const Shape shape({n});
    for (const PropertyCase& c : cases) {
      SCOPED_TRACE(testing::Message() << c.name << " n=" << n);
      std::vector<uint8_t> scalar_blob;
      std::vector<float> scalar_decoded;
      for (const SimdIsa isa :
           {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
        SCOPED_TRACE(SimdIsaName(isa));
        ScopedSimdIsa force(isa);
        auto codec = c.spec.Create();
        ASSERT_TRUE(codec.ok());
        CodecWorkspace workspace;
        std::vector<uint8_t> blob;
        std::vector<float> decoded(grad.size(), 0.0f);
        std::vector<float> error(grad.size(), 0.0f);
        std::vector<float>* error_ptr =
            (*codec)->UsesErrorFeedback() ? &error : nullptr;
        // Two rounds so the second runs against a warm workspace.
        for (uint64_t round = 0; round < 2; ++round) {
          (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/91 + round,
                           error_ptr, &workspace, &blob);
          ASSERT_TRUE((*codec)
                          ->Decode(blob.data(),
                                   static_cast<int64_t>(blob.size()), shape,
                                   &workspace, decoded.data())
                          .ok());
        }
        if (isa == SimdIsa::kScalar) {
          scalar_blob = blob;
          scalar_decoded = decoded;
        } else {
          EXPECT_EQ(scalar_blob, blob);
          EXPECT_TRUE(BitwiseEqual(scalar_decoded, decoded));
        }
      }
    }
  }
}

}  // namespace
}  // namespace lpsgd
