// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/codec.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

TEST(CodecSpecTest, Labels) {
  EXPECT_EQ(FullPrecisionSpec().Label(), "32bit");
  EXPECT_EQ(QsgdSpec(4).Label(), "QSGD 4bit (b=512)");
  EXPECT_EQ(OneBitSgdSpec().Label(), "1bitSGD");
  EXPECT_EQ(OneBitSgdReshapedSpec(64).Label(), "1bitSGD* (b=64)");
  EXPECT_EQ(QsgdSpec(2).ShortLabel(), "Q2");
  EXPECT_EQ(OneBitSgdReshapedSpec().ShortLabel(), "1b*");
}

TEST(CodecSpecTest, PaperBucketSizes) {
  // Section 4.4: 2bit/128, 4bit/512, 8bit/512, 16bit/8192.
  EXPECT_EQ(QsgdSpec(2).bucket_size, 128);
  EXPECT_EQ(QsgdSpec(4).bucket_size, 512);
  EXPECT_EQ(QsgdSpec(8).bucket_size, 512);
  EXPECT_EQ(QsgdSpec(16).bucket_size, 8192);
  EXPECT_EQ(OneBitSgdReshapedSpec().bucket_size, 64);
}

TEST(CreateCodecTest, CreatesEveryKind) {
  for (const CodecSpec& spec :
       {FullPrecisionSpec(), QsgdSpec(2), QsgdSpec(4), QsgdSpec(8),
        QsgdSpec(16), OneBitSgdSpec(), OneBitSgdReshapedSpec(64)}) {
    auto codec = CreateCodec(spec);
    ASSERT_TRUE(codec.ok()) << spec.Label();
    EXPECT_FALSE((*codec)->Name().empty());
  }
}

TEST(CreateCodecTest, RejectsInvalidSpecs) {
  CodecSpec bad_bits = QsgdSpec(4);
  bad_bits.bits = 1;
  EXPECT_FALSE(CreateCodec(bad_bits).ok());
  bad_bits.bits = 33;
  EXPECT_FALSE(CreateCodec(bad_bits).ok());

  CodecSpec bad_bucket = QsgdSpec(4);
  bad_bucket.bucket_size = 0;
  EXPECT_FALSE(CreateCodec(bad_bucket).ok());

  CodecSpec bad_reshaped = OneBitSgdReshapedSpec(0);
  EXPECT_FALSE(CreateCodec(bad_reshaped).ok());
}

TEST(FullPrecisionCodecTest, RoundTripsExactly) {
  auto codec = CreateCodec(FullPrecisionSpec());
  ASSERT_TRUE(codec.ok());
  const Shape shape({7, 5});
  Tensor grad(shape);
  Rng rng(1);
  grad.FillGaussian(&rng, 2.0f);

  std::vector<uint8_t> blob;
  (*codec)->Encode(grad.data(), shape, 0, nullptr, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            (*codec)->EncodedSizeBytes(shape));
  EXPECT_EQ(blob.size(), 7u * 5u * 4u + 4u);  // payload + checksum word

  std::vector<float> decoded(35);
  CHECK_OK((*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                   decoded.data()));
  for (int64_t i = 0; i < 35; ++i) {
    EXPECT_EQ(decoded[static_cast<size_t>(i)], grad.at(i));
  }
}

// Encoded sizes must match the paper's arithmetic for every codec.
TEST(EncodedSizeTest, QsgdSizeFormula) {
  // n elements at `bits` bits packed into 32-bit words + one float per
  // bucket.
  for (int bits : {2, 4, 8, 16}) {
    auto codec = CreateCodec(QsgdSpec(bits));
    ASSERT_TRUE(codec.ok());
    const Shape shape({1000, 100});  // n = 100000
    const int64_t n = 100000;
    const int64_t bucket = QsgdSpec(bits).bucket_size;
    const int64_t buckets = (n + bucket - 1) / bucket;
    const int64_t per_word = 32 / bits;
    const int64_t words = (n + per_word - 1) / per_word;
    EXPECT_EQ((*codec)->EncodedSizeBytes(shape),
              buckets * 4 + words * 4 + codec_internal::kWireChecksumBytes)
        << bits;
  }
}

TEST(EncodedSizeTest, OneBitColumnSizeFormula) {
  auto codec = CreateCodec(OneBitSgdSpec());
  ASSERT_TRUE(codec.ok());
  // Dense-like matrix: rows=4096, cols=100: per column 2 floats +
  // ceil(4096/32) words.
  EXPECT_EQ((*codec)->EncodedSizeBytes(Shape({4096, 100})),
            100 * (8 + (4096 / 32) * 4) +
                codec_internal::kWireChecksumBytes);
  // Conv-like matrix: rows=3: per column 2 floats + 1 word = 12 bytes for
  // 3 values — NO compression at all (the Section 3.2 artefact) ...
  const Shape conv({3, 1000});
  EXPECT_EQ((*codec)->EncodedSizeBytes(conv),
            1000 * 12 + codec_internal::kWireChecksumBytes);
  EXPECT_GE((*codec)->EncodedSizeBytes(conv), conv.element_count() * 4);
  // ... and on 1x1 convolutions (rows = 1, e.g. ResNet bottlenecks) the
  // "compressed" form is 3x LARGER than full precision.
  const Shape one_by_one({1, 1000});
  EXPECT_EQ((*codec)->EncodedSizeBytes(one_by_one),
            3 * one_by_one.element_count() * 4 +
                codec_internal::kWireChecksumBytes);
}

TEST(EncodedSizeTest, ReshapedOneBitBeatsColumnVariantOnConvShapes) {
  auto column = CreateCodec(OneBitSgdSpec());
  auto reshaped = CreateCodec(OneBitSgdReshapedSpec(64));
  ASSERT_TRUE(column.ok());
  ASSERT_TRUE(reshaped.ok());
  const Shape conv({3, 100000});
  EXPECT_LT((*reshaped)->EncodedSizeBytes(conv),
            (*column)->EncodedSizeBytes(conv) / 5);
}

TEST(EncodedSizeTest, CompressionRatiosOrdering) {
  // More bits -> more bytes; all quantized codecs beat full precision on
  // bucket-friendly shapes.
  const Shape shape({512, 512});
  auto fp = CreateCodec(FullPrecisionSpec());
  int64_t previous = 0;
  for (int bits : {2, 4, 8, 16}) {
    auto codec = CreateCodec(QsgdSpec(bits));
    ASSERT_TRUE(codec.ok());
    const int64_t size = (*codec)->EncodedSizeBytes(shape);
    EXPECT_GT(size, previous) << bits;
    EXPECT_LT(size, (*fp)->EncodedSizeBytes(shape)) << bits;
    previous = size;
  }
}

TEST(NumChunksTest, MatchesBucketAndColumnCounts) {
  auto qsgd = CreateCodec(QsgdSpec(4));  // bucket 512
  EXPECT_EQ((*qsgd)->NumChunks(Shape({1024, 2})), 4);  // 2048/512
  EXPECT_EQ((*qsgd)->NumChunks(Shape({513})), 2);      // partial bucket

  auto one_bit = CreateCodec(OneBitSgdSpec());
  EXPECT_EQ((*one_bit)->NumChunks(Shape({3, 777})), 777);  // per column

  auto fp = CreateCodec(FullPrecisionSpec());
  EXPECT_EQ((*fp)->NumChunks(Shape({1000})), 0);
}

}  // namespace
}  // namespace lpsgd
