// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/topk.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

std::vector<float> EncodeDecode(const TopKCodec& codec, const Tensor& grad,
                                std::vector<float>* error) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), 0, error, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(grad.shape()));
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()), grad.shape(),
               decoded.data()));
  return decoded;
}

TEST(TopKCodecTest, KeepsExactlyTheLargestMagnitudes) {
  TopKCodec codec(/*density=*/0.25, /*error_feedback=*/false);
  const Shape shape({8});
  Tensor grad(shape);
  const float values[] = {0.1f, -5.0f, 0.2f, 3.0f, -0.3f, 0.4f, 0.0f, 1.0f};
  std::copy(values, values + 8, grad.data());

  const std::vector<float> decoded = EncodeDecode(codec, grad, nullptr);
  // k = 2: keeps -5 and 3, zeros the rest, values exact.
  EXPECT_FLOAT_EQ(decoded[1], -5.0f);
  EXPECT_FLOAT_EQ(decoded[3], 3.0f);
  for (int i : {0, 2, 4, 5, 6, 7}) {
    EXPECT_EQ(decoded[static_cast<size_t>(i)], 0.0f) << i;
  }
}

TEST(TopKCodecTest, KeptCountAtLeastOne) {
  TopKCodec codec(0.001, false);
  EXPECT_EQ(codec.KeptCount(10), 1);
  EXPECT_EQ(codec.KeptCount(10000), 10);
}

TEST(TopKCodecTest, EncodedSizeFormula) {
  TopKCodec codec(0.1, false);
  // n=1000 -> k=100. Indices are bit-packed at IndexBitWidth(1000) = 10
  // bits, 3 per word (values never straddle words): ceil(100/3) = 34
  // words = 136 bytes. Then k fp32 values and the checksum word.
  EXPECT_EQ(codec.EncodedSizeBytes(Shape({1000})),
            4 + 136 + 100 * 4 + codec_internal::kWireChecksumBytes);
}

TEST(TopKCodecTest, DensityOneIsLossless) {
  TopKCodec codec(1.0, false);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(1);
  grad.FillGaussian(&rng, 1.0f);
  const std::vector<float> decoded = EncodeDecode(codec, grad, nullptr);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(decoded[static_cast<size_t>(i)], grad.at(i));
  }
  // ... but still more bytes than fp32 (index overhead), the paper's
  // point: 64 indices at 6 bits, 5 per word -> 13 words = 52 bytes on
  // top of the 64 fp32 values.
  EXPECT_EQ(codec.EncodedSizeBytes(shape),
            4 + 52 + 64 * 4 + codec_internal::kWireChecksumBytes);
}

TEST(TopKCodecTest, ErrorFeedbackAccumulatesUnsentComponents) {
  TopKCodec codec(0.25, /*error_feedback=*/true);
  const Shape shape({4});
  Tensor grad(shape);
  grad.at(0) = 10.0f;
  grad.at(1) = 1.0f;
  grad.at(2) = 2.0f;
  grad.at(3) = 0.5f;
  std::vector<float> error(4, 0.0f);

  std::vector<float> decoded = EncodeDecode(codec, grad, &error);
  // k=1: only index 0 sent; others accumulate.
  EXPECT_FLOAT_EQ(decoded[0], 10.0f);
  EXPECT_FLOAT_EQ(error[0], 0.0f);
  EXPECT_FLOAT_EQ(error[1], 1.0f);
  EXPECT_FLOAT_EQ(error[2], 2.0f);
  EXPECT_FLOAT_EQ(error[3], 0.5f);

  // Second round with the same gradient: index 0 is sent again (largest),
  // but accumulated components keep growing until they win.
  decoded = EncodeDecode(codec, grad, &error);
  EXPECT_FLOAT_EQ(error[2], 4.0f);

  // Zero gradient rounds: the accumulated component 2 eventually wins.
  grad.SetZero();
  decoded = EncodeDecode(codec, grad, &error);
  EXPECT_FLOAT_EQ(decoded[2], 4.0f);
  EXPECT_FLOAT_EQ(error[2], 0.0f);
}

TEST(TopKCodecTest, RunningSumPreservedWithErrorFeedback) {
  // As with 1bitSGD, decoded_sum + residual == true_sum exactly.
  TopKCodec codec(0.1, true);
  const Shape shape({50});
  Rng rng(3);
  std::vector<float> error(50, 0.0f);
  std::vector<double> true_sum(50, 0.0), decoded_sum(50, 0.0);
  Tensor grad(shape);
  for (int iter = 0; iter < 100; ++iter) {
    grad.FillGaussian(&rng, 1.0f);
    for (int64_t i = 0; i < 50; ++i) {
      true_sum[static_cast<size_t>(i)] += grad.at(i);
    }
    const std::vector<float> decoded = EncodeDecode(codec, grad, &error);
    for (int64_t i = 0; i < 50; ++i) {
      decoded_sum[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(decoded_sum[static_cast<size_t>(i)] +
                    error[static_cast<size_t>(i)],
                true_sum[static_cast<size_t>(i)], 1e-3)
        << i;
  }
}

TEST(TopKCodecTest, FactoryAndSpec) {
  const CodecSpec spec = TopKSpec(0.05);
  EXPECT_EQ(spec.Label(), "TopK 5.0%");
  EXPECT_EQ(spec.ShortLabel(), "K5");
  auto codec = CreateCodec(spec);
  ASSERT_TRUE(codec.ok());
  EXPECT_TRUE((*codec)->UsesErrorFeedback());

  CodecSpec bad = TopKSpec(0.0);
  EXPECT_FALSE(CreateCodec(bad).ok());
  bad = TopKSpec(1.5);
  EXPECT_FALSE(CreateCodec(bad).ok());
}

class TopKDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(TopKDensityTest, RoundtripKeepsKLargestAndZerosRest) {
  const double density = GetParam();
  TopKCodec codec(density, false);
  const Shape shape({237});  // awkward size
  Tensor grad(shape);
  Rng rng(static_cast<uint64_t>(density * 1e6));
  grad.FillGaussian(&rng, 1.0f);

  const std::vector<float> decoded = EncodeDecode(codec, grad, nullptr);
  const int64_t k = codec.KeptCount(237);
  int64_t nonzero = 0;
  float min_kept = 1e30f;
  for (int64_t i = 0; i < 237; ++i) {
    if (decoded[static_cast<size_t>(i)] != 0.0f) {
      ++nonzero;
      EXPECT_EQ(decoded[static_cast<size_t>(i)], grad.at(i));
      min_kept = std::min(min_kept, std::abs(decoded[static_cast<size_t>(i)]));
    }
  }
  EXPECT_EQ(nonzero, k);
  // No dropped component may exceed the smallest kept magnitude.
  for (int64_t i = 0; i < 237; ++i) {
    if (decoded[static_cast<size_t>(i)] == 0.0f) {
      EXPECT_LE(std::abs(grad.at(i)), min_kept + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, TopKDensityTest,
                         ::testing::Values(0.004, 0.01, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace lpsgd
