// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/terngrad.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

std::vector<float> EncodeDecode(const TernGradCodec& codec, const Tensor& grad,
                                uint64_t tag) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), tag, nullptr, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(grad.shape()));
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                        grad.shape(), decoded.data()));
  return decoded;
}

TEST(TernGradCodecTest, DecodedValuesAreTernary) {
  TernGradCodec codec(/*bucket_size=*/0, /*clip=*/0.0, /*seed=*/1);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(2);
  grad.FillGaussian(&rng, 1.0f);
  float max_abs = 0.0f;
  for (int64_t i = 0; i < 64; ++i) {
    max_abs = std::max(max_abs, std::abs(grad.at(i)));
  }

  const std::vector<float> decoded = EncodeDecode(codec, grad, 7);
  for (int64_t i = 0; i < 64; ++i) {
    const float d = decoded[static_cast<size_t>(i)];
    EXPECT_TRUE(d == 0.0f || std::abs(d) == max_abs)
        << i << ": " << d << " vs scale " << max_abs;
    // The sign always matches (only the magnitude is stochastic).
    if (d != 0.0f) {
      EXPECT_EQ(std::signbit(d), std::signbit(grad.at(i))) << i;
    }
  }
}

TEST(TernGradCodecTest, PerMatrixScalarByDefault) {
  TernGradCodec layer_wise(0, 0.0, 1);
  EXPECT_EQ(layer_wise.NumChunks(Shape({1000})), 1);
  TernGradCodec bucketed(256, 0.0, 1);
  EXPECT_EQ(bucketed.NumChunks(Shape({1000})), 4);  // ceil(1000/256)
}

TEST(TernGradCodecTest, EncodedSizeFormula) {
  // n=64, layer-wise: 1 fp32 scale + 64 2-bit fields (4 words = 16 bytes)
  // + checksum.
  TernGradCodec layer_wise(0, 0.0, 1);
  EXPECT_EQ(layer_wise.EncodedSizeBytes(Shape({64})),
            4 + 16 + codec_internal::kWireChecksumBytes);
  // Bucketed at 16: 4 scales instead of 1.
  TernGradCodec bucketed(16, 0.0, 1);
  EXPECT_EQ(bucketed.EncodedSizeBytes(Shape({64})),
            16 + 16 + codec_internal::kWireChecksumBytes);
}

TEST(TernGradCodecTest, ZeroGradientRoundTripsToZero) {
  TernGradCodec codec(0, 0.0, 1);
  const Shape shape({32});
  Tensor grad(shape);
  grad.SetZero();
  const std::vector<float> decoded = EncodeDecode(codec, grad, 3);
  for (float d : decoded) EXPECT_EQ(d, 0.0f);
}

TEST(TernGradCodecTest, StochasticRoundingIsUnbiased) {
  // E[Q(g)] = g: averaging decodes across many independent stochastic tags
  // recovers the gradient.
  TernGradCodec codec(0, 0.0, 1);
  const Shape shape({16});
  Tensor grad(shape);
  Rng rng(4);
  grad.FillGaussian(&rng, 1.0f);

  const int kRounds = 4000;
  std::vector<double> mean(16, 0.0);
  for (int t = 0; t < kRounds; ++t) {
    const std::vector<float> decoded =
        EncodeDecode(codec, grad, static_cast<uint64_t>(t));
    for (int64_t i = 0; i < 16; ++i) {
      mean[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(mean[static_cast<size_t>(i)] / kRounds, grad.at(i), 0.15)
        << i;
  }
}

TEST(TernGradCodecTest, ClippingCapsTheScale) {
  // One huge outlier among small components: unclipped, the scale is the
  // outlier and every small component is almost always rounded to zero.
  // Clipped at 2.5 sigma, the scale drops to clip * RMS.
  const Shape shape({256});
  Tensor grad(shape);
  Rng rng(5);
  grad.FillGaussian(&rng, 0.1f);
  grad.at(0) = 50.0f;

  double sum_sq = 0.0;
  for (int64_t i = 0; i < 256; ++i) {
    sum_sq += static_cast<double>(grad.at(i)) * grad.at(i);
  }
  const float rms = static_cast<float>(std::sqrt(sum_sq / 256));

  TernGradCodec clipped(0, 2.5, 1);
  std::vector<uint8_t> blob;
  clipped.Encode(grad.data(), shape, 11, nullptr, &blob);
  float scale;
  std::memcpy(&scale, blob.data(), sizeof(float));
  EXPECT_FLOAT_EQ(scale, 2.5f * rms);
  EXPECT_LT(scale, 50.0f);

  TernGradCodec unclipped(0, 0.0, 1);
  blob.clear();
  unclipped.Encode(grad.data(), shape, 11, nullptr, &blob);
  std::memcpy(&scale, blob.data(), sizeof(float));
  EXPECT_FLOAT_EQ(scale, 50.0f);
}

TEST(TernGradCodecTest, ClippedComponentsSaturate) {
  // A component above the clip threshold has P(±s) = 1: it deterministically
  // decodes to the (clipped) scale.
  const Shape shape({8});
  Tensor grad(shape);
  grad.SetZero();
  grad.at(0) = 100.0f;
  grad.at(1) = 1.0f;

  TernGradCodec codec(0, 1.0, 1);
  for (uint64_t tag = 0; tag < 16; ++tag) {
    std::vector<uint8_t> blob;
    codec.Encode(grad.data(), shape, tag, nullptr, &blob);
    float scale;
    std::memcpy(&scale, blob.data(), sizeof(float));
    std::vector<float> decoded(8);
    CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                          shape, decoded.data()));
    EXPECT_FLOAT_EQ(decoded[0], scale) << tag;
  }
}

TEST(TernGradCodecTest, FactoryAndSpec) {
  auto codec = CreateCodec(TernGradSpec());
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->Name(), "TernGrad");
  EXPECT_FALSE((*codec)->UsesErrorFeedback());

  auto bucketed = CreateCodec(TernGradSpec(128, 3.0));
  ASSERT_TRUE(bucketed.ok());

  CodecSpec bad = TernGradSpec();
  bad.bucket_size = -1;
  EXPECT_FALSE(CreateCodec(bad).ok());
  bad = TernGradSpec();
  bad.clip = -0.5;
  EXPECT_FALSE(CreateCodec(bad).ok());
}

}  // namespace
}  // namespace lpsgd
