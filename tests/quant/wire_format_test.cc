// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Golden wire-format pins: the exact bytes each codec produces for a fixed
// input. These detect accidental format changes — the blobs are what would
// cross MPI/NCCL between processes of different builds, so the layout is
// part of the public contract. If a change is intentional, regenerate the
// goldens (the fixture below documents the input).
#include <cctype>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "quant/codec.h"
#include "tensor/shape.h"

namespace lpsgd {
namespace {

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

struct GoldenCase {
  const char* spec;
  const char* hex;
};

class WireFormatTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(WireFormatTest, BytesMatchGolden) {
  const GoldenCase& c = GetParam();
  auto spec = ParseCodecSpec(c.spec);
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());

  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  const Shape shape({4, 2});
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, shape, /*stochastic_tag=*/7,
                   (*codec)->UsesErrorFeedback() ? &error : nullptr, &blob);
  EXPECT_EQ(HexEncode(blob), c.hex) << c.spec;

  // And the blob must decode without tripping any size checks.
  std::vector<float> decoded(8);
  (*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                   decoded.data());
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, WireFormatTest,
    ::testing::Values(
        GoldenCase{"32bit",
                   "0000003f000080bf0000803e00000000"
                   "00000040000000be0000c03f000020c0"},
        GoldenCase{"1bit",
                   "0000883f0000000000000000abaa9abf0f00000002000000"},
        GoldenCase{"1bit*:4",
                   "0000803e000080bf0000e03f0000a8bf5d000000"},
        GoldenCase{"q4:4", "0000803f00002040f40186f4"},
        GoldenCase{"topk:0.25",
                   "02000000040000000700000000000040000020c0"},
        GoldenCase{"aq4:4",
                   "0000803f000020400000000033ce4c3d1f00803ee5ffff3ea39919"
                   "3fdecc4c3fb76d5b3f0000803ff30295f4"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.spec;
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

// Structural spot-checks that make the formats human-auditable.
TEST(WireFormatTest, OneBitHeaderIsAvgPairs) {
  // Columns of {0.5, 0.25, 2.0, 1.5} / {-1, 0, -0.125, -2.5}:
  // col0: avg+ = 1.0625 (0x3f880000 LE), col1 mixes signs.
  auto codec = CreateCodec(OneBitSgdSpec());
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  float avg_pos_col0;
  std::memcpy(&avg_pos_col0, blob.data(), sizeof(float));
  EXPECT_FLOAT_EQ(avg_pos_col0, (0.5f + 0.25f + 2.0f + 1.5f) / 4.0f);
}

// Golden FNV-1a hashes over a 1000-element Gaussian gradient, pinned from
// the code as of the workspace/fused-kernel refactor (which was verified
// byte-identical to its predecessor). Unlike the short hex goldens above,
// these cover every codec configuration axis — bit widths, bucket sizes,
// norms, level schemes, error feedback on/off — plus a second encode round
// (error-feedback state advanced) and the decoded floats. Any change to
// these hashes is a wire-format or numerics break.
uint64_t Fnv1a64(const uint8_t* bytes, size_t count, uint64_t hash) {
  for (size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::vector<float> GoldenGradient(int64_t n) {
  std::vector<float> grad(static_cast<size_t>(n));
  Rng rng(0x601dULL);
  for (int64_t i = 0; i < n; ++i) {
    grad[static_cast<size_t>(i)] = static_cast<float>(rng.NextGaussian());
  }
  // An all-zero stretch exercises the zero-scale buckets.
  for (int64_t i = 64; i < 192 && i < n; ++i) {
    grad[static_cast<size_t>(i)] = 0.0f;
  }
  return grad;
}

struct HashCase {
  const char* name;
  CodecSpec spec;
  uint64_t first_encode;   // blob hash, fresh error-feedback state
  uint64_t second_encode;  // blob hash after one error-feedback round
  uint64_t decode;         // hash of the second blob's decoded floats
};

CodecSpec Qsgd(int bits, int64_t bucket, QsgdNorm norm, QsgdLevelScheme lv) {
  CodecSpec spec = QsgdSpec(bits);
  spec.bucket_size = bucket;
  spec.norm = norm;
  spec.levels = lv;
  return spec;
}

CodecSpec Aqsgd(int bits, int64_t bucket) {
  CodecSpec spec = AdaptiveQsgdSpec(bits);
  spec.bucket_size = bucket;
  return spec;
}

CodecSpec OneBitStar(int64_t bucket, bool ef) {
  CodecSpec spec = OneBitSgdReshapedSpec(bucket);
  spec.error_feedback = ef;
  return spec;
}

CodecSpec OneBitStockNoEf() {
  CodecSpec spec = OneBitSgdSpec();
  spec.error_feedback = false;
  return spec;
}

std::vector<HashCase> GoldenHashCases() {
  const QsgdNorm kL2 = QsgdNorm::kL2;
  const QsgdNorm kMax = QsgdNorm::kMax;
  const QsgdLevelScheme kSm = QsgdLevelScheme::kSignMagnitude;
  const QsgdLevelScheme kSy = QsgdLevelScheme::kSymmetric;
  return {
      {"fp32", FullPrecisionSpec(), 0xaf93c47a0c76c421ull,
       0xaf93c47a0c76c421ull, 0xaf93c47a0c76c421ull},
      {"one_bit_stock", OneBitSgdSpec(), 0xb7a03b51c455f576ull,
       0x1f553e706a67a14aull, 0x5f39fe8ff9f22340ull},
      {"one_bit_stock_no_ef", OneBitStockNoEf(), 0xb7a03b51c455f576ull,
       0xb7a03b51c455f576ull, 0x5c4063dde9689f54ull},
      {"one_bit_star_b4", OneBitStar(4, true), 0x41ff9f52297b1e1cull,
       0x92bed52b17adc848ull, 0xa74a8ee571f945b6ull},
      {"one_bit_star_b64", OneBitStar(64, true), 0x77de2db0dc246dc6ull,
       0x428fbfc567ac2c09ull, 0xfcf4f451350afa1aull},
      {"one_bit_star_b512", OneBitStar(512, true), 0xe94a98c0e0dde4c3ull,
       0xd926a1fdd9b93cf8ull, 0xc373d9f024358031ull},
      {"one_bit_star_b64_no_ef", OneBitStar(64, false),
       0x77de2db0dc246dc6ull, 0x77de2db0dc246dc6ull, 0x1bb1136ab82022e5ull},
      {"qsgd2_b4", Qsgd(2, 4, kMax, kSm), 0x964ab40044b80fe4ull,
       0x507055f1605d8e42ull, 0x17791ad3e91dd031ull},
      {"qsgd2_b512", Qsgd(2, 512, kMax, kSm), 0x0c3f5cf42e2dcba7ull,
       0x7c363523a5af5705ull, 0xacd280886a338a55ull},
      {"qsgd4_b4", Qsgd(4, 4, kMax, kSm), 0xcd226ba04d2734dfull,
       0xbc0b1967e5aaabeaull, 0x7806b4a5eee37e3cull},
      {"qsgd4_b512", Qsgd(4, 512, kMax, kSm), 0x8df80ab7452ae9a9ull,
       0x99714221c736e784ull, 0x4cdd07a6ecfa30baull},
      {"qsgd8_b4", Qsgd(8, 4, kMax, kSm), 0xec26ddc7aa7fb470ull,
       0xcb7306431c661496ull, 0x1d25ad3fcfcafa9dull},
      {"qsgd8_b512", Qsgd(8, 512, kMax, kSm), 0xd9d5627ac91253afull,
       0x22d1fd41c8c8c2dbull, 0x137aeec0d48f1ec8ull},
      {"qsgd16_b4", Qsgd(16, 4, kMax, kSm), 0xfbe311bb97400d9aull,
       0x74fa02912ca75beeull, 0x8c0994e648d448bfull},
      {"qsgd16_b512", Qsgd(16, 512, kMax, kSm), 0x66a4d2f6ccd42ad2ull,
       0xf3a422a8842dc047ull, 0x2230b5c9da3b3145ull},
      {"qsgd4_b512_l2", Qsgd(4, 512, kL2, kSm), 0x92820aee01373820ull,
       0x2decfd4d526cfc4full, 0x696ec9b2ad483ccbull},
      {"qsgd4_b512_sym", Qsgd(4, 512, kMax, kSy), 0xd833686716973294ull,
       0xe664e1aa5db92776ull, 0x10ce238d72465bf2ull},
      {"qsgd4_b512_l2_sym", Qsgd(4, 512, kL2, kSy), 0x0f524002894b6063ull,
       0x526a40608b66e8fbull, 0x5b78260b1c92592bull},
      {"aqsgd2_b4", Aqsgd(2, 4), 0x2244995d2cdb6109ull,
       0xa0b4e7816ca74c3bull, 0x17791ad3e91dd031ull},
      {"aqsgd2_b512", Aqsgd(2, 512), 0x15eb975eff33f3feull,
       0x4d70be8c9e1d0280ull, 0xacd280886a338a55ull},
      {"aqsgd4_b4", Aqsgd(4, 4), 0xaca47a2bf1d42fa9ull,
       0xf7da8022976b44acull, 0x39f515b537fc3af0ull},
      {"aqsgd4_b512", Aqsgd(4, 512), 0xbaaff7331d730ec9ull,
       0xd31a2dc39b45dc42ull, 0x89a885af2bf1816bull},
      {"aqsgd8_b4", Aqsgd(8, 4), 0xf9639de8d881c674ull,
       0x2649a6b3a3399512ull, 0x0b00118c33dbe14aull},
      {"aqsgd8_b512", Aqsgd(8, 512), 0x3e54562ee5037da3ull,
       0x88fc35df8611df77ull, 0xd74604fc29808050ull},
      {"topk_1pct", TopKSpec(0.01), 0xcada551389ce5c96ull,
       0x701d5f364c6b8402ull, 0x19a7c97bcb3b2abaull},
      {"topk_25pct", TopKSpec(0.25), 0x552e9e7400d1645bull,
       0xa1f5cb0ee751326cull, 0xc5201dae81b8c8b3ull},
      {"topk_100pct", TopKSpec(1.0), 0x7c45bf769e409230ull,
       0x7c45bf769e409230ull, 0xaf93c47a0c76c421ull},
  };
}

TEST(WireFormatTest, GoldenBlobHashes) {
  const int64_t n = 1000;
  const Shape shape({25, 40});
  const std::vector<float> grad = GoldenGradient(n);

  for (const HashCase& c : GoldenHashCases()) {
    SCOPED_TRACE(c.name);
    auto codec = c.spec.Create();
    ASSERT_TRUE(codec.ok());
    std::vector<float> error(static_cast<size_t>(n), 0.0f);
    std::vector<float>* error_ptr =
        (*codec)->UsesErrorFeedback() ? &error : nullptr;
    std::vector<uint8_t> blob;
    // Round 1 seeds the error-feedback state; round 2's blob depends on it.
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/12345, error_ptr,
                     &blob);
    EXPECT_EQ(Fnv1a64(blob.data(), blob.size(), kFnvBasis), c.first_encode);
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/12346, error_ptr,
                     &blob);
    EXPECT_EQ(Fnv1a64(blob.data(), blob.size(), kFnvBasis), c.second_encode);
    std::vector<float> decoded(static_cast<size_t>(n));
    (*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                     decoded.data());
    EXPECT_EQ(Fnv1a64(reinterpret_cast<const uint8_t*>(decoded.data()),
                      decoded.size() * sizeof(float), kFnvBasis),
              c.decode);
  }
}

TEST(WireFormatTest, TopKHeaderIsCount) {
  auto codec = CreateCodec(TopKSpec(0.25));
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  uint32_t count;
  std::memcpy(&count, blob.data(), sizeof(uint32_t));
  EXPECT_EQ(count, 2u);  // 25% of 8
}

}  // namespace
}  // namespace lpsgd
