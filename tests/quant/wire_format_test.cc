// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Golden wire-format pins: the exact bytes each codec produces for a fixed
// input. These detect accidental format changes — the blobs are what would
// cross MPI/NCCL between processes of different builds, so the layout is
// part of the public contract. If a change is intentional, regenerate the
// goldens (the fixture below documents the input).
#include <cctype>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "quant/codec.h"
#include "tensor/shape.h"

namespace lpsgd {
namespace {

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

struct GoldenCase {
  const char* spec;
  const char* hex;
};

class WireFormatTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(WireFormatTest, BytesMatchGolden) {
  const GoldenCase& c = GetParam();
  auto spec = ParseCodecSpec(c.spec);
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());

  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  const Shape shape({4, 2});
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, shape, /*stochastic_tag=*/7,
                   (*codec)->UsesErrorFeedback() ? &error : nullptr, &blob);
  EXPECT_EQ(HexEncode(blob), c.hex) << c.spec;

  // And the blob must decode without tripping any size checks.
  std::vector<float> decoded(8);
  (*codec)->Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
                   decoded.data());
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, WireFormatTest,
    ::testing::Values(
        GoldenCase{"32bit",
                   "0000003f000080bf0000803e00000000"
                   "00000040000000be0000c03f000020c0"},
        GoldenCase{"1bit",
                   "0000883f0000000000000000abaa9abf0f00000002000000"},
        GoldenCase{"1bit*:4",
                   "0000803e000080bf0000e03f0000a8bf5d000000"},
        GoldenCase{"q4:4", "0000803f00002040f40186f4"},
        GoldenCase{"topk:0.25",
                   "02000000040000000700000000000040000020c0"},
        GoldenCase{"aq4:4",
                   "0000803f000020400000000033ce4c3d1f00803ee5ffff3ea39919"
                   "3fdecc4c3fb76d5b3f0000803ff30295f4"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.spec;
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

// Structural spot-checks that make the formats human-auditable.
TEST(WireFormatTest, OneBitHeaderIsAvgPairs) {
  // Columns of {0.5, 0.25, 2.0, 1.5} / {-1, 0, -0.125, -2.5}:
  // col0: avg+ = 1.0625 (0x3f880000 LE), col1 mixes signs.
  auto codec = CreateCodec(OneBitSgdSpec());
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  float avg_pos_col0;
  std::memcpy(&avg_pos_col0, blob.data(), sizeof(float));
  EXPECT_FLOAT_EQ(avg_pos_col0, (0.5f + 0.25f + 2.0f + 1.5f) / 4.0f);
}

TEST(WireFormatTest, TopKHeaderIsCount) {
  auto codec = CreateCodec(TopKSpec(0.25));
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  uint32_t count;
  std::memcpy(&count, blob.data(), sizeof(uint32_t));
  EXPECT_EQ(count, 2u);  // 25% of 8
}

}  // namespace
}  // namespace lpsgd
