// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Golden wire-format pins: the exact bytes each codec produces for a fixed
// input. These detect accidental format changes — the blobs are what would
// cross MPI/NCCL between processes of different builds, so the layout is
// part of the public contract. If a change is intentional, regenerate the
// goldens (the fixture below documents the input).
#include <cctype>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd/simd.h"
#include "quant/codec.h"
#include "tensor/shape.h"

namespace lpsgd {
namespace {

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

struct GoldenCase {
  const char* spec;
  const char* hex;
};

class WireFormatTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(WireFormatTest, BytesMatchGolden) {
  const GoldenCase& c = GetParam();
  auto spec = ParseCodecSpec(c.spec);
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());

  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  const Shape shape({4, 2});
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, shape, /*stochastic_tag=*/7,
                   (*codec)->UsesErrorFeedback() ? &error : nullptr, &blob);
  EXPECT_EQ(HexEncode(blob), c.hex) << c.spec;

  // And the blob must decode cleanly, checksum included.
  std::vector<float> decoded(8);
  EXPECT_TRUE((*codec)
                  ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                           shape, decoded.data())
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, WireFormatTest,
    ::testing::Values(
        GoldenCase{"32bit",
                   "0000003f000080bf0000803e00000000"
                   "00000040000000be0000c03f000020c0"
                   "68cd9bcb"},
        GoldenCase{"1bit",
                   "0000883f0000000000000000abaa9abf0f00000002000000"
                   "779b8908"},
        GoldenCase{"1bit*:4",
                   "0000803e000080bf0000e03f0000a8bf5d000000173058e8"},
        GoldenCase{"q4:4", "0000803f00002040f40186f41d6dfe13"},
        // TopK k=2: count word, one word of 3-bit packed indices
        // (4 | 7<<3 = 0x3c), two fp32 values, checksum.
        GoldenCase{"topk:0.25",
                   "020000003c00000000000040000020c0"
                   "7b32dbcb"},
        // TernGrad: one fp32 scale (max|g| = 2.5), one word of 2-bit
        // sign-magnitude fields, checksum.
        GoldenCase{"terngrad", "000020400cc90000a69700ae"},
        // NUQSGD: two fp32 L2 bucket norms, one word of 4-bit
        // sign-magnitude fields, checksum.
        GoldenCase{"nuq4:4", "76a4923f616a6240f604a6f62b5d4ac1"},
        // ECQ-SGD with fresh error state is byte-identical to q4:4 —
        // the error-compensation path only diverges on later rounds.
        GoldenCase{"ecq4:4", "0000803f00002040f40186f41d6dfe13"},
        GoldenCase{"aq4:4",
                   "0000803f000020400000000033ce4c3d1f00803ee5ffff3ea39919"
                   "3fdecc4c3fb76d5b3f0000803ff30295f4"
                   "c2c41701"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.spec;
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

// Structural spot-checks that make the formats human-auditable.
TEST(WireFormatTest, OneBitHeaderIsAvgPairs) {
  // Columns of {0.5, 0.25, 2.0, 1.5} / {-1, 0, -0.125, -2.5}:
  // col0: avg+ = 1.0625 (0x3f880000 LE), col1 mixes signs.
  auto codec = CreateCodec(OneBitSgdSpec());
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  float avg_pos_col0;
  std::memcpy(&avg_pos_col0, blob.data(), sizeof(float));
  EXPECT_FLOAT_EQ(avg_pos_col0, (0.5f + 0.25f + 2.0f + 1.5f) / 4.0f);
}

// Golden FNV-1a hashes over a 1000-element Gaussian gradient. The encode
// hashes were re-pinned when the trailing wire-checksum word was added
// (every blob grew by 4 bytes); the decode hashes were unchanged by that
// re-pin, which is the proof the checksum is purely appended and the
// payload numerics did not move. Unlike the short hex goldens above, these
// cover every codec configuration axis — bit widths, bucket sizes, norms,
// level schemes, error feedback on/off — plus a second encode round
// (error-feedback state advanced) and the decoded floats. Any change to
// these hashes is a wire-format or numerics break.
uint64_t Fnv1a64(const uint8_t* bytes, size_t count, uint64_t hash) {
  for (size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::vector<float> GoldenGradient(int64_t n) {
  std::vector<float> grad(static_cast<size_t>(n));
  Rng rng(0x601dULL);
  for (int64_t i = 0; i < n; ++i) {
    grad[static_cast<size_t>(i)] = static_cast<float>(rng.NextGaussian());
  }
  // An all-zero stretch exercises the zero-scale buckets.
  for (int64_t i = 64; i < 192 && i < n; ++i) {
    grad[static_cast<size_t>(i)] = 0.0f;
  }
  return grad;
}

struct HashCase {
  const char* name;
  CodecSpec spec;
  uint64_t first_encode;   // blob hash, fresh error-feedback state
  uint64_t second_encode;  // blob hash after one error-feedback round
  uint64_t decode;         // hash of the second blob's decoded floats
};

CodecSpec Qsgd(int bits, int64_t bucket, QsgdNorm norm, QsgdLevelScheme lv) {
  CodecSpec spec = QsgdSpec(bits);
  spec.bucket_size = bucket;
  spec.norm = norm;
  spec.levels = lv;
  return spec;
}

CodecSpec Aqsgd(int bits, int64_t bucket) {
  CodecSpec spec = AdaptiveQsgdSpec(bits);
  spec.bucket_size = bucket;
  return spec;
}

CodecSpec OneBitStar(int64_t bucket, bool ef) {
  CodecSpec spec = OneBitSgdReshapedSpec(bucket);
  spec.error_feedback = ef;
  return spec;
}

CodecSpec OneBitStockNoEf() {
  CodecSpec spec = OneBitSgdSpec();
  spec.error_feedback = false;
  return spec;
}

CodecSpec Nuq(int bits, int64_t bucket) {
  CodecSpec spec = NuqsgdSpec(bits);
  spec.bucket_size = bucket;
  return spec;
}

CodecSpec Ecq(int bits, int64_t bucket, bool ef) {
  CodecSpec spec = EcqSgdSpec(bits);
  spec.bucket_size = bucket;
  spec.error_feedback = ef;
  return spec;
}

std::vector<HashCase> GoldenHashCases() {
  const QsgdNorm kL2 = QsgdNorm::kL2;
  const QsgdNorm kMax = QsgdNorm::kMax;
  const QsgdLevelScheme kSm = QsgdLevelScheme::kSignMagnitude;
  const QsgdLevelScheme kSy = QsgdLevelScheme::kSymmetric;
  return {
      {"fp32", FullPrecisionSpec(), 0x299194db1d24f6f0ull,
       0x299194db1d24f6f0ull, 0xaf93c47a0c76c421ull},
      {"one_bit_stock", OneBitSgdSpec(), 0xf56198ae42d6e70bull,
       0xf769bf64c5f94ccbull, 0x5f39fe8ff9f22340ull},
      {"one_bit_stock_no_ef", OneBitStockNoEf(), 0xf56198ae42d6e70bull,
       0xf56198ae42d6e70bull, 0x5c4063dde9689f54ull},
      {"one_bit_star_b4", OneBitStar(4, true), 0xab4bfed3dc7c1269ull,
       0xedcc633860940786ull, 0xa74a8ee571f945b6ull},
      {"one_bit_star_b64", OneBitStar(64, true), 0x59c9b0434ac5121full,
       0x8b8deb82a5691354ull, 0xfcf4f451350afa1aull},
      {"one_bit_star_b512", OneBitStar(512, true), 0xf9c26e14fd71069cull,
       0x3082dd794e9176aaull, 0xc373d9f024358031ull},
      {"one_bit_star_b64_no_ef", OneBitStar(64, false),
       0x59c9b0434ac5121full, 0x59c9b0434ac5121full, 0x1bb1136ab82022e5ull},
      {"qsgd2_b4", Qsgd(2, 4, kMax, kSm), 0x3ba3290c9e6b7b98ull,
       0xa29abda4e6127447ull, 0x17791ad3e91dd031ull},
      {"qsgd2_b512", Qsgd(2, 512, kMax, kSm), 0xcc41b8f1106e8563ull,
       0xa00c91a506d5c84dull, 0xacd280886a338a55ull},
      {"qsgd4_b4", Qsgd(4, 4, kMax, kSm), 0x40b0592cec33212cull,
       0x15a5795cc8ee57f5ull, 0x7806b4a5eee37e3cull},
      {"qsgd4_b512", Qsgd(4, 512, kMax, kSm), 0xd80cd8e4816ddd22ull,
       0x06df07661878eda6ull, 0x4cdd07a6ecfa30baull},
      {"qsgd8_b4", Qsgd(8, 4, kMax, kSm), 0x41a4c5418f3dc8b1ull,
       0xf606b1c4e5e9e4bcull, 0x1d25ad3fcfcafa9dull},
      {"qsgd8_b512", Qsgd(8, 512, kMax, kSm), 0xd2c65725b72a3b97ull,
       0xb3c2ef9c1697d42aull, 0x137aeec0d48f1ec8ull},
      {"qsgd16_b4", Qsgd(16, 4, kMax, kSm), 0xdbe2e3279e7aa59full,
       0x033362533dce2a89ull, 0x8c0994e648d448bfull},
      {"qsgd16_b512", Qsgd(16, 512, kMax, kSm), 0xffd25851f5dd1618ull,
       0x701a4ebedecacf3eull, 0x2230b5c9da3b3145ull},
      {"qsgd4_b512_l2", Qsgd(4, 512, kL2, kSm), 0x1b032d0573b9f0edull,
       0xc94ea8965894fd57ull, 0x696ec9b2ad483ccbull},
      {"qsgd4_b512_sym", Qsgd(4, 512, kMax, kSy), 0xcff94e29df85a96aull,
       0x93685df85fef8b78ull, 0x10ce238d72465bf2ull},
      {"qsgd4_b512_l2_sym", Qsgd(4, 512, kL2, kSy), 0x038dab3432ad221bull,
       0xb0ec8a55bbd07dd8ull, 0x5b78260b1c92592bull},
      {"aqsgd2_b4", Aqsgd(2, 4), 0xb75bf7f9761681a3ull,
       0x9ccd4d8cec53cd36ull, 0x17791ad3e91dd031ull},
      {"aqsgd2_b512", Aqsgd(2, 512), 0x6b58a59ce390ad18ull,
       0x980619a3d1a55864ull, 0xacd280886a338a55ull},
      {"aqsgd4_b4", Aqsgd(4, 4), 0xafed163783deb4dbull,
       0x3c12fbe4adf9fc3full, 0x39f515b537fc3af0ull},
      {"aqsgd4_b512", Aqsgd(4, 512), 0xeae5d05cd6c49c3eull,
       0xd602933df7227853ull, 0x89a885af2bf1816bull},
      {"aqsgd8_b4", Aqsgd(8, 4), 0x7c32d78e2544ff8cull,
       0x141f63e16ae8b91full, 0x0b00118c33dbe14aull},
      {"aqsgd8_b512", Aqsgd(8, 512), 0x78055c7652eafce8ull,
       0xb95af7c32f113396ull, 0xd74604fc29808050ull},
      // The TopK rows were re-pinned when the sparse wire format switched
      // from raw uint32 indices to bit-packed index runs; the decode
      // hashes were unchanged by that re-pin (same kept components, same
      // values), which is the proof the packing is lossless.
      {"topk_1pct", TopKSpec(0.01), 0xe48de1a905ea611cull,
       0x3eabbd659e20affeull, 0x19a7c97bcb3b2abaull},
      {"topk_25pct", TopKSpec(0.25), 0xcf5f142a82223376ull,
       0xb6a267185c00f682ull, 0xc5201dae81b8c8b3ull},
      // Density 1.0 decode must stay lossless: same hash as fp32's.
      {"topk_100pct", TopKSpec(1.0), 0xdf53312c19258bc6ull,
       0xdf53312c19258bc6ull, 0xaf93c47a0c76c421ull},
      {"terngrad", TernGradSpec(), 0xe65183ed64194317ull,
       0xd01581652aaed8fdull, 0x2336cdd7289c33c9ull},
      {"terngrad_b256", TernGradSpec(256), 0x8533777c5e8e6cc6ull,
       0x77fb2c5cdd5ae5abull, 0xe3fb2cbb43acbb28ull},
      {"terngrad_clip", TernGradSpec(0, 2.5), 0xbeaebf1efe0b2b92ull,
       0x2f93033854de4501ull, 0x3fb5b4a55d29eb7dull},
      {"nuq4_b4", Nuq(4, 4), 0xd5de8f1d980c1d18ull,
       0x814e389fd97dc453ull, 0xd1eb2fd3f823a78bull},
      {"nuq4_b512", Nuq(4, 512), 0x223424d9eef4316cull,
       0x85661234913392e0ull, 0x298c49bca796ccedull},
      {"nuq8_b512", Nuq(8, 512), 0xe19c77fb2be6fa79ull,
       0xb8d0c3711eedce8full, 0x7cb79bc0a03089b6ull},
      // ECQ-SGD's first encode (fresh error state) is byte-identical to
      // the matching QSGD row; the second encode diverges because the
      // quantization residual feeds back into the corrected gradient.
      {"ecq4_b4", Ecq(4, 4, true), 0x40b0592cec33212cull,
       0xed4bb5c670fcd1ccull, 0xad095da71ae718adull},
      {"ecq4_b512", Ecq(4, 512, true), 0xd80cd8e4816ddd22ull,
       0xbd234ecb9ee5c408ull, 0xf435135012726920ull},
      // With error feedback off, ECQ-SGD degenerates to exactly QSGD
      // (same blobs, same decode) — pinned to the qsgd4_b512 hashes.
      {"ecq4_b512_no_ef", Ecq(4, 512, false), 0xd80cd8e4816ddd22ull,
       0x06df07661878eda6ull, 0x4cdd07a6ecfa30baull},
      {"ecq8_b512", Ecq(8, 512, true), 0xd2c65725b72a3b97ull,
       0x71329802f8106f35ull, 0x87e7d37275ae1f40ull},
  };
}

void VerifyGoldenBlobHashes() {
  const int64_t n = 1000;
  const Shape shape({25, 40});
  const std::vector<float> grad = GoldenGradient(n);

  for (const HashCase& c : GoldenHashCases()) {
    SCOPED_TRACE(c.name);
    auto codec = c.spec.Create();
    ASSERT_TRUE(codec.ok());
    std::vector<float> error(static_cast<size_t>(n), 0.0f);
    std::vector<float>* error_ptr =
        (*codec)->UsesErrorFeedback() ? &error : nullptr;
    std::vector<uint8_t> blob;
    // Round 1 seeds the error-feedback state; round 2's blob depends on it.
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/12345, error_ptr,
                     &blob);
    const uint64_t h1 = Fnv1a64(blob.data(), blob.size(), kFnvBasis);
    EXPECT_EQ(h1, c.first_encode);
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/12346, error_ptr,
                     &blob);
    const uint64_t h2 = Fnv1a64(blob.data(), blob.size(), kFnvBasis);
    EXPECT_EQ(h2, c.second_encode);
    std::vector<float> decoded(static_cast<size_t>(n));
    ASSERT_TRUE((*codec)
                    ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                             shape, decoded.data())
                    .ok());
    const uint64_t h3 =
        Fnv1a64(reinterpret_cast<const uint8_t*>(decoded.data()),
                decoded.size() * sizeof(float), kFnvBasis);
    EXPECT_EQ(h3, c.decode);
  }
}

TEST(WireFormatTest, GoldenBlobHashes) { VerifyGoldenBlobHashes(); }

// The same golden hashes must hold under every forced dispatch mode: the
// SIMD kernels are a pure speedup, never a wire or numerics change. An
// unsupported ISA (e.g. neon on x86) resolves to the scalar tables, so the
// loop is safe to run on any host.
TEST(WireFormatTest, GoldenBlobHashesUnderEveryDispatchMode) {
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    SCOPED_TRACE(SimdIsaName(isa));
    ScopedSimdIsa force(isa);
    VerifyGoldenBlobHashes();
  }
}

// Corrupted-wire fuzz: every codec must reject a damaged blob with a
// non-OK Status — never crash, never emit NaN/Inf, never touch the output
// buffer. The trailing FNV-1a word makes this deterministic: a single-bit
// flip anywhere in the blob is guaranteed to change the computed hash (each
// byte step of FNV-1a is injective in the running hash), so Decode must
// fail on all of these, not just most.
TEST(WireFormatTest, CorruptedBlobsAreRejected) {
  const int64_t n = 1000;
  const Shape shape({25, 40});
  const std::vector<float> grad = GoldenGradient(n);
  const char* kSpecs[] = {"32bit", "1bit",      "1bit*:64", "q4",
                          "aq4",   "topk:0.25", "terngrad", "nuq4",
                          "ecq4"};

  for (const char* spec_str : kSpecs) {
    SCOPED_TRACE(spec_str);
    auto spec = ParseCodecSpec(spec_str);
    ASSERT_TRUE(spec.ok());
    auto codec = CreateCodec(*spec);
    ASSERT_TRUE(codec.ok());
    std::vector<float> error(static_cast<size_t>(n), 0.0f);
    std::vector<uint8_t> blob;
    (*codec)->Encode(grad.data(), shape, /*stochastic_tag=*/99,
                     (*codec)->UsesErrorFeedback() ? &error : nullptr,
                     &blob);

    const float kSentinel = -12345.0f;
    std::vector<float> out(static_cast<size_t>(n), kSentinel);
    const auto expect_rejected = [&](const std::vector<uint8_t>& bytes,
                                     int64_t size, const char* what) {
      SCOPED_TRACE(what);
      const Status status = (*codec)->Decode(
          bytes.empty() ? blob.data() : bytes.data(), size, shape,
          out.data());
      EXPECT_FALSE(status.ok());
      for (float v : out) {
        ASSERT_EQ(v, kSentinel) << "Decode wrote output despite failing";
      }
    };

    // Zero-length and truncated blobs (losing part or all of the
    // checksum, or part of the payload).
    expect_rejected({}, 0, "zero-length");
    expect_rejected(blob, static_cast<int64_t>(blob.size()) - 1,
                    "truncated by 1");
    expect_rejected(blob, static_cast<int64_t>(blob.size()) - 4,
                    "checksum stripped");
    expect_rejected(blob, static_cast<int64_t>(blob.size()) / 2,
                    "half blob");

    // Single-bit flips sampled across the blob, plus first and last bits
    // (the last bits live in the checksum word itself).
    const uint64_t total_bits = static_cast<uint64_t>(blob.size()) * 8;
    Rng rng(0xb17f11bULL);
    std::vector<uint64_t> bits = {0, total_bits - 1};
    for (int i = 0; i < 64; ++i) {
      bits.push_back(rng.NextUint64(total_bits));
    }
    for (uint64_t bit : bits) {
      std::vector<uint8_t> flipped = blob;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      expect_rejected(flipped, static_cast<int64_t>(flipped.size()),
                      "bit flip");
    }

    // An all-zero blob of the right size (e.g. an uninitialized buffer).
    const std::vector<uint8_t> zeros(blob.size(), 0);
    expect_rejected(zeros, static_cast<int64_t>(zeros.size()), "all zeros");

    // The pristine blob still decodes after all that.
    EXPECT_TRUE((*codec)
                    ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                             shape, out.data())
                    .ok());
  }
}

TEST(WireFormatTest, TopKHeaderIsCount) {
  auto codec = CreateCodec(TopKSpec(0.25));
  const float grad[8] = {0.5f, -1.0f, 0.25f, 0.0f,
                         2.0f, -0.125f, 1.5f, -2.5f};
  std::vector<float> error(8, 0.0f);
  std::vector<uint8_t> blob;
  (*codec)->Encode(grad, Shape({4, 2}), 0, &error, &blob);
  uint32_t count;
  std::memcpy(&count, blob.data(), sizeof(uint32_t));
  EXPECT_EQ(count, 2u);  // 25% of 8
}

}  // namespace
}  // namespace lpsgd
