// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/one_bit_sgd.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

std::vector<float> Decode(const GradientCodec& codec,
                          const std::vector<uint8_t>& blob,
                          const Shape& shape) {
  std::vector<float> decoded(static_cast<size_t>(shape.element_count()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()), shape,
               decoded.data()));
  return decoded;
}

TEST(OneBitSgdTest, DecodedValuesAreColumnAverages) {
  OneBitSgdCodec codec(/*error_feedback=*/false);
  const Shape shape({4, 2});  // 2 columns of 4 elements
  // Column 0 (stride 2): {1, 3, -2, -4}; column 1: {2, -1, 5, 0}.
  std::vector<float> grad = {1, 2, 3, -1, -2, 5, -4, 0};

  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);

  // Column 0: avg+ = 2, avg- = -3. Column 1: avg+ = (2+5+0)/3, avg- = -1.
  EXPECT_FLOAT_EQ(decoded[0], 2.0f);    // 1 -> avg+
  EXPECT_FLOAT_EQ(decoded[2], 2.0f);    // 3 -> avg+
  EXPECT_FLOAT_EQ(decoded[4], -3.0f);   // -2 -> avg-
  EXPECT_FLOAT_EQ(decoded[6], -3.0f);   // -4 -> avg-
  EXPECT_FLOAT_EQ(decoded[1], 7.0f / 3.0f);
  EXPECT_FLOAT_EQ(decoded[3], -1.0f);
  EXPECT_FLOAT_EQ(decoded[5], 7.0f / 3.0f);
  EXPECT_FLOAT_EQ(decoded[7], 7.0f / 3.0f);  // 0 counts as positive
}

TEST(OneBitSgdTest, ChunkSumIsPreserved) {
  // avg+/avg- quantization preserves the per-chunk sum exactly (without
  // error feedback): sum(q) = n+ * avg+ + n- * avg- = sum(v).
  OneBitSgdCodec codec(/*error_feedback=*/false);
  const Shape shape({16, 3});
  Tensor grad(shape);
  Rng rng(1);
  grad.FillGaussian(&rng, 1.0f);

  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);
  for (int64_t c = 0; c < 3; ++c) {
    double original = 0.0, quantized = 0.0;
    for (int64_t r = 0; r < 16; ++r) {
      original += grad.at(r * 3 + c);
      quantized += decoded[static_cast<size_t>(r * 3 + c)];
    }
    EXPECT_NEAR(original, quantized, 1e-4) << "column " << c;
  }
}

TEST(OneBitSgdTest, ErrorFeedbackStoresResidual) {
  OneBitSgdCodec codec(/*error_feedback=*/true);
  const Shape shape({8, 1});
  Tensor grad(shape);
  Rng rng(2);
  grad.FillGaussian(&rng, 1.0f);
  std::vector<float> error(8, 0.0f);

  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, &error, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(error[static_cast<size_t>(i)],
                grad.at(i) - decoded[static_cast<size_t>(i)], 1e-6);
  }
}

TEST(OneBitSgdTest, ErrorFeedbackCompensatesOverIterations) {
  // Feeding the residual forward makes the *running sum* of decoded
  // gradients track the running sum of true gradients (the property that
  // rescues 1-bit accuracy, Section 5.1).
  OneBitSgdReshapedCodec codec(/*bucket_size=*/16, /*error_feedback=*/true);
  const Shape shape({16});
  Rng rng(3);
  std::vector<float> error(16, 0.0f);

  std::vector<double> true_sum(16, 0.0), decoded_sum(16, 0.0);
  Tensor grad(shape);
  std::vector<uint8_t> blob;
  for (int iter = 0; iter < 400; ++iter) {
    grad.FillGaussian(&rng, 1.0f);
    for (int64_t i = 0; i < 16; ++i) {
      true_sum[static_cast<size_t>(i)] += grad.at(i);
    }
    codec.Encode(grad.data(), shape, static_cast<uint64_t>(iter), &error,
                 &blob);
    const std::vector<float> decoded = Decode(codec, blob, shape);
    for (int64_t i = 0; i < 16; ++i) {
      decoded_sum[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  // The residual bounds the divergence: |sum difference| = |error| stays
  // O(1) while the sums themselves grow like sqrt(iterations).
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(decoded_sum[static_cast<size_t>(i)],
                true_sum[static_cast<size_t>(i)],
                5.0)
        << i;
    EXPECT_NEAR(decoded_sum[static_cast<size_t>(i)] +
                    error[static_cast<size_t>(i)],
                true_sum[static_cast<size_t>(i)], 1e-3)
        << i;
  }
}

TEST(OneBitSgdTest, WithoutErrorFeedbackResidualUntouched) {
  OneBitSgdCodec codec(/*error_feedback=*/false);
  EXPECT_FALSE(codec.UsesErrorFeedback());
  const Shape shape({4, 1});
  Tensor grad(shape);
  grad.Fill(1.0f);
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);  // must not crash
}

TEST(OneBitSgdTest, AllPositiveColumn) {
  OneBitSgdCodec codec(false);
  const Shape shape({4, 1});
  std::vector<float> grad = {1, 2, 3, 4};
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);
  for (float v : decoded) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(OneBitSgdTest, AllNegativeColumn) {
  OneBitSgdCodec codec(false);
  const Shape shape({4, 1});
  std::vector<float> grad = {-1, -2, -3, -4};
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);
  for (float v : decoded) EXPECT_FLOAT_EQ(v, -2.5f);
}

TEST(OneBitSgdTest, ZeroColumnDecodesToZero) {
  OneBitSgdCodec codec(false);
  const Shape shape({8, 1});
  std::vector<float> grad(8, 0.0f);
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  const std::vector<float> decoded = Decode(codec, blob, shape);
  for (float v : decoded) EXPECT_FLOAT_EQ(v, 0.0f);
}

class ReshapedBucketSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReshapedBucketSizeTest, RoundtripStructure) {
  const int64_t bucket = GetParam();
  OneBitSgdReshapedCodec codec(bucket, /*error_feedback=*/false);
  const Shape shape({3, 101});  // deliberately not bucket-aligned
  Tensor grad(shape);
  Rng rng(static_cast<uint64_t>(bucket));
  grad.FillGaussian(&rng, 1.0f);

  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 0, nullptr, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(shape));
  const std::vector<float> decoded = Decode(codec, blob, shape);

  // Each decoded value equals its bucket's avg+ or avg- and matches the
  // sign of the original.
  const int64_t n = shape.element_count();
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = grad.at(i) >= 0.0f;
    EXPECT_EQ(decoded[static_cast<size_t>(i)] >= 0.0f, positive) << i;
  }
  // Per-bucket sums are preserved.
  const int64_t buckets = codec.NumChunks(shape);
  for (int64_t b = 0; b < buckets; ++b) {
    const int64_t begin = b * bucket;
    const int64_t end = std::min(begin + bucket, n);
    double original = 0.0, quantized = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      original += grad.at(i);
      quantized += decoded[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(original, quantized, 1e-3) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, ReshapedBucketSizeTest,
                         ::testing::Values(1, 7, 32, 64, 512, 100000));

TEST(OneBitSgdTest, ColumnAndReshapedAgreeOnSingleColumnMatrix) {
  // A matrix with one column and bucket == rows makes both variants chunk
  // identically.
  const Shape shape({32, 1});
  Tensor grad(shape);
  Rng rng(9);
  grad.FillGaussian(&rng, 1.0f);

  OneBitSgdCodec column(false);
  OneBitSgdReshapedCodec reshaped(32, false);
  std::vector<uint8_t> blob_col, blob_re;
  column.Encode(grad.data(), shape, 0, nullptr, &blob_col);
  reshaped.Encode(grad.data(), shape, 0, nullptr, &blob_re);
  EXPECT_EQ(Decode(column, blob_col, shape), Decode(reshaped, blob_re, shape));
}

}  // namespace
}  // namespace lpsgd
