// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include <gtest/gtest.h>

#include "quant/codec.h"

namespace lpsgd {
namespace {

TEST(ParseCodecSpecTest, FullPrecision) {
  for (const char* text : {"32bit", "fp32", "FP32", "32BIT"}) {
    auto spec = ParseCodecSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec->kind, CodecKind::kFullPrecision);
  }
}

TEST(ParseCodecSpecTest, OneBitVariants) {
  auto stock = ParseCodecSpec("1bit");
  ASSERT_TRUE(stock.ok());
  EXPECT_EQ(stock->kind, CodecKind::kOneBitSgd);

  auto stock_long = ParseCodecSpec("1bitsgd");
  ASSERT_TRUE(stock_long.ok());
  EXPECT_EQ(stock_long->kind, CodecKind::kOneBitSgd);

  auto reshaped = ParseCodecSpec("1bit*");
  ASSERT_TRUE(reshaped.ok());
  EXPECT_EQ(reshaped->kind, CodecKind::kOneBitSgdReshaped);
  EXPECT_EQ(reshaped->bucket_size, 64);

  auto bucketed = ParseCodecSpec("1bit*:512");
  ASSERT_TRUE(bucketed.ok());
  EXPECT_EQ(bucketed->bucket_size, 512);
}

TEST(ParseCodecSpecTest, Qsgd) {
  auto q4 = ParseCodecSpec("q4");
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(q4->kind, CodecKind::kQsgd);
  EXPECT_EQ(q4->bits, 4);
  EXPECT_EQ(q4->bucket_size, 512);  // paper default for 4 bits

  auto q2 = ParseCodecSpec("Q2");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->bucket_size, 128);

  auto custom = ParseCodecSpec("q8:2048");
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->bits, 8);
  EXPECT_EQ(custom->bucket_size, 2048);

  auto q16 = ParseCodecSpec("q16");
  ASSERT_TRUE(q16.ok());
  EXPECT_EQ(q16->bucket_size, 8192);
}

TEST(ParseCodecSpecTest, TopK) {
  auto topk = ParseCodecSpec("topk:0.01");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->kind, CodecKind::kTopK);
  EXPECT_DOUBLE_EQ(topk->density, 0.01);

  auto full = ParseCodecSpec("topk:1.0");
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full->density, 1.0);
}

TEST(ParseCodecSpecTest, RejectsGarbage) {
  for (const char* text :
       {"", "q", "q1", "q17", "q4:", "q4:-1", "q4:abc", "1bit:64",
        "1bit*:0", "topk", "topk:0", "topk:1.5", "topk:x", "64bit",
        "qsgd", "32bit:4"}) {
    EXPECT_FALSE(ParseCodecSpec(text).ok()) << "'" << text << "'";
  }
}

TEST(ParseCodecSpecTest, RoundTripsThroughCreateCodec) {
  for (const char* text :
       {"32bit", "1bit", "1bit*", "1bit*:128", "q2", "q4", "q8:64", "q16",
        "topk:0.05"}) {
    auto spec = ParseCodecSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto codec = CreateCodec(*spec);
    EXPECT_TRUE(codec.ok()) << text;
  }
}

// The members are the primary API; the free functions above are
// forwarders. Both must agree.
TEST(CodecSpecMemberTest, ParseMatchesFreeFunction) {
  for (const char* text : {"32bit", "1bit*", "q4:256", "topk:0.1", "aq4"}) {
    auto member = CodecSpec::Parse(text);
    auto free_fn = ParseCodecSpec(text);
    ASSERT_TRUE(member.ok()) << text;
    ASSERT_TRUE(free_fn.ok()) << text;
    EXPECT_EQ(member->kind, free_fn->kind) << text;
    EXPECT_EQ(member->bits, free_fn->bits) << text;
    EXPECT_EQ(member->bucket_size, free_fn->bucket_size) << text;
    EXPECT_DOUBLE_EQ(member->density, free_fn->density) << text;
  }
  EXPECT_FALSE(CodecSpec::Parse("64bit").ok());
}

TEST(CodecSpecMemberTest, CreateInstantiatesAndValidates) {
  auto spec = CodecSpec::Parse("q4");
  ASSERT_TRUE(spec.ok());
  auto codec = spec->Create();
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->Name(), CreateCodec(*spec).value()->Name());

  CodecSpec bad = QsgdSpec(4);
  bad.bits = 99;
  EXPECT_FALSE(bad.Create().ok());
  bad = OneBitSgdReshapedSpec(0);
  EXPECT_FALSE(bad.Create().ok());
}

}  // namespace
}  // namespace lpsgd
