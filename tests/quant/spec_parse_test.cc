// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include <gtest/gtest.h>

#include "quant/codec.h"

namespace lpsgd {
namespace {

TEST(ParseCodecSpecTest, FullPrecision) {
  for (const char* text : {"32bit", "fp32", "FP32", "32BIT"}) {
    auto spec = ParseCodecSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec->kind, CodecKind::kFullPrecision);
  }
}

TEST(ParseCodecSpecTest, OneBitVariants) {
  auto stock = ParseCodecSpec("1bit");
  ASSERT_TRUE(stock.ok());
  EXPECT_EQ(stock->kind, CodecKind::kOneBitSgd);

  auto stock_long = ParseCodecSpec("1bitsgd");
  ASSERT_TRUE(stock_long.ok());
  EXPECT_EQ(stock_long->kind, CodecKind::kOneBitSgd);

  auto reshaped = ParseCodecSpec("1bit*");
  ASSERT_TRUE(reshaped.ok());
  EXPECT_EQ(reshaped->kind, CodecKind::kOneBitSgdReshaped);
  EXPECT_EQ(reshaped->bucket_size, 64);

  auto bucketed = ParseCodecSpec("1bit*:512");
  ASSERT_TRUE(bucketed.ok());
  EXPECT_EQ(bucketed->bucket_size, 512);
}

TEST(ParseCodecSpecTest, Qsgd) {
  auto q4 = ParseCodecSpec("q4");
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(q4->kind, CodecKind::kQsgd);
  EXPECT_EQ(q4->bits, 4);
  EXPECT_EQ(q4->bucket_size, 512);  // paper default for 4 bits

  auto q2 = ParseCodecSpec("Q2");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->bucket_size, 128);

  auto custom = ParseCodecSpec("q8:2048");
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->bits, 8);
  EXPECT_EQ(custom->bucket_size, 2048);

  auto q16 = ParseCodecSpec("q16");
  ASSERT_TRUE(q16.ok());
  EXPECT_EQ(q16->bucket_size, 8192);
}

TEST(ParseCodecSpecTest, TopK) {
  auto topk = ParseCodecSpec("topk:0.01");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->kind, CodecKind::kTopK);
  EXPECT_DOUBLE_EQ(topk->density, 0.01);

  auto full = ParseCodecSpec("topk:1.0");
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full->density, 1.0);
}

TEST(ParseCodecSpecTest, TernGrad) {
  auto tern = ParseCodecSpec("terngrad");
  ASSERT_TRUE(tern.ok());
  EXPECT_EQ(tern->kind, CodecKind::kTernGrad);
  EXPECT_EQ(tern->bits, 2);
  EXPECT_EQ(tern->bucket_size, 0);  // one scalar per matrix
  EXPECT_DOUBLE_EQ(tern->clip, 0.0);

  auto alias = ParseCodecSpec("tern");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias->kind, CodecKind::kTernGrad);

  auto params = ParseCodecSpec("terngrad:bucket=1024,clip=2.5");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->bucket_size, 1024);
  EXPECT_DOUBLE_EQ(params->clip, 2.5);

  auto positional = ParseCodecSpec("tern:256");
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(positional->bucket_size, 256);
}

TEST(ParseCodecSpecTest, Nuqsgd) {
  auto nuq4 = ParseCodecSpec("nuq4");
  ASSERT_TRUE(nuq4.ok());
  EXPECT_EQ(nuq4->kind, CodecKind::kNuqsgd);
  EXPECT_EQ(nuq4->bits, 4);
  EXPECT_EQ(nuq4->bucket_size, 512);  // paper default for 4 bits
  EXPECT_EQ(nuq4->norm, QsgdNorm::kL2);  // NUQSGD normalizes by L2

  auto bucketed = ParseCodecSpec("nuq4:256");
  ASSERT_TRUE(bucketed.ok());
  EXPECT_EQ(bucketed->bucket_size, 256);

  auto keyed = ParseCodecSpec("nuq8:bucket=1024");
  ASSERT_TRUE(keyed.ok());
  EXPECT_EQ(keyed->bits, 8);
  EXPECT_EQ(keyed->bucket_size, 1024);
}

TEST(ParseCodecSpecTest, EcqSgd) {
  auto ecq4 = ParseCodecSpec("ecq4");
  ASSERT_TRUE(ecq4.ok());
  EXPECT_EQ(ecq4->kind, CodecKind::kEcqSgd);
  EXPECT_EQ(ecq4->bits, 4);
  EXPECT_EQ(ecq4->bucket_size, 512);
  EXPECT_TRUE(ecq4->error_feedback);

  auto bucketed = ParseCodecSpec("ecq8:1024");
  ASSERT_TRUE(bucketed.ok());
  EXPECT_EQ(bucketed->bits, 8);
  EXPECT_EQ(bucketed->bucket_size, 1024);
}

TEST(ParseCodecSpecTest, KeyValueGrammar) {
  auto q = ParseCodecSpec("q4:bucket=512,norm=l2,levels=sym");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->bucket_size, 512);
  EXPECT_EQ(q->norm, QsgdNorm::kL2);
  EXPECT_EQ(q->levels, QsgdLevelScheme::kSymmetric);

  // Positional and keyed forms of the same parameter agree.
  EXPECT_EQ(ParseCodecSpec("q8:64")->bucket_size,
            ParseCodecSpec("q8:bucket=64")->bucket_size);
  EXPECT_DOUBLE_EQ(ParseCodecSpec("topk:0.05")->density,
                   ParseCodecSpec("topk:density=0.05")->density);
}

TEST(ParseCodecSpecTest, RejectsGarbage) {
  for (const char* text :
       {"", "q", "q1", "q17", "q4:", "q4:-1", "q4:abc", "1bit:64",
        "1bit*:0", "topk", "topk:0", "topk:1.5", "topk:x", "64bit",
        "qsgd", "32bit:4",
        // New-family garbage.
        "nuq", "nuq1", "nuq17", "nuq4:0", "nuq4:abc", "ecq", "ecq1",
        "ecq17", "ecq4:-5", "tern:0", "tern:abc", "terngrad:clip=0",
        "terngrad:clip=-1", "terngrad:clip=x",
        // Malformed key=value grammar.
        "q4:bucket=", "q4:=512", "q4:bucket=64,bucket=128",
        "q4:64,bucket=128", "q4:bucket=64,512", "q4:64,,128",
        "q4:norm=foo", "q4:levels=foo", "q4:density=0.5",
        "topk:density=0.5,0.6", "terngrad:bits=2"}) {
    EXPECT_FALSE(ParseCodecSpec(text).ok()) << "'" << text << "'";
  }
}

// Parse errors are actionable: they name the offending token and, where
// it helps, list what would have been accepted.
TEST(ParseCodecSpecTest, ErrorsNameOffendingToken) {
  const auto message = [](const char* text) {
    auto spec = ParseCodecSpec(text);
    EXPECT_FALSE(spec.ok()) << text;
    return spec.ok() ? std::string() : std::string(spec.status().message());
  };
  const auto contains = [](const std::string& haystack, const char* needle) {
    return haystack.find(needle) != std::string::npos;
  };

  // Unknown codec head: names the head and lists every registered codec.
  const std::string unknown = message("zstd4");
  EXPECT_TRUE(contains(unknown, "'zstd4'")) << unknown;
  EXPECT_TRUE(contains(unknown, "registered codecs:")) << unknown;
  for (const char* family :
       {"32bit", "1bit", "1bit*", "q<bits>", "aq<bits>", "nuq<bits>",
        "ecq<bits>", "terngrad", "topk"}) {
    EXPECT_TRUE(contains(unknown, family)) << unknown;
  }

  // Unknown parameter: names the token and the accepted keys.
  const std::string unknown_key = message("q4:density=0.5");
  EXPECT_TRUE(contains(unknown_key, "'density=0.5'")) << unknown_key;
  EXPECT_TRUE(contains(unknown_key, "accepted keys:")) << unknown_key;
  EXPECT_TRUE(contains(unknown_key, "bucket")) << unknown_key;

  // Parameter given to a codec that takes none.
  const std::string no_params = message("32bit:4");
  EXPECT_TRUE(contains(no_params, "takes no parameters")) << no_params;
  EXPECT_TRUE(contains(no_params, "'4'")) << no_params;

  // Repeated key, conflicting positional+keyed, malformed pair, dangling
  // colon: each names the offending piece.
  EXPECT_TRUE(contains(message("q4:bucket=64,bucket=128"),
                       "repeated codec parameter key 'bucket'"));
  const std::string both = message("q4:64,bucket=128");
  EXPECT_TRUE(contains(both, "'bucket'")) << both;
  EXPECT_TRUE(contains(both, "both positionally")) << both;
  EXPECT_TRUE(contains(message("q4:bucket="),
                       "malformed codec parameter 'bucket='"));
  EXPECT_TRUE(contains(message("q4:"), "dangling ':'"));

  // Bad values name the value and what it was supposed to be.
  EXPECT_TRUE(contains(message("q4:abc"), "bad bucket size: abc"));
  EXPECT_TRUE(contains(message("terngrad:clip=x"), "bad TernGrad clip: x"));
  EXPECT_TRUE(contains(message("nuq17"), "bad NUQSGD bits: nuq17"));
  EXPECT_TRUE(
      contains(message("topk:x"), "bad TopK density: x"));
}

TEST(ParseCodecSpecTest, RoundTripsThroughCreateCodec) {
  for (const char* text :
       {"32bit", "1bit", "1bit*", "1bit*:128", "q2", "q4", "q8:64", "q16",
        "topk:0.05"}) {
    auto spec = ParseCodecSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto codec = CreateCodec(*spec);
    EXPECT_TRUE(codec.ok()) << text;
  }
}

// The members are the primary API; the free functions above are
// forwarders. Both must agree.
TEST(CodecSpecMemberTest, ParseMatchesFreeFunction) {
  for (const char* text : {"32bit", "1bit*", "q4:256", "topk:0.1", "aq4"}) {
    auto member = CodecSpec::Parse(text);
    auto free_fn = ParseCodecSpec(text);
    ASSERT_TRUE(member.ok()) << text;
    ASSERT_TRUE(free_fn.ok()) << text;
    EXPECT_EQ(member->kind, free_fn->kind) << text;
    EXPECT_EQ(member->bits, free_fn->bits) << text;
    EXPECT_EQ(member->bucket_size, free_fn->bucket_size) << text;
    EXPECT_DOUBLE_EQ(member->density, free_fn->density) << text;
  }
  EXPECT_FALSE(CodecSpec::Parse("64bit").ok());
}

TEST(CodecSpecMemberTest, CreateInstantiatesAndValidates) {
  auto spec = CodecSpec::Parse("q4");
  ASSERT_TRUE(spec.ok());
  auto codec = spec->Create();
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->Name(), CreateCodec(*spec).value()->Name());

  CodecSpec bad = QsgdSpec(4);
  bad.bits = 99;
  EXPECT_FALSE(bad.Create().ok());
  bad = OneBitSgdReshapedSpec(0);
  EXPECT_FALSE(bad.Create().ok());
}

}  // namespace
}  // namespace lpsgd
