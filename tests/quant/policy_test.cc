// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/policy.h"

#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace lpsgd {
namespace {

TEST(PolicyTest, QuantizesEverythingWhenAllLarge) {
  std::vector<Shape> shapes = {Shape({1000, 1000}), Shape({2000, 500})};
  std::vector<ParamKind> kinds(2, ParamKind::kFullyConnected);
  QuantizationPolicyOptions options;
  const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
  EXPECT_TRUE(decision[0]);
  EXPECT_TRUE(decision[1]);
}

TEST(PolicyTest, BypassesTinyMatrices) {
  // One 1M matrix and one 10-element matrix: the tiny one is bypassed
  // because 99% coverage is reached without it.
  std::vector<Shape> shapes = {Shape({1000, 1000}), Shape({10})};
  std::vector<ParamKind> kinds = {ParamKind::kFullyConnected,
                                  ParamKind::kOther};
  QuantizationPolicyOptions options;
  const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
  EXPECT_TRUE(decision[0]);
  EXPECT_FALSE(decision[1]);
}

TEST(PolicyTest, CoversAtLeastTargetFraction) {
  // Many equal matrices: all must be quantized to reach 99%.
  std::vector<Shape> shapes(100, Shape({100}));
  std::vector<ParamKind> kinds(100, ParamKind::kFullyConnected);
  QuantizationPolicyOptions options;
  const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
  int64_t covered = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    if (decision[i]) covered += shapes[i].element_count();
  }
  EXPECT_GE(covered, 99 * 100);
}

TEST(PolicyTest, EqualSizedMatricesAtThresholdAllQuantize) {
  // 99% reached inside a run of equal sizes: the whole run quantizes.
  std::vector<Shape> shapes(200, Shape({50}));
  std::vector<ParamKind> kinds(200, ParamKind::kConvolutional);
  QuantizationPolicyOptions options;
  const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
  for (size_t i = 0; i < decision.size(); ++i) {
    EXPECT_TRUE(decision[i]) << i;
  }
}

TEST(PolicyTest, BiasesAlwaysBypassedByDefault) {
  std::vector<Shape> shapes = {Shape({10, 10}), Shape({1000000})};
  std::vector<ParamKind> kinds = {ParamKind::kFullyConnected,
                                  ParamKind::kBias};
  QuantizationPolicyOptions options;
  const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
  EXPECT_FALSE(decision[1]);  // bias bypassed even though huge

  options.always_bypass_biases = false;
  const auto relaxed = ChooseQuantizedMatrices(shapes, kinds, options);
  EXPECT_TRUE(relaxed[1]);
}

TEST(PolicyTest, LayerFamilyAblationSwitches) {
  std::vector<Shape> shapes = {Shape({3, 100000}), Shape({4096, 4096})};
  std::vector<ParamKind> kinds = {ParamKind::kConvolutional,
                                  ParamKind::kFullyConnected};

  QuantizationPolicyOptions conv_only;
  conv_only.quantize_fully_connected = false;
  auto decision = ChooseQuantizedMatrices(shapes, kinds, conv_only);
  EXPECT_TRUE(decision[0]);
  EXPECT_FALSE(decision[1]);

  QuantizationPolicyOptions fc_only;
  fc_only.quantize_convolutional = false;
  decision = ChooseQuantizedMatrices(shapes, kinds, fc_only);
  EXPECT_FALSE(decision[0]);
  EXPECT_TRUE(decision[1]);
}

TEST(PolicyTest, PaperNetworksQuantizeOver99Percent) {
  // Section 3.2.2: "we choose a threshold for small matrices in such a way
  // so we always quantize more than 99% of all parameters."
  for (const NetworkStats& net : PaperNetworks()) {
    std::vector<Shape> shapes;
    std::vector<ParamKind> kinds;
    for (const MatrixStat& m : net.matrices) {
      for (int c = 0; c < m.count; ++c) {
        shapes.push_back(Shape({m.rows, m.cols}));
        kinds.push_back(m.kind);
      }
    }
    QuantizationPolicyOptions options;
    const auto decision = ChooseQuantizedMatrices(shapes, kinds, options);
    int64_t total = 0, covered = 0;
    for (size_t i = 0; i < shapes.size(); ++i) {
      total += shapes[i].element_count();
      if (decision[i]) covered += shapes[i].element_count();
    }
    EXPECT_GE(static_cast<double>(covered) / static_cast<double>(total),
              0.99)
        << net.name;
  }
}

TEST(PolicyTest, EmptyInput) {
  QuantizationPolicyOptions options;
  EXPECT_TRUE(ChooseQuantizedMatrices(std::vector<Shape>{},
                                      std::vector<ParamKind>{}, options)
                  .empty());
}

}  // namespace
}  // namespace lpsgd
