// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/qsgd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

std::unique_ptr<GradientCodec> MakeQsgd(
    int bits, int64_t bucket, QsgdNorm norm = QsgdNorm::kMax,
    QsgdLevelScheme levels = QsgdLevelScheme::kSignMagnitude) {
  CodecSpec spec;
  spec.kind = CodecKind::kQsgd;
  spec.bits = bits;
  spec.bucket_size = bucket;
  spec.norm = norm;
  spec.levels = levels;
  auto codec = CreateCodec(spec);
  CHECK_OK(codec.status());
  return std::move(codec).value();
}

std::vector<float> EncodeDecode(const GradientCodec& codec,
                                const Tensor& grad, uint64_t tag) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), tag, nullptr, &blob);
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()), grad.shape(),
               decoded.data()));
  return decoded;
}

// Core QSGD property (Equation 1): E[Q(v)] = v.
class QsgdUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<int, QsgdNorm,
                                                 QsgdLevelScheme>> {};

TEST_P(QsgdUnbiasednessTest, QuantizerIsUnbiased) {
  const auto [bits, norm, levels] = GetParam();
  auto codec = MakeQsgd(bits, 64, norm, levels);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(static_cast<uint64_t>(bits) * 7 + 3);
  grad.FillGaussian(&rng, 1.0f);

  std::vector<double> mean(64, 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const std::vector<float> decoded =
        EncodeDecode(*codec, grad, static_cast<uint64_t>(t));
    for (int i = 0; i < 64; ++i) mean[static_cast<size_t>(i)] += decoded[i];
  }
  // Standard error of the estimate is <= scale / sqrt(trials); use a
  // conservative bound.
  double max_error = 0.0;
  for (int i = 0; i < 64; ++i) {
    max_error = std::max(
        max_error, std::abs(mean[static_cast<size_t>(i)] / trials -
                            grad.at(i)));
  }
  EXPECT_LT(max_error, 0.12) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    BitsNormsSchemes, QsgdUnbiasednessTest,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(QsgdNorm::kL2, QsgdNorm::kMax),
                       ::testing::Values(QsgdLevelScheme::kSignMagnitude,
                                         QsgdLevelScheme::kSymmetric)));

TEST(QsgdTest, DecodedValuesAreOnTheLevelGrid) {
  auto codec = MakeQsgd(4, 32, QsgdNorm::kMax);
  const Shape shape({32});
  Tensor grad(shape);
  Rng rng(5);
  grad.FillGaussian(&rng, 1.0f);
  const double scale = grad.AbsMax();
  const int s = 7;  // 2^(4-1) - 1 magnitude levels

  const std::vector<float> decoded = EncodeDecode(*codec, grad, 1);
  for (float v : decoded) {
    const double level = std::abs(v) / scale * s;
    EXPECT_NEAR(level, std::round(level), 1e-4) << v;
    EXPECT_LE(std::abs(v), scale + 1e-6);
  }
}

TEST(QsgdTest, SignsArePreserved) {
  auto codec = MakeQsgd(8, 64);
  const Shape shape({100});
  Tensor grad(shape);
  Rng rng(6);
  grad.FillGaussian(&rng, 1.0f);
  const std::vector<float> decoded = EncodeDecode(*codec, grad, 2);
  for (int64_t i = 0; i < 100; ++i) {
    if (decoded[static_cast<size_t>(i)] != 0.0f) {
      EXPECT_EQ(decoded[static_cast<size_t>(i)] > 0, grad.at(i) > 0) << i;
    }
  }
}

TEST(QsgdTest, ZeroVectorEncodesToZero) {
  auto codec = MakeQsgd(4, 16);
  const Shape shape({50});
  Tensor grad(shape);  // zeros
  const std::vector<float> decoded = EncodeDecode(*codec, grad, 3);
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(QsgdTest, HigherPrecisionLowersVariance) {
  const Shape shape({256});
  Tensor grad(shape);
  Rng rng(7);
  grad.FillGaussian(&rng, 1.0f);

  auto variance_for_bits = [&](int bits) {
    auto codec = MakeQsgd(bits, 256);
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      const std::vector<float> decoded =
          EncodeDecode(*codec, grad, static_cast<uint64_t>(t));
      for (int64_t i = 0; i < grad.size(); ++i) {
        const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
        total += d * d;
      }
    }
    return total / trials;
  };

  const double v2 = variance_for_bits(2);
  const double v4 = variance_for_bits(4);
  const double v8 = variance_for_bits(8);
  EXPECT_GT(v2, 4.0 * v4);
  EXPECT_GT(v4, 4.0 * v8);
}

TEST(QsgdTest, SmallerBucketsLowerVariance) {
  // Section 3.2.2: bucketing controls the dimension-dependent variance.
  const Shape shape({4096});
  Tensor grad(shape);
  Rng rng(8);
  grad.FillGaussian(&rng, 1.0f);

  auto variance_for_bucket = [&](int64_t bucket) {
    auto codec = MakeQsgd(4, bucket, QsgdNorm::kL2);
    double total = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
      const std::vector<float> decoded =
          EncodeDecode(*codec, grad, static_cast<uint64_t>(t));
      for (int64_t i = 0; i < grad.size(); ++i) {
        const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
        total += d * d;
      }
    }
    return total / trials;
  };

  EXPECT_LT(variance_for_bucket(64), variance_for_bucket(512));
  EXPECT_LT(variance_for_bucket(512), variance_for_bucket(4096));
}

TEST(QsgdTest, MaxNormHasLowerVarianceThanL2) {
  // Section 3.2.2: normalizing by the max element preserves more
  // information (smaller variance); 2-norm yields sparser vectors.
  const Shape shape({512});
  Tensor grad(shape);
  Rng rng(9);
  grad.FillGaussian(&rng, 1.0f);

  auto stats_for_norm = [&](QsgdNorm norm) {
    auto codec = MakeQsgd(4, 512, norm);
    double err = 0.0;
    int64_t zeros = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      const std::vector<float> decoded =
          EncodeDecode(*codec, grad, static_cast<uint64_t>(t));
      for (int64_t i = 0; i < grad.size(); ++i) {
        const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
        err += d * d;
        if (decoded[static_cast<size_t>(i)] == 0.0f) ++zeros;
      }
    }
    return std::make_pair(err / trials, zeros);
  };

  const auto [l2_err, l2_zeros] = stats_for_norm(QsgdNorm::kL2);
  const auto [max_err, max_zeros] = stats_for_norm(QsgdNorm::kMax);
  EXPECT_LT(max_err, l2_err);
  EXPECT_GT(l2_zeros, max_zeros);  // 2-norm scaling is sparser
}

TEST(QsgdTest, DeterministicGivenTag) {
  auto codec = MakeQsgd(4, 64);
  const Shape shape({128});
  Tensor grad(shape);
  Rng rng(10);
  grad.FillGaussian(&rng, 1.0f);
  EXPECT_EQ(EncodeDecode(*codec, grad, 42), EncodeDecode(*codec, grad, 42));
  EXPECT_NE(EncodeDecode(*codec, grad, 42), EncodeDecode(*codec, grad, 43));
}

TEST(QsgdTest, TwoBitUsesOnlyThreeLevels) {
  // Section 5.1: 2-bit QSGD quantizes to levels {-1, 0, 1} (x scale).
  auto codec = MakeQsgd(2, 64);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(11);
  grad.FillGaussian(&rng, 1.0f);
  const double scale = grad.AbsMax();
  const std::vector<float> decoded = EncodeDecode(*codec, grad, 4);
  for (float v : decoded) {
    const double normalized = std::abs(v) / scale;
    EXPECT_TRUE(std::abs(normalized) < 1e-6 ||
                std::abs(normalized - 1.0) < 1e-6)
        << v;
  }
}

TEST(QsgdTest, SixteenBitIsNearLossless) {
  auto codec = MakeQsgd(16, 8192);
  const Shape shape({1000});
  Tensor grad(shape);
  Rng rng(12);
  grad.FillGaussian(&rng, 1.0f);
  const std::vector<float> decoded = EncodeDecode(*codec, grad, 5);
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(decoded[static_cast<size_t>(i)], grad.at(i),
                grad.AbsMax() / 16000.0);
  }
}

}  // namespace
}  // namespace lpsgd
