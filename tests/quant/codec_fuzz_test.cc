// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Randomized property sweep across every codec: for random shapes and
// gradient contents (including adversarial ones), the wire contract must
// hold — blob size equals EncodedSizeBytes, Decode accepts exactly that
// blob, decoded values are finite and bounded by the input's magnitude
// range, and sign structure is preserved where the codec guarantees it.
#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "quant/codec.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

std::vector<CodecSpec> AllSpecs() {
  return {FullPrecisionSpec(),
          OneBitSgdSpec(),
          OneBitSgdReshapedSpec(7),
          OneBitSgdReshapedSpec(64),
          QsgdSpec(2),
          QsgdSpec(4),
          QsgdSpec(8),
          QsgdSpec(16),
          [] {
            CodecSpec s = QsgdSpec(4);
            s.norm = QsgdNorm::kL2;
            return s;
          }(),
          [] {
            CodecSpec s = QsgdSpec(4);
            s.levels = QsgdLevelScheme::kSymmetric;
            return s;
          }(),
          TopKSpec(0.1)};
}

Shape RandomShape(Rng* rng) {
  switch (rng->NextInt(0, 3)) {
    case 0:
      return Shape({rng->NextInt(1, 2000)});
    case 1:
      return Shape({rng->NextInt(1, 12), rng->NextInt(1, 300)});
    case 2:
      return Shape({rng->NextInt(1, 8), rng->NextInt(1, 8),
                    rng->NextInt(1, 30)});
    default:
      return Shape({rng->NextInt(1, 50), rng->NextInt(1, 50)});
  }
}

void FillAdversarial(Rng* rng, Tensor* grad) {
  switch (rng->NextInt(0, 4)) {
    case 0:
      grad->FillGaussian(rng, 1.0f);
      break;
    case 1:
      grad->SetZero();
      break;
    case 2:
      grad->Fill(rng->NextFloat() - 0.5f);  // constant
      break;
    case 3:
      grad->FillGaussian(rng, 1e-20f);  // denormal-range values
      break;
    default:
      grad->FillGaussian(rng, 1e15f);  // huge values
      break;
  }
}

TEST(CodecFuzzTest, WireContractHoldsForRandomInputs) {
  Rng rng(0xf02211);
  const auto specs = AllSpecs();
  for (int trial = 0; trial < 200; ++trial) {
    const CodecSpec& spec =
        specs[static_cast<size_t>(rng.NextUint64(specs.size()))];
    auto codec = CreateCodec(spec);
    ASSERT_TRUE(codec.ok());

    const Shape shape = RandomShape(&rng);
    Tensor grad(shape);
    FillAdversarial(&rng, &grad);
    const int64_t n = shape.element_count();

    std::vector<float> error(
        (*codec)->UsesErrorFeedback() ? static_cast<size_t>(n) : 0, 0.0f);
    std::vector<float>* error_ptr =
        (*codec)->UsesErrorFeedback() ? &error : nullptr;

    std::vector<uint8_t> blob;
    (*codec)->Encode(grad.data(), shape, rng.NextUint64(), error_ptr,
                     &blob);
    ASSERT_EQ(static_cast<int64_t>(blob.size()),
              (*codec)->EncodedSizeBytes(shape))
        << spec.Label() << " shape " << shape.ToString();

    std::vector<float> decoded(static_cast<size_t>(n));
    ASSERT_TRUE((*codec)
                    ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                             shape, decoded.data())
                    .ok())
        << spec.Label() << " trial " << trial;

    // Every codec's decoded magnitudes are bounded by its chunk scale,
    // which never exceeds the gradient's L2 norm.
    const double bound = grad.L2Norm() * 1.0001 + 1e-30;
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(std::isfinite(decoded[static_cast<size_t>(i)]))
          << spec.Label() << " trial " << trial << " i=" << i;
      ASSERT_LE(std::abs(decoded[static_cast<size_t>(i)]), bound)
          << spec.Label() << " trial " << trial << " i=" << i;
    }
    if ((*codec)->UsesErrorFeedback()) {
      for (float e : error) {
        ASSERT_TRUE(std::isfinite(e)) << spec.Label();
      }
    }
  }
}

TEST(CodecFuzzTest, DeterministicGivenSameInputsAndTag) {
  Rng rng(0xdede);
  for (const CodecSpec& spec : AllSpecs()) {
    auto codec = CreateCodec(spec);
    ASSERT_TRUE(codec.ok());
    const Shape shape({13, 31});
    Tensor grad(shape);
    grad.FillGaussian(&rng, 1.0f);

    auto encode_once = [&] {
      std::vector<float> error(
          (*codec)->UsesErrorFeedback()
              ? static_cast<size_t>(shape.element_count())
              : 0,
          0.0f);
      std::vector<uint8_t> blob;
      (*codec)->Encode(grad.data(), shape, 77,
                       (*codec)->UsesErrorFeedback() ? &error : nullptr,
                       &blob);
      return blob;
    };
    EXPECT_EQ(encode_once(), encode_once()) << spec.Label();
  }
}

TEST(CodecFuzzTest, QuantizedDecodeIsIdempotentForDeterministicCodecs) {
  // 1bitSGD without error feedback: quantizing an already-quantized vector
  // reproduces it exactly (the averages of a two-valued vector are those
  // values).
  CodecSpec spec = OneBitSgdReshapedSpec(32);
  spec.error_feedback = false;
  auto codec = CreateCodec(spec);
  ASSERT_TRUE(codec.ok());

  Rng rng(4);
  const Shape shape({96});
  Tensor grad(shape);
  grad.FillGaussian(&rng, 1.0f);

  std::vector<uint8_t> blob;
  (*codec)->Encode(grad.data(), shape, 0, nullptr, &blob);
  std::vector<float> once(96);
  ASSERT_TRUE((*codec)
                  ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                           shape, once.data())
                  .ok());

  (*codec)->Encode(once.data(), shape, 1, nullptr, &blob);
  std::vector<float> twice(96);
  ASSERT_TRUE((*codec)
                  ->Decode(blob.data(), static_cast<int64_t>(blob.size()),
                           shape, twice.data())
                  .ok());
  for (int i = 0; i < 96; ++i) {
    EXPECT_FLOAT_EQ(once[static_cast<size_t>(i)],
                    twice[static_cast<size_t>(i)])
        << i;
  }
}

}  // namespace
}  // namespace lpsgd
