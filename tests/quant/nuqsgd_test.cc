// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/nuqsgd.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

std::vector<float> EncodeDecode(const NuqsgdCodec& codec, const Tensor& grad,
                                uint64_t tag) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), tag, nullptr, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(grad.shape()));
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                        grad.shape(), decoded.data()));
  return decoded;
}

TEST(NuqsgdCodecTest, DecodedValuesLieOnTheExponentialGrid) {
  // 4 bits -> s = 7 nonzero levels 2^-6 .. 2^0, scaled by the bucket's L2
  // norm. Every decoded magnitude must be exactly scale * 2^(j - s).
  NuqsgdCodec codec(/*bits=*/4, /*bucket_size=*/512, /*seed=*/1);
  const Shape shape({100});
  Tensor grad(shape);
  Rng rng(2);
  grad.FillGaussian(&rng, 1.0f);

  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), shape, 5, nullptr, &blob);
  float scale;  // single bucket: first word is the L2 norm
  std::memcpy(&scale, blob.data(), sizeof(float));
  double sum_sq = 0.0;
  for (int64_t i = 0; i < 100; ++i) {
    sum_sq += static_cast<double>(grad.at(i)) * grad.at(i);
  }
  EXPECT_FLOAT_EQ(scale, static_cast<float>(std::sqrt(sum_sq)));

  std::vector<float> decoded(100);
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                        shape, decoded.data()));
  const int s = 7;
  for (int64_t i = 0; i < 100; ++i) {
    const float d = std::abs(decoded[static_cast<size_t>(i)]);
    if (d == 0.0f) continue;
    bool on_grid = false;
    for (int j = 1; j <= s; ++j) {
      const float level =
          scale * static_cast<float>(std::ldexp(1.0, j - s));
      if (d == level) on_grid = true;
    }
    EXPECT_TRUE(on_grid) << i << ": " << d << " (scale " << scale << ")";
  }
}

TEST(NuqsgdCodecTest, SingleNonzeroComponentIsExact) {
  // One nonzero element: its normalized magnitude is exactly 1 = l_s, the
  // top level, so the round trip is deterministic and lossless.
  NuqsgdCodec codec(4, 512, 1);
  const Shape shape({32});
  Tensor grad(shape);
  grad.SetZero();
  grad.at(13) = -3.25f;

  for (uint64_t tag = 0; tag < 8; ++tag) {
    const std::vector<float> decoded = EncodeDecode(codec, grad, tag);
    EXPECT_FLOAT_EQ(decoded[13], -3.25f) << tag;
    for (int64_t i = 0; i < 32; ++i) {
      if (i != 13) EXPECT_EQ(decoded[static_cast<size_t>(i)], 0.0f) << i;
    }
  }
}

TEST(NuqsgdCodecTest, StochasticRoundingIsUnbiased) {
  NuqsgdCodec codec(4, 512, 1);
  const Shape shape({16});
  Tensor grad(shape);
  Rng rng(3);
  grad.FillGaussian(&rng, 1.0f);

  const int kRounds = 4000;
  std::vector<double> mean(16, 0.0);
  for (int t = 0; t < kRounds; ++t) {
    const std::vector<float> decoded =
        EncodeDecode(codec, grad, static_cast<uint64_t>(t));
    for (int64_t i = 0; i < 16; ++i) {
      mean[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(mean[static_cast<size_t>(i)] / kRounds, grad.at(i), 0.15)
        << i;
  }
}

TEST(NuqsgdCodecTest, WireLayoutMatchesQsgd) {
  // Same skeleton as QSGD: scale words + bits-wide fields + checksum, so
  // the encoded size matches QSGD's at every (bits, bucket) setting.
  for (int bits : {2, 4, 8}) {
    NuqsgdCodec nuq(bits, 64, 1);
    CodecSpec q = QsgdSpec(bits);
    q.bucket_size = 64;
    auto qsgd = CreateCodec(q);
    ASSERT_TRUE(qsgd.ok());
    const Shape shape({1000});
    EXPECT_EQ(nuq.EncodedSizeBytes(shape), (*qsgd)->EncodedSizeBytes(shape))
        << bits;
    EXPECT_EQ(nuq.NumChunks(shape), (*qsgd)->NumChunks(shape)) << bits;
  }
}

TEST(NuqsgdCodecTest, ZeroBucketsRoundTripToZero) {
  NuqsgdCodec codec(4, 16, 1);
  const Shape shape({64});
  Tensor grad(shape);
  grad.SetZero();
  const std::vector<float> decoded = EncodeDecode(codec, grad, 9);
  for (float d : decoded) EXPECT_EQ(d, 0.0f);
}

TEST(NuqsgdCodecTest, FactoryAndSpec) {
  const CodecSpec spec = NuqsgdSpec(4);
  EXPECT_EQ(spec.bucket_size, 512);  // inherits the paper bucket defaults
  EXPECT_EQ(spec.norm, QsgdNorm::kL2);
  auto codec = CreateCodec(spec);
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->Name(), "NUQSGD 4bit (b=512)");
  EXPECT_FALSE((*codec)->UsesErrorFeedback());

  CodecSpec bad = NuqsgdSpec(4);
  bad.bits = 1;
  EXPECT_FALSE(CreateCodec(bad).ok());
  bad = NuqsgdSpec(4);
  bad.bucket_size = 0;
  EXPECT_FALSE(CreateCodec(bad).ok());
}

}  // namespace
}  // namespace lpsgd
