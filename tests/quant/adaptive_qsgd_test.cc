// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/adaptive_qsgd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "quant/qsgd.h"
#include "tensor/tensor.h"
#include "base/logging.h"

namespace lpsgd {
namespace {

std::vector<float> EncodeDecode(const GradientCodec& codec,
                                const Tensor& grad, uint64_t tag) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), tag, nullptr, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(grad.shape()));
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()), grad.shape(),
               decoded.data()));
  return decoded;
}

TEST(AdaptiveQsgdTest, LevelsAreSortedAndSpanUnitInterval) {
  AdaptiveQsgdCodec codec(4, 64, /*seed=*/1);
  const Shape shape({512});
  Tensor grad(shape);
  Rng rng(2);
  grad.FillGaussian(&rng, 1.0f);

  // Per-bucket max-norm scales, as the encoder computes them.
  std::vector<float> scales;
  for (int64_t b = 0; b < 8; ++b) {
    double max_abs = 0.0;
    for (int64_t i = b * 64; i < (b + 1) * 64; ++i) {
      max_abs = std::max(max_abs, std::abs(double{grad.at(i)}));
    }
    scales.push_back(static_cast<float>(max_abs));
  }

  const std::vector<float> levels =
      codec.ComputeLevels(grad.data(), shape, scales);
  ASSERT_EQ(levels.size(), codec.level_count() + 1);
  EXPECT_EQ(levels.front(), 0.0f);
  EXPECT_EQ(levels.back(), 1.0f);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GE(levels[i], levels[i - 1]);
  }
}

TEST(AdaptiveQsgdTest, LevelsFollowTheDataDistribution) {
  // Gaussian magnitudes concentrate near zero; the quantile levels must be
  // denser near zero than a uniform grid.
  AdaptiveQsgdCodec codec(4, 4096, 1);
  const Shape shape({4096});
  Tensor grad(shape);
  Rng rng(3);
  grad.FillGaussian(&rng, 1.0f);
  std::vector<float> scales = {static_cast<float>(grad.AbsMax())};
  const std::vector<float> levels =
      codec.ComputeLevels(grad.data(), shape, scales);
  const uint32_t s = codec.level_count();
  // The median magnitude of a folded Gaussian is ~0.67 sigma while the max
  // of 4096 draws is ~3.5 sigma, so the variance-minimizing placement
  // pulls the middle level visibly below its uniform-grid position.
  const float uniform_position =
      static_cast<float>(s / 2 + 1) / static_cast<float>(s);
  EXPECT_LT(levels[s / 2 + 1], uniform_position - 0.05f);
}

TEST(AdaptiveQsgdTest, UnbiasedEstimator) {
  AdaptiveQsgdCodec codec(4, 64, 1);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(4);
  grad.FillGaussian(&rng, 1.0f);

  std::vector<double> mean(64, 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const std::vector<float> decoded =
        EncodeDecode(codec, grad, static_cast<uint64_t>(t));
    for (int i = 0; i < 64; ++i) mean[static_cast<size_t>(i)] += decoded[i];
  }
  double max_error = 0.0;
  for (int i = 0; i < 64; ++i) {
    max_error = std::max(max_error, std::abs(mean[static_cast<size_t>(i)] /
                                                 trials -
                                             grad.at(i)));
  }
  EXPECT_LT(max_error, 0.1);
}

TEST(AdaptiveQsgdTest, LowerVarianceThanUniformOnGaussianGradients) {
  // The ZipML rationale: data-adaptive levels reduce quantization variance
  // on concentrated distributions (the paper observed the accuracy benefit
  // was nonetheless insignificant — see bench_extension_adaptive_levels).
  const Shape shape({2048});
  Tensor grad(shape);
  Rng rng(5);
  grad.FillGaussian(&rng, 1.0f);

  auto mse_of = [&](const GradientCodec& codec) {
    double total = 0.0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      const std::vector<float> decoded =
          EncodeDecode(codec, grad, static_cast<uint64_t>(t));
      for (int64_t i = 0; i < grad.size(); ++i) {
        const double d = decoded[static_cast<size_t>(i)] - grad.at(i);
        total += d * d;
      }
    }
    return total / trials;
  };

  AdaptiveQsgdCodec adaptive(4, 512, 1);
  QsgdCodec uniform(4, 512, QsgdNorm::kMax, QsgdLevelScheme::kSignMagnitude,
                    1);
  EXPECT_LT(mse_of(adaptive), mse_of(uniform));
}

TEST(AdaptiveQsgdTest, ZeroGradientEncodesToZero) {
  AdaptiveQsgdCodec codec(4, 32, 1);
  const Shape shape({100});
  Tensor grad(shape);
  const std::vector<float> decoded = EncodeDecode(codec, grad, 9);
  for (float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(AdaptiveQsgdTest, TwoBitDegeneratesToSignTimesMax) {
  // s = 1: levels {0, 1} only; every nonzero value rounds stochastically
  // between 0 and the bucket max.
  AdaptiveQsgdCodec codec(2, 64, 1);
  const Shape shape({64});
  Tensor grad(shape);
  Rng rng(6);
  grad.FillGaussian(&rng, 1.0f);
  const double scale = grad.AbsMax();
  const std::vector<float> decoded = EncodeDecode(codec, grad, 10);
  for (float v : decoded) {
    const double normalized = std::abs(v) / scale;
    EXPECT_TRUE(normalized < 1e-6 || std::abs(normalized - 1.0) < 1e-6);
  }
}

TEST(AdaptiveQsgdTest, FactoryParserAndLabels) {
  const CodecSpec spec = AdaptiveQsgdSpec(4);
  EXPECT_EQ(spec.Label(), "AdaptiveQSGD 4bit (b=512)");
  EXPECT_EQ(spec.ShortLabel(), "AQ4");
  EXPECT_TRUE(CreateCodec(spec).ok());

  auto parsed = ParseCodecSpec("aq8:1024");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, CodecKind::kQsgdAdaptive);
  EXPECT_EQ(parsed->bits, 8);
  EXPECT_EQ(parsed->bucket_size, 1024);
  EXPECT_FALSE(ParseCodecSpec("aq1").ok());
  EXPECT_FALSE(ParseCodecSpec("aq").ok());
}

}  // namespace
}  // namespace lpsgd
