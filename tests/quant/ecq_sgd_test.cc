// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "quant/ecq_sgd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

std::vector<float> EncodeDecode(const EcqSgdCodec& codec, const Tensor& grad,
                                uint64_t tag, std::vector<float>* error) {
  std::vector<uint8_t> blob;
  codec.Encode(grad.data(), grad.shape(), tag, error, &blob);
  EXPECT_EQ(static_cast<int64_t>(blob.size()),
            codec.EncodedSizeBytes(grad.shape()));
  std::vector<float> decoded(static_cast<size_t>(grad.size()));
  CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                        grad.shape(), decoded.data()));
  return decoded;
}

TEST(EcqSgdCodecTest, FreshErrorStateMatchesQsgdExactly) {
  // With a zero residual, the corrected gradient is the gradient: the blob
  // must be byte-identical to plain QSGD at the same settings. ECQ-SGD is
  // QSGD plus compensation, nothing else.
  const Shape shape({200});
  Tensor grad(shape);
  Rng rng(1);
  grad.FillGaussian(&rng, 1.0f);

  CodecSpec e = EcqSgdSpec(4);
  e.bucket_size = 64;  // same default seed as the QSGD spec below
  auto ecq = CreateCodec(e);
  ASSERT_TRUE(ecq.ok());
  std::vector<float> error(200, 0.0f);
  std::vector<uint8_t> ecq_blob;
  (*ecq)->Encode(grad.data(), shape, 42, &error, &ecq_blob);

  CodecSpec q = QsgdSpec(4);
  q.bucket_size = 64;
  auto qsgd = CreateCodec(q);
  ASSERT_TRUE(qsgd.ok());
  std::vector<uint8_t> qsgd_blob;
  (*qsgd)->Encode(grad.data(), shape, 42, nullptr, &qsgd_blob);

  EXPECT_EQ(ecq_blob, qsgd_blob);
}

TEST(EcqSgdCodecTest, ResidualIsExactQuantizationError) {
  // After an encode, error[i] holds exactly v[i] - Q(v)[i], computed with
  // the same dequantization table Decode uses — so decoded + error
  // reconstructs the corrected gradient bit-for-bit.
  const Shape shape({128});
  Tensor grad(shape);
  Rng rng(2);
  grad.FillGaussian(&rng, 1.0f);

  EcqSgdCodec codec(4, 64, true, 0);
  std::vector<float> error(128, 0.0f);
  const std::vector<float> decoded = EncodeDecode(codec, grad, 7, &error);
  for (int64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(error[static_cast<size_t>(i)],
              grad.at(i) - decoded[static_cast<size_t>(i)])
        << i;
  }
}

TEST(EcqSgdCodecTest, RunningSumPreservedWithCompensation) {
  // Telescoping invariant: sum of decoded gradients + final residual ==
  // sum of true gradients (g_t = Q(v_t) + e_t - e_{t-1}).
  EcqSgdCodec codec(2, 32, true, 0);
  const Shape shape({50});
  Rng rng(3);
  std::vector<float> error(50, 0.0f);
  std::vector<double> true_sum(50, 0.0), decoded_sum(50, 0.0);
  Tensor grad(shape);
  for (int iter = 0; iter < 100; ++iter) {
    grad.FillGaussian(&rng, 1.0f);
    for (int64_t i = 0; i < 50; ++i) {
      true_sum[static_cast<size_t>(i)] += grad.at(i);
    }
    const std::vector<float> decoded =
        EncodeDecode(codec, grad, static_cast<uint64_t>(iter), &error);
    for (int64_t i = 0; i < 50; ++i) {
      decoded_sum[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(decoded_sum[static_cast<size_t>(i)] +
                    error[static_cast<size_t>(i)],
                true_sum[static_cast<size_t>(i)], 1e-3)
        << i;
  }
}

TEST(EcqSgdCodecTest, CompensationShrinksCumulativeError) {
  // The point of ECQ-SGD: at an aggressive 2-bit setting, the compensated
  // cumulative decoded sum tracks the true sum much closer than the
  // uncompensated one.
  const Shape shape({64});
  const int iterations = 200;

  auto run = [&](bool error_feedback) {
    EcqSgdCodec codec(2, 32, error_feedback, 0);
    Rng rng(4);
    std::vector<float> error(64, 0.0f);
    std::vector<double> true_sum(64, 0.0), decoded_sum(64, 0.0);
    Tensor grad(shape);
    for (int iter = 0; iter < iterations; ++iter) {
      grad.FillGaussian(&rng, 1.0f);
      for (int64_t i = 0; i < 64; ++i) {
        true_sum[static_cast<size_t>(i)] += grad.at(i);
      }
      const std::vector<float> decoded =
          EncodeDecode(codec, grad, static_cast<uint64_t>(iter),
                       error_feedback ? &error : nullptr);
      for (int64_t i = 0; i < 64; ++i) {
        decoded_sum[static_cast<size_t>(i)] +=
            decoded[static_cast<size_t>(i)];
      }
    }
    double err = 0.0;
    for (int64_t i = 0; i < 64; ++i) {
      const double d = decoded_sum[static_cast<size_t>(i)] -
                       true_sum[static_cast<size_t>(i)];
      err += d * d;
    }
    return std::sqrt(err / 64);
  };

  EXPECT_LT(run(/*error_feedback=*/true), run(/*error_feedback=*/false));
}

TEST(EcqSgdCodecTest, FactoryAndSpec) {
  const CodecSpec spec = EcqSgdSpec(4);
  EXPECT_EQ(spec.bucket_size, 512);
  EXPECT_TRUE(spec.error_feedback);
  auto codec = CreateCodec(spec);
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ((*codec)->Name(), "ECQ-SGD 4bit (b=512)");
  EXPECT_TRUE((*codec)->UsesErrorFeedback());

  CodecSpec no_ef = EcqSgdSpec(4);
  no_ef.error_feedback = false;
  auto plain = CreateCodec(no_ef);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)->UsesErrorFeedback());

  CodecSpec bad = EcqSgdSpec(4);
  bad.bits = 17;
  EXPECT_FALSE(CreateCodec(bad).ok());
  bad = EcqSgdSpec(4);
  bad.bucket_size = -3;
  EXPECT_FALSE(CreateCodec(bad).ok());
}

}  // namespace
}  // namespace lpsgd
