// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"

namespace lpsgd {
namespace {

Tensor MakeTensor(Shape shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  CHECK_EQ(t.size(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

TEST(GemmTest, PlainMultiply) {
  Tensor a = MakeTensor(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b = MakeTensor(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  Tensor c(Shape({2, 2}));
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(GemmTest, AlphaAndBeta) {
  Tensor a = MakeTensor(Shape({1, 2}), {1, 2});
  Tensor b = MakeTensor(Shape({2, 1}), {3, 4});
  Tensor c(Shape({1, 1}), 10.0f);
  Gemm(false, false, 2.0f, a, b, 0.5f, &c);
  EXPECT_FLOAT_EQ(c.at(0), 2.0f * 11.0f + 0.5f * 10.0f);
}

// Property sweep: Gemm with all transpose flag combinations must match the
// naive reference on random matrices.
struct GemmCase {
  bool trans_a;
  bool trans_b;
  int m, k, n;
};

class GemmReferenceTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmReferenceTest, MatchesNaiveReference) {
  const GemmCase c = GetParam();
  Rng rng(c.m * 10007 + c.k * 101 + c.n + (c.trans_a ? 7 : 0) +
          (c.trans_b ? 13 : 0));
  Tensor a(c.trans_a ? Shape({c.k, c.m}) : Shape({c.m, c.k}));
  Tensor b(c.trans_b ? Shape({c.n, c.k}) : Shape({c.k, c.n}));
  a.FillGaussian(&rng, 1.0f);
  b.FillGaussian(&rng, 1.0f);

  Tensor out(Shape({c.m, c.n}));
  Gemm(c.trans_a, c.trans_b, 1.0f, a, b, 0.0f, &out);

  for (int i = 0; i < c.m; ++i) {
    for (int j = 0; j < c.n; ++j) {
      double expected = 0.0;
      for (int kk = 0; kk < c.k; ++kk) {
        const float av = c.trans_a ? a.at(kk, i) : a.at(i, kk);
        const float bv = c.trans_b ? b.at(j, kk) : b.at(kk, j);
        expected += static_cast<double>(av) * bv;
      }
      EXPECT_NEAR(out.at(i, j), expected, 1e-3)
          << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, GemmReferenceTest,
    ::testing::Values(GemmCase{false, false, 4, 5, 6},
                      GemmCase{true, false, 4, 5, 6},
                      GemmCase{false, true, 4, 5, 6},
                      GemmCase{true, true, 4, 5, 6},
                      GemmCase{false, false, 1, 1, 1},
                      GemmCase{true, true, 7, 3, 2},
                      GemmCase{false, true, 16, 8, 16}));

TEST(AxpyTest, AddsScaled) {
  Tensor x = MakeTensor(Shape({3}), {1, 2, 3});
  Tensor y = MakeTensor(Shape({3}), {10, 20, 30});
  Axpy(2.0f, x, &y);
  EXPECT_FLOAT_EQ(y.at(0), 12.0f);
  EXPECT_FLOAT_EQ(y.at(2), 36.0f);
}

TEST(ScaleTest, Scales) {
  Tensor x = MakeTensor(Shape({2}), {3, -4});
  Scale(0.5f, &x);
  EXPECT_FLOAT_EQ(x.at(0), 1.5f);
  EXPECT_FLOAT_EQ(x.at(1), -2.0f);
}

TEST(AddRowBroadcastTest, AddsBiasToEveryRow) {
  Tensor x(Shape({2, 3}));
  Tensor bias = MakeTensor(Shape({3}), {1, 2, 3});
  AddRowBroadcast(bias, &x);
  for (int r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(x.at(r, 0), 1.0f);
    EXPECT_FLOAT_EQ(x.at(r, 1), 2.0f);
    EXPECT_FLOAT_EQ(x.at(r, 2), 3.0f);
  }
}

TEST(SumRowsToTest, ComputesColumnSums) {
  Tensor grad = MakeTensor(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor bias_grad(Shape({3}));
  SumRowsTo(grad, &bias_grad);
  EXPECT_FLOAT_EQ(bias_grad.at(0), 5.0f);
  EXPECT_FLOAT_EQ(bias_grad.at(1), 7.0f);
  EXPECT_FLOAT_EQ(bias_grad.at(2), 9.0f);
}

TEST(SoftmaxRowsTest, RowsSumToOneAndOrderPreserved) {
  Tensor logits = MakeTensor(Shape({2, 3}), {1, 2, 3, -1, -1, -1});
  Tensor probs(logits.shape());
  SoftmaxRows(logits, &probs);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += probs.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_GT(probs.at(0, 2), probs.at(0, 1));
  EXPECT_GT(probs.at(0, 1), probs.at(0, 0));
  EXPECT_NEAR(probs.at(1, 0), 1.0f / 3.0f, 1e-5);
}

TEST(SoftmaxRowsTest, NumericallyStableForLargeLogits) {
  Tensor logits = MakeTensor(Shape({1, 2}), {1000.0f, 999.0f});
  Tensor probs(logits.shape());
  SoftmaxRows(logits, &probs);
  EXPECT_FALSE(std::isnan(probs.at(0)));
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1), 1.0f, 1e-5);
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
}

TEST(ConvOutputSizeTest, MatchesFormula) {
  EXPECT_EQ(ConvOutputSize(8, 3, 1, 1), 8);
  EXPECT_EQ(ConvOutputSize(8, 2, 2, 0), 4);
  EXPECT_EQ(ConvOutputSize(5, 3, 2, 0), 2);
  EXPECT_EQ(ConvOutputSize(7, 7, 1, 0), 1);
}

TEST(Im2ColTest, IdentityKernelExtractsPixels) {
  // 1x1 kernel, stride 1: patches are just the pixels.
  Tensor image = MakeTensor(Shape({1, 2, 2}), {1, 2, 3, 4});
  Tensor patches(Shape({4, 1}));
  Im2Col(image, 1, 1, 1, 0, &patches);
  EXPECT_FLOAT_EQ(patches.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(patches.at(3, 0), 4.0f);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  Tensor image = MakeTensor(Shape({1, 1, 1}), {5});
  Tensor patches(Shape({1, 9}));
  Im2Col(image, 3, 3, 1, 1, &patches);
  // Center of the 3x3 patch is the pixel; everything else is padding.
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(patches.at(0, i), i == 4 ? 5.0f : 0.0f);
  }
}

TEST(Im2ColTest, MultiChannelLayout) {
  // Two channels, 2x2 image, 2x2 kernel: a single patch listing channel 0's
  // values then channel 1's.
  Tensor image = MakeTensor(Shape({2, 2, 2}), {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor patches(Shape({1, 8}));
  Im2Col(image, 2, 2, 1, 0, &patches);
  const float expected[] = {1, 2, 3, 4, 10, 20, 30, 40};
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(patches.at(0, i), expected[i]);
}

TEST(Col2ImTest, IsTransposeOfIm2Col) {
  // <x, Im2Col(y)> == <Col2Im(x), y> for random x, y (adjoint property).
  Rng rng(77);
  Tensor image(Shape({2, 5, 4}));
  image.FillGaussian(&rng, 1.0f);
  const int kh = 3, kw = 2, stride = 2, pad = 1;
  const int out_h = ConvOutputSize(5, kh, stride, pad);
  const int out_w = ConvOutputSize(4, kw, stride, pad);
  Tensor patches(Shape({int64_t{out_h} * out_w, 2 * kh * kw}));
  Im2Col(image, kh, kw, stride, pad, &patches);

  Tensor random_patches(patches.shape());
  random_patches.FillGaussian(&rng, 1.0f);
  Tensor back(image.shape());
  Col2Im(random_patches, kh, kw, stride, pad, &back);

  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < patches.size(); ++i) {
    lhs += static_cast<double>(random_patches.at(i)) * patches.at(i);
  }
  for (int64_t i = 0; i < image.size(); ++i) {
    rhs += static_cast<double>(back.at(i)) * image.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ArgMaxRowTest, FindsFirstMaximum) {
  Tensor x = MakeTensor(Shape({2, 4}), {1, 9, 9, 0, -5, -2, -9, -2});
  EXPECT_EQ(ArgMaxRow(x, 0), 1);  // first of the tied maxima
  EXPECT_EQ(ArgMaxRow(x, 1), 1);
}

}  // namespace
}  // namespace lpsgd
