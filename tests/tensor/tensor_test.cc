// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(TensorTest, ConstructedZeroInitialized) {
  Tensor t(Shape({2, 3}));
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t(Shape({4}), 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, TwoDimensionalAccessorsMatchRowMajorLayout) {
  Tensor t(Shape({2, 3}));
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(1 * 3 + 2), 7.0f);
  t.at(0, 1) = 3.0f;
  EXPECT_EQ(t.data()[1], 3.0f);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape({3}), 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape({2, 6}));
  for (int64_t i = 0; i < 12; ++i) t.at(i) = static_cast<float>(i);
  t.Reshape(Shape({3, 4}));
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(t.at(i), static_cast<float>(i));
}

TEST(TensorTest, Norms) {
  Tensor t(Shape({2}));
  t.at(0) = 3.0f;
  t.at(1) = -4.0f;
  EXPECT_DOUBLE_EQ(t.SumSquares(), 25.0);
  EXPECT_DOUBLE_EQ(t.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(t.AbsMax(), 4.0);
}

TEST(TensorTest, FillGaussianStatistics) {
  Rng rng(3);
  Tensor t(Shape({100000}));
  t.FillGaussian(&rng, 2.0f);
  double sum = 0.0, sum_sq = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t.at(i);
    sum_sq += static_cast<double>(t.at(i)) * t.at(i);
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.05);
  EXPECT_NEAR(sum_sq / t.size(), 4.0, 0.1);
}

TEST(TensorTest, FillUniformRange) {
  Rng rng(4);
  Tensor t(Shape({10000}));
  t.FillUniform(&rng, 0.5f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -0.5f);
    EXPECT_LE(t.at(i), 0.5f);
  }
}

TEST(TensorTest, DebugStringTruncates) {
  Tensor t(Shape({100}));
  const std::string s = t.DebugString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

}  // namespace
}  // namespace lpsgd
