// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(ShapeTest, ElementCountAndDims) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.element_count(), 24);
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.element_count(), 1);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
}

TEST(ShapeTest, CntkMatrixViewFlattensTrailingDims) {
  // Section 3.2.1: first dimension is the row; the rest flatten to columns.
  Shape conv({3, 3, 64, 128});
  EXPECT_EQ(conv.rows(), 3);
  EXPECT_EQ(conv.cols(), 3 * 64 * 128);

  Shape dense({4096, 9216});
  EXPECT_EQ(dense.rows(), 4096);
  EXPECT_EQ(dense.cols(), 9216);

  Shape vec({1000});
  EXPECT_EQ(vec.rows(), 1000);
  EXPECT_EQ(vec.cols(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2 x 3]");
  EXPECT_EQ(Shape({7}).ToString(), "[7]");
  EXPECT_EQ(Shape().ToString(), "[]");
}

TEST(ShapeTest, ZeroDimensionGivesZeroElements) {
  Shape s({4, 0, 2});
  EXPECT_EQ(s.element_count(), 0);
}

}  // namespace
}  // namespace lpsgd
