// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/allreduce.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "comm/mpi_reduce_bcast.h"
#include "comm/nccl_ring.h"
#include "machine/specs.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

// Builds K random gradients for one matrix and the expected exact sum.
struct TestMatrix {
  Shape shape;
  std::vector<Tensor> rank_grads;
  std::vector<std::vector<float>> rank_errors;
  std::vector<double> exact_sum;
};

TestMatrix MakeMatrix(const Shape& shape, int k, uint64_t seed) {
  TestMatrix m;
  m.shape = shape;
  const int64_t n = shape.element_count();
  m.exact_sum.assign(static_cast<size_t>(n), 0.0);
  Rng rng(seed);
  for (int r = 0; r < k; ++r) {
    Tensor grad(shape);
    grad.FillGaussian(&rng, 1.0f);
    for (int64_t i = 0; i < n; ++i) {
      m.exact_sum[static_cast<size_t>(i)] += grad.at(i);
    }
    m.rank_grads.push_back(std::move(grad));
    m.rank_errors.emplace_back(static_cast<size_t>(n), 0.0f);
  }
  return m;
}

std::vector<MatrixSlot> MakeSlots(std::vector<TestMatrix>& matrices,
                                  int k) {
  std::vector<MatrixSlot> slots;
  for (TestMatrix& m : matrices) {
    MatrixSlot slot;
    slot.quant_shape = m.shape;
    for (int r = 0; r < k; ++r) {
      slot.rank_grads.push_back(m.rank_grads[static_cast<size_t>(r)].data());
      slot.rank_errors.push_back(&m.rank_errors[static_cast<size_t>(r)]);
    }
    slots.push_back(std::move(slot));
  }
  return slots;
}

class AllReduceRankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceRankCountTest, MpiFullPrecisionComputesExactSum) {
  const int k = GetParam();
  auto agg = CreateAggregator(CommPrimitive::kMpi, k, FullPrecisionSpec(),
                              Ec2P2_16xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());

  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({13, 7}), k, 1));
  matrices.push_back(MakeMatrix(Shape({64}), k, 2));
  auto slots = MakeSlots(matrices, k);

  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());
  for (const TestMatrix& m : matrices) {
    for (int r = 0; r < k; ++r) {
      for (int64_t i = 0; i < m.shape.element_count(); ++i) {
        EXPECT_NEAR(m.rank_grads[static_cast<size_t>(r)].at(i),
                    m.exact_sum[static_cast<size_t>(i)], 1e-4);
      }
    }
  }
  if (k > 1) {
    EXPECT_GT(stats->comm_seconds, 0.0);
    EXPECT_EQ(stats->wire_bytes, stats->raw_bytes);
  }
}

TEST_P(AllReduceRankCountTest, NcclComputesExactSum) {
  const int k = GetParam();
  if (k > 8) GTEST_SKIP() << "NCCL supports at most 8 GPUs";
  auto agg = CreateAggregator(CommPrimitive::kNccl, k, FullPrecisionSpec(),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());

  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({31, 3}), k, 3));
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());
  for (int r = 0; r < k; ++r) {
    for (int64_t i = 0; i < 93; ++i) {
      EXPECT_NEAR(matrices[0].rank_grads[static_cast<size_t>(r)].at(i),
                  matrices[0].exact_sum[static_cast<size_t>(i)], 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllReduceRankCountTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(MpiAllReduceTest, AllRanksReceiveIdenticalQuantizedAggregate) {
  const int k = 4;
  auto agg = CreateAggregator(CommPrimitive::kMpi, k, QsgdSpec(4),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({32, 16}), k, 4));
  auto slots = MakeSlots(matrices, k);
  ASSERT_TRUE((*agg)->AllReduce(&slots, 0).ok());
  for (int r = 1; r < k; ++r) {
    for (int64_t i = 0; i < 512; ++i) {
      EXPECT_EQ(matrices[0].rank_grads[static_cast<size_t>(r)].at(i),
                matrices[0].rank_grads[0].at(i));
    }
  }
}

TEST(MpiAllReduceTest, QsgdAggregateIsCloseToExactSum) {
  const int k = 4;
  auto agg = CreateAggregator(CommPrimitive::kMpi, k, QsgdSpec(8),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({512}), k, 5));
  auto slots = MakeSlots(matrices, k);
  ASSERT_TRUE((*agg)->AllReduce(&slots, 0).ok());

  double max_abs = 0.0;
  for (double v : matrices[0].exact_sum) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  for (int64_t i = 0; i < 512; ++i) {
    EXPECT_NEAR(matrices[0].rank_grads[0].at(i),
                matrices[0].exact_sum[static_cast<size_t>(i)],
                0.1 * max_abs)
        << i;
  }
}

TEST(MpiAllReduceTest, QuantizedWireBytesSmallerThanRaw) {
  const int k = 4;
  auto agg = CreateAggregator(CommPrimitive::kMpi, k, QsgdSpec(4),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({4096, 32}), k, 6));
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->wire_bytes, stats->raw_bytes / 5);
  EXPECT_GT(stats->CompressionRatio(), 5.0);
  EXPECT_GT(stats->encode_seconds, 0.0);
}

TEST(MpiAllReduceTest, PolicyBypassedSlotsStayExact) {
  const int k = 3;
  auto agg = CreateAggregator(CommPrimitive::kMpi, k, QsgdSpec(2),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({40}), k, 7));
  auto slots = MakeSlots(matrices, k);
  slots[0].quantized = false;  // small-matrix bypass
  ASSERT_TRUE((*agg)->AllReduce(&slots, 0).ok());
  for (int64_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(matrices[0].rank_grads[0].at(i),
                matrices[0].exact_sum[static_cast<size_t>(i)], 1e-5);
  }
}

TEST(MpiAllReduceTest, OneBitErrorFeedbackResidualsUpdated) {
  const int k = 2;
  auto agg =
      CreateAggregator(CommPrimitive::kMpi, k, OneBitSgdReshapedSpec(16),
                       Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({64}), k, 8));
  auto slots = MakeSlots(matrices, k);
  ASSERT_TRUE((*agg)->AllReduce(&slots, 0).ok());
  double residual_norm = 0.0;
  for (float e : matrices[0].rank_errors[0]) {
    residual_norm += static_cast<double>(e) * e;
  }
  EXPECT_GT(residual_norm, 0.0);
}

TEST(NcclAllReduceTest, SimulatedLowPrecisionKeepsExactValues) {
  // The paper's NCCL simulation: fewer bytes on the wire, exact fp32 sums.
  const int k = 4;
  auto agg = CreateAggregator(CommPrimitive::kNccl, k, QsgdSpec(4),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({2048}), k, 9));
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());
  for (int64_t i = 0; i < 2048; ++i) {
    EXPECT_NEAR(matrices[0].rank_grads[0].at(i),
                matrices[0].exact_sum[static_cast<size_t>(i)], 1e-4);
  }
  EXPECT_LT(stats->wire_bytes, stats->raw_bytes / 5);
}

TEST(NcclAllReduceTest, RejectsMoreThanEightGpus) {
  auto agg =
      CreateAggregator(CommPrimitive::kNccl, 16, FullPrecisionSpec(),
                       Ec2P2_16xlarge(), ExecutionContext::Serial());
  EXPECT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CreateAggregatorTest, DispatchesOnPrimitive) {
  auto mpi = CreateAggregator(CommPrimitive::kMpi, 4, QsgdSpec(4),
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(mpi.ok());
  EXPECT_EQ((*mpi)->Name(), "MPI reduce-and-broadcast");
  EXPECT_EQ((*mpi)->num_ranks(), 4);

  auto nccl = CreateAggregator(CommPrimitive::kNccl, 4, QsgdSpec(4),
                               Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(nccl.ok());
  EXPECT_EQ((*nccl)->Name(), "NCCL ring allreduce");
}

TEST(CreateAggregatorTest, PropagatesConstructionErrors) {
  // The NCCL GPU-count limit surfaces through the unified factory.
  auto agg = CreateAggregator(CommPrimitive::kNccl, 16, FullPrecisionSpec(),
                              Ec2P2_16xlarge(), ExecutionContext::Serial());
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kFailedPrecondition);

  // Bad codec parameters surface too, for either primitive.
  CodecSpec bad = QsgdSpec(4);
  bad.bucket_size = -1;
  auto mpi = CreateAggregator(CommPrimitive::kMpi, 4, bad, Ec2P2_8xlarge(),
                              ExecutionContext::Serial());
  EXPECT_EQ(mpi.status().code(), StatusCode::kInvalidArgument);
}

// The same exchange run serially and on a pool must agree bit for bit:
// aggregates, error-feedback residuals, and accounting.
void ExpectSerialAndParallelAgree(CommPrimitive primitive,
                                  const CodecSpec& codec, int k) {
  std::vector<TestMatrix> serial_matrices, parallel_matrices;
  for (uint64_t seed : {21u, 22u, 23u}) {
    serial_matrices.push_back(MakeMatrix(Shape({96, 5}), k, seed));
    parallel_matrices.push_back(MakeMatrix(Shape({96, 5}), k, seed));
  }
  auto serial_agg = CreateAggregator(primitive, k, codec, Ec2P2_8xlarge(),
                                     ExecutionContext::Serial());
  auto parallel_agg = CreateAggregator(primitive, k, codec, Ec2P2_8xlarge(),
                                       ExecutionContext::WithThreads(8));
  ASSERT_TRUE(serial_agg.ok());
  ASSERT_TRUE(parallel_agg.ok());

  for (int64_t iteration = 0; iteration < 3; ++iteration) {
    auto serial_slots = MakeSlots(serial_matrices, k);
    auto parallel_slots = MakeSlots(parallel_matrices, k);
    auto serial_stats = (*serial_agg)->AllReduce(&serial_slots, iteration);
    auto parallel_stats =
        (*parallel_agg)->AllReduce(&parallel_slots, iteration);
    ASSERT_TRUE(serial_stats.ok());
    ASSERT_TRUE(parallel_stats.ok());
    EXPECT_EQ(serial_stats->wire_bytes, parallel_stats->wire_bytes);
    EXPECT_EQ(serial_stats->raw_bytes, parallel_stats->raw_bytes);
    EXPECT_EQ(serial_stats->messages, parallel_stats->messages);
    EXPECT_DOUBLE_EQ(serial_stats->comm_seconds,
                     parallel_stats->comm_seconds);
    EXPECT_DOUBLE_EQ(serial_stats->encode_seconds,
                     parallel_stats->encode_seconds);

    for (size_t m = 0; m < serial_matrices.size(); ++m) {
      const TestMatrix& a = serial_matrices[m];
      const TestMatrix& b = parallel_matrices[m];
      for (int r = 0; r < k; ++r) {
        for (int64_t i = 0; i < a.shape.element_count(); ++i) {
          ASSERT_EQ(a.rank_grads[static_cast<size_t>(r)].at(i),
                    b.rank_grads[static_cast<size_t>(r)].at(i))
              << "iteration " << iteration << " matrix " << m << " rank "
              << r << " elem " << i;
        }
        ASSERT_EQ(a.rank_errors[static_cast<size_t>(r)],
                  b.rank_errors[static_cast<size_t>(r)])
            << "iteration " << iteration << " matrix " << m << " rank " << r;
      }
    }
  }
}

TEST(ParallelExchangeTest, MpiQsgdBitIdenticalToSerial) {
  ExpectSerialAndParallelAgree(CommPrimitive::kMpi, QsgdSpec(4), 4);
}

TEST(ParallelExchangeTest, MpiOneBitBitIdenticalToSerial) {
  ExpectSerialAndParallelAgree(CommPrimitive::kMpi,
                               OneBitSgdReshapedSpec(16), 4);
}

TEST(ParallelExchangeTest, MpiFullPrecisionBitIdenticalToSerial) {
  ExpectSerialAndParallelAgree(CommPrimitive::kMpi, FullPrecisionSpec(), 3);
}

TEST(ParallelExchangeTest, NcclBitIdenticalToSerial) {
  ExpectSerialAndParallelAgree(CommPrimitive::kNccl, QsgdSpec(4), 4);
}

TEST(AllReduceTest, MpiQuantizedSlowerKernelsButFewerBytesThanFp) {
  // On a large dense matrix QSGD-4 must cut comm_seconds vs fp32 MPI.
  const int k = 8;
  std::vector<TestMatrix> fp_matrices, q_matrices;
  fp_matrices.push_back(MakeMatrix(Shape({1024, 256}), k, 10));
  q_matrices.push_back(MakeMatrix(Shape({1024, 256}), k, 10));

  auto fp_agg =
      CreateAggregator(CommPrimitive::kMpi, k, FullPrecisionSpec(),
                       Ec2P2_8xlarge(), ExecutionContext::Serial());
  auto q_agg = CreateAggregator(CommPrimitive::kMpi, k, QsgdSpec(4),
                                Ec2P2_8xlarge(), ExecutionContext::Serial());
  auto fp_slots = MakeSlots(fp_matrices, k);
  auto q_slots = MakeSlots(q_matrices, k);
  auto fp_stats = (*fp_agg)->AllReduce(&fp_slots, 0);
  auto q_stats = (*q_agg)->AllReduce(&q_slots, 0);
  ASSERT_TRUE(fp_stats.ok());
  ASSERT_TRUE(q_stats.ok());
  EXPECT_LT(q_stats->comm_seconds, fp_stats->comm_seconds);
  EXPECT_GT(q_stats->encode_seconds, fp_stats->encode_seconds);
}

TEST(CommStatsTest, AddAccumulates) {
  CommStats a, b;
  a.comm_seconds = 1.0;
  a.wire_bytes = 10;
  a.raw_bytes = 40;
  b.comm_seconds = 2.0;
  b.wire_bytes = 30;
  b.raw_bytes = 40;
  b.messages = 4;
  a.Add(b);
  EXPECT_DOUBLE_EQ(a.comm_seconds, 3.0);
  EXPECT_EQ(a.wire_bytes, 40);
  EXPECT_EQ(a.raw_bytes, 80);
  EXPECT_EQ(a.messages, 4);
  EXPECT_DOUBLE_EQ(a.CompressionRatio(), 2.0);
}

TEST(CommStatsTest, CompressionRatioGuardsZeroWireBytes) {
  CommStats empty;
  EXPECT_DOUBLE_EQ(empty.CompressionRatio(), 1.0);

  // raw bytes without wire bytes (nothing sent yet) must not divide by 0.
  CommStats raw_only;
  raw_only.raw_bytes = 1024;
  EXPECT_DOUBLE_EQ(raw_only.CompressionRatio(), 1.0);
}

}  // namespace
}  // namespace lpsgd
