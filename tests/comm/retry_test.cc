// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// RetryingAggregator transaction semantics, driven through a flaky
// test-double engine: transient failures are retried with the caller's
// slot buffers restored, exhausted budgets and non-transient codes return
// the error with every buffer untouched, and over-deadline successes are
// discarded and re-attempted.
#include "comm/retry.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "comm/allreduce.h"
#include "machine/specs.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "tensor/shape.h"

namespace lpsgd {
namespace {

// A scripted engine: call i fails (scribbling over the caller's buffers
// first, like a half-finished exchange) while i < fail_attempts; later
// calls "aggregate" by doubling every gradient element and report a
// scripted duration. Internal cross-call state (state_) advances on every
// attempt and honors the checkpoint/rollback hooks, so the wrapper's
// rollback discipline is observable.
class FlakyAggregator : public GradientAggregator {
 public:
  explicit FlakyAggregator(int num_ranks) : num_ranks_(num_ranks) {}

  std::string Name() const override { return "flaky"; }
  int num_ranks() const override { return num_ranks_; }

  int fail_attempts = 0;
  StatusCode fail_code = StatusCode::kUnavailable;
  std::vector<double> durations;  // comm_seconds per successful call

  int calls = 0;
  int checkpoints = 0;
  int rollbacks = 0;
  int state = 0;

  void CheckpointExchangeState() override {
    ++checkpoints;
    state_checkpoint_ = state;
  }
  void RollbackExchangeState() override {
    ++rollbacks;
    state = state_checkpoint_;
  }

  StatusOr<CommStats> AllReduce(std::vector<MatrixSlot>* slots,
                                int64_t iteration) override {
    (void)iteration;
    const int call = calls++;
    ++state;
    if (call < fail_attempts) {
      // Half-finished exchange: scribble over the caller's buffers, then
      // restore our own internal state per the AllReduce contract.
      for (MatrixSlot& slot : *slots) {
        const int64_t n = slot.quant_shape.element_count();
        for (float* grad : slot.rank_grads) {
          for (int64_t i = 0; i < n; ++i) grad[i] = -777.0f;
        }
        for (std::vector<float>* error : slot.rank_errors) {
          if (error != nullptr) error->assign(error->size(), -888.0f);
        }
      }
      state = state_checkpoint_;
      switch (fail_code) {
        case StatusCode::kAborted:
          return AbortedError("rank 1 crashed");
        case StatusCode::kDataLoss:
          return DataLossError("wire checksum mismatch");
        default:
          return UnavailableError("link flap");
      }
    }
    for (MatrixSlot& slot : *slots) {
      const int64_t n = slot.quant_shape.element_count();
      for (float* grad : slot.rank_grads) {
        for (int64_t i = 0; i < n; ++i) grad[i] *= 2.0f;
      }
    }
    CommStats stats;
    const size_t success_index =
        static_cast<size_t>(call - fail_attempts);
    stats.comm_seconds = success_index < durations.size()
                             ? durations[success_index]
                             : 0.25;
    stats.messages = 1;
    return stats;
  }

 private:
  int num_ranks_;
  int state_checkpoint_ = 0;
};

struct SlotFixture {
  std::vector<std::vector<float>> grads;           // [rank]
  std::vector<std::vector<float>> errors;          // [rank]
  std::vector<MatrixSlot> slots;

  explicit SlotFixture(int k, int64_t n) {
    MatrixSlot slot;
    slot.quant_shape = Shape({n});
    for (int r = 0; r < k; ++r) {
      std::vector<float> grad(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        grad[static_cast<size_t>(i)] =
            static_cast<float>(r * 100 + i) * 0.5f;
      }
      grads.push_back(std::move(grad));
      errors.emplace_back(static_cast<size_t>(n),
                          static_cast<float>(r) + 0.125f);
    }
    for (int r = 0; r < k; ++r) {
      slot.rank_grads.push_back(grads[static_cast<size_t>(r)].data());
      slot.rank_errors.push_back(&errors[static_cast<size_t>(r)]);
    }
    slots.push_back(std::move(slot));
  }
};

int64_t RetriesCounter() {
  return obs::MetricsRegistry::Global().CounterValue("comm/retries");
}

// The global registry starts disabled; retry accounting only counts while
// it is on. Restores the previous state so other tests see no change.
class MetricsGuard {
 public:
  MetricsGuard() : was_(obs::MetricsRegistry::Global().enabled()) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  ~MetricsGuard() { obs::MetricsRegistry::Global().set_enabled(was_); }

 private:
  bool was_;
};

TEST(RetryingAggregatorTest, TransientFailureIsRetriedBitEqually) {
  MetricsGuard metrics;
  const int k = 3;
  const int64_t n = 17;

  // Reference: the same engine logic with no failures.
  SlotFixture expected(k, n);
  {
    FlakyAggregator clean(k);
    ASSERT_TRUE(clean.AllReduce(&expected.slots, 0).ok());
  }

  auto inner = std::make_unique<FlakyAggregator>(k);
  FlakyAggregator* flaky = inner.get();
  flaky->fail_attempts = 2;
  ExchangeRetryOptions options;
  options.max_retries = 3;
  options.backoff_base_seconds = 0.001;
  auto retrying = RetryingAggregator::Create(std::move(inner), options);
  ASSERT_TRUE(retrying.ok());

  const int64_t retries_before = RetriesCounter();
  SlotFixture fixture(k, n);
  auto stats = (*retrying)->AllReduce(&fixture.slots, 0);
  ASSERT_TRUE(stats.ok());

  EXPECT_EQ(flaky->calls, 3);  // two failures + the success
  EXPECT_EQ(RetriesCounter() - retries_before, 2);
  EXPECT_EQ(fixture.grads, expected.grads)
      << "retried exchange is not bit-equal to the clean one";
  EXPECT_EQ(fixture.errors, expected.errors);
  // Backoff penalty: 0.001 before retry 1, 0.002 before retry 2, on top
  // of the successful attempt's own duration.
  EXPECT_NEAR(stats->comm_seconds, 0.25 + 0.003, 1e-12);
  // Internal state advanced exactly once (failed attempts rolled back).
  EXPECT_EQ(flaky->state, 1);
}

TEST(RetryingAggregatorTest, ExhaustedBudgetRestoresSlotsAndReturnsError) {
  MetricsGuard metrics;
  const int k = 2;
  const int64_t n = 9;
  auto inner = std::make_unique<FlakyAggregator>(k);
  FlakyAggregator* flaky = inner.get();
  flaky->fail_attempts = 100;
  flaky->fail_code = StatusCode::kDataLoss;
  ExchangeRetryOptions options;
  options.max_retries = 2;
  auto retrying = RetryingAggregator::Create(std::move(inner), options);
  ASSERT_TRUE(retrying.ok());

  SlotFixture fixture(k, n);
  const auto grads_before = fixture.grads;
  const auto errors_before = fixture.errors;
  const int64_t retries_before = RetriesCounter();
  auto stats = (*retrying)->AllReduce(&fixture.slots, 5);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(flaky->calls, 3);  // initial + 2 retries
  EXPECT_EQ(RetriesCounter() - retries_before, 2);
  EXPECT_EQ(fixture.grads, grads_before)
      << "failed exchange leaked partial writes into the gradients";
  EXPECT_EQ(fixture.errors, errors_before);
  EXPECT_EQ(flaky->state, 0) << "inner state not rolled back on failure";
}

TEST(RetryingAggregatorTest, NonTransientErrorIsNotRetried) {
  MetricsGuard metrics;
  const int k = 2;
  const int64_t n = 5;
  auto inner = std::make_unique<FlakyAggregator>(k);
  FlakyAggregator* flaky = inner.get();
  flaky->fail_attempts = 1;
  flaky->fail_code = StatusCode::kAborted;
  ExchangeRetryOptions options;
  options.max_retries = 5;
  auto retrying = RetryingAggregator::Create(std::move(inner), options);
  ASSERT_TRUE(retrying.ok());

  SlotFixture fixture(k, n);
  const auto grads_before = fixture.grads;
  const int64_t retries_before = RetriesCounter();
  auto stats = (*retrying)->AllReduce(&fixture.slots, 0);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kAborted);
  EXPECT_EQ(flaky->calls, 1) << "ABORTED must not be retried";
  EXPECT_EQ(RetriesCounter() - retries_before, 0);
  EXPECT_EQ(fixture.grads, grads_before);
}

TEST(RetryingAggregatorTest, OverDeadlineSuccessIsDiscardedAndRetried) {
  const int k = 2;
  const int64_t n = 13;

  SlotFixture expected(k, n);
  {
    FlakyAggregator clean(k);
    ASSERT_TRUE(clean.AllReduce(&expected.slots, 0).ok());
  }

  auto inner = std::make_unique<FlakyAggregator>(k);
  FlakyAggregator* flaky = inner.get();
  flaky->durations = {10.0, 0.5};  // first exchange blows the deadline
  ExchangeRetryOptions options;
  options.max_retries = 1;
  options.timeout_seconds = 1.0;
  options.backoff_base_seconds = 0.001;
  auto retrying = RetryingAggregator::Create(std::move(inner), options);
  ASSERT_TRUE(retrying.ok());

  SlotFixture fixture(k, n);
  auto stats = (*retrying)->AllReduce(&fixture.slots, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(flaky->calls, 2);
  EXPECT_GE(flaky->rollbacks, 1)
      << "discarding a slow success must roll the inner engine back";
  EXPECT_EQ(fixture.grads, expected.grads)
      << "slow first exchange leaked into the accepted result";
  // The discarded attempt's 10s and the backoff are charged as penalty on
  // top of the accepted attempt's 0.5s.
  EXPECT_NEAR(stats->comm_seconds, 0.5 + 10.0 + 0.001, 1e-9);

  // With no deadline the same slow exchange is accepted first try.
  auto relaxed_inner = std::make_unique<FlakyAggregator>(k);
  relaxed_inner->durations = {10.0};
  ExchangeRetryOptions relaxed;
  relaxed.max_retries = 1;
  auto relaxed_retrying =
      RetryingAggregator::Create(std::move(relaxed_inner), relaxed);
  ASSERT_TRUE(relaxed_retrying.ok());
  SlotFixture relaxed_fixture(k, n);
  auto relaxed_stats = (*relaxed_retrying)->AllReduce(&relaxed_fixture.slots, 0);
  ASSERT_TRUE(relaxed_stats.ok());
  EXPECT_NEAR(relaxed_stats->comm_seconds, 10.0, 1e-9);
}

// A deadline overrun is synthesized by the retry layer itself — above the
// exchange observer, which only sees the inner engine's OK result — so the
// retry layer must file its own flight record, exactly once per overrun.
TEST(RetryingAggregatorTest, DeadlineOverrunFilesOneFlightRecord) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const bool was_enabled = recorder.enabled();
  recorder.set_enabled(true);
  recorder.Reset();

  auto inner = std::make_unique<FlakyAggregator>(2);
  inner->durations = {10.0, 0.5};  // only the first attempt overruns
  ExchangeRetryOptions options;
  options.max_retries = 1;
  options.timeout_seconds = 1.0;
  auto retrying = RetryingAggregator::Create(std::move(inner), options);
  ASSERT_TRUE(retrying.ok());

  SlotFixture fixture(2, 13);
  ASSERT_TRUE((*retrying)->AllReduce(&fixture.slots, 7).ok());

  EXPECT_EQ(recorder.dump_count(), 1);
  const obs::JsonValue dump = recorder.LastDump();
  EXPECT_EQ(dump.At("kind").AsString(), "flight_record");
  EXPECT_EQ(dump.At("trigger").At("code_name").AsString(),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(dump.At("trigger").At("iteration").AsInt(), 7);

  recorder.Reset();
  recorder.set_enabled(was_enabled);
}

TEST(RetryingAggregatorTest, CreateAggregatorWrapsOnlyWhenEnabled) {
  ExchangeRetryOptions disabled;
  auto plain = CreateAggregator(CommPrimitive::kMpi, 4, QsgdSpec(4),
                                Ec2P2_8xlarge(), ExecutionContext::Serial(),
                                disabled);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->Name().find("retry"), std::string::npos);

  ExchangeRetryOptions enabled;
  enabled.max_retries = 2;
  auto wrapped = CreateAggregator(CommPrimitive::kMpi, 4, QsgdSpec(4),
                                  Ec2P2_8xlarge(), ExecutionContext::Serial(),
                                  enabled);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_NE((*wrapped)->Name().find("retry(2)"), std::string::npos)
      << (*wrapped)->Name();
  EXPECT_EQ((*wrapped)->num_ranks(), 4);
}

TEST(RetryingAggregatorTest, CreateRejectsBadBudgets) {
  ExchangeRetryOptions negative;
  negative.max_retries = -1;
  EXPECT_FALSE(
      RetryingAggregator::Create(std::make_unique<FlakyAggregator>(2),
                                 negative)
          .ok());
  EXPECT_FALSE(
      RetryingAggregator::Create(nullptr, ExchangeRetryOptions{}).ok());
}

}  // namespace
}  // namespace lpsgd
