// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "comm/cost_model.h"

#include <gtest/gtest.h>

#include "machine/specs.h"

namespace lpsgd {
namespace {

TEST(MachineSpecsTest, Figure2Registry) {
  const auto& machines = PaperMachines();
  ASSERT_EQ(machines.size(), 4u);
  auto p2x = FindMachine("p2.xlarge");
  ASSERT_TRUE(p2x.ok());
  EXPECT_EQ(p2x->num_gpus, 1);
  EXPECT_DOUBLE_EQ(p2x->price_per_hour_usd, 0.9);
  EXPECT_EQ(p2x->gpu.architecture, "Kepler");

  auto p216 = FindMachine("p2.16xlarge");
  ASSERT_TRUE(p216.ok());
  EXPECT_EQ(p216->num_gpus, 16);
  EXPECT_DOUBLE_EQ(p216->price_per_hour_usd, 14.4);

  auto dgx = FindMachine("DGX-1");
  ASSERT_TRUE(dgx.ok());
  EXPECT_EQ(dgx->num_gpus, 8);
  EXPECT_EQ(dgx->gpu.architecture, "Pascal");
  EXPECT_GT(dgx->gpu.relative_speed, 1.3);

  EXPECT_FALSE(FindMachine("p3.2xlarge").ok());
}

TEST(MachineSpecsTest, Ec2MachineForGpus) {
  EXPECT_EQ(Ec2MachineForGpus(1)->name, "p2.xlarge");
  EXPECT_EQ(Ec2MachineForGpus(2)->name, "p2.8xlarge");
  EXPECT_EQ(Ec2MachineForGpus(8)->name, "p2.8xlarge");
  EXPECT_EQ(Ec2MachineForGpus(16)->name, "p2.16xlarge");
  EXPECT_FALSE(Ec2MachineForGpus(32).ok());
  EXPECT_FALSE(Ec2MachineForGpus(0).ok());
}

TEST(CostModelTest, BandwidthDegradesWithGpuCount) {
  CommCostModel model(Ec2P2_16xlarge());
  EXPECT_GT(model.MpiBandwidthBytesPerSec(2),
            model.MpiBandwidthBytesPerSec(8));
  EXPECT_GT(model.MpiBandwidthBytesPerSec(8),
            model.MpiBandwidthBytesPerSec(16));
  EXPECT_GT(model.NcclBandwidthBytesPerSec(2),
            model.NcclBandwidthBytesPerSec(8));
}

TEST(CostModelTest, NcclFasterThanMpiForSamePayload) {
  CommCostModel model(Ec2P2_8xlarge());
  const int64_t bytes = 100 * 1000 * 1000;
  EXPECT_LT(model.NcclAllReduceSeconds(bytes, 8, 8),
            model.MpiExchangeSeconds(bytes, 16, 8));
}

TEST(CostModelTest, SingleGpuIsFree) {
  CommCostModel model(Ec2P2_8xlarge());
  EXPECT_EQ(model.MpiExchangeSeconds(1000000, 2, 1), 0.0);
  EXPECT_EQ(model.NcclAllReduceSeconds(1000000, 1, 1), 0.0);
}

TEST(CostModelTest, TimeMonotonicInBytes) {
  CommCostModel model(Ec2P2_8xlarge());
  double previous = 0.0;
  for (int64_t bytes : {1000, 100000, 10000000, 1000000000}) {
    const double t = model.MpiExchangeSeconds(bytes, 2, 8);
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(CostModelTest, LatencyChargedPerMessage) {
  CommCostModel model(Ec2P2_8xlarge());
  const double few = model.MpiExchangeSeconds(1000, 2, 8);
  const double many = model.MpiExchangeSeconds(1000, 2000, 8);
  EXPECT_GT(many, few + 0.05);  // 1998 extra messages at 60us
}

TEST(CostModelTest, QuantKernelScalesWithChunksAndElements) {
  CommCostModel model(Ec2P2_8xlarge());
  const double few_chunks = model.QuantKernelSeconds(1000000, 100);
  const double many_chunks = model.QuantKernelSeconds(1000000, 1000000);
  EXPECT_GT(many_chunks, few_chunks);
  EXPECT_GT(model.QuantKernelSeconds(10000000, 100), few_chunks);
}

TEST(CostModelTest, PascalQuantKernelsFasterThanKepler) {
  CommCostModel kepler(Ec2P2_8xlarge());
  CommCostModel pascal(Dgx1());
  EXPECT_LT(pascal.QuantKernelSeconds(1000000, 1000),
            kepler.QuantKernelSeconds(1000000, 1000));
}

TEST(MachineSpecsTest, TwoNodeClusterHasNoNcclAndSlowerMpi) {
  const MachineSpec cluster = Ec2Cluster2x8();
  EXPECT_EQ(cluster.num_gpus, 16);
  EXPECT_FALSE(cluster.NcclAvailableFor(2));
  CommCostModel cluster_model(cluster);
  CommCostModel single_model(Ec2P2_16xlarge());
  EXPECT_LT(cluster_model.MpiBandwidthBytesPerSec(16),
            single_model.MpiBandwidthBytesPerSec(16));
}

TEST(CostModelTest, Dgx1NcclMuchFasterThanEc2) {
  CommCostModel ec2(Ec2P2_8xlarge());
  CommCostModel dgx(Dgx1());
  const int64_t bytes = 250 * 1000 * 1000;
  EXPECT_LT(dgx.NcclAllReduceSeconds(bytes, 8, 8) * 2.0,
            ec2.NcclAllReduceSeconds(bytes, 8, 8));
}

}  // namespace
}  // namespace lpsgd
