// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Focused tests of the CNTK-faithful details of MpiReduceBcastAggregator:
// round-robin matrix ownership, the owner-side aggregate re-quantization
// residual, and isolation of error state across matrices and ranks.
#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "comm/mpi_reduce_bcast.h"
#include "machine/specs.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

struct Fixture {
  std::vector<std::vector<Tensor>> grads;          // [matrix][rank]
  std::vector<std::vector<std::vector<float>>> errors;
  std::vector<MatrixSlot> slots;

  Fixture(int matrices, int ranks, int64_t n, uint64_t seed) {
    Rng rng(seed);
    grads.resize(static_cast<size_t>(matrices));
    errors.resize(static_cast<size_t>(matrices));
    for (int m = 0; m < matrices; ++m) {
      MatrixSlot slot;
      slot.quant_shape = Shape({n});
      for (int r = 0; r < ranks; ++r) {
        grads[static_cast<size_t>(m)].emplace_back(Shape({n}));
        grads[static_cast<size_t>(m)].back().FillGaussian(&rng, 1.0f);
        errors[static_cast<size_t>(m)].emplace_back(
            static_cast<size_t>(n), 0.0f);
      }
      for (int r = 0; r < ranks; ++r) {
        slot.rank_grads.push_back(
            grads[static_cast<size_t>(m)][static_cast<size_t>(r)].data());
        slot.rank_errors.push_back(
            &errors[static_cast<size_t>(m)][static_cast<size_t>(r)]);
      }
      slots.push_back(std::move(slot));
    }
  }
};

TEST(MpiRequantizeTest, ManyMatricesAllAggregatedConsistently) {
  const int ranks = 3, matrices = 7;
  auto agg =
      CreateAggregator(CommPrimitive::kMpi, ranks, QsgdSpec(8),
                       Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  Fixture fixture(matrices, ranks, 128, 1);
  auto stats = (*agg)->AllReduce(&fixture.slots, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->messages, 2 * matrices);
  // Every rank holds the identical aggregate for every matrix.
  for (int m = 0; m < matrices; ++m) {
    for (int r = 1; r < ranks; ++r) {
      for (int64_t i = 0; i < 128; ++i) {
        ASSERT_EQ(
            fixture.grads[static_cast<size_t>(m)][static_cast<size_t>(r)]
                .at(i),
            fixture.grads[static_cast<size_t>(m)][0].at(i));
      }
    }
  }
}

TEST(MpiRequantizeTest, AggregateResidualImprovesRunningAccuracy) {
  // The owner-side residual makes the cumulative aggregated gradient track
  // the cumulative true sum across iterations, exactly like per-rank error
  // feedback. With a fresh aggregator (no residual history) each
  // iteration's error would be independent and the cumulative error would
  // grow ~sqrt(T) faster.
  const int ranks = 2;
  const int64_t n = 64;
  const int iterations = 120;

  auto run = [&](bool reuse_aggregator) {
    Rng rng(7);
    std::vector<double> true_sum(static_cast<size_t>(n), 0.0);
    std::vector<double> agg_sum(static_cast<size_t>(n), 0.0);
    auto persistent =
        CreateAggregator(CommPrimitive::kMpi, ranks, OneBitSgdReshapedSpec(64),
                         Ec2P2_8xlarge(), ExecutionContext::Serial());
    CHECK_OK(persistent.status());
    // Persistent per-rank residuals in both settings (they belong to the
    // trainer); only the aggregator's own residual differs.
    std::vector<std::vector<float>> rank_errors(
        2, std::vector<float>(static_cast<size_t>(n), 0.0f));

    for (int t = 0; t < iterations; ++t) {
      std::vector<Tensor> grads;
      MatrixSlot slot;
      slot.quant_shape = Shape({n});
      for (int r = 0; r < ranks; ++r) {
        grads.emplace_back(Shape({n}));
        grads.back().FillGaussian(&rng, 1.0f);
        for (int64_t i = 0; i < n; ++i) {
          true_sum[static_cast<size_t>(i)] += grads.back().at(i);
        }
      }
      for (int r = 0; r < ranks; ++r) {
        slot.rank_grads.push_back(grads[static_cast<size_t>(r)].data());
        slot.rank_errors.push_back(&rank_errors[static_cast<size_t>(r)]);
      }
      std::vector<MatrixSlot> slots = {std::move(slot)};
      if (reuse_aggregator) {
        CHECK_OK((*persistent)->AllReduce(&slots, t).status());
      } else {
        auto fresh = CreateAggregator(
            CommPrimitive::kMpi, ranks, OneBitSgdReshapedSpec(64),
            Ec2P2_8xlarge(), ExecutionContext::Serial());
        CHECK_OK(fresh.status());
        CHECK_OK((*fresh)->AllReduce(&slots, t).status());
      }
      for (int64_t i = 0; i < n; ++i) {
        agg_sum[static_cast<size_t>(i)] +=
            grads[0].at(i);  // post-allreduce aggregate
      }
    }
    double err = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double d = agg_sum[static_cast<size_t>(i)] -
                       true_sum[static_cast<size_t>(i)];
      err += d * d;
    }
    return std::sqrt(err / n);
  };

  const double with_residual = run(/*reuse_aggregator=*/true);
  const double without_residual = run(/*reuse_aggregator=*/false);
  EXPECT_LT(with_residual, without_residual);
}

TEST(MpiRequantizeTest, RankResidualsDivergeButMatricesStayIsolated) {
  const int ranks = 2;
  auto agg =
      CreateAggregator(CommPrimitive::kMpi, ranks, OneBitSgdReshapedSpec(32),
                       Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  Fixture fixture(2, ranks, 64, 3);
  // Zero matrix 1's gradients: its residuals must stay exactly zero no
  // matter what matrix 0 does.
  for (int r = 0; r < ranks; ++r) {
    fixture.grads[1][static_cast<size_t>(r)].SetZero();
  }
  ASSERT_TRUE((*agg)->AllReduce(&fixture.slots, 0).ok());

  double matrix0_residual = 0.0;
  for (int r = 0; r < ranks; ++r) {
    for (float e : fixture.errors[0][static_cast<size_t>(r)]) {
      matrix0_residual += std::abs(e);
    }
    for (float e : fixture.errors[1][static_cast<size_t>(r)]) {
      ASSERT_EQ(e, 0.0f);
    }
  }
  EXPECT_GT(matrix0_residual, 0.0);
}

TEST(MpiRequantizeTest, WireBytesCountOneRanksGradientOnce) {
  // Stats report the encoded size of one rank's full gradient per matrix
  // (the quantity the cost model consumes), independent of rank count.
  for (int ranks : {2, 4, 8}) {
    auto agg =
        CreateAggregator(CommPrimitive::kMpi, ranks, QsgdSpec(4),
                         Ec2P2_8xlarge(), ExecutionContext::Serial());
    ASSERT_TRUE(agg.ok());
    Fixture fixture(1, ranks, 512, 4);
    auto stats = (*agg)->AllReduce(&fixture.slots, 0);
    ASSERT_TRUE(stats.ok());
    auto codec = CreateCodec(QsgdSpec(4));
    EXPECT_EQ(stats->wire_bytes, (*codec)->EncodedSizeBytes(Shape({512})))
        << ranks;
  }
}

}  // namespace
}  // namespace lpsgd
