// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Sparse Top-K aggregation: both engines must scatter-add the (index,
// value) runs element-equal to the dense sum of the same decoded
// gradients — at any thread count. The references below re-derive the
// expected buffers through the public codec API and the wire-stable
// exchange tags, so any drift in the sparse path (ordering, missing
// zero-fill, densification) shows up as an exact-compare failure.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "comm/allreduce.h"
#include "machine/specs.h"
#include "quant/codec.h"
#include "tensor/tensor.h"

namespace lpsgd {
namespace {

struct TestMatrix {
  Shape shape;
  std::vector<Tensor> rank_grads;
  std::vector<std::vector<float>> rank_errors;
};

TestMatrix MakeMatrix(const Shape& shape, int k, uint64_t seed) {
  TestMatrix m;
  m.shape = shape;
  const int64_t n = shape.element_count();
  Rng rng(seed);
  for (int r = 0; r < k; ++r) {
    Tensor grad(shape);
    grad.FillGaussian(&rng, 1.0f);
    m.rank_grads.push_back(std::move(grad));
    m.rank_errors.emplace_back(static_cast<size_t>(n), 0.0f);
  }
  return m;
}

std::vector<MatrixSlot> MakeSlots(std::vector<TestMatrix>& matrices, int k) {
  std::vector<MatrixSlot> slots;
  for (TestMatrix& m : matrices) {
    MatrixSlot slot;
    slot.quant_shape = m.shape;
    for (int r = 0; r < k; ++r) {
      slot.rank_grads.push_back(m.rank_grads[static_cast<size_t>(r)].data());
      slot.rank_errors.push_back(&m.rank_errors[static_cast<size_t>(r)]);
    }
    slots.push_back(std::move(slot));
  }
  return slots;
}

// Dense reference for one matrix: encode every rank's gradient with the
// engine's stage-1 tags, decode each blob densely, and sum in rank order
// with the same float accumulation the engines use. Mutates `errors` the
// way the real exchange does.
std::vector<float> DenseSumReference(const GradientCodec& codec,
                                     const TestMatrix& m, int64_t matrix,
                                     int64_t iteration,
                                     std::vector<std::vector<float>>* errors) {
  const int64_t n = m.shape.element_count();
  const int k = static_cast<int>(m.rank_grads.size());
  std::vector<float> sum(static_cast<size_t>(n), 0.0f);
  std::vector<float> decoded(static_cast<size_t>(n));
  std::vector<uint8_t> blob;
  for (int r = 0; r < k; ++r) {
    const uint64_t tag =
        comm_internal::ExchangeRankTag(iteration, matrix, r);
    codec.Encode(m.rank_grads[static_cast<size_t>(r)].data(), m.shape, tag,
                 codec.UsesErrorFeedback()
                     ? &(*errors)[static_cast<size_t>(r)]
                     : nullptr,
                 &blob);
    CHECK_OK(codec.Decode(blob.data(), static_cast<int64_t>(blob.size()),
                          m.shape, decoded.data()));
    for (int64_t i = 0; i < n; ++i) {
      sum[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
  }
  return sum;
}

class SparseAggregationThreadTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseAggregationThreadTest, NcclScatterAddEqualsDenseSum) {
  // The NCCL sparse path broadcasts the scatter-added aggregate verbatim
  // (no re-quantization), so every rank's buffer must equal the dense sum
  // of the per-rank decodes exactly.
  const int threads = GetParam();
  const int k = 4;
  auto spec = ParseCodecSpec("topk:0.25");
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());

  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({40, 25}), k, 11));
  matrices.push_back(MakeMatrix(Shape({333}), k, 12));
  matrices.push_back(MakeMatrix(Shape({8}), k, 13));

  // References before the engine touches the buffers (identical starting
  // error state: both begin at zero).
  std::vector<std::vector<float>> expected;
  for (size_t m = 0; m < matrices.size(); ++m) {
    std::vector<std::vector<float>> ref_errors(
        static_cast<size_t>(k),
        std::vector<float>(
            static_cast<size_t>(matrices[m].shape.element_count()), 0.0f));
    expected.push_back(DenseSumReference(**codec, matrices[m],
                                         static_cast<int64_t>(m),
                                         /*iteration=*/0, &ref_errors));
  }

  auto agg = CreateAggregator(CommPrimitive::kNccl, k, *spec,
                              Ec2P2_8xlarge(),
                              ExecutionContext::WithThreads(threads));
  ASSERT_TRUE(agg.ok());
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());

  for (size_t m = 0; m < matrices.size(); ++m) {
    const int64_t n = matrices[m].shape.element_count();
    for (int r = 0; r < k; ++r) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(matrices[m].rank_grads[static_cast<size_t>(r)].at(i),
                  expected[m][static_cast<size_t>(i)])
            << "matrix " << m << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST_P(SparseAggregationThreadTest, MpiScatterAddFeedsRequantizeExactly) {
  // MPI re-quantizes the aggregate before broadcast, so the end-to-end
  // check emulates the full owner pipeline: scatter-added sum -> owner
  // re-encode (aggregate tag, fresh residual) -> dense decode. Any
  // element-level difference in the scatter-add changes the re-encoded
  // blob and fails the exact compare.
  const int threads = GetParam();
  const int k = 3;
  auto spec = ParseCodecSpec("topk:0.1");
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());

  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(Shape({25, 40}), k, 21));
  matrices.push_back(MakeMatrix(Shape({500}), k, 22));

  std::vector<std::vector<float>> expected;
  for (size_t m = 0; m < matrices.size(); ++m) {
    const int64_t n = matrices[m].shape.element_count();
    std::vector<std::vector<float>> ref_errors(
        static_cast<size_t>(k),
        std::vector<float>(static_cast<size_t>(n), 0.0f));
    std::vector<float> sum = DenseSumReference(
        **codec, matrices[m], static_cast<int64_t>(m), /*iteration=*/0,
        &ref_errors);
    const int owner = static_cast<int>(m) % k;
    const uint64_t agg_tag = comm_internal::ExchangeAggregateTag(
        /*iteration=*/0, static_cast<int64_t>(m), owner);
    std::vector<float> agg_error(static_cast<size_t>(n), 0.0f);
    std::vector<uint8_t> blob;
    (**codec).Encode(sum.data(), matrices[m].shape, agg_tag,
                     (**codec).UsesErrorFeedback() ? &agg_error : nullptr,
                     &blob);
    std::vector<float> bcast(static_cast<size_t>(n));
    CHECK_OK((**codec).Decode(blob.data(), static_cast<int64_t>(blob.size()),
                              matrices[m].shape, bcast.data()));
    expected.push_back(std::move(bcast));
  }

  auto agg = CreateAggregator(CommPrimitive::kMpi, k, *spec,
                              Ec2P2_16xlarge(),
                              ExecutionContext::WithThreads(threads));
  ASSERT_TRUE(agg.ok());
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());

  for (size_t m = 0; m < matrices.size(); ++m) {
    const int64_t n = matrices[m].shape.element_count();
    for (int r = 0; r < k; ++r) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(matrices[m].rank_grads[static_cast<size_t>(r)].at(i),
                  expected[m][static_cast<size_t>(i)])
            << "matrix " << m << " rank " << r << " elem " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SparseAggregationThreadTest,
                         ::testing::Values(1, 4));

TEST(SparseAggregationTest, SerialAndParallelBitIdentical) {
  // The whole sparse pipeline must be schedule-invariant: a 4-thread run
  // produces bit-identical buffers and error state to the serial run.
  const int k = 4;
  auto spec = ParseCodecSpec("topk:0.25");
  ASSERT_TRUE(spec.ok());

  auto run = [&](const ExecutionContext& exec, CommPrimitive primitive) {
    std::vector<TestMatrix> matrices;
    matrices.push_back(MakeMatrix(Shape({30, 20}), k, 31));
    matrices.push_back(MakeMatrix(Shape({77}), k, 32));
    auto agg = CreateAggregator(primitive, k, *spec,
                                Ec2P2_8xlarge(), exec);
    CHECK_OK(agg.status());
    auto slots = MakeSlots(matrices, k);
    for (int64_t iteration = 0; iteration < 3; ++iteration) {
      CHECK_OK((*agg)->AllReduce(&slots, iteration).status());
    }
    return matrices;
  };

  for (CommPrimitive primitive :
       {CommPrimitive::kMpi, CommPrimitive::kNccl}) {
    SCOPED_TRACE(CommPrimitiveName(primitive));
    const auto serial = run(ExecutionContext::Serial(), primitive);
    const auto parallel = run(ExecutionContext::WithThreads(4), primitive);
    for (size_t m = 0; m < serial.size(); ++m) {
      const int64_t n = serial[m].shape.element_count();
      for (int r = 0; r < k; ++r) {
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(serial[m].rank_grads[static_cast<size_t>(r)].at(i),
                    parallel[m].rank_grads[static_cast<size_t>(r)].at(i))
              << "matrix " << m << " rank " << r << " elem " << i;
        }
        ASSERT_EQ(serial[m].rank_errors[static_cast<size_t>(r)],
                  parallel[m].rank_errors[static_cast<size_t>(r)])
            << "matrix " << m << " rank " << r;
      }
    }
  }
}

TEST(SparseAggregationTest, BypassedMatricesStayFullPrecision) {
  // slot.quantized = false routes a matrix through the dense fp32 pipeline
  // even under a sparse codec: the exchange then computes the exact sum.
  const int k = 4;
  auto spec = ParseCodecSpec("topk:0.1");
  ASSERT_TRUE(spec.ok());

  for (CommPrimitive primitive :
       {CommPrimitive::kMpi, CommPrimitive::kNccl}) {
    SCOPED_TRACE(CommPrimitiveName(primitive));
    std::vector<TestMatrix> matrices;
    matrices.push_back(MakeMatrix(Shape({64}), k, 41));
    std::vector<double> exact(64, 0.0);
    for (int r = 0; r < k; ++r) {
      for (int64_t i = 0; i < 64; ++i) {
        exact[static_cast<size_t>(i)] +=
            matrices[0].rank_grads[static_cast<size_t>(r)].at(i);
      }
    }
    auto agg = CreateAggregator(primitive, k, *spec, Ec2P2_8xlarge(),
                                ExecutionContext::Serial());
    ASSERT_TRUE(agg.ok());
    auto slots = MakeSlots(matrices, k);
    slots[0].quantized = false;
    ASSERT_TRUE((*agg)->AllReduce(&slots, 0).ok());
    for (int64_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(matrices[0].rank_grads[0].at(i),
                  exact[static_cast<size_t>(i)], 1e-4);
    }
  }
}

TEST(SparseAggregationTest, NcclAccountsAllgatherBytes) {
  // Sparse exchange is an allgather: every rank receives every other
  // rank's blob, so the per-matrix payload is k * EncodedSizeBytes.
  const int k = 4;
  auto spec = ParseCodecSpec("topk:0.25");
  ASSERT_TRUE(spec.ok());
  auto codec = CreateCodec(*spec);
  ASSERT_TRUE(codec.ok());
  const Shape shape({1000});

  auto agg = CreateAggregator(CommPrimitive::kNccl, k, *spec,
                              Ec2P2_8xlarge(), ExecutionContext::Serial());
  ASSERT_TRUE(agg.ok());
  std::vector<TestMatrix> matrices;
  matrices.push_back(MakeMatrix(shape, k, 51));
  auto slots = MakeSlots(matrices, k);
  auto stats = (*agg)->AllReduce(&slots, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->wire_bytes, k * (*codec)->EncodedSizeBytes(shape));
  EXPECT_EQ(stats->raw_bytes,
            shape.element_count() * static_cast<int64_t>(sizeof(float)));
}

}  // namespace
}  // namespace lpsgd
