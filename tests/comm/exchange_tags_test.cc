// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// The stochastic-tag helpers are wire-format: both aggregators derive the
// counter-based RNG streams of every quantization decision from them, so
// the formulas below are pinned against the exact expressions the
// aggregators historically inlined. Changing them silently changes every
// quantized training trajectory.
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "comm/allreduce.h"

namespace lpsgd {
namespace {

TEST(ExchangeTagsTest, RankTagMatchesHistoricalInlineFormula) {
  for (int64_t iteration : {int64_t{0}, int64_t{1}, int64_t{17},
                            int64_t{123456}, int64_t{1} << 40}) {
    for (int64_t matrix : {int64_t{0}, int64_t{1}, int64_t{63}}) {
      for (int rank : {0, 1, 3, 7}) {
        const uint64_t counter =
            static_cast<uint64_t>(iteration) * 0x9e3779b9ULL +
            static_cast<uint64_t>(matrix);
        EXPECT_EQ(comm_internal::ExchangeRankTag(iteration, matrix, rank),
                  HashCounter(counter, static_cast<uint64_t>(rank)))
            << "iteration=" << iteration << " matrix=" << matrix
            << " rank=" << rank;
      }
    }
  }
}

TEST(ExchangeTagsTest, AggregateTagMatchesHistoricalInlineFormula) {
  for (int64_t iteration : {int64_t{0}, int64_t{1}, int64_t{17},
                            int64_t{123456}, int64_t{1} << 40}) {
    for (int64_t matrix : {int64_t{0}, int64_t{1}, int64_t{63}}) {
      for (int owner : {0, 1, 3, 7}) {
        const uint64_t counter =
            static_cast<uint64_t>(iteration) * 0x9e3779b9ULL +
            static_cast<uint64_t>(matrix);
        EXPECT_EQ(
            comm_internal::ExchangeAggregateTag(iteration, matrix, owner),
            HashCounter(counter, 0xa66e6a7eULL + static_cast<uint64_t>(owner)))
            << "iteration=" << iteration << " matrix=" << matrix
            << " owner=" << owner;
      }
    }
  }
}

TEST(ExchangeTagsTest, TagsAreDistinctAcrossStagesRanksAndMatrices) {
  // The aggregate-tag salt keeps the owner's re-encode stream disjoint from
  // every rank-encode stream; distinct (matrix, rank) pairs must also get
  // distinct streams within an iteration.
  std::set<uint64_t> tags;
  const int64_t iteration = 42;
  for (int64_t matrix = 0; matrix < 8; ++matrix) {
    for (int rank = 0; rank < 8; ++rank) {
      tags.insert(comm_internal::ExchangeRankTag(iteration, matrix, rank));
      tags.insert(
          comm_internal::ExchangeAggregateTag(iteration, matrix, rank));
    }
  }
  EXPECT_EQ(tags.size(), 8u * 8u * 2u);
}

}  // namespace
}  // namespace lpsgd
