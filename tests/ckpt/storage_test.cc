// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Storage layer: the POSIX implementation's durability protocol
// primitives (synced write, atomic rename, listing) and the
// fault-injecting wrapper's storage verbs (enospc budgets, torn pages,
// short writes) keyed by iteration.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/fault_storage.h"
#include "ckpt/storage.h"
#include "fault/fault_plan.h"

namespace lpsgd {
namespace ckpt {
namespace {

std::string TestDir(const char* name) {
  const std::string dir = JoinPath(::testing::TempDir(), name);
  return dir;
}

TEST(PathTest, JoinPathInsertsExactlyOneSlash) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
}

TEST(PathTest, BasenameTakesTheFinalComponent) {
  EXPECT_EQ(Basename("a/b/c.lpck"), "c.lpck");
  EXPECT_EQ(Basename("c.lpck"), "c.lpck");
  EXPECT_EQ(Basename("a/b/"), "");
}

TEST(PosixStorageTest, WriteReadRoundTrip) {
  auto storage = MakePosixStorage();
  const std::string dir = TestDir("posix_roundtrip");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  const std::string path = JoinPath(dir, "file.bin");
  std::string payload = "hello\0world";  // embedded NUL survives
  payload.push_back('\0');
  ASSERT_TRUE(storage->WriteFileSynced(path, payload).ok());
  auto read = storage->ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value(), payload);
  EXPECT_TRUE(storage->Exists(path));
}

TEST(PosixStorageTest, CreateDirMakesMissingParents) {
  auto storage = MakePosixStorage();
  const std::string dir = JoinPath(TestDir("posix_mkdirp"), "a/b/c");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  // Idempotent on the second call.
  EXPECT_TRUE(storage->CreateDir(dir).ok());
  EXPECT_TRUE(storage->WriteFileSynced(JoinPath(dir, "x"), "x").ok());
}

TEST(PosixStorageTest, MissingFileIsNotFound) {
  auto storage = MakePosixStorage();
  const std::string dir = TestDir("posix_missing");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  auto read = storage->ReadFile(JoinPath(dir, "no-such-file"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(storage->Exists(JoinPath(dir, "no-such-file")));
}

TEST(PosixStorageTest, AtomicRenameReplacesTheTarget) {
  auto storage = MakePosixStorage();
  const std::string dir = TestDir("posix_rename");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  const std::string from = JoinPath(dir, "f.tmp");
  const std::string to = JoinPath(dir, "f");
  ASSERT_TRUE(storage->WriteFileSynced(to, "old").ok());
  ASSERT_TRUE(storage->WriteFileSynced(from, "new").ok());
  ASSERT_TRUE(storage->AtomicRename(from, to).ok());
  auto read = storage->ReadFile(to);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "new");
  EXPECT_FALSE(storage->Exists(from));
}

TEST(PosixStorageTest, ListReturnsNamesNotPaths) {
  auto storage = MakePosixStorage();
  const std::string dir = TestDir("posix_list");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  ASSERT_TRUE(storage->WriteFileSynced(JoinPath(dir, "one"), "1").ok());
  ASSERT_TRUE(storage->WriteFileSynced(JoinPath(dir, "two"), "2").ok());
  auto names = storage->List(dir);
  ASSERT_TRUE(names.ok()) << names.status();
  bool saw_one = false, saw_two = false;
  for (const std::string& name : names.value()) {
    EXPECT_EQ(name.find('/'), std::string::npos) << name;
    if (name == "one") saw_one = true;
    if (name == "two") saw_two = true;
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_two);
}

TEST(PosixStorageTest, RemoveDeletesAndMissingRemoveIsNotFound) {
  auto storage = MakePosixStorage();
  const std::string dir = TestDir("posix_remove");
  ASSERT_TRUE(storage->CreateDir(dir).ok());
  const std::string path = JoinPath(dir, "victim");
  ASSERT_TRUE(storage->WriteFileSynced(path, "v").ok());
  ASSERT_TRUE(storage->Remove(path).ok());
  EXPECT_FALSE(storage->Exists(path));
  EXPECT_EQ(storage->Remove(path).code(), StatusCode::kNotFound);
}

FaultInjectingStorage MakeFaulty(const char* plan_text) {
  auto plan = fault::FaultPlan::Parse(plan_text);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return FaultInjectingStorage(MakePosixStorage(), *plan);
}

TEST(FaultInjectingStorageTest, EnospcBudgetConsumesAttempts) {
  FaultInjectingStorage storage = MakeFaulty("enospc@3x2");
  const std::string dir = TestDir("faulty_enospc");
  ASSERT_TRUE(storage.CreateDir(dir).ok());
  const std::string path = JoinPath(dir, "ckpt-3.lpck.tmp");
  storage.SetFaultContext(3);
  // First two attempts fail UNAVAILABLE, the third lands.
  EXPECT_EQ(storage.WriteFileSynced(path, "data").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(storage.WriteFileSynced(path, "data").code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(storage.WriteFileSynced(path, "data").ok());
  EXPECT_EQ(storage.injected(), 2);
  auto read = storage.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "data");
}

TEST(FaultInjectingStorageTest, TornWriteSilentlyCorruptsTheBytes) {
  FaultInjectingStorage storage = MakeFaulty("torn@5;seed=11");
  const std::string dir = TestDir("faulty_torn");
  ASSERT_TRUE(storage.CreateDir(dir).ok());
  const std::string path = JoinPath(dir, "ckpt-5.lpck.tmp");
  storage.SetFaultContext(5);
  const std::string payload(256, 'x');
  // The lie: the write reports success...
  ASSERT_TRUE(storage.WriteFileSynced(path, payload).ok());
  EXPECT_EQ(storage.injected(), 1);
  // ...but the bytes on disk differ (same length, damaged middle).
  auto read = storage.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), payload.size());
  EXPECT_NE(read.value(), payload);
}

TEST(FaultInjectingStorageTest, TornWriteIsDeterministicInSeed) {
  const std::string dir = TestDir("faulty_torn_det");
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    FaultInjectingStorage storage = MakeFaulty("torn@5;seed=11");
    ASSERT_TRUE(storage.CreateDir(dir).ok());
    const std::string path = JoinPath(dir, "ckpt-5.lpck.tmp");
    storage.SetFaultContext(5);
    ASSERT_TRUE(storage.WriteFileSynced(path, std::string(256, 'x')).ok());
    auto read = storage.ReadFile(path);
    ASSERT_TRUE(read.ok());
    *out = read.value();
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjectingStorageTest, ShortWritePersistsHalfThePayload) {
  FaultInjectingStorage storage = MakeFaulty("shortwrite@2");
  const std::string dir = TestDir("faulty_short");
  ASSERT_TRUE(storage.CreateDir(dir).ok());
  const std::string path = JoinPath(dir, "ckpt-2.lpck.tmp");
  storage.SetFaultContext(2);
  const std::string payload(100, 'y');
  ASSERT_TRUE(storage.WriteFileSynced(path, payload).ok());
  EXPECT_EQ(storage.injected(), 1);
  auto read = storage.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), payload.size() / 2);
}

TEST(FaultInjectingStorageTest, OtherIterationsAndManifestPassThrough) {
  FaultInjectingStorage storage = MakeFaulty("torn@5");
  const std::string dir = TestDir("faulty_passthrough");
  ASSERT_TRUE(storage.CreateDir(dir).ok());
  // Wrong iteration: clean write.
  storage.SetFaultContext(4);
  const std::string data_path = JoinPath(dir, "ckpt-4.lpck.tmp");
  ASSERT_TRUE(storage.WriteFileSynced(data_path, "clean").ok());
  auto read = storage.ReadFile(data_path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "clean");
  // Right iteration but not a checkpoint data file: the manifest is
  // never damaged.
  storage.SetFaultContext(5);
  const std::string manifest = JoinPath(dir, "MANIFEST.tmp");
  ASSERT_TRUE(storage.WriteFileSynced(manifest, "manifest").ok());
  read = storage.ReadFile(manifest);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "manifest");
  EXPECT_EQ(storage.injected(), 0);
}

}  // namespace
}  // namespace ckpt
}  // namespace lpsgd
