// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Checkpoint wire format v1: serialize/deserialize round-trip preserves
// every field bit-for-bit, serialization is deterministic, and the
// strict reader fails closed (DATA_LOSS) on every class of damage the
// storage faults can inflict — truncation, bit flips, bad magic, hostile
// counts, trailing bytes.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/format.h"

namespace lpsgd {
namespace ckpt {
namespace {

TrainerState MakeState() {
  TrainerState state;
  state.seed = 42;
  state.codec = "qsgd4:512";
  state.rank_count = 4;
  state.iteration = 17;
  state.epochs_completed = 2;
  state.epoch_batch_cursor = 3;
  state.epoch_loss_sum = 1.25;
  state.epoch_correct = 96;
  state.epoch_samples = 128;
  state.virtual_seconds = 0.75;
  state.params.push_back({"fc1/w", {3, 2}, {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f}});
  state.params.push_back({"fc1/b", {2}, {0.5f, -0.5f}});
  state.optimizer.push_back({"fc1/w", {3, 2}, {6, 5, 4, 3, 2, 1}});
  state.optimizer.push_back({"fc1/b", {2}, {0.0f, 0.25f}});
  state.residuals = {{{0.1f, 0.2f}, {0.3f}},
                     {{-0.1f, -0.2f}, {-0.3f}},
                     {{0.0f, 0.0f}, {0.0f}},
                     {{1.0f, 1.0f}, {1.0f}}};
  state.aggregator_state = {{0.5f, 0.5f}, {0.25f}};
  state.rng_streams = {{"init", 42}, {"shuffle", 42 ^ 0xdadaULL}};
  return state;
}

void ExpectStatesEqual(const TrainerState& a, const TrainerState& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.rank_count, b.rank_count);
  EXPECT_EQ(a.iteration, b.iteration);
  EXPECT_EQ(a.epochs_completed, b.epochs_completed);
  EXPECT_EQ(a.epoch_batch_cursor, b.epoch_batch_cursor);
  EXPECT_DOUBLE_EQ(a.epoch_loss_sum, b.epoch_loss_sum);
  EXPECT_EQ(a.epoch_correct, b.epoch_correct);
  EXPECT_EQ(a.epoch_samples, b.epoch_samples);
  EXPECT_DOUBLE_EQ(a.virtual_seconds, b.virtual_seconds);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i].name, b.params[i].name);
    EXPECT_EQ(a.params[i].dims, b.params[i].dims);
    EXPECT_EQ(a.params[i].data, b.params[i].data);
  }
  ASSERT_EQ(a.optimizer.size(), b.optimizer.size());
  for (size_t i = 0; i < a.optimizer.size(); ++i) {
    EXPECT_EQ(a.optimizer[i].name, b.optimizer[i].name);
    EXPECT_EQ(a.optimizer[i].dims, b.optimizer[i].dims);
    EXPECT_EQ(a.optimizer[i].data, b.optimizer[i].data);
  }
  EXPECT_EQ(a.residuals, b.residuals);
  EXPECT_EQ(a.aggregator_state, b.aggregator_state);
  ASSERT_EQ(a.rng_streams.size(), b.rng_streams.size());
  for (size_t i = 0; i < a.rng_streams.size(); ++i) {
    EXPECT_EQ(a.rng_streams[i].name, b.rng_streams[i].name);
    EXPECT_EQ(a.rng_streams[i].seed, b.rng_streams[i].seed);
  }
}

TEST(FormatTest, RoundTripPreservesEveryField) {
  const TrainerState state = MakeState();
  const std::string bytes = Serialize(state);
  auto decoded = Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectStatesEqual(state, decoded.value());
}

TEST(FormatTest, SerializationIsDeterministic) {
  EXPECT_EQ(Serialize(MakeState()), Serialize(MakeState()));
}

TEST(FormatTest, EmptySectionsRoundTrip) {
  TrainerState state;
  state.seed = 1;
  state.codec = "fp32";
  state.rank_count = 1;
  const std::string bytes = Serialize(state);
  auto decoded = Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded.value().params.empty());
  EXPECT_TRUE(decoded.value().residuals.empty());
  EXPECT_TRUE(decoded.value().aggregator_state.empty());
}

TEST(FormatTest, EveryTruncationFailsClosed) {
  const std::string bytes = Serialize(MakeState());
  // Every strict prefix must be DATA_LOSS, never OK, never a crash. Step
  // by a small stride to keep the test fast while still covering section
  // boundaries.
  for (size_t len = 0; len < bytes.size(); len += 3) {
    auto decoded = Deserialize(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << "prefix length " << len;
  }
}

TEST(FormatTest, EveryBitFlipFailsClosed) {
  const std::string bytes = Serialize(MakeState());
  // Flip one bit per byte position (stride keeps it fast). The integrity
  // words must catch every single-bit flip or the field it lands in must
  // fail validation.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    auto decoded = Deserialize(damaged);
    EXPECT_FALSE(decoded.ok()) << "flip at " << pos;
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
          << "flip at " << pos;
    }
  }
}

TEST(FormatTest, TrailingBytesAreRejected) {
  std::string bytes = Serialize(MakeState());
  bytes.push_back('\0');
  auto decoded = Deserialize(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FormatTest, WrongMagicIsRejected) {
  std::string bytes = Serialize(MakeState());
  bytes[0] = 'X';
  auto decoded = Deserialize(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FormatTest, HostileLengthFieldCannotOverAllocate) {
  // A section header claiming a multi-exabyte payload must be rejected by
  // the bounds check, not fed to a resize(). Craft: valid header, then a
  // section with a huge length.
  std::string bytes = Serialize(MakeState());
  // Section headers start at offset 16 (4 header words); the payload
  // length is the u64 at +4.
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&bytes[16 + 4], &huge, sizeof(huge));
  auto decoded = Deserialize(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FormatTest, DuplicateSectionIsRejected) {
  // Appending a copy of the first section after the real payload is both
  // a duplicate tag and trailing data; either way it must fail closed.
  const std::string bytes = Serialize(MakeState());
  uint64_t first_len = 0;
  std::memcpy(&first_len, bytes.data() + 16 + 4, sizeof(first_len));
  const size_t first_section = 4 + 8 + static_cast<size_t>(first_len) + 4;
  std::string damaged = bytes + bytes.substr(16, first_section);
  auto decoded = Deserialize(damaged);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FormatTest, GarbageIsRejectedNotCrashed) {
  std::string garbage(1024, '\x5a');
  auto decoded = Deserialize(garbage);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  auto empty = Deserialize(std::string());
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace ckpt
}  // namespace lpsgd
