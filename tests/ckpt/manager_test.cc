// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CheckpointManager: the temp+fsync+rename publish protocol, manifest
// maintenance, retention GC, restore-with-fallback across torn/short
// writes, and the retry/backoff loop against injected ENOSPC.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/fault_storage.h"
#include "ckpt/manager.h"
#include "ckpt/storage.h"
#include "fault/fault_plan.h"

namespace lpsgd {
namespace ckpt {
namespace {

TrainerState MakeState(int64_t iteration) {
  TrainerState state;
  state.seed = 7;
  state.codec = "fp32";
  state.rank_count = 4;
  state.iteration = iteration;
  state.epochs_completed = static_cast<int32_t>(iteration / 4);
  state.params.push_back(
      {"w", {2, 2}, {static_cast<float>(iteration), 1.0f, 2.0f, 3.0f}});
  state.rng_streams = {{"init", 7}};
  return state;
}

DurableCheckpointOptions MakeOptions(const char* name,
                                     std::shared_ptr<Storage> storage = nullptr) {
  DurableCheckpointOptions options;
  options.save_dir = JoinPath(::testing::TempDir(), name);
  options.storage = std::move(storage);
  return options;
}

TEST(DurableCheckpointOptionsTest, ValidateRejectsBadBudgets) {
  DurableCheckpointOptions options;
  options.save_dir = "d";
  options.save_every = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.save_every = 0;
  options.keep = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.keep = 1;
  options.retry.max_retries = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.retry.max_retries = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CheckpointManagerTest, CreateNeedsASaveDir) {
  DurableCheckpointOptions options;
  auto manager = CheckpointManager::Create(options);
  EXPECT_EQ(manager.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointManagerTest, SaveThenRestoreRoundTrips) {
  auto manager = CheckpointManager::Create(MakeOptions("mgr_roundtrip"));
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(4)).ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 4);
  EXPECT_EQ(restored->fallbacks, 0);
  EXPECT_EQ(restored->path, (*manager)->CheckpointPath(4));
  ASSERT_EQ(restored->state.params.size(), 1u);
  EXPECT_EQ(restored->state.params[0].data[0], 4.0f);
}

TEST(CheckpointManagerTest, RestoreWithNoCheckpointsIsNotFound) {
  auto manager = CheckpointManager::Create(MakeOptions("mgr_empty"));
  ASSERT_TRUE(manager.ok()) << manager.status();
  auto restored = (*manager)->RestoreLatest();
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, RetentionKeepsOnlyTheNewest) {
  DurableCheckpointOptions options = MakeOptions("mgr_retention");
  options.keep = 2;
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  for (int64_t i : {2, 4, 6, 8}) {
    ASSERT_TRUE((*manager)->Save(MakeState(i)).ok());
  }
  auto storage = (*manager)->storage();
  EXPECT_TRUE(storage->Exists((*manager)->CheckpointPath(8)));
  EXPECT_TRUE(storage->Exists((*manager)->CheckpointPath(6)));
  EXPECT_FALSE(storage->Exists((*manager)->CheckpointPath(4)));
  EXPECT_FALSE(storage->Exists((*manager)->CheckpointPath(2)));
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 8);
}

TEST(CheckpointManagerTest, NoTempFilesSurviveAPublish) {
  auto manager = CheckpointManager::Create(MakeOptions("mgr_no_temps"));
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(1)).ok());
  auto names = (*manager)->storage()->List((*manager)->options().save_dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : names.value()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(CheckpointManagerTest, TornLatestFallsBackToPrevious) {
  auto plan = fault::FaultPlan::Parse("torn@8");
  ASSERT_TRUE(plan.ok());
  DurableCheckpointOptions options = MakeOptions(
      "mgr_torn_fallback",
      std::make_shared<FaultInjectingStorage>(MakePosixStorage(), *plan));
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(4)).ok());
  ASSERT_TRUE((*manager)->Save(MakeState(8)).ok());  // silently torn
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 4)
      << "a torn newest checkpoint must never load";
  EXPECT_EQ(restored->fallbacks, 1);
}

TEST(CheckpointManagerTest, ShortWriteLatestFallsBackToPrevious) {
  auto plan = fault::FaultPlan::Parse("shortwrite@8");
  ASSERT_TRUE(plan.ok());
  DurableCheckpointOptions options = MakeOptions(
      "mgr_short_fallback",
      std::make_shared<FaultInjectingStorage>(MakePosixStorage(), *plan));
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(4)).ok());
  ASSERT_TRUE((*manager)->Save(MakeState(8)).ok());  // half the bytes land
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 4);
  EXPECT_EQ(restored->fallbacks, 1);
}

TEST(CheckpointManagerTest, EnospcIsRetriedWithinBudget) {
  auto plan = fault::FaultPlan::Parse("enospc@8x2");
  ASSERT_TRUE(plan.ok());
  auto faulty =
      std::make_shared<FaultInjectingStorage>(MakePosixStorage(), *plan);
  DurableCheckpointOptions options = MakeOptions("mgr_enospc_ok", faulty);
  options.retry.max_retries = 3;
  options.retry.backoff_base_seconds = 0.0;
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(8)).ok());
  EXPECT_EQ(faulty->injected(), 2);
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 8);
}

TEST(CheckpointManagerTest, EnospcBeyondBudgetFailsTheSave) {
  auto plan = fault::FaultPlan::Parse("enospc@8x5");
  ASSERT_TRUE(plan.ok());
  DurableCheckpointOptions options = MakeOptions(
      "mgr_enospc_fail",
      std::make_shared<FaultInjectingStorage>(MakePosixStorage(), *plan));
  options.retry.max_retries = 2;  // 3 attempts < 5 injected failures
  options.retry.backoff_base_seconds = 0.0;
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  const Status saved = (*manager)->Save(MakeState(8));
  EXPECT_EQ(saved.code(), StatusCode::kUnavailable);
}

TEST(CheckpointManagerTest, CorruptManifestFallsBackToDirectoryScan) {
  auto manager = CheckpointManager::Create(MakeOptions("mgr_bad_manifest"));
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(4)).ok());
  ASSERT_TRUE((*manager)->Save(MakeState(8)).ok());
  // Vandalize the manifest; the directory scan still finds both files.
  auto storage = (*manager)->storage();
  const std::string manifest =
      JoinPath((*manager)->options().save_dir, "MANIFEST");
  ASSERT_TRUE(storage->WriteFileSynced(manifest, "not a manifest").ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 8);
}

TEST(CheckpointManagerTest, AllCheckpointsCorruptIsDataLoss) {
  auto plan = fault::FaultPlan::Parse("torn@4;torn@8");
  ASSERT_TRUE(plan.ok());
  DurableCheckpointOptions options = MakeOptions(
      "mgr_all_torn",
      std::make_shared<FaultInjectingStorage>(MakePosixStorage(), *plan));
  auto manager = CheckpointManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Save(MakeState(4)).ok());
  ASSERT_TRUE((*manager)->Save(MakeState(8)).ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointManagerTest, SavedFilesAreBitEqualAcrossManagers) {
  // Two managers given the same state produce byte-identical files: the
  // chaos CI job compares final checkpoints across independent processes.
  auto a = CheckpointManager::Create(MakeOptions("mgr_bits_a"));
  auto b = CheckpointManager::Create(MakeOptions("mgr_bits_b"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Save(MakeState(4)).ok());
  ASSERT_TRUE((*b)->Save(MakeState(4)).ok());
  auto bytes_a = (*a)->storage()->ReadFile((*a)->CheckpointPath(4));
  auto bytes_b = (*b)->storage()->ReadFile((*b)->CheckpointPath(4));
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());
}

}  // namespace
}  // namespace ckpt
}  // namespace lpsgd
