// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Durable-checkpoint chaos runs (ISSUE: durable crash-consistent
// checkpointing): killing training at any iteration and restoring from
// the newest durable checkpoint must finish in a final checkpoint
// bit-equal to the uninterrupted run — across codecs with and without
// error feedback and across both fabrics. Storage faults (torn pages,
// short writes, full disks) must never let a corrupt checkpoint load,
// and elastic restores at a different rank count must keep training.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/strings.h"
#include "ckpt/manager.h"
#include "ckpt/storage.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "fault/fault_plan.h"
#include "nn/model_zoo.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace {

SyntheticImageDataset MakeImages(int64_t n, int64_t offset = 0) {
  SyntheticImageOptions options;
  options.num_classes = 4;
  options.channels = 1;
  options.height = 4;
  options.width = 4;
  options.num_samples = n;
  options.signal = 2.0f;
  options.noise = 0.5f;
  options.sample_offset = offset;
  return SyntheticImageDataset(options);
}

SyncTrainer::NetworkFactory MlpFactory() {
  return [](uint64_t seed) { return BuildMlp({16, 12, 4}, seed); };
}

// 128 samples / batch 32 = 4 iterations per epoch; every test trains 2
// epochs, so iterations run 1..8 and save_every=2 lands durable
// checkpoints at 2, 4, 6, 8.
constexpr int kEpochs = 2;
constexpr int64_t kFinalIteration = 8;

TrainerOptions BaseOptions(const CodecSpec& codec, CommPrimitive primitive,
                           const std::string& save_dir) {
  TrainerOptions options;
  options.num_gpus = 4;
  options.global_batch_size = 32;
  options.learning_rate = 0.05f;
  options.codec = codec;
  options.primitive = primitive;
  options.seed = 7;
  options.execution = ExecutionContext::Serial();
  options.durable_checkpoint.save_dir =
      ckpt::JoinPath(::testing::TempDir(), save_dir);
  options.durable_checkpoint.save_every = 2;
  return options;
}

// Reads the bytes of the checkpoint file for `iteration` in `dir`.
std::string CheckpointBytes(const std::string& save_dir, int64_t iteration) {
  auto storage = ckpt::MakePosixStorage();
  ckpt::DurableCheckpointOptions options;
  options.save_dir = save_dir;
  auto manager = ckpt::CheckpointManager::Create(options);
  EXPECT_TRUE(manager.ok()) << manager.status();
  if (!manager.ok()) return {};
  auto bytes = storage->ReadFile((*manager)->CheckpointPath(iteration));
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? bytes.value() : std::string();
}

// Uninterrupted reference: train kEpochs, then persist the final state.
// Returns the final checkpoint's bytes.
std::string RunReference(TrainerOptions options, const Dataset& train,
                         const Dataset& test) {
  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  EXPECT_TRUE(trainer.ok()) << trainer.status();
  if (!trainer.ok()) return {};
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  if (!metrics.ok()) return {};
  EXPECT_TRUE((*trainer)->SaveDurableNow().ok());
  return CheckpointBytes(options.durable_checkpoint.save_dir,
                         kFinalIteration);
}

// Kill-and-restore: train with kill@<k> until the simulated crash, then
// restart from the newest durable checkpoint (fresh trainer, kill verb
// stripped) and finish. Returns the final checkpoint's bytes.
std::string RunKilledAndResumed(TrainerOptions options, const Dataset& train,
                                const Dataset& test, int64_t kill_at) {
  TrainerOptions killed = options;
  auto plan = fault::FaultPlan::Parse(StrCat("kill@", kill_at));
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return {};
  killed.fault_tolerance.plan = *plan;

  auto trainer = SyncTrainer::Create(MlpFactory(), killed);
  EXPECT_TRUE(trainer.ok()) << trainer.status();
  if (!trainer.ok()) return {};
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  EXPECT_FALSE(metrics.ok()) << "kill@" << kill_at << " did not fire";
  EXPECT_TRUE(fault::IsProcessKill(metrics.status())) << metrics.status();
  trainer->reset();  // the "crashed" process is gone; only disk survives

  // Restart: resume from disk if a durable checkpoint landed before the
  // kill, from scratch otherwise (a kill before the first save).
  auto manager = ckpt::CheckpointManager::Create(options.durable_checkpoint);
  EXPECT_TRUE(manager.ok()) << manager.status();
  if (!manager.ok()) return {};
  auto restored = (*manager)->RestoreLatest();
  StatusOr<std::unique_ptr<SyncTrainer>> resumed =
      InvalidArgumentError("unset");
  int epochs_left = kEpochs;
  if (restored.ok()) {
    epochs_left = kEpochs - restored->state.epochs_completed;
    resumed = SyncTrainer::Restore(MlpFactory(), options, restored->state);
  } else {
    EXPECT_EQ(restored.status().code(), StatusCode::kNotFound)
        << restored.status();
    resumed = SyncTrainer::Create(MlpFactory(), options);
  }
  EXPECT_TRUE(resumed.ok()) << resumed.status();
  if (!resumed.ok()) return {};
  auto finished = (*resumed)->Train(train, test, epochs_left);
  EXPECT_TRUE(finished.ok()) << finished.status();
  if (!finished.ok()) return {};
  EXPECT_TRUE((*resumed)->SaveDurableNow().ok());
  return CheckpointBytes(options.durable_checkpoint.save_dir,
                         kFinalIteration);
}

struct DurableChaosConfig {
  const char* name;
  CodecSpec codec;
  CommPrimitive primitive;
};

class DurableChaosTest : public ::testing::TestWithParam<DurableChaosConfig> {
};

// The headline guarantee, across fp32, QSGD-4, ECQ-4 (error feedback),
// and Top-K (sparse) over both fabrics: kill at iteration 3 (between
// durable saves), restore, finish — the final checkpoint is bit-equal to
// the uninterrupted run's.
TEST_P(DurableChaosTest, KillRestoreFinalCheckpointIsBitEqual) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);
  const DurableChaosConfig& config = GetParam();

  const std::string reference = RunReference(
      BaseOptions(config.codec, config.primitive,
                  StrCat("dckpt_ref_", config.name)),
      train, test);
  ASSERT_FALSE(reference.empty());

  const std::string resumed = RunKilledAndResumed(
      BaseOptions(config.codec, config.primitive,
                  StrCat("dckpt_kill_", config.name)),
      train, test, /*kill_at=*/3);
  EXPECT_EQ(resumed, reference)
      << "restore did not reproduce the uninterrupted run bit-for-bit";
}

INSTANTIATE_TEST_SUITE_P(
    CodecsAndFabrics, DurableChaosTest,
    ::testing::Values(
        DurableChaosConfig{"Fp32Mpi", FullPrecisionSpec(),
                           CommPrimitive::kMpi},
        DurableChaosConfig{"Fp32Nccl", FullPrecisionSpec(),
                           CommPrimitive::kNccl},
        DurableChaosConfig{"Qsgd4Mpi", QsgdSpec(4), CommPrimitive::kMpi},
        DurableChaosConfig{"Qsgd4Nccl", QsgdSpec(4), CommPrimitive::kNccl},
        DurableChaosConfig{"Ecq4Mpi", EcqSgdSpec(4), CommPrimitive::kMpi},
        DurableChaosConfig{"Ecq4Nccl", EcqSgdSpec(4), CommPrimitive::kNccl},
        DurableChaosConfig{"TopkMpi", TopKSpec(0.25), CommPrimitive::kMpi},
        DurableChaosConfig{"TopkNccl", TopKSpec(0.25),
                           CommPrimitive::kNccl}),
    [](const ::testing::TestParamInfo<DurableChaosConfig>& info) {
      return info.param.name;
    });

// Kill at EVERY iteration 1..8 (including 1, before any durable save has
// landed, and the save iterations themselves): restore always converges
// to the bit-identical final checkpoint. ECQ-4 keeps the error-feedback
// residuals and the aggregator's requantization state in play.
TEST(DurableChaosTest, KillAtAnyIterationRestoresBitEqual) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  const std::string reference = RunReference(
      BaseOptions(EcqSgdSpec(4), CommPrimitive::kMpi, "dckpt_any_ref"),
      train, test);
  ASSERT_FALSE(reference.empty());

  for (int64_t kill_at = 1; kill_at <= kFinalIteration; ++kill_at) {
    SCOPED_TRACE(kill_at);
    const std::string resumed = RunKilledAndResumed(
        BaseOptions(EcqSgdSpec(4), CommPrimitive::kMpi,
                    StrCat("dckpt_any_", kill_at)),
        train, test, kill_at);
    EXPECT_EQ(resumed, reference) << "kill@" << kill_at;
  }
}

// A torn final save is caught at restore time by the integrity words and
// the previous checkpoint loads instead; the restored trainer keeps
// training.
TEST(DurableChaosTest, TornWriteFallsBackToOlderCheckpointAndResumes) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options =
      BaseOptions(QsgdSpec(4), CommPrimitive::kMpi, "dckpt_torn");
  auto plan = fault::FaultPlan::Parse("torn@8");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;

  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  trainer->reset();

  auto manager =
      ckpt::CheckpointManager::Create(options.durable_checkpoint);
  ASSERT_TRUE(manager.ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 6)
      << "the torn iteration-8 checkpoint must never load";
  EXPECT_EQ(restored->fallbacks, 1);

  TrainerOptions clean =
      BaseOptions(QsgdSpec(4), CommPrimitive::kMpi, "dckpt_torn");
  auto resumed = SyncTrainer::Restore(MlpFactory(), clean, restored->state);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  auto finished = (*resumed)->Train(
      train, test, kEpochs - restored->state.epochs_completed);
  ASSERT_TRUE(finished.ok()) << finished.status();
}

// A full disk inside the retry budget is absorbed transparently (the
// manager re-attempts on the comm backoff schedule); beyond the budget
// the durable save — and with it the run — fails loudly rather than
// continuing without durability.
TEST(DurableChaosTest, EnospcWithinBudgetIsAbsorbed) {
  obs::MetricsRegistry::Global().set_enabled(true);
  const int64_t retries_before =
      obs::MetricsRegistry::Global().CounterValue("ckpt/retries");
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options =
      BaseOptions(QsgdSpec(4), CommPrimitive::kMpi, "dckpt_enospc_ok");
  auto plan = fault::FaultPlan::Parse("enospc@4x2");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.durable_checkpoint.retry.max_retries = 3;
  options.durable_checkpoint.retry.backoff_base_seconds = 0.0;

  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(
      obs::MetricsRegistry::Global().CounterValue("ckpt/retries") -
          retries_before,
      2);
  obs::MetricsRegistry::Global().set_enabled(false);

  auto manager =
      ckpt::CheckpointManager::Create(options.durable_checkpoint);
  ASSERT_TRUE(manager.ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.iteration, 8);
}

TEST(DurableChaosTest, EnospcBeyondBudgetFailsTheRun) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options =
      BaseOptions(QsgdSpec(4), CommPrimitive::kMpi, "dckpt_enospc_fail");
  auto plan = fault::FaultPlan::Parse("enospc@2x5");
  ASSERT_TRUE(plan.ok());
  options.fault_tolerance.plan = *plan;
  options.durable_checkpoint.retry.max_retries = 1;
  options.durable_checkpoint.retry.backoff_base_seconds = 0.0;

  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kUnavailable);
}

// Elastic restore: a checkpoint written by a 4-rank run reconstructs a
// trainer at 2 and at 8 ranks. The rescaled runs keep training (loss
// keeps improving, accuracy stays pinned above the floor) with the
// error-feedback residuals remapped rather than dropped.
TEST(DurableChaosTest, ElasticRestoreShrinksAndGrows) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options =
      BaseOptions(EcqSgdSpec(4), CommPrimitive::kMpi, "dckpt_elastic");
  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, kEpochs);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_TRUE((*trainer)->SaveDurableNow().ok());
  const double accuracy_at_save = metrics->back().test_accuracy;
  trainer->reset();

  auto manager =
      ckpt::CheckpointManager::Create(options.durable_checkpoint);
  ASSERT_TRUE(manager.ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->state.rank_count, 4);

  for (int new_ranks : {2, 8}) {
    SCOPED_TRACE(new_ranks);
    TrainerOptions rescaled = options;
    rescaled.num_gpus = new_ranks;
    rescaled.durable_checkpoint.save_dir = ckpt::JoinPath(
        ::testing::TempDir(), StrCat("dckpt_elastic_", new_ranks));
    auto resumed =
        SyncTrainer::Restore(MlpFactory(), rescaled, restored->state);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ((*resumed)->num_gpus(), new_ranks);
    auto more = (*resumed)->Train(train, test, 1);
    ASSERT_TRUE(more.ok()) << more.status();
    // Training continued from the restored parameters, not from scratch:
    // one extra epoch keeps the already-converged accuracy.
    EXPECT_GE(more->back().test_accuracy, accuracy_at_save - 0.05)
        << "rescaled restore lost the trained model";
  }
}

// Restoring into a trainer whose configuration contradicts the
// checkpoint (different codec, different seed) is refused before any
// state is mutated.
TEST(DurableChaosTest, MismatchedRestoreIsRefused) {
  const auto train = MakeImages(128);
  const auto test = MakeImages(64, 1 << 20);

  TrainerOptions options =
      BaseOptions(QsgdSpec(4), CommPrimitive::kMpi, "dckpt_mismatch");
  auto trainer = SyncTrainer::Create(MlpFactory(), options);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto metrics = (*trainer)->Train(train, test, 1);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_TRUE((*trainer)->SaveDurableNow().ok());
  auto manager =
      ckpt::CheckpointManager::Create(options.durable_checkpoint);
  ASSERT_TRUE(manager.ok());
  auto restored = (*manager)->RestoreLatest();
  ASSERT_TRUE(restored.ok()) << restored.status();

  TrainerOptions wrong_codec = options;
  wrong_codec.codec = FullPrecisionSpec();
  auto refused =
      SyncTrainer::Restore(MlpFactory(), wrong_codec, restored->state);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  TrainerOptions wrong_seed = options;
  wrong_seed.seed = 8;
  refused = SyncTrainer::Restore(MlpFactory(), wrong_seed, restored->state);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lpsgd
