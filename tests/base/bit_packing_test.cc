// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/bit_packing.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "base/rng.h"

namespace lpsgd {
namespace {

class BitPackerRoundtripTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackerRoundtripTest, RoundtripsRandomValues) {
  const int bits = GetParam();
  BitPacker packer(bits);
  Rng rng(1000 + bits);
  const uint32_t mask =
      bits == 32 ? 0xffffffffu : ((1u << bits) - 1u);

  for (int64_t count : {1, 2, 31, 32, 33, 100, 1000}) {
    std::vector<uint32_t> values(static_cast<size_t>(count));
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.NextUint64()) & mask;
    }
    std::vector<uint32_t> words(
        static_cast<size_t>(packer.WordCount(count)));
    packer.Pack(values.data(), count, words.data());

    std::vector<uint32_t> unpacked(static_cast<size_t>(count));
    packer.Unpack(words.data(), count, unpacked.data());
    EXPECT_EQ(values, unpacked) << "bits=" << bits << " count=" << count;

    for (int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(packer.Get(words.data(), i), values[static_cast<size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackerRoundtripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 15, 16, 32));

// The streaming writer/reader must produce and consume the exact
// BitPacker word layout — the codecs interleave them freely (fused encode
// writes with BitWriter, tests and tools still read with Get/Unpack).
class BitStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(BitStreamTest, WriterMatchesPackReaderMatchesUnpack) {
  const int bits = GetParam();
  BitPacker packer(bits);
  Rng rng(2000 + bits);
  const uint32_t mask = bits == 32 ? 0xffffffffu : ((1u << bits) - 1u);

  // Counts straddling word boundaries for every width, including ones that
  // leave a partial trailing word when bits does not divide 32.
  for (int64_t count : {1, 2, 7, 31, 32, 33, 63, 64, 65, 1000}) {
    std::vector<uint32_t> values(static_cast<size_t>(count));
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.NextUint64()) & mask;
    }
    const size_t words = static_cast<size_t>(packer.WordCount(count));

    std::vector<uint32_t> packed(words);
    packer.Pack(values.data(), count, packed.data());

    // Streamed words must be byte-identical to Pack's, including the
    // zero padding in a flushed partial word (stale fill exposes any
    // missed overwrite).
    std::vector<uint32_t> streamed(words, 0xdeadbeefu);
    BitWriter writer(streamed.data(), bits);
    for (int64_t i = 0; i < count; ++i) {
      writer.Put(values[static_cast<size_t>(i)]);
    }
    writer.Finish();
    writer.Finish();  // idempotent: a second flush must not emit a word
    EXPECT_EQ(streamed, packed) << "bits=" << bits << " count=" << count;

    BitReader reader(streamed.data(), bits);
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(reader.Next(), values[static_cast<size_t>(i)])
          << "bits=" << bits << " count=" << count << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitStreamTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 24,
                                           32));

TEST(BitStreamTest, ReaderOverEmptyStreamIsConstructible) {
  // Lazy word loads: constructing a reader must not dereference the words
  // pointer, so a zero-element stream over a null buffer is legal.
  BitReader reader(nullptr, 4);
  (void)reader;
}

TEST(BitPackerTest, WordCountMatchesCntkLayout) {
  // 32 one-bit values per unsigned int (Section 3.2.1).
  BitPacker one_bit(1);
  EXPECT_EQ(one_bit.WordCount(32), 1);
  EXPECT_EQ(one_bit.WordCount(33), 2);
  EXPECT_EQ(one_bit.WordCount(0), 0);

  BitPacker four_bits(4);
  EXPECT_EQ(four_bits.values_per_word(), 8);
  EXPECT_EQ(four_bits.WordCount(8), 1);
  EXPECT_EQ(four_bits.WordCount(9), 2);
}

TEST(BitPackerTest, PackClearsStaleWordContent) {
  BitPacker packer(8);
  std::vector<uint32_t> words(1, 0xffffffffu);
  const uint32_t values[] = {1, 2};
  packer.Pack(values, 2, words.data());
  EXPECT_EQ(packer.Get(words.data(), 0), 1u);
  EXPECT_EQ(packer.Get(words.data(), 1), 2u);
  // Unused high fields were zeroed, not left stale.
  EXPECT_EQ(words[0] >> 16, 0u);
}

TEST(IndexRunTest, IndexBitWidthIsMinimal) {
  EXPECT_EQ(IndexBitWidth(1), 1);
  EXPECT_EQ(IndexBitWidth(2), 1);
  EXPECT_EQ(IndexBitWidth(3), 2);
  EXPECT_EQ(IndexBitWidth(64), 6);
  EXPECT_EQ(IndexBitWidth(65), 7);
  EXPECT_EQ(IndexBitWidth(1000), 10);
  EXPECT_EQ(IndexBitWidth(1 << 20), 20);
}

TEST(IndexRunTest, RoundtripsSortedIndexRuns) {
  Rng rng(3000);
  for (int64_t n : {8, 64, 1000, 100000}) {
    for (int64_t k : {int64_t{1}, n / 4, n}) {
      if (k == 0) continue;
      // k distinct sorted indices in [0, n).
      std::vector<int64_t> indices;
      std::vector<bool> used(static_cast<size_t>(n), false);
      while (static_cast<int64_t>(indices.size()) < k) {
        const int64_t i =
            static_cast<int64_t>(rng.NextUint64(static_cast<uint64_t>(n)));
        if (!used[static_cast<size_t>(i)]) {
          used[static_cast<size_t>(i)] = true;
          indices.push_back(i);
        }
      }
      std::sort(indices.begin(), indices.end());

      std::vector<uint32_t> words(
          static_cast<size_t>(IndexRunWordCount(n, k)), 0xdeadbeefu);
      PackIndexRun(indices.data(), k, n, words.data());
      std::vector<uint32_t> unpacked(static_cast<size_t>(k));
      ASSERT_TRUE(UnpackIndexRun(words.data(), k, n, unpacked.data()))
          << "n=" << n << " k=" << k;
      for (int64_t i = 0; i < k; ++i) {
        EXPECT_EQ(unpacked[static_cast<size_t>(i)],
                  static_cast<uint32_t>(indices[static_cast<size_t>(i)]))
            << i;
      }
    }
  }
}

TEST(IndexRunTest, UnpackRejectsMalformedRuns) {
  const int64_t n = 100;
  const int64_t indices[] = {3, 10, 42, 99};
  std::vector<uint32_t> words(static_cast<size_t>(IndexRunWordCount(n, 4)));
  PackIndexRun(indices, 4, n, words.data());
  std::vector<uint32_t> out(4);
  ASSERT_TRUE(UnpackIndexRun(words.data(), 4, n, out.data()));

  // Duplicate (not strictly increasing).
  const int64_t dup[] = {3, 10, 10, 99};
  PackIndexRun(dup, 4, n, words.data());
  EXPECT_FALSE(UnpackIndexRun(words.data(), 4, n, out.data()));

  // Decreasing.
  const int64_t dec[] = {3, 42, 10, 99};
  PackIndexRun(dec, 4, n, words.data());
  EXPECT_FALSE(UnpackIndexRun(words.data(), 4, n, out.data()));

  // Out of range for a smaller element count: 99 needs 7 bits, and at
  // element_count 80 the same packed fields decode to indices >= 80.
  PackIndexRun(indices, 4, n, words.data());
  EXPECT_FALSE(UnpackIndexRun(words.data(), 4, 80, out.data()));
}

TEST(PackSignBitsTest, EncodesSignsIncludingZeroAsPositive) {
  const float values[] = {1.5f, -0.25f, 0.0f, -0.0f, 3.0f};
  std::vector<uint32_t> words;
  PackSignBits(values, 5, &words);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_TRUE(SignBitAt(words.data(), 0));
  EXPECT_FALSE(SignBitAt(words.data(), 1));
  EXPECT_TRUE(SignBitAt(words.data(), 2));  // +0 is non-negative
  EXPECT_TRUE(SignBitAt(words.data(), 3));  // IEEE: -0.0f >= 0.0f
  EXPECT_TRUE(SignBitAt(words.data(), 4));
}

TEST(PackSignBitsTest, CrossesWordBoundary) {
  std::vector<float> values(70, 1.0f);
  values[40] = -1.0f;
  values[69] = -1.0f;
  std::vector<uint32_t> words;
  PackSignBits(values.data(), 70, &words);
  ASSERT_EQ(words.size(), 3u);
  for (int i = 0; i < 70; ++i) {
    EXPECT_EQ(SignBitAt(words.data(), i), i != 40 && i != 69) << i;
  }
}

TEST(PackSignBitsTest, RawPointerOverloadMatchesVectorAndClearsStaleBits) {
  Rng rng(77);
  std::vector<float> values(70);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian());
  }
  std::vector<uint32_t> via_vector;
  PackSignBits(values.data(), 70, &via_vector);

  // Pre-fill with garbage: the raw overload promises fully-overwritten
  // words (the codecs reuse wire buffers across calls).
  std::vector<uint32_t> via_raw(3, 0xffffffffu);
  PackSignBits(values.data(), 70, via_raw.data());
  EXPECT_EQ(via_raw, via_vector);
}

}  // namespace
}  // namespace lpsgd
