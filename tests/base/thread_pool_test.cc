// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(64);
  ASSERT_TRUE(pool.ParallelFor(0, 64, [&](int64_t i) {
                    hits[static_cast<size_t>(i)].fetch_add(1);
                    return OkStatus();
                  })
                  .ok());
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, NonZeroBeginRange) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  ASSERT_TRUE(pool.ParallelFor(10, 20, [&](int64_t i) {
                    sum.fetch_add(i);
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, EmptyAndSingleRanges) {
  ThreadPool pool(4);
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(5, 5, [&](int64_t) {
                    ++calls;
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(pool.ParallelFor(7, 6, [&](int64_t) {
                    ++calls;
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
  // A single index runs inline on the calling thread: plain int is safe.
  EXPECT_TRUE(pool.ParallelFor(3, 4, [&](int64_t i) {
                    EXPECT_EQ(i, 3);
                    ++calls;
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(calls, 1);
}

// The result of a deterministic per-index computation must not depend on
// the worker count: every index writes its own slot.
TEST(ThreadPoolTest, ResultIndependentOfThreadCount) {
  constexpr int64_t kN = 257;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(kN, 0);
    EXPECT_TRUE(pool.ParallelFor(0, kN, [&](int64_t i) {
                      out[static_cast<size_t>(i)] =
                          static_cast<uint64_t>(i) * 0x9e3779b9ULL + 17;
                      return OkStatus();
                    })
                    .ok());
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, LowestObservedFailureWinsAndSkipsRemaining) {
  ThreadPool pool(1);  // serial: index 3 is observed before index 9
  std::vector<int> ran(16, 0);
  const Status status = pool.ParallelFor(0, 16, [&](int64_t i) -> Status {
    ran[static_cast<size_t>(i)] = 1;
    if (i == 3 || i == 9) {
      return InvalidArgumentError("boom");
    }
    return OkStatus();
  });
  EXPECT_FALSE(status.ok());
  // The serial inline path short-circuits: nothing after index 3 ran.
  EXPECT_EQ(ran[3], 1);
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 4);
}

TEST(ThreadPoolTest, StatusPropagatesFromWorkers) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    const Status status =
        pool.ParallelFor(0, 64, [&](int64_t i) -> Status {
          if (i % 5 == 0) {
            return InvalidArgumentError("multiple of five");
          }
          return OkStatus();
        });
    ASSERT_FALSE(status.ok());
  }
}

TEST(ThreadPoolTest, ExceptionRethrownOnSubmitter) {
  ThreadPool pool(4);
  EXPECT_THROW(
      {
        (void)pool.ParallelFor(0, 32, [&](int64_t i) -> Status {
          if (i == 13) throw std::runtime_error("kaboom");
          return OkStatus();
        });
      },
      std::runtime_error);
  // The pool stays usable after an exception drained.
  std::atomic<int> hits{0};
  EXPECT_TRUE(pool.ParallelFor(0, 8, [&](int64_t) {
                    hits.fetch_add(1);
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(hits.load(), 8);
}

// Nested submission is disallowed; inner loops run inline instead of
// deadlocking. Stress it from every outer index.
TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(8 * 16);
  ASSERT_TRUE(pool.ParallelFor(0, 8, [&](int64_t outer) {
                    EXPECT_TRUE(ThreadPool::InPoolTask());
                    return pool.ParallelFor(0, 16, [&](int64_t inner) {
                      inner_hits[static_cast<size_t>(outer * 16 + inner)]
                          .fetch_add(1);
                      return OkStatus();
                    });
                  })
                  .ok());
  for (const auto& hit : inner_hits) EXPECT_EQ(hit.load(), 1);
  EXPECT_FALSE(ThreadPool::InPoolTask());
}

TEST(ThreadPoolTest, ManyConsecutiveBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ASSERT_TRUE(pool.ParallelFor(0, 16, [&](int64_t i) {
                      sum.fetch_add(i + round);
                      return OkStatus();
                    })
                    .ok());
    ASSERT_EQ(sum.load(), 120 + 16 * round);
  }
}

TEST(ThreadPoolTest, PoolMetricsRecorded) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  registry.Reset();
  {
    ThreadPool pool(4);
    EXPECT_TRUE(pool.ParallelFor(0, 32, [&](int64_t) {
                      return OkStatus();
                    })
                    .ok());
  }
  EXPECT_EQ(registry.CounterValue("pool/tasks"), 32);
  EXPECT_EQ(registry.CounterValue("pool/parallel_for_calls"), 1);
  registry.Reset();
  registry.set_enabled(was_enabled);
}

TEST(ExecutionContextTest, SerialRunsInlineInOrder) {
  const ExecutionContext context = ExecutionContext::Serial();
  EXPECT_EQ(context.threads(), 1);
  EXPECT_FALSE(context.parallel());
  EXPECT_EQ(context.Description(), "serial (1 thread)");
  std::vector<int64_t> order;
  ASSERT_TRUE(context.ParallelFor(0, 5, [&](int64_t i) {
                     order.push_back(i);
                     return OkStatus();
                   })
                  .ok());
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutionContextTest, WithThreadsMaterializesAPool) {
  const ExecutionContext context = ExecutionContext::WithThreads(4);
  ASSERT_NE(context.pool, nullptr);
  EXPECT_EQ(context.threads(), 4);
  EXPECT_TRUE(context.parallel());
  EXPECT_EQ(context.Description(), "parallel (4 threads)");
  std::atomic<int> hits{0};
  ASSERT_TRUE(context.ParallelFor(0, 32, [&](int64_t) {
                     hits.fetch_add(1);
                     return OkStatus();
                   })
                  .ok());
  EXPECT_EQ(hits.load(), 32);
}

TEST(ExecutionContextTest, WithOneThreadStaysSerial) {
  const ExecutionContext context = ExecutionContext::WithThreads(1);
  EXPECT_EQ(context.pool, nullptr);
  EXPECT_EQ(context.threads(), 1);
  EXPECT_FALSE(context.parallel());
}

TEST(ExecutionContextTest, MaterializedSharesThePool) {
  ExecutionContext context;
  context.intra_op_threads = 3;
  EXPECT_EQ(context.pool, nullptr);
  EXPECT_EQ(context.requested_threads(), 3);
  const ExecutionContext materialized = context.Materialized();
  ASSERT_NE(materialized.pool, nullptr);
  EXPECT_EQ(materialized.threads(), 3);
  // Copies alias the same pool; re-materializing is a no-op.
  const ExecutionContext again = materialized.Materialized();
  EXPECT_EQ(again.pool.get(), materialized.pool.get());
}

TEST(ExecutionContextTest, AutoRequestsHardwareConcurrency) {
  ExecutionContext context;  // intra_op_threads == 0
  EXPECT_GE(context.requested_threads(), 1);
  EXPECT_EQ(context.threads(), 1);  // unmaterialized => inline
}

TEST(ExecutionContextTest, StatusPropagatesThroughContext) {
  const ExecutionContext context = ExecutionContext::WithThreads(4);
  const Status status =
      context.ParallelFor(0, 16, [&](int64_t i) -> Status {
        if (i == 7) return FailedPreconditionError("nope");
        return OkStatus();
      });
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace lpsgd
