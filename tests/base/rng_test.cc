// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedUintRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUintCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.NextInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(HashCounterTest, DeterministicAndSensitiveToBothArgs) {
  EXPECT_EQ(HashCounter(1, 2), HashCounter(1, 2));
  EXPECT_NE(HashCounter(1, 2), HashCounter(1, 3));
  EXPECT_NE(HashCounter(1, 2), HashCounter(2, 2));
}

TEST(HashCounterTest, ConsecutiveCountersLookUniform) {
  // Crude avalanche check: average bit count of 64-bit hashes should be
  // close to 32.
  double total_bits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    total_bits += __builtin_popcountll(HashCounter(99, i));
  }
  EXPECT_NEAR(total_bits / n, 32.0, 0.5);
}

TEST(CounterRngTest, AddressableAndDeterministic) {
  CounterRng a(7, 1), b(7, 1), c(7, 2);
  EXPECT_EQ(a.UniformAt(5), b.UniformAt(5));
  EXPECT_NE(a.UniformAt(5), c.UniformAt(5));
  EXPECT_NE(a.UniformAt(5), a.UniformAt(6));
}

TEST(CounterRngTest, UniformInUnitInterval) {
  CounterRng stream(3, 0);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = stream.UniformAt(i);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace lpsgd
