// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/table_printer.h"

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos) << out;
}

TEST(TablePrinterTest, SeparatorProducesRule) {
  TablePrinter table({"A"});
  table.AddRow({"x"});
  table.AddSeparator();
  table.AddRow({"y"});
  const std::string out = table.ToString();
  // Header rule + separator + closing rule = at least 4 horizontal rules.
  int rules = 0;
  for (size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4);
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"OnlyHeader"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("OnlyHeader"), std::string::npos);
}

}  // namespace
}  // namespace lpsgd
