// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/logging.h"

#include <string>

#include "gtest/gtest.h"

namespace lpsgd {
namespace {

// Regression test for the -Werror=format-truncation finding: the timestamp
// buffer in logging.cc was sized for the common case only, so a hostile
// tm_year could have truncated the ISO-8601 prefix mid-field. Assert the
// emitted line carries a full, untruncated "YYYY-MM-DDTHH:MM:SSZ" stamp.
TEST(LoggingTest, LogLineCarriesFullIsoTimestamp) {
  testing::internal::CaptureStderr();
  LOG(Warning) << "timestamp probe";
  const std::string line = testing::internal::GetCapturedStderr();

  // "W 2026-08-05T14:03:27Z logging_test.cc:NN] timestamp probe"
  ASSERT_GE(line.size(), 2u + 20u);
  EXPECT_EQ(line[0], 'W');
  EXPECT_EQ(line[1], ' ');
  const std::string stamp = line.substr(2, 20);
  static const char kPattern[] = "dddd-dd-ddTdd:dd:ddZ";
  for (size_t i = 0; i < sizeof(kPattern) - 1; ++i) {
    if (kPattern[i] == 'd') {
      EXPECT_TRUE(stamp[i] >= '0' && stamp[i] <= '9')
          << "non-digit at stamp[" << i << "] in: " << line;
    } else {
      EXPECT_EQ(stamp[i], kPattern[i]) << "in: " << line;
    }
  }
  EXPECT_NE(line.find("timestamp probe"), std::string::npos);
}

// The placeholder returned when gmtime_r fails must not contain the "??-"
// character sequence: it forms a trigraph, which -Werror=trigraphs rejects
// and -trigraphs builds would silently rewrite to '~'. The live code path
// never returns the placeholder, so this documents the constraint at the
// one place a regression would reappear: the literal itself.
TEST(LoggingTest, FallbackPlaceholderAvoidsTrigraphs) {
  const std::string placeholder = "?\?\?\?-?\?-?\?T?\?:?\?:?\?Z";
  EXPECT_EQ(placeholder, std::string("????") + "-??" + "-??" + "T??" +
                             ":??" + ":??" + "Z");
  EXPECT_EQ(placeholder.find('~'), std::string::npos);
}

}  // namespace
}  // namespace lpsgd
