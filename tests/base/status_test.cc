// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/status.h"

#include <gtest/gtest.h>

#include "base/statusor.h"

namespace lpsgd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bits");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad bits");
}

TEST(StatusTest, FactoryFunctionsProduceExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

Status FailsWhenNegative(int value) {
  if (value < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status UsesReturnIfError(int value) {
  LPSGD_RETURN_IF_ERROR(FailsWhenNegative(value));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int value) {
  if (value <= 0) return OutOfRangeError("not positive");
  return value;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> DoublePositive(int value) {
  LPSGD_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  StatusOr<int> ok = DoublePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 5);
}

}  // namespace
}  // namespace lpsgd
