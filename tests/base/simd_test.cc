// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Runtime SIMD dispatch (base/simd): ISA naming/parsing, host detection,
// the scoped force helper, and bit-identity of the elementwise kernel
// tables against the scalar golden reference across odd lengths.
#include "base/simd/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd/elementwise.h"

namespace lpsgd {
namespace {

TEST(SimdIsaTest, NamesRoundTripThroughParse) {
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    const auto parsed = ParseSimdMode(SimdIsaName(isa));
    if (SimdIsaSupported(isa)) {
      ASSERT_TRUE(parsed.ok()) << SimdIsaName(isa);
      EXPECT_EQ(*parsed, isa);
    } else {
      // Named but unusable on this host: FailedPrecondition, so a CLI can
      // distinguish "typo" from "wrong machine".
      ASSERT_FALSE(parsed.ok()) << SimdIsaName(isa);
      EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
    }
  }
}

TEST(SimdIsaTest, AutoIsDetectionAndBadNamesAreInvalidArgument) {
  // The same parser backs --simd= and the LPSGD_SIMD env override.
  const auto auto_mode = ParseSimdMode("auto");
  ASSERT_TRUE(auto_mode.ok());
  EXPECT_EQ(*auto_mode, DetectSimdIsa());
  for (const char* bad : {"", "sse2", "avx512", "Scalar", "AUTO"}) {
    const auto parsed = ParseSimdMode(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(SimdIsaTest, ScalarIsAlwaysSupportedAndDetectionIsSupported) {
  EXPECT_TRUE(SimdIsaSupported(SimdIsa::kScalar));
  EXPECT_TRUE(SimdIsaSupported(DetectSimdIsa()));
#if defined(__x86_64__)
  EXPECT_FALSE(SimdIsaSupported(SimdIsa::kNeon));
#endif
#if defined(__aarch64__)
  EXPECT_TRUE(SimdIsaSupported(SimdIsa::kNeon));
  EXPECT_FALSE(SimdIsaSupported(SimdIsa::kAvx2));
#endif
}

TEST(SimdIsaTest, ScopedForceSwapsAndRestores) {
  const SimdIsa before = ActiveSimdIsa();
  {
    ScopedSimdIsa force(SimdIsa::kScalar);
    EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
    {
      ScopedSimdIsa nested(SimdIsa::kAvx2);
      EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kAvx2);
    }
    EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
  }
  EXPECT_EQ(ActiveSimdIsa(), before);
}

TEST(SimdIsaTest, SetSimdModeInstallsParsedMode) {
  const SimdIsa before = ActiveSimdIsa();
  ASSERT_TRUE(SetSimdMode("scalar").ok());
  EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);
  EXPECT_FALSE(SetSimdMode("bogus").ok());
  EXPECT_EQ(ActiveSimdIsa(), SimdIsa::kScalar);  // failed set is a no-op
  ASSERT_TRUE(SetSimdMode("auto").ok());
  EXPECT_EQ(ActiveSimdIsa(), DetectSimdIsa());
  simd_internal::ExchangeActiveSimdIsa(before);
}

TEST(SimdIsaTest, UnsupportedForcedIsaResolvesToScalarKernels) {
  // Forcing an ISA the host lacks must fall back to the scalar table, not
  // crash — ScopedSimdIsa is allowed to install anything.
  const SimdIsa missing =
      SimdIsaSupported(SimdIsa::kAvx2) ? SimdIsa::kNeon : SimdIsa::kAvx2;
  ScopedSimdIsa force(missing);
  const ElementwiseKernels& forced = ActiveElementwiseKernels();
  ScopedSimdIsa scalar(SimdIsa::kScalar);
  EXPECT_EQ(&forced, &ActiveElementwiseKernels());
}

// --- Elementwise kernel bit-identity: every slot of every dispatchable
// table must match the scalar golden reference bit for bit, including odd
// lengths (scalar tails) and the empty span. -------------------------------

std::vector<float> TestVector(int64_t n, uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  if (n > 0) v[0] = -0.0f;  // sign-of-zero must not change any kernel
  if (n > 3) v[3] = 0.0f;
  return v;
}

const int64_t kLengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                            31, 32, 33, 63, 64, 65, 100, 1000, 1025};

TEST(ElementwiseKernelsTest, AllIsasMatchScalarBitForBit) {
  for (const SimdIsa isa : {SimdIsa::kAvx2, SimdIsa::kNeon}) {
    const ElementwiseKernels& vec = ElementwiseKernelsForIsa(isa);
    const ElementwiseKernels& ref =
        ElementwiseKernelsForIsa(SimdIsa::kScalar);
    for (const int64_t n : kLengths) {
      SCOPED_TRACE(testing::Message() << SimdIsaName(isa) << " n=" << n);
      const std::vector<float> a = TestVector(n, 0x5eedULL);
      const std::vector<float> b = TestVector(n, 0xfeedULL);

      EXPECT_EQ(ref.max_abs_f32(a.data(), n), vec.max_abs_f32(a.data(), n));

      std::vector<float> out_ref(static_cast<size_t>(n)),
          out_vec(static_cast<size_t>(n));
      ref.abs_f32(a.data(), out_ref.data(), n);
      vec.abs_f32(a.data(), out_vec.data(), n);
      EXPECT_EQ(0, std::memcmp(out_ref.data(), out_vec.data(),
                               static_cast<size_t>(n) * sizeof(float)));

      ref.add_f32(a.data(), b.data(), out_ref.data(), n);
      vec.add_f32(a.data(), b.data(), out_vec.data(), n);
      EXPECT_EQ(0, std::memcmp(out_ref.data(), out_vec.data(),
                               static_cast<size_t>(n) * sizeof(float)));

      std::vector<float> acc_ref = a, acc_vec = a;
      ref.add_assign_f32(acc_ref.data(), b.data(), n);
      vec.add_assign_f32(acc_vec.data(), b.data(), n);
      EXPECT_EQ(0, std::memcmp(acc_ref.data(), acc_vec.data(),
                               static_cast<size_t>(n) * sizeof(float)));

      std::vector<double> sum_ref(static_cast<size_t>(n), 0.25),
          sum_vec(static_cast<size_t>(n), 0.25);
      ref.accumulate_f64(sum_ref.data(), a.data(), n);
      vec.accumulate_f64(sum_vec.data(), a.data(), n);
      EXPECT_EQ(0, std::memcmp(sum_ref.data(), sum_vec.data(),
                               static_cast<size_t>(n) * sizeof(double)));

      ref.store_f64_as_f32(sum_ref.data(), out_ref.data(), n);
      vec.store_f64_as_f32(sum_vec.data(), out_vec.data(), n);
      EXPECT_EQ(0, std::memcmp(out_ref.data(), out_vec.data(),
                               static_cast<size_t>(n) * sizeof(float)));
    }
  }
}

}  // namespace
}  // namespace lpsgd
