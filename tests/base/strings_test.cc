// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/strings.h"

#include <gtest/gtest.h>

namespace lpsgd {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(42), "42");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"one"}, ", "), "one");
  EXPECT_EQ(StrJoin({}, ", "), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.005, 1), "-1.0");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(248.0 * 1024 * 1024), "248.0 MB");
}

TEST(HumanSecondsTest, PicksUnits) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(HumanSeconds(0.25), "250.0 ms");
  EXPECT_EQ(HumanSeconds(2.0), "2.00 s");
  EXPECT_EQ(HumanSeconds(600.0), "10.0 min");
  EXPECT_EQ(HumanSeconds(7200.0), "2.00 h");
}

}  // namespace
}  // namespace lpsgd
