// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CI performance-regression gate over codec micro-benchmarks and profiler
// breakdowns (DESIGN.md "Profiling and attribution").
//
//   bench_gate --baseline bench/baselines/BENCH_codecs.json \
//              --candidate /tmp/candidate.json \
//              [--reference BM_EncodeFullPrecision/786432] \
//              [--tolerance 0.25] [--share_tolerance 0.10] \
//              [--report_out gate.json]
//
// Exit status: 0 when every compared entry is within tolerance, 1 when
// anything regressed or vanished, 2 on usage/parse errors. With
// --reference, scores are normalized by that benchmark before comparison
// (relative codec cost — stable across machines of different speed);
// without it raw items_per_second are compared. Profile documents
// (kind == "profile") compare per-phase wall shares instead; a phase
// growing by more than --share_tolerance share points fails the gate.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/bench_gate.h"

int main(int argc, char** argv) {
  using namespace lpsgd;  // NOLINT(build/namespaces)
  std::string baseline_path, candidate_path, report_out;
  tools::BenchGateOptions options;
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << flag << "\n";
      return 2;
    }
    const std::string value = argv[i + 1];
    if (flag == "--baseline") {
      baseline_path = value;
    } else if (flag == "--candidate") {
      candidate_path = value;
    } else if (flag == "--reference") {
      options.reference = value;
    } else if (flag == "--tolerance") {
      options.tolerance = std::atof(value.c_str());
    } else if (flag == "--share_tolerance") {
      options.share_tolerance = std::atof(value.c_str());
    } else if (flag == "--report_out") {
      report_out = value;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::cerr << "usage: bench_gate --baseline <json> --candidate <json>"
                 " [--reference <benchmark>] [--tolerance F]"
                 " [--share_tolerance F] [--report_out <json>]\n";
    return 2;
  }

  auto result = tools::CompareBenchmarkFiles(baseline_path, candidate_path,
                                             options);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 2;
  }

  result->PrintTable(std::cout);
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot write " << report_out << "\n";
      return 2;
    }
    out << result->ToJson().Dump(2) << "\n";
  }
  if (!result->ok()) {
    std::cerr << "bench_gate: " << result->regressions()
              << " regression(s), " << result->missing.size()
              << " missing entr(ies)\n";
    return 1;
  }
  std::cout << "bench_gate: " << result->findings.size()
            << " entries within tolerance\n";
  return 0;
}
