// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/bench_gate.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/status.h"
#include "base/strings.h"
#include "base/table_printer.h"

namespace lpsgd {
namespace tools {
namespace {

StatusOr<obs::JsonValue> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError(StrCat("cannot open ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto doc = obs::JsonValue::Parse(buffer.str());
  if (!doc.ok()) {
    return Status(doc.status().code(),
                  StrCat(path, ": ", doc.status().message()));
  }
  return doc;
}

bool IsProfileDoc(const obs::JsonValue& doc) {
  return doc.kind() == obs::JsonValue::Kind::kObject && doc.Has("kind") &&
         doc.At("kind").AsString() == "profile";
}

bool IsBenchmarkDoc(const obs::JsonValue& doc) {
  return doc.kind() == obs::JsonValue::Kind::kObject &&
         doc.Has("benchmarks");
}

// Divides every score by the reference benchmark's, so the map measures
// cost relative to the same document's memcpy-like anchor.
Status Normalize(std::map<std::string, double>* scores,
                 const std::string& reference) {
  auto it = scores->find(reference);
  if (it == scores->end()) {
    return NotFoundError(
        StrCat("reference benchmark \"", reference, "\" not in document"));
  }
  const double anchor = it->second;
  if (!(anchor > 0.0)) {
    return FailedPreconditionError(
        StrCat("reference benchmark \"", reference, "\" has score ",
               FormatDouble(anchor, 6)));
  }
  for (auto& [name, score] : *scores) score /= anchor;
  return OkStatus();
}

}  // namespace

StatusOr<std::map<std::string, double>> BenchmarkScores(
    const obs::JsonValue& doc) {
  if (!IsBenchmarkDoc(doc)) {
    return InvalidArgumentError(
        "not a google-benchmark JSON document (no \"benchmarks\" array)");
  }
  std::map<std::string, double> scores;
  for (const obs::JsonValue& bench : doc.At("benchmarks").AsArray()) {
    if (!bench.Has("name") || !bench.Has("items_per_second")) continue;
    // Skip aggregate rows (mean/median/stddev repeats of the same name).
    if (bench.Has("run_type") && bench.At("run_type").AsString() != "iteration") {
      continue;
    }
    scores[bench.At("name").AsString()] =
        bench.At("items_per_second").AsDouble();
  }
  if (scores.empty()) {
    return FailedPreconditionError(
        "benchmark document has no items_per_second entries");
  }
  return scores;
}

StatusOr<std::map<std::string, double>> ProfileShares(
    const obs::JsonValue& doc) {
  if (!IsProfileDoc(doc)) {
    return InvalidArgumentError(
        "not a profiler JSON document (kind != \"profile\")");
  }
  if (!doc.Has("totals")) {
    return FailedPreconditionError("profile document has no totals");
  }
  const obs::JsonValue& phases = doc.At("totals").At("phases");
  std::map<std::string, double> shares;
  for (const auto& [name, entry] : phases.AsObject()) {
    const double share = entry.At("wall_share").AsDouble();
    if (share > 0.0) shares[name] = share;
  }
  if (shares.empty()) {
    return FailedPreconditionError("profile totals have no nonzero phases");
  }
  return shares;
}

StatusOr<BenchGateResult> CompareBenchmarks(const obs::JsonValue& baseline,
                                            const obs::JsonValue& candidate,
                                            const BenchGateOptions& options) {
  if (!(options.tolerance >= 0.0) || !(options.share_tolerance >= 0.0)) {
    return InvalidArgumentError("tolerances must be >= 0");
  }
  const bool profile = IsProfileDoc(baseline);
  if (profile != IsProfileDoc(candidate)) {
    return InvalidArgumentError(
        "baseline and candidate documents have different kinds");
  }

  BenchGateResult result;
  std::map<std::string, double> base, cand;
  if (profile) {
    result.kind = "profile";
    LPSGD_ASSIGN_OR_RETURN(base, ProfileShares(baseline));
    LPSGD_ASSIGN_OR_RETURN(cand, ProfileShares(candidate));
  } else {
    result.kind = "benchmark";
    LPSGD_ASSIGN_OR_RETURN(base, BenchmarkScores(baseline));
    LPSGD_ASSIGN_OR_RETURN(cand, BenchmarkScores(candidate));
    if (!options.reference.empty()) {
      result.normalized = true;
      LPSGD_RETURN_IF_ERROR(Normalize(&base, options.reference));
      LPSGD_RETURN_IF_ERROR(Normalize(&cand, options.reference));
    }
  }

  for (const auto& [name, base_value] : base) {
    auto it = cand.find(name);
    if (it == cand.end()) {
      // A phase absent from a candidate profile just means no time landed
      // there (e.g. no retries this run) — that is an improvement, not a
      // missing measurement. A vanished benchmark is a coverage hole.
      if (!profile) result.missing.push_back(name);
      continue;
    }
    BenchGateFinding finding;
    finding.name = name;
    finding.baseline = base_value;
    finding.candidate = it->second;
    if (profile) {
      // Shares: a phase swallowing more of the step than before (beyond
      // tolerance share points) is the regression.
      finding.change = -(it->second - base_value);
      finding.regressed =
          it->second - base_value > options.share_tolerance;
    } else {
      finding.change =
          base_value > 0.0 ? (it->second - base_value) / base_value : 0.0;
      finding.regressed = finding.change < -options.tolerance;
    }
    result.findings.push_back(std::move(finding));
  }
  return result;
}

StatusOr<BenchGateResult> CompareBenchmarkFiles(
    const std::string& baseline_path, const std::string& candidate_path,
    const BenchGateOptions& options) {
  LPSGD_ASSIGN_OR_RETURN(obs::JsonValue baseline, ParseFile(baseline_path));
  LPSGD_ASSIGN_OR_RETURN(obs::JsonValue candidate,
                         ParseFile(candidate_path));
  return CompareBenchmarks(baseline, candidate, options);
}

bool BenchGateResult::ok() const {
  return regressions() == 0 && missing.empty();
}

int BenchGateResult::regressions() const {
  int count = 0;
  for (const BenchGateFinding& finding : findings) {
    if (finding.regressed) ++count;
  }
  return count;
}

obs::JsonValue BenchGateResult::ToJson() const {
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("schema_version", int64_t{1});
  root.Set("kind", "bench_gate");
  root.Set("compared_kind", kind);
  root.Set("normalized", normalized);
  root.Set("compared", static_cast<int64_t>(findings.size()));
  root.Set("regressions", int64_t{regressions()});
  root.Set("ok", ok());
  obs::JsonValue entries = obs::JsonValue::Array();
  for (const BenchGateFinding& finding : findings) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("name", finding.name);
    entry.Set("baseline", finding.baseline);
    entry.Set("candidate", finding.candidate);
    entry.Set("change", finding.change);
    entry.Set("regressed", finding.regressed);
    entries.Append(std::move(entry));
  }
  root.Set("findings", std::move(entries));
  obs::JsonValue gone = obs::JsonValue::Array();
  for (const std::string& name : missing) gone.Append(name);
  root.Set("missing", std::move(gone));
  return root;
}

void BenchGateResult::PrintTable(std::ostream& os) const {
  TablePrinter table({kind == "profile" ? "Phase" : "Benchmark",
                      "Baseline", "Candidate", "Change", "Verdict"});
  for (const BenchGateFinding& finding : findings) {
    table.AddRow({finding.name, FormatDouble(finding.baseline, 4),
                  FormatDouble(finding.candidate, 4),
                  StrCat(finding.change >= 0.0 ? "+" : "",
                         FormatDouble(finding.change * 100.0, 1), "%"),
                  finding.regressed ? "REGRESSED" : "ok"});
  }
  for (const std::string& name : missing) {
    table.AddRow({name, "-", "-", "-", "MISSING"});
  }
  table.Print(os);
}

}  // namespace tools
}  // namespace lpsgd
