// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Performance-regression gate (DESIGN.md "Profiling and attribution"): the
// comparison engine behind tools/obs/bench_gate. It diffs a committed
// baseline against a fresh candidate and fails when performance regressed
// beyond tolerance. Two document kinds are understood:
//
//   - google-benchmark JSON (--benchmark_format=json): per-benchmark
//     items_per_second throughput. In normalized mode every score is first
//     divided by a reference benchmark's score from the same document, so
//     the comparison measures relative codec cost and survives moving the
//     baseline between machines of different absolute speed.
//   - profiler JSON (obs::Profiler::WriteFile, kind == "profile"): the
//     per-phase wall shares of the run's totals, compared in absolute
//     share points (shares are already machine-normalized).
//
// The kind is auto-detected per file; baseline and candidate must match.
#ifndef LPSGD_TOOLS_OBS_BENCH_GATE_H_
#define LPSGD_TOOLS_OBS_BENCH_GATE_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "obs/json.h"

namespace lpsgd {
namespace tools {

struct BenchGateOptions {
  // Maximum tolerated fractional throughput drop per benchmark: with 0.25,
  // a candidate below 75% of the baseline score fails the gate.
  double tolerance = 0.25;
  // Benchmark whose score normalizes every other score in its document
  // ("name/arg" form, e.g. "BM_EncodeFullPrecision/786432"). Empty =
  // absolute mode (raw items_per_second, only meaningful on one machine).
  std::string reference;
  // Maximum tolerated absolute increase in a phase's wall share when
  // comparing profile documents (0.10 = ten share points).
  double share_tolerance = 0.10;
};

// One compared entry (a benchmark or a profiler phase).
struct BenchGateFinding {
  std::string name;
  double baseline = 0.0;   // normalized score, or phase share
  double candidate = 0.0;
  // Fractional change, sign-adjusted so negative is always worse: for
  // throughput (candidate - baseline) / baseline; for shares the negated
  // share-point increase.
  double change = 0.0;
  bool regressed = false;
};

struct BenchGateResult {
  // "benchmark" or "profile".
  std::string kind;
  bool normalized = false;
  std::vector<BenchGateFinding> findings;
  // Baseline entries absent from the candidate (always a failure: a
  // vanished benchmark cannot certify anything).
  std::vector<std::string> missing;

  bool ok() const;
  int regressions() const;
  // {schema_version, kind: "bench_gate", compared, regressions, ok,
  //  findings: [{name, baseline, candidate, change, regressed}],
  //  missing: [...]}.
  obs::JsonValue ToJson() const;
  void PrintTable(std::ostream& os) const;
};

// Extracts name -> items_per_second from a google-benchmark JSON document.
// Entries without items_per_second (e.g. aggregate rows) are skipped.
[[nodiscard]] StatusOr<std::map<std::string, double>> BenchmarkScores(
    const obs::JsonValue& doc);

// Extracts phase -> wall share of the attributed total from a profiler
// JSON document (kind == "profile"). Phases with zero time are skipped.
[[nodiscard]] StatusOr<std::map<std::string, double>> ProfileShares(
    const obs::JsonValue& doc);

// Compares two parsed documents of the same (auto-detected) kind.
[[nodiscard]] StatusOr<BenchGateResult> CompareBenchmarks(
    const obs::JsonValue& baseline, const obs::JsonValue& candidate,
    const BenchGateOptions& options);

// File front-end: reads, parses, and compares.
[[nodiscard]] StatusOr<BenchGateResult> CompareBenchmarkFiles(
    const std::string& baseline_path, const std::string& candidate_path,
    const BenchGateOptions& options);

}  // namespace tools
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_OBS_BENCH_GATE_H_
