// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// lpsgd_lint: the repo's compiled lint tool. It mechanically enforces the
// invariants that the compiler alone cannot see (DESIGN.md "Static analysis
// & enforced invariants"):
//
//  * hot-path-alloc      — no allocation inside an LPSGD_HOT_PATH region:
//                          `new`, malloc/calloc/realloc, container growth
//                          (.resize/.push_back/.emplace_back/.reserve/
//                          .assign/.insert), and by-value std::vector
//                          declarations (pointers/references are fine).
//                          LPSGD_HOT_PATH marks the function definitions on
//                          the zero-allocation steady-state exchange path:
//                          codec Encode/Decode workspace overloads,
//                          BitWriter/BitReader, and the aggregators'
//                          per-iteration exchange lambdas.
//  * banned-include      — <iostream> in src/ library code (it drags in
//                          static iostream initializers; use base/logging.h).
//  * banned-function     — rand(), strcpy(), sprintf() anywhere in src/ or
//                          tools/ (non-deterministic seeding / unbounded
//                          writes).
//  * annotation-typo     — an identifier that looks like one of the
//                          base/thread_annotations.h macros but is not an
//                          exact match (a typo'd annotation silently
//                          disables the Clang analysis, so it must be a
//                          lint error, not a no-op).
//  * missing-hot-path    — tree-level coverage: the files known to carry
//                          the steady-state exchange path must contain at
//                          least their required number of LPSGD_HOT_PATH
//                          markers, so the alloc rule cannot be silently
//                          disabled by deleting a marker.
//  * cold-path-marker    — the inverse: directories that are cold-path by
//                          design (src/ckpt/ — durable checkpoint I/O runs
//                          between iterations, never inside an exchange)
//                          must stay LPSGD_HOT_PATH-free. A marker there
//                          would falsely advertise steady-state perf
//                          guarantees and drag fsync-adjacent code under
//                          the zero-allocation rule it cannot meet.
//  * simd-include-confined / simd-hot-path — raw vector intrinsics are
//                          confined to the per-ISA kernel TUs (basename
//                          *_simd.cc) and the .inc lane-helper fragments
//                          they textually include; every `_mm*` intrinsic
//                          call site must sit inside an LPSGD_HOT_PATH
//                          body, so the zero-allocation rule covers every
//                          vectorized kernel.
//  * missing-include-guard / header-not-self-contained — header hygiene:
//                          every src/**/*.h has an include guard and
//                          compiles on its own (verified by generating one
//                          translation unit per header and syntax-checking
//                          it).
//
// Suppressions: a comment containing `lpsgd-lint: allow(<rule>)` disables
// `<rule>` on its own line and on the immediately following line. Every
// suppression is expected to carry a justification in the same comment.
//
// All text rules operate on a comment- and string-stripped copy of the
// file, so tokens inside literals or documentation never trip a rule (the
// suppression scan runs on the original text, since suppressions live in
// comments).
#ifndef LPSGD_TOOLS_LINT_LPSGD_LINT_H_
#define LPSGD_TOOLS_LINT_LPSGD_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace lpsgd {
namespace lint {

// One finding. `rule` is the stable machine name used both in output and in
// `lpsgd-lint: allow(<rule>)` suppression comments.
struct LintIssue {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  // "file:line: [rule] message" — the format CI surfaces and tests match.
  std::string ToString() const;
};

struct LintOptions {
  bool hot_path_allocations = true;
  bool banned_includes = true;
  bool banned_functions = true;
  bool annotation_typos = true;
  // simd-include-confined / simd-hot-path: intrinsics headers
  // (<immintrin.h>, <arm_neon.h>) and .inc fragments only in *_simd.cc
  // TUs; `_mm*` intrinsics only inside LPSGD_HOT_PATH bodies there.
  bool simd_confinement = true;
  // Tree-level only: verify the required LPSGD_HOT_PATH marker coverage
  // (see RequiredHotPathMarkers in lpsgd_lint.cc).
  bool required_hot_path_markers = true;
};

// Returns `contents` with comments and string/character literals blanked to
// spaces. Newlines are preserved so byte offsets keep mapping to the same
// line numbers. Exposed for tests.
std::string StripCommentsAndStrings(std::string_view contents);

// Runs the text rules over one file's contents. `path` determines which
// rules apply (banned-include only fires under src/, banned-function under
// src/ and tools/) and is echoed into the issues; the file is not opened.
std::vector<LintIssue> LintFileContents(const std::string& path,
                                        std::string_view contents,
                                        const LintOptions& options);

// Loads `path` and runs the text rules on it.
StatusOr<std::vector<LintIssue>> LintFile(const std::string& path,
                                          const LintOptions& options);

// Lints every .h/.cc/.inc under `repo_root`/src and `repo_root`/tools,
// plus the tree-level required-marker coverage check. Paths in the
// returned issues are repo-root-relative.
StatusOr<std::vector<LintIssue>> LintTree(const std::string& repo_root,
                                          const LintOptions& options);

// Header hygiene for one header: `header_path` is absolute or cwd-relative,
// `include_path` is what a client would #include (e.g. "quant/codec.h").
// Writes a single-include translation unit under `work_dir` and runs
// `compiler_command` (e.g. "c++ -std=c++20") with -fsyntax-only and
// -I<include_root>. Returns the issues found: missing-include-guard and/or
// header-not-self-contained (with the compiler's first error line).
StatusOr<std::vector<LintIssue>> CheckHeaderSelfContained(
    const std::string& header_path, const std::string& include_path,
    const std::string& include_root, const std::string& compiler_command,
    const std::string& work_dir);

// Runs CheckHeaderSelfContained over every src/**/*.h under `repo_root`.
// Slow (one compiler invocation per header) — run by the CI lint job and by
// `lpsgd_lint --check_headers`, not by the unit tests.
StatusOr<std::vector<LintIssue>> CheckTreeHeaders(
    const std::string& repo_root, const std::string& compiler_command,
    const std::string& work_dir);

}  // namespace lint
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_LINT_LPSGD_LINT_H_
