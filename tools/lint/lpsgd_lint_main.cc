// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CLI driver for the repo lint (see lpsgd_lint.h for the rule set).
//
//   lpsgd_lint --root .                       # text rules over src/ + tools/
//   lpsgd_lint --root . --check_headers       # + per-header TU syntax check
//   lpsgd_lint --files src/quant/qsgd.cc ...  # text rules on specific files
//
// Exit codes: 0 clean, 1 issues found, 2 usage/internal error.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lpsgd_lint.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: lpsgd_lint [--root DIR] [--check_headers] [--compiler CMD]\n"
      "                  [--workdir DIR] [--files FILE...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compiler = "c++ -std=c++20";
  std::string workdir = "lpsgd_lint_work";
  bool check_headers = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compiler" && i + 1 < argc) {
      compiler = argv[++i];
    } else if (arg == "--workdir" && i + 1 < argc) {
      workdir = argv[++i];
    } else if (arg == "--check_headers") {
      check_headers = true;
    } else if (arg == "--files") {
      for (++i; i < argc; ++i) files.push_back(argv[i]);
    } else {
      Usage();
      return 2;
    }
  }

  const lpsgd::lint::LintOptions options;
  std::vector<lpsgd::lint::LintIssue> issues;

  if (!files.empty()) {
    for (const std::string& file : files) {
      auto file_issues = lpsgd::lint::LintFile(file, options);
      if (!file_issues.ok()) {
        std::fprintf(stderr, "lpsgd_lint: %s\n",
                     file_issues.status().ToString().c_str());
        return 2;
      }
      issues.insert(issues.end(), file_issues->begin(), file_issues->end());
    }
  } else {
    auto tree_issues = lpsgd::lint::LintTree(root, options);
    if (!tree_issues.ok()) {
      std::fprintf(stderr, "lpsgd_lint: %s\n",
                   tree_issues.status().ToString().c_str());
      return 2;
    }
    issues = std::move(*tree_issues);
    if (check_headers) {
      auto header_issues =
          lpsgd::lint::CheckTreeHeaders(root, compiler, workdir);
      if (!header_issues.ok()) {
        std::fprintf(stderr, "lpsgd_lint: %s\n",
                     header_issues.status().ToString().c_str());
        return 2;
      }
      issues.insert(issues.end(), header_issues->begin(),
                    header_issues->end());
    }
  }

  for (const auto& issue : issues) {
    std::fprintf(stdout, "%s\n", issue.ToString().c_str());
  }
  std::fprintf(stderr, "lpsgd_lint: %zu issue(s)\n", issues.size());
  return issues.empty() ? 0 : 1;
}
