// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "lint/lpsgd_lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lpsgd {
namespace lint {
namespace {

namespace fs = std::filesystem;

// The marker is assembled from two halves so the scanner never fires on the
// lint tool's own source (strings are stripped before scanning, but the
// identifier must also not appear verbatim in code position here).
const std::string kHotPathMarker = std::string("LPSGD_HOT") + "_PATH";

// Exact spellings defined by base/thread_annotations.h. Anything that
// merely *looks* like one of these (see kAnnotationFamilies) is a typo.
const char* const kKnownAnnotations[] = {
    "LPSGD_CAPABILITY",
    "LPSGD_SCOPED_CAPABILITY",
    "LPSGD_GUARDED_BY",
    "LPSGD_PT_GUARDED_BY",
    "LPSGD_REQUIRES",
    "LPSGD_EXCLUDES",
    "LPSGD_ACQUIRE",
    "LPSGD_RELEASE",
    "LPSGD_RETURN_CAPABILITY",
    "LPSGD_NO_THREAD_SAFETY_ANALYSIS",
    "LPSGD_THREAD_ANNOTATION_ATTRIBUTE_",
    "LPSGD_HOT_PATH",
};

// Prefix families: an identifier starting with one of these but not
// matching a known annotation exactly is reported as annotation-typo.
// Chosen so legitimate non-annotation macros (LPSGD_RETURN_IF_ERROR,
// LPSGD_ASSIGN_OR_RETURN, include guards LPSGD_<DIR>_..._H_) never match.
const char* const kAnnotationFamilies[] = {
    "LPSGD_GUARDED", "LPSGD_PT_GUARDED",  "LPSGD_REQUIRE",
    "LPSGD_EXCLUDE", "LPSGD_ACQUIRE",     "LPSGD_RELEASE",
    "LPSGD_SCOPED_", "LPSGD_CAPABILITY",  "LPSGD_HOT",
    "LPSGD_NO_THREAD", "LPSGD_RETURN_CAP", "LPSGD_THREAD_ANNOTATION",
};

// Member calls that can grow a container (and therefore allocate) when
// invoked as `.name(` / `->name(`.
const char* const kGrowthMethods[] = {
    "resize",  "push_back", "emplace_back", "reserve",
    "assign",  "insert",    "emplace",      "append",
};

// Free functions banned outright in src/ and tools/.
const char* const kBannedFunctions[] = {"rand", "strcpy", "sprintf"};

// Allocation functions banned inside hot-path regions.
const char* const kAllocFunctions[] = {"malloc", "calloc", "realloc"};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Files whose hot-path markers are load-bearing: deleting a marker would
// silently disable the hot-path-alloc rule, so coverage is checked at tree
// level. Paths are repo-root-relative; values are the minimum marker count
// (one per Encode/Decode workspace overload, bit cursor method, or
// exchange lambda).
const std::pair<const char*, int> kRequiredHotPathMarkers[] = {
    {"src/quant/full_precision.cc", 2}, {"src/quant/one_bit_sgd.cc", 2},
    {"src/quant/qsgd.cc", 2},           {"src/quant/adaptive_qsgd.cc", 2},
    {"src/quant/topk.cc", 3},           {"src/quant/terngrad.cc", 2},
    {"src/quant/nuqsgd.cc", 2},         {"src/quant/ecq_sgd.cc", 2},
    {"src/base/bit_packing.h", 4},      {"src/comm/mpi_reduce_bcast.cc", 2},
    {"src/comm/nccl_ring.cc", 3},       {"src/comm/retry.cc", 1},
    {"src/obs/profile.h", 3},
    // The SIMD kernel TUs and their dispatch tables: one marker per kernel
    // body (scalar golden reference, AVX2, NEON) — the alloc rule must
    // cover every vectorized encode/decode loop.
    {"src/quant/simd_kernels.cc", 11},
    {"src/quant/simd_avx2_common.inc", 9},
    {"src/quant/qsgd_simd.cc", 4},
    {"src/quant/ecq_sgd_simd.cc", 1},
    {"src/quant/nuqsgd_simd.cc", 1},
    {"src/quant/terngrad_simd.cc", 3},
    {"src/quant/one_bit_simd.cc", 3},
    {"src/quant/topk_simd.cc", 2},
    {"src/base/simd/elementwise.cc", 6},
    {"src/base/simd/elementwise_simd.cc", 13},
};

// Vector-intrinsics confinement: the only files allowed to touch raw
// intrinsics are the per-ISA kernel TUs (basename *_simd.cc) and the .inc
// helper fragments they textually include. Everything else goes through
// the dispatch tables.
const char* const kIntrinsicsHeaders[] = {"<immintrin.h>", "<x86intrin.h>",
                                          "<arm_neon.h>"};

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool IsSimdTu(const std::string& path) {
  return EndsWith(Basename(path), "_simd.cc");
}

bool MayHoldIntrinsics(const std::string& path) {
  const std::string base = Basename(path);
  return EndsWith(base, "_simd.cc") || EndsWith(base, ".inc");
}

// Per-line suppressions parsed from the *original* text (suppressions live
// in comments, which the stripped copy no longer has). A suppression on
// line N covers lines N and N+1.
class SuppressionMap {
 public:
  explicit SuppressionMap(std::string_view contents) {
    static constexpr std::string_view kTag = "lpsgd-lint: allow(";
    int line = 1;
    size_t pos = 0;
    while (pos < contents.size()) {
      size_t eol = contents.find('\n', pos);
      if (eol == std::string_view::npos) eol = contents.size();
      std::string_view text = contents.substr(pos, eol - pos);
      size_t tag = text.find(kTag);
      while (tag != std::string_view::npos) {
        size_t start = tag + kTag.size();
        size_t close = text.find(')', start);
        if (close == std::string_view::npos) break;
        std::string rules(text.substr(start, close - start));
        std::stringstream ss(rules);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
          rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                     rule.end());
          if (!rule.empty()) allowed_[line].insert(rule);
        }
        tag = text.find(kTag, close);
      }
      pos = eol + 1;
      ++line;
    }
  }

  bool Allows(int line, const std::string& rule) const {
    for (int l : {line, line - 1}) {
      auto it = allowed_.find(l);
      if (it != allowed_.end() && it->second.count(rule) > 0) return true;
    }
    return false;
  }

 private:
  std::map<int, std::set<std::string>> allowed_;
};

// Offset -> 1-based line number, via precomputed line starts.
class LineIndex {
 public:
  explicit LineIndex(std::string_view contents) {
    starts_.push_back(0);
    for (size_t i = 0; i < contents.size(); ++i) {
      if (contents[i] == '\n') starts_.push_back(i + 1);
    }
  }

  int LineAt(size_t offset) const {
    auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<size_t> starts_;
};

// One half-open [begin, end) byte range of a hot-path function body.
struct HotRegion {
  size_t begin = 0;
  size_t end = 0;
};

// Finds the body of each LPSGD_HOT_PATH-marked definition in the stripped
// text: from the marker, skip to the first '{' at parenthesis depth zero
// (a ';' first means the marker sits on a declaration — no body to check)
// and take the matching-brace extent.
std::vector<HotRegion> FindHotRegions(std::string_view stripped) {
  std::vector<HotRegion> regions;
  size_t pos = 0;
  while ((pos = stripped.find(kHotPathMarker, pos)) !=
         std::string_view::npos) {
    const size_t marker = pos;
    pos += kHotPathMarker.size();
    // Word boundaries: skip LPSGD_HOT_PATHS or FOO_LPSGD_HOT_PATH.
    if (marker > 0 && IsIdentChar(stripped[marker - 1])) continue;
    if (pos < stripped.size() && IsIdentChar(stripped[pos])) continue;
    // Skip the #define in thread_annotations.h (and any other directive).
    size_t bol = stripped.rfind('\n', marker);
    bol = (bol == std::string_view::npos) ? 0 : bol + 1;
    std::string_view head = stripped.substr(bol, marker - bol);
    if (head.find_first_not_of(" \t") != std::string_view::npos &&
        head[head.find_first_not_of(" \t")] == '#') {
      continue;
    }
    int paren_depth = 0;
    size_t i = pos;
    for (; i < stripped.size(); ++i) {
      char c = stripped[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) continue;
      if (c == ';') break;  // declaration only
      if (c == '{') {
        int brace_depth = 1;
        size_t body = i + 1;
        size_t j = body;
        for (; j < stripped.size() && brace_depth > 0; ++j) {
          if (stripped[j] == '{') ++brace_depth;
          if (stripped[j] == '}') --brace_depth;
        }
        regions.push_back({body, j});
        pos = j;
        break;
      }
    }
  }
  return regions;
}

// True when `stripped[pos..pos+len)` is a whole identifier.
bool IsWholeWord(std::string_view stripped, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(stripped[pos - 1])) return false;
  size_t end = pos + len;
  if (end < stripped.size() && IsIdentChar(stripped[end])) return false;
  return true;
}

size_t SkipSpace(std::string_view text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

// Emits an issue unless a suppression covers it.
struct Emitter {
  const std::string& path;
  const LineIndex& lines;
  const SuppressionMap& allow;
  std::vector<LintIssue>* out;

  void Emit(size_t offset, const std::string& rule,
            const std::string& message) const {
    int line = lines.LineAt(offset);
    if (allow.Allows(line, rule)) return;
    out->push_back({path, line, rule, message});
  }
};

void CheckHotRegions(std::string_view stripped, const Emitter& emit) {
  for (const HotRegion& region : FindHotRegions(stripped)) {
    std::string_view body = stripped.substr(region.begin,
                                            region.end - region.begin);
    const size_t base = region.begin;

    // `new` expressions.
    for (size_t pos = 0; (pos = body.find("new", pos)) !=
                         std::string_view::npos; pos += 3) {
      if (IsWholeWord(body, pos, 3)) {
        emit.Emit(base + pos, "hot-path-alloc",
                  "`new` inside an LPSGD_HOT_PATH region");
      }
    }

    // malloc-family calls.
    for (const char* fn : kAllocFunctions) {
      const size_t len = std::string_view(fn).size();
      for (size_t pos = 0; (pos = body.find(fn, pos)) !=
                           std::string_view::npos; pos += len) {
        if (!IsWholeWord(body, pos, len)) continue;
        if (SkipSpace(body, pos + len) < body.size() &&
            body[SkipSpace(body, pos + len)] == '(') {
          emit.Emit(base + pos, "hot-path-alloc",
                    std::string(fn) +
                        "() inside an LPSGD_HOT_PATH region");
        }
      }
    }

    // Container growth member calls: `.name(` / `->name(`.
    for (const char* method : kGrowthMethods) {
      const size_t len = std::string_view(method).size();
      for (size_t pos = 0; (pos = body.find(method, pos)) !=
                           std::string_view::npos; pos += len) {
        if (!IsWholeWord(body, pos, len)) continue;
        bool member = false;
        if (pos >= 1 && body[pos - 1] == '.') member = true;
        if (pos >= 2 && body[pos - 2] == '-' && body[pos - 1] == '>') {
          member = true;
        }
        if (!member) continue;
        size_t after = SkipSpace(body, pos + len);
        if (after < body.size() && body[after] == '(') {
          emit.Emit(base + pos, "hot-path-alloc",
                    std::string(".") + method +
                        "() can grow a container inside an "
                        "LPSGD_HOT_PATH region");
        }
      }
    }

    // By-value std::vector declarations or temporaries. Pointer and
    // reference declarations (`std::vector<float>* out`) are the hot
    // path's calling convention and are allowed; so are nested template
    // arguments (closing '>' , ',' follow).
    static constexpr std::string_view kVec = "std::vector";
    for (size_t pos = 0; (pos = body.find(kVec, pos)) !=
                         std::string_view::npos; pos += kVec.size()) {
      if (!IsWholeWord(body, pos, kVec.size())) continue;
      size_t angle = SkipSpace(body, pos + kVec.size());
      if (angle >= body.size() || body[angle] != '<') continue;
      int depth = 0;
      size_t j = angle;
      for (; j < body.size(); ++j) {
        if (body[j] == '<') ++depth;
        if (body[j] == '>' && --depth == 0) break;
      }
      if (j >= body.size()) continue;
      size_t next = SkipSpace(body, j + 1);
      if (next >= body.size()) continue;
      char c = body[next];
      if (IsIdentChar(c) || c == '(' || c == '{') {
        emit.Emit(base + pos, "hot-path-alloc",
                  "by-value std::vector inside an LPSGD_HOT_PATH region "
                  "(pass a pointer/reference to a reused buffer)");
      }
    }
  }
}

void CheckBannedIncludes(std::string_view stripped, const Emitter& emit) {
  size_t pos = 0;
  while ((pos = stripped.find("#include", pos)) != std::string_view::npos) {
    size_t eol = stripped.find('\n', pos);
    if (eol == std::string_view::npos) eol = stripped.size();
    std::string_view line = stripped.substr(pos, eol - pos);
    if (line.find("<iostream>") != std::string_view::npos) {
      emit.Emit(pos, "banned-include",
                "<iostream> in library code (static iostream initializers; "
                "use base/logging.h, or suppress at a real sink)");
    }
    pos = eol;
  }
}

void CheckBannedFunctions(std::string_view stripped, const Emitter& emit) {
  for (const char* fn : kBannedFunctions) {
    const size_t len = std::string_view(fn).size();
    for (size_t pos = 0; (pos = stripped.find(fn, pos)) !=
                         std::string_view::npos; pos += len) {
      if (!IsWholeWord(stripped, pos, len)) continue;
      size_t after = SkipSpace(stripped, pos + len);
      if (after < stripped.size() && stripped[after] == '(') {
        emit.Emit(pos, "banned-function",
                  std::string(fn) + "() is banned (" +
                      (std::string_view(fn) == "rand"
                           ? "non-deterministic; use a seeded "
                             "std::mt19937"
                           : "unbounded write; use the bounded "
                             "counterpart") +
                      ")");
      }
    }
  }
}

void CheckAnnotationTypos(std::string_view stripped, const Emitter& emit) {
  static constexpr std::string_view kPrefix = "LPSGD_";
  size_t pos = 0;
  while ((pos = stripped.find(kPrefix, pos)) != std::string_view::npos) {
    if (pos > 0 && IsIdentChar(stripped[pos - 1])) {
      pos += kPrefix.size();
      continue;
    }
    size_t end = pos;
    while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
    std::string ident(stripped.substr(pos, end - pos));
    bool known = false;
    for (const char* k : kKnownAnnotations) {
      if (ident == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      for (const char* family : kAnnotationFamilies) {
        if (ident.rfind(family, 0) == 0) {
          emit.Emit(pos, "annotation-typo",
                    ident +
                        " looks like a base/thread_annotations.h macro but "
                        "is not one (a typo'd annotation silently disables "
                        "the analysis)");
          break;
        }
      }
    }
    pos = end;
  }
}

// simd-include-confined / simd-hot-path: intrinsics headers and .inc
// fragments may only be pulled into *_simd.cc TUs, and every `_mm*`
// intrinsic call site must sit inside an LPSGD_HOT_PATH body of a file
// allowed to hold intrinsics. (NEON intrinsics have no stable lexical
// prefix; <arm_neon.h> include confinement covers them.)
void CheckSimdConfinement(const std::string& path, std::string_view contents,
                          std::string_view stripped, const Emitter& emit) {
  // Include placement — scanned on the original text: quoted include paths
  // are string literals, which the stripped copy blanks out. Offsets match
  // (stripping preserves length), so the emitter maps lines correctly.
  size_t pos = 0;
  while ((pos = contents.find("#include", pos)) != std::string_view::npos) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string_view::npos) eol = contents.size();
    std::string_view line = contents.substr(pos, eol - pos);
    if (!IsSimdTu(path)) {
      for (const char* header : kIntrinsicsHeaders) {
        if (line.find(header) != std::string_view::npos) {
          emit.Emit(pos, "simd-include-confined",
                    std::string(header) +
                        " outside a *_simd.cc TU (raw intrinsics are "
                        "confined to the per-ISA kernel TUs; everything "
                        "else dispatches through the kernel tables)");
        }
      }
      if (line.find(".inc") != std::string_view::npos) {
        emit.Emit(pos, "simd-include-confined",
                  ".inc kernel fragment included outside a *_simd.cc TU");
      }
    }
    pos = eol;
  }

  // Intrinsic identifiers: every whole-word `_mm*` token must be inside an
  // LPSGD_HOT_PATH region (the kernels are the hot path by definition, and
  // the marker keeps the zero-allocation rule watching them).
  const std::vector<HotRegion> regions = FindHotRegions(stripped);
  const auto in_hot_region = [&regions](size_t offset) {
    for (const HotRegion& region : regions) {
      if (offset >= region.begin && offset < region.end) return true;
    }
    return false;
  };
  static constexpr std::string_view kPrefix = "_mm";
  for (size_t at = 0; (at = stripped.find(kPrefix, at)) !=
                      std::string_view::npos; at += kPrefix.size()) {
    if (at > 0 && IsIdentChar(stripped[at - 1])) continue;
    if (!MayHoldIntrinsics(path)) {
      emit.Emit(at, "simd-include-confined",
                "x86 intrinsic outside a *_simd.cc TU / .inc fragment");
    } else if (!in_hot_region(at)) {
      emit.Emit(at, "simd-hot-path",
                "intrinsic outside an LPSGD_HOT_PATH body (every SIMD "
                "kernel is steady-state hot path and must carry the "
                "marker)");
    }
  }
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasExtension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

std::string RelativeTo(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  return ec ? path.generic_string() : rel.generic_string();
}

}  // namespace

std::string LintIssue::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripCommentsAndStrings(std::string_view contents) {
  std::string out(contents);
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" for the active raw string
  for (size_t i = 0; i < contents.size(); ++i) {
    char c = contents[i];
    char next = (i + 1 < contents.size()) ? contents[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(contents[i - 1]))) {
          size_t open = contents.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_close = ")" +
                        std::string(contents.substr(i + 2, open - i - 2)) +
                        "\"";
            for (size_t j = i; j <= open; ++j) out[j] = ' ';
            i = open;
            state = State::kRaw;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else if (c == '\\' && next == '\n') {
          // Line continuation keeps the comment going; preserve newline.
          out[i] = ' ';
          ++i;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0') {
            if (next != '\n') out[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (contents.compare(i, raw_close.size(), raw_close) == 0) {
          for (size_t j = 0; j < raw_close.size(); ++j) out[i + j] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<LintIssue> LintFileContents(const std::string& path,
                                        std::string_view contents,
                                        const LintOptions& options) {
  std::vector<LintIssue> issues;
  const std::string stripped = StripCommentsAndStrings(contents);
  const SuppressionMap allow(contents);
  const LineIndex lines(contents);
  const Emitter emit{path, lines, allow, &issues};

  const bool in_src = path.find("src/") != std::string::npos;
  const bool in_tools = path.find("tools/") != std::string::npos;

  if (options.hot_path_allocations) CheckHotRegions(stripped, emit);
  if (options.banned_includes && in_src) CheckBannedIncludes(stripped, emit);
  if (options.banned_functions && (in_src || in_tools)) {
    CheckBannedFunctions(stripped, emit);
  }
  if (options.annotation_typos) CheckAnnotationTypos(stripped, emit);
  if (options.simd_confinement && in_src) {
    CheckSimdConfinement(path, contents, stripped, emit);
  }

  std::sort(issues.begin(), issues.end(),
            [](const LintIssue& a, const LintIssue& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return issues;
}

StatusOr<std::vector<LintIssue>> LintFile(const std::string& path,
                                          const LintOptions& options) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return LintFileContents(path, *contents, options);
}

StatusOr<std::vector<LintIssue>> LintTree(const std::string& repo_root,
                                          const LintOptions& options) {
  std::vector<LintIssue> issues;
  const fs::path root(repo_root);
  std::vector<fs::path> files;
  for (const char* subdir : {"src", "tools"}) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      // .inc: textually-included kernel fragments (SIMD lane helpers) —
      // they hold intrinsics and hot-path bodies, so they are linted like
      // source.
      if (HasExtension(entry.path(), ".h") ||
          HasExtension(entry.path(), ".cc") ||
          HasExtension(entry.path(), ".inc")) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::map<std::string, int> marker_counts;
  for (const fs::path& file : files) {
    const std::string rel = RelativeTo(file, root);
    auto contents = ReadFileToString(file.string());
    if (!contents.ok()) return contents.status();
    std::vector<LintIssue> file_issues =
        LintFileContents(rel, *contents, options);
    issues.insert(issues.end(), file_issues.begin(), file_issues.end());
    if (options.required_hot_path_markers) {
      const std::string stripped = StripCommentsAndStrings(*contents);
      int count = 0;
      size_t pos = 0;
      while ((pos = stripped.find(kHotPathMarker, pos)) !=
             std::string::npos) {
        if (IsWholeWord(stripped, pos, kHotPathMarker.size())) {
          size_t bol = stripped.rfind('\n', pos);
          bol = (bol == std::string::npos) ? 0 : bol + 1;
          size_t first = stripped.find_first_not_of(" \t", bol);
          if (first == std::string::npos || stripped[first] != '#') ++count;
        }
        pos += kHotPathMarker.size();
      }
      marker_counts[rel] = count;
    }
  }

  if (options.required_hot_path_markers) {
    for (const auto& [rel, required] : kRequiredHotPathMarkers) {
      auto it = marker_counts.find(rel);
      const int have = (it == marker_counts.end()) ? -1 : it->second;
      if (have < 0) {
        issues.push_back({rel, 1, "missing-hot-path",
                          "file on the steady-state exchange path is "
                          "missing (required by the hot-path coverage "
                          "table in tools/lint)"});
      } else if (have < required) {
        std::ostringstream os;
        os << "expected at least " << required << " LPSGD_HOT_PATH "
           << "markers on the steady-state exchange path, found " << have;
        issues.push_back({rel, 1, "missing-hot-path", os.str()});
      }
    }
  }
  return issues;
}

StatusOr<std::vector<LintIssue>> CheckHeaderSelfContained(
    const std::string& header_path, const std::string& include_path,
    const std::string& include_root, const std::string& compiler_command,
    const std::string& work_dir) {
  std::vector<LintIssue> issues;
  auto contents = ReadFileToString(header_path);
  if (!contents.ok()) return contents.status();

  const std::string stripped = StripCommentsAndStrings(*contents);
  const bool has_guard =
      stripped.find("#pragma once") != std::string::npos ||
      (stripped.find("#ifndef") != std::string::npos &&
       stripped.find("#define") != std::string::npos);
  if (!has_guard) {
    issues.push_back({header_path, 1, "missing-include-guard",
                      "header has neither an #ifndef guard nor "
                      "#pragma once"});
  }

  std::error_code ec;
  fs::create_directories(work_dir, ec);
  if (ec) {
    return InternalError("cannot create lint work dir " + work_dir +
                            ": " + ec.message());
  }
  std::string tu_name = include_path;
  std::replace(tu_name.begin(), tu_name.end(), '/', '_');
  std::replace(tu_name.begin(), tu_name.end(), '.', '_');
  const fs::path tu = fs::path(work_dir) / (tu_name + "_tu.cc");
  {
    std::ofstream out(tu);
    if (!out) {
      return InternalError("cannot write " + tu.string());
    }
    out << "// Generated by lpsgd_lint: self-containment check.\n"
        << "#include \"" << include_path << "\"\n"
        << "int lpsgd_lint_tu_anchor = 0;\n";
  }

  const std::string command = compiler_command + " -fsyntax-only -I \"" +
                              include_root + "\" \"" + tu.string() +
                              "\" 2>&1";
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return InternalError("popen failed for: " + command);
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::string first_line = output.substr(0, output.find('\n'));
    issues.push_back({header_path, 1, "header-not-self-contained",
                      "generated TU fails to compile alone: " + first_line});
  }
  return issues;
}

StatusOr<std::vector<LintIssue>> CheckTreeHeaders(
    const std::string& repo_root, const std::string& compiler_command,
    const std::string& work_dir) {
  std::vector<LintIssue> issues;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    return InvalidArgumentError("no src/ under " + repo_root);
  }
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && HasExtension(entry.path(), ".h")) {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    const std::string include_path = RelativeTo(header, src);
    auto header_issues = CheckHeaderSelfContained(
        header.string(), include_path, src.string(), compiler_command,
        work_dir);
    if (!header_issues.ok()) return header_issues.status();
    for (LintIssue issue : *header_issues) {
      issue.file = RelativeTo(header, root);
      issues.push_back(std::move(issue));
    }
  }
  return issues;
}

}  // namespace lint
}  // namespace lpsgd
