// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "lint/lpsgd_lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/source_text.h"

namespace lpsgd {
namespace lint {
namespace {

namespace fs = std::filesystem;

using srctext::FindHotRegions;
using srctext::HotRegion;
using srctext::IsIdentChar;
using srctext::IsWholeWord;
using srctext::LineIndex;
using srctext::ScanAllocations;
using srctext::SkipSpace;
using srctext::SuppressionMap;

// Exact spellings defined by base/thread_annotations.h. Anything that
// merely *looks* like one of these (see kAnnotationFamilies) is a typo.
const char* const kKnownAnnotations[] = {
    "LPSGD_CAPABILITY",
    "LPSGD_SCOPED_CAPABILITY",
    "LPSGD_GUARDED_BY",
    "LPSGD_PT_GUARDED_BY",
    "LPSGD_REQUIRES",
    "LPSGD_EXCLUDES",
    "LPSGD_ACQUIRE",
    "LPSGD_RELEASE",
    "LPSGD_RETURN_CAPABILITY",
    "LPSGD_NO_THREAD_SAFETY_ANALYSIS",
    "LPSGD_THREAD_ANNOTATION_ATTRIBUTE_",
    "LPSGD_HOT_PATH",
    "LPSGD_HOT_CALLEE_OK",
};

// Prefix families: an identifier starting with one of these but not
// matching a known annotation exactly is reported as annotation-typo.
// Chosen so legitimate non-annotation macros (LPSGD_RETURN_IF_ERROR,
// LPSGD_ASSIGN_OR_RETURN, include guards LPSGD_<DIR>_..._H_) never match.
const char* const kAnnotationFamilies[] = {
    "LPSGD_GUARDED", "LPSGD_PT_GUARDED",  "LPSGD_REQUIRE",
    "LPSGD_EXCLUDE", "LPSGD_ACQUIRE",     "LPSGD_RELEASE",
    "LPSGD_SCOPED_", "LPSGD_CAPABILITY",  "LPSGD_HOT",
    "LPSGD_NO_THREAD", "LPSGD_RETURN_CAP", "LPSGD_THREAD_ANNOTATION",
};

// Free functions banned outright in src/ and tools/.
const char* const kBannedFunctions[] = {"rand", "strcpy", "sprintf"};

// Files whose hot-path markers are load-bearing: deleting a marker would
// silently disable the hot-path-alloc rule, so coverage is checked at tree
// level. Paths are repo-root-relative; values are the minimum marker count
// (one per Encode/Decode workspace overload, bit cursor method, or
// exchange lambda).
const std::pair<const char*, int> kRequiredHotPathMarkers[] = {
    {"src/quant/full_precision.cc", 2}, {"src/quant/one_bit_sgd.cc", 2},
    {"src/quant/qsgd.cc", 2},           {"src/quant/adaptive_qsgd.cc", 2},
    {"src/quant/topk.cc", 3},           {"src/quant/terngrad.cc", 2},
    {"src/quant/nuqsgd.cc", 2},         {"src/quant/ecq_sgd.cc", 2},
    {"src/base/bit_packing.h", 4},      {"src/comm/mpi_reduce_bcast.cc", 2},
    {"src/comm/nccl_ring.cc", 3},       {"src/comm/retry.cc", 1},
    {"src/obs/profile.h", 3},
    // The SIMD kernel TUs and their dispatch tables: one marker per kernel
    // body (scalar golden reference, AVX2, NEON) — the alloc rule must
    // cover every vectorized encode/decode loop.
    {"src/quant/simd_kernels.cc", 11},
    {"src/quant/simd_avx2_common.inc", 9},
    {"src/quant/qsgd_simd.cc", 4},
    {"src/quant/ecq_sgd_simd.cc", 1},
    {"src/quant/nuqsgd_simd.cc", 1},
    {"src/quant/terngrad_simd.cc", 3},
    {"src/quant/one_bit_simd.cc", 3},
    {"src/quant/topk_simd.cc", 2},
    {"src/base/simd/elementwise.cc", 6},
    {"src/base/simd/elementwise_simd.cc", 13},
};

// Directories that are cold-path by contract: durable checkpointing runs
// between training iterations (serialize + fsync + rename), never inside
// the per-iteration exchange, so an LPSGD_HOT_PATH marker under these
// prefixes is a design violation, not an optimization.
const char* const kHotPathFreeDirs[] = {"src/ckpt/"};

// Vector-intrinsics confinement: the only files allowed to touch raw
// intrinsics are the per-ISA kernel TUs (basename *_simd.cc) and the .inc
// helper fragments they textually include. Everything else goes through
// the dispatch tables.
const char* const kIntrinsicsHeaders[] = {"<immintrin.h>", "<x86intrin.h>",
                                          "<arm_neon.h>"};

bool IsSimdTu(const std::string& path) {
  return srctext::EndsWith(srctext::Basename(path), "_simd.cc");
}

bool MayHoldIntrinsics(const std::string& path) {
  const std::string base = srctext::Basename(path);
  return srctext::EndsWith(base, "_simd.cc") ||
         srctext::EndsWith(base, ".inc");
}

// Emits an issue unless a suppression covers it.
struct Emitter {
  const std::string& path;
  const LineIndex& lines;
  const SuppressionMap& allow;
  std::vector<LintIssue>* out;

  void Emit(size_t offset, const std::string& rule,
            const std::string& message) const {
    int line = lines.LineAt(offset);
    if (allow.Allows(line, rule)) return;
    out->push_back({path, line, rule, message});
  }
};

void CheckHotRegions(std::string_view stripped, const Emitter& emit) {
  for (const HotRegion& region : FindHotRegions(stripped)) {
    std::string_view body = stripped.substr(region.begin,
                                            region.end - region.begin);
    for (const srctext::AllocationSite& site : ScanAllocations(body)) {
      emit.Emit(region.begin + site.offset, "hot-path-alloc",
                site.message + " inside an LPSGD_HOT_PATH region");
    }
  }
}

void CheckColdPathMarkers(const std::string& path,
                          std::string_view stripped, const Emitter& emit) {
  bool cold = false;
  for (const char* dir : kHotPathFreeDirs) {
    if (path.find(dir) != std::string::npos) {
      cold = true;
      break;
    }
  }
  if (!cold) return;
  const std::string& marker = srctext::HotPathMarker();
  size_t pos = 0;
  while ((pos = stripped.find(marker, pos)) != std::string_view::npos) {
    if (IsWholeWord(stripped, pos, marker.size())) {
      emit.Emit(pos, "cold-path-marker",
                marker + " in a cold-path directory (durable checkpoint "
                         "I/O runs between iterations; marking it hot "
                         "falsely advertises steady-state guarantees)");
    }
    pos += marker.size();
  }
}

void CheckBannedIncludes(std::string_view stripped, const Emitter& emit) {
  size_t pos = 0;
  while ((pos = stripped.find("#include", pos)) != std::string_view::npos) {
    size_t eol = stripped.find('\n', pos);
    if (eol == std::string_view::npos) eol = stripped.size();
    std::string_view line = stripped.substr(pos, eol - pos);
    if (line.find("<iostream>") != std::string_view::npos) {
      emit.Emit(pos, "banned-include",
                "<iostream> in library code (static iostream initializers; "
                "use base/logging.h, or suppress at a real sink)");
    }
    pos = eol;
  }
}

void CheckBannedFunctions(std::string_view stripped, const Emitter& emit) {
  for (const char* fn : kBannedFunctions) {
    const size_t len = std::string_view(fn).size();
    for (size_t pos = 0; (pos = stripped.find(fn, pos)) !=
                         std::string_view::npos; pos += len) {
      if (!IsWholeWord(stripped, pos, len)) continue;
      size_t after = SkipSpace(stripped, pos + len);
      if (after < stripped.size() && stripped[after] == '(') {
        emit.Emit(pos, "banned-function",
                  std::string(fn) + "() is banned (" +
                      (std::string_view(fn) == "rand"
                           ? "non-deterministic; use a seeded "
                             "std::mt19937"
                           : "unbounded write; use the bounded "
                             "counterpart") +
                      ")");
      }
    }
  }
}

void CheckAnnotationTypos(std::string_view stripped, const Emitter& emit) {
  static constexpr std::string_view kPrefix = "LPSGD_";
  size_t pos = 0;
  while ((pos = stripped.find(kPrefix, pos)) != std::string_view::npos) {
    if (pos > 0 && IsIdentChar(stripped[pos - 1])) {
      pos += kPrefix.size();
      continue;
    }
    size_t end = pos;
    while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
    std::string ident(stripped.substr(pos, end - pos));
    bool known = false;
    for (const char* k : kKnownAnnotations) {
      if (ident == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      for (const char* family : kAnnotationFamilies) {
        if (ident.rfind(family, 0) == 0) {
          emit.Emit(pos, "annotation-typo",
                    ident +
                        " looks like a base/thread_annotations.h macro but "
                        "is not one (a typo'd annotation silently disables "
                        "the analysis)");
          break;
        }
      }
    }
    pos = end;
  }
}

// simd-include-confined / simd-hot-path: intrinsics headers and .inc
// fragments may only be pulled into *_simd.cc TUs, and every `_mm*`
// intrinsic call site must sit inside an LPSGD_HOT_PATH body of a file
// allowed to hold intrinsics. (NEON intrinsics have no stable lexical
// prefix; <arm_neon.h> include confinement covers them.)
void CheckSimdConfinement(const std::string& path, std::string_view contents,
                          std::string_view stripped, const Emitter& emit) {
  // Include placement — scanned on the original text: quoted include paths
  // are string literals, which the stripped copy blanks out. Offsets match
  // (stripping preserves length), so the emitter maps lines correctly.
  size_t pos = 0;
  while ((pos = contents.find("#include", pos)) != std::string_view::npos) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string_view::npos) eol = contents.size();
    std::string_view line = contents.substr(pos, eol - pos);
    if (!IsSimdTu(path)) {
      for (const char* header : kIntrinsicsHeaders) {
        if (line.find(header) != std::string_view::npos) {
          emit.Emit(pos, "simd-include-confined",
                    std::string(header) +
                        " outside a *_simd.cc TU (raw intrinsics are "
                        "confined to the per-ISA kernel TUs; everything "
                        "else dispatches through the kernel tables)");
        }
      }
      if (line.find(".inc") != std::string_view::npos) {
        emit.Emit(pos, "simd-include-confined",
                  ".inc kernel fragment included outside a *_simd.cc TU");
      }
    }
    pos = eol;
  }

  // Intrinsic identifiers: every whole-word `_mm*` token must be inside an
  // LPSGD_HOT_PATH region (the kernels are the hot path by definition, and
  // the marker keeps the zero-allocation rule watching them).
  const std::vector<HotRegion> regions = FindHotRegions(stripped);
  const auto in_hot_region = [&regions](size_t offset) {
    for (const HotRegion& region : regions) {
      if (offset >= region.begin && offset < region.end) return true;
    }
    return false;
  };
  static constexpr std::string_view kPrefix = "_mm";
  for (size_t at = 0; (at = stripped.find(kPrefix, at)) !=
                      std::string_view::npos; at += kPrefix.size()) {
    if (at > 0 && IsIdentChar(stripped[at - 1])) continue;
    if (!MayHoldIntrinsics(path)) {
      emit.Emit(at, "simd-include-confined",
                "x86 intrinsic outside a *_simd.cc TU / .inc fragment");
    } else if (!in_hot_region(at)) {
      emit.Emit(at, "simd-hot-path",
                "intrinsic outside an LPSGD_HOT_PATH body (every SIMD "
                "kernel is steady-state hot path and must carry the "
                "marker)");
    }
  }
}

}  // namespace

std::string LintIssue::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripCommentsAndStrings(std::string_view contents) {
  return srctext::StripCommentsAndStrings(contents);
}

std::vector<LintIssue> LintFileContents(const std::string& path,
                                        std::string_view contents,
                                        const LintOptions& options) {
  std::vector<LintIssue> issues;
  const std::string stripped = srctext::StripCommentsAndStrings(contents);
  const SuppressionMap allow(contents, "lpsgd-lint: allow(");
  const LineIndex lines(contents);
  const Emitter emit{path, lines, allow, &issues};

  const bool in_src = path.find("src/") != std::string::npos;
  const bool in_tools = path.find("tools/") != std::string::npos;

  if (options.hot_path_allocations) CheckHotRegions(stripped, emit);
  if (options.hot_path_allocations && in_src) {
    CheckColdPathMarkers(path, stripped, emit);
  }
  if (options.banned_includes && in_src) CheckBannedIncludes(stripped, emit);
  if (options.banned_functions && (in_src || in_tools)) {
    CheckBannedFunctions(stripped, emit);
  }
  if (options.annotation_typos) CheckAnnotationTypos(stripped, emit);
  if (options.simd_confinement && in_src) {
    CheckSimdConfinement(path, contents, stripped, emit);
  }

  std::sort(issues.begin(), issues.end(),
            [](const LintIssue& a, const LintIssue& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return issues;
}

StatusOr<std::vector<LintIssue>> LintFile(const std::string& path,
                                          const LintOptions& options) {
  auto contents = srctext::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return LintFileContents(path, *contents, options);
}

StatusOr<std::vector<LintIssue>> LintTree(const std::string& repo_root,
                                          const LintOptions& options) {
  std::vector<LintIssue> issues;
  auto files = srctext::ListSourceFiles(repo_root, {"src", "tools"});
  if (!files.ok()) return files.status();

  std::map<std::string, int> marker_counts;
  const std::string& marker_token = srctext::HotPathMarker();
  for (const srctext::SourceFile& file : *files) {
    auto contents = srctext::ReadFileToString(file.path);
    if (!contents.ok()) return contents.status();
    std::vector<LintIssue> file_issues =
        LintFileContents(file.relative, *contents, options);
    issues.insert(issues.end(), file_issues.begin(), file_issues.end());
    if (options.required_hot_path_markers) {
      const std::string stripped =
          srctext::StripCommentsAndStrings(*contents);
      int count = 0;
      size_t pos = 0;
      while ((pos = stripped.find(marker_token, pos)) != std::string::npos) {
        if (IsWholeWord(stripped, pos, marker_token.size())) {
          size_t bol = stripped.rfind('\n', pos);
          bol = (bol == std::string::npos) ? 0 : bol + 1;
          size_t first = stripped.find_first_not_of(" \t", bol);
          if (first == std::string::npos || stripped[first] != '#') ++count;
        }
        pos += marker_token.size();
      }
      marker_counts[file.relative] = count;
    }
  }

  if (options.required_hot_path_markers) {
    for (const auto& [rel, required] : kRequiredHotPathMarkers) {
      auto it = marker_counts.find(rel);
      const int have = (it == marker_counts.end()) ? -1 : it->second;
      if (have < 0) {
        issues.push_back({rel, 1, "missing-hot-path",
                          "file on the steady-state exchange path is "
                          "missing (required by the hot-path coverage "
                          "table in tools/lint)"});
      } else if (have < required) {
        std::ostringstream os;
        os << "expected at least " << required << " LPSGD_HOT_PATH "
           << "markers on the steady-state exchange path, found " << have;
        issues.push_back({rel, 1, "missing-hot-path", os.str()});
      }
    }
  }
  return issues;
}

StatusOr<std::vector<LintIssue>> CheckHeaderSelfContained(
    const std::string& header_path, const std::string& include_path,
    const std::string& include_root, const std::string& compiler_command,
    const std::string& work_dir) {
  std::vector<LintIssue> issues;
  auto contents = srctext::ReadFileToString(header_path);
  if (!contents.ok()) return contents.status();

  const std::string stripped = srctext::StripCommentsAndStrings(*contents);
  const bool has_guard =
      stripped.find("#pragma once") != std::string::npos ||
      (stripped.find("#ifndef") != std::string::npos &&
       stripped.find("#define") != std::string::npos);
  if (!has_guard) {
    issues.push_back({header_path, 1, "missing-include-guard",
                      "header has neither an #ifndef guard nor "
                      "#pragma once"});
  }

  std::error_code ec;
  fs::create_directories(work_dir, ec);
  if (ec) {
    return InternalError("cannot create lint work dir " + work_dir +
                            ": " + ec.message());
  }
  std::string tu_name = include_path;
  std::replace(tu_name.begin(), tu_name.end(), '/', '_');
  std::replace(tu_name.begin(), tu_name.end(), '.', '_');
  const fs::path tu = fs::path(work_dir) / (tu_name + "_tu.cc");
  {
    std::ofstream out(tu);
    if (!out) {
      return InternalError("cannot write " + tu.string());
    }
    out << "// Generated by lpsgd_lint: self-containment check.\n"
        << "#include \"" << include_path << "\"\n"
        << "int lpsgd_lint_tu_anchor = 0;\n";
  }

  const std::string command = compiler_command + " -fsyntax-only -I \"" +
                              include_root + "\" \"" + tu.string() +
                              "\" 2>&1";
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return InternalError("popen failed for: " + command);
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::string first_line = output.substr(0, output.find('\n'));
    issues.push_back({header_path, 1, "header-not-self-contained",
                      "generated TU fails to compile alone: " + first_line});
  }
  return issues;
}

StatusOr<std::vector<LintIssue>> CheckTreeHeaders(
    const std::string& repo_root, const std::string& compiler_command,
    const std::string& work_dir) {
  std::vector<LintIssue> issues;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    return InvalidArgumentError("no src/ under " + repo_root);
  }
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && entry.path().extension() == ".h") {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    std::error_code rel_ec;
    fs::path rel = fs::relative(header, src, rel_ec);
    const std::string include_path =
        rel_ec ? header.generic_string() : rel.generic_string();
    auto header_issues = CheckHeaderSelfContained(
        header.string(), include_path, src.string(), compiler_command,
        work_dir);
    if (!header_issues.ok()) return header_issues.status();
    for (LintIssue issue : *header_issues) {
      std::error_code root_ec;
      fs::path root_rel = fs::relative(header, root, root_ec);
      issue.file =
          root_ec ? header.generic_string() : root_rel.generic_string();
      issues.push_back(std::move(issue));
    }
  }
  return issues;
}

}  // namespace lint
}  // namespace lpsgd
