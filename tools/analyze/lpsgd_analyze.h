// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Driver for the whole-program analyzer: builds the cross-TU model over the
// tree, runs the passes (passes.h), and reconciles the findings against the
// checked-in suppression baseline (tools/analyze/baseline.txt).
//
// The baseline is a ratchet, not a mute button: a finding not in the
// baseline fails the run (no new debt), and a baseline entry that no run
// reproduces also fails (stale debt must be deleted when the code is
// fixed). Entries are fingerprints without line numbers — see
// Finding::Fingerprint — one per line, `#` starts a comment.
#ifndef LPSGD_TOOLS_ANALYZE_LPSGD_ANALYZE_H_
#define LPSGD_TOOLS_ANALYZE_LPSGD_ANALYZE_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"
#include "analyze/source_model.h"
#include "base/status.h"
#include "base/statusor.h"

namespace lpsgd {
namespace analyze {

// Parses every .h/.cc/.inc under `repo_root`/{src,tools,bench} into a
// model. Returns the number of files parsed.
StatusOr<int> BuildModelFromTree(const std::string& repo_root, Model* model);

// Baseline file contents -> fingerprint set. Blank lines and `#` comments
// are ignored; entries are used verbatim otherwise.
std::set<std::string> ParseBaseline(std::string_view contents);

// The reconciliation of one run against the baseline.
struct BaselineCheck {
  std::vector<Finding> fresh;       // findings absent from the baseline
  std::vector<std::string> stale;   // baseline entries nothing reproduced
  std::vector<Finding> suppressed;  // findings matched by the baseline
};
BaselineCheck CheckAgainstBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline);

// Renders the full baseline file for --write_baseline (sorted, with a
// header comment documenting the ratchet).
std::string FormatBaseline(const std::vector<Finding>& findings);

// One human-readable report line: "file:line: rule: detail [symbol] note".
std::string FormatFinding(const Finding& finding);

}  // namespace analyze
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_ANALYZE_LPSGD_ANALYZE_H_
