// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "analyze/source_model.h"

#include <algorithm>
#include <cctype>

namespace lpsgd {
namespace analyze {
namespace {

using srctext::IsIdentChar;
using srctext::IsWholeWord;
using srctext::SkipSpace;

constexpr size_t npos = std::string_view::npos;

// Keywords and builtin type names that can precede '(' without being a
// call or definition name. Builtin types also cover functional casts
// (`int(x)`, `uint32_t(v)`).
bool IsKeywordOrBuiltin(std::string_view id) {
  static const std::set<std::string_view> kWords = {
      "if",        "else",     "for",      "while",    "do",
      "switch",    "case",     "return",   "sizeof",   "alignof",
      "alignas",   "decltype", "typeid",   "catch",    "throw",
      "new",       "delete",   "operator", "noexcept", "static_assert",
      "co_return", "co_await", "co_yield", "requires", "asm",
      "static_cast",           "dynamic_cast",
      "reinterpret_cast",      "const_cast",
      "int",       "long",     "short",    "char",     "bool",
      "float",     "double",   "unsigned", "signed",   "void",
      "auto",      "size_t",   "int8_t",   "int16_t",  "int32_t",
      "int64_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "uintptr_t", "intptr_t", "ptrdiff_t",
  };
  return kWords.count(id) > 0;
}

// All-caps identifiers are macro invocations (CHECK, LPSGD_*, BENCHMARK):
// never function definitions and never resolvable callees.
bool LooksLikeMacro(std::string_view id) {
  bool has_alpha = false;
  for (char c : id) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

// Position just past the delimiter matching text[pos] (text[pos] must be
// `open`), or npos when unbalanced.
size_t SkipBalanced(std::string_view text, size_t pos, char open,
                    char close) {
  int depth = 0;
  for (; pos < text.size(); ++pos) {
    if (text[pos] == open) ++depth;
    if (text[pos] == close && --depth == 0) return pos + 1;
  }
  return npos;
}

// Offset of the '}' matching the '{' at `open_pos`, or text.size().
size_t MatchBrace(std::string_view text, size_t open_pos) {
  int depth = 0;
  for (size_t i = open_pos; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return text.size();
}

std::string ReadIdentAt(std::string_view text, size_t pos) {
  size_t end = pos;
  while (end < text.size() && IsIdentChar(text[end])) ++end;
  return std::string(text.substr(pos, end - pos));
}

// Identifier ending just before `end` (skipping trailing whitespace);
// returns its start offset or npos.
size_t IdentStartBefore(std::string_view text, size_t end) {
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  if (end == 0 || !IsIdentChar(text[end - 1])) return npos;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  return begin;
}

struct ClassRange {
  std::string name;
  size_t begin = 0;  // first byte inside the class body
  size_t end = 0;    // offset of the closing '}'
};

// Finds `class X { ... }` / `struct X { ... }` body ranges so in-class
// method definitions can be attributed to X. Handles attribute macros and
// base clauses between the keyword and the body; forward declarations and
// pointer uses (`struct X* p`) are skipped.
std::vector<ClassRange> FindClassRanges(std::string_view s) {
  std::vector<ClassRange> out;
  std::set<size_t> seen_opens;
  for (const char* keyword : {"class", "struct"}) {
    const size_t klen = std::string_view(keyword).size();
    for (size_t pos = 0; (pos = s.find(keyword, pos)) != npos;
         pos += klen) {
      if (!IsWholeWord(s, pos, klen)) continue;
      size_t p = pos + klen;
      std::string last_ident;
      size_t open = npos;
      while (p < s.size()) {
        p = SkipSpace(s, p);
        if (p >= s.size()) break;
        char c = s[p];
        if (c == '{') {
          open = p;
          break;
        }
        if (c == ';' || c == '*' || c == '&' || c == ')' || c == ',' ||
            c == '=' || c == '>') {
          break;  // forward decl, pointer use, or template parameter
        }
        if (c == ':') {
          // Base clause: the body brace is the next '{' outside <>/().
          int depth = 0;
          for (++p; p < s.size(); ++p) {
            char d = s[p];
            if (d == '<' || d == '(') ++depth;
            if (d == '>' || d == ')') --depth;
            if (depth <= 0 && d == '{') {
              open = p;
              break;
            }
            if (depth <= 0 && d == ';') break;
          }
          break;
        }
        if (c == '<') {
          size_t after = SkipBalanced(s, p, '<', '>');
          if (after == npos) break;
          p = after;
          continue;
        }
        if (c == '(') {  // attribute macro arguments
          size_t after = SkipBalanced(s, p, '(', ')');
          if (after == npos) break;
          p = after;
          continue;
        }
        if (IsIdentChar(c)) {
          std::string ident = ReadIdentAt(s, p);
          p += ident.size();
          if (ident != "final" && ident != "alignas" &&
              !LooksLikeMacro(ident)) {
            last_ident = ident;
          }
          continue;
        }
        break;
      }
      if (open == npos || last_ident.empty()) continue;
      if (!seen_opens.insert(open).second) continue;
      out.push_back({last_ident, open + 1, MatchBrace(s, open)});
    }
  }
  return out;
}

std::string InnermostClassAt(const std::vector<ClassRange>& classes,
                             size_t offset) {
  const ClassRange* best = nullptr;
  for (const ClassRange& range : classes) {
    if (offset < range.begin || offset >= range.end) continue;
    if (best == nullptr || range.end - range.begin < best->end - best->begin) {
      best = &range;
    }
  }
  return best == nullptr ? std::string() : best->name;
}

// Parses a constructor initializer list starting just after ':' and
// returns the offset of the body '{', or npos when the text does not parse
// as an initializer list.
size_t SkipInitList(std::string_view s, size_t pos) {
  while (true) {
    pos = SkipSpace(s, pos);
    if (pos >= s.size() || !IsIdentChar(s[pos])) return npos;
    pos += ReadIdentAt(s, pos).size();
    pos = SkipSpace(s, pos);
    if (pos < s.size() && s[pos] == '<') {
      pos = SkipBalanced(s, pos, '<', '>');
      if (pos == npos) return npos;
      pos = SkipSpace(s, pos);
    }
    if (pos >= s.size()) return npos;
    if (s[pos] == '(') {
      pos = SkipBalanced(s, pos, '(', ')');
    } else if (s[pos] == '{') {
      pos = SkipBalanced(s, pos, '{', '}');
    } else {
      return npos;
    }
    if (pos == npos) return npos;
    pos = SkipSpace(s, pos);
    if (pos < s.size() && s[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < s.size() && s[pos] == '{') return pos;
    return npos;
  }
}

// Extracts comma-separated macro arguments from the first occurrence of
// `macro(` at or after `from` within [from, to); appends canonicalized
// lock ids to `out`.
void CollectAnnotationArgs(std::string_view header, const std::string& macro,
                           const std::string& enclosing_class,
                           std::vector<std::string>* out) {
  size_t pos = 0;
  while ((pos = header.find(macro, pos)) != npos) {
    if (!IsWholeWord(header, pos, macro.size())) {
      pos += macro.size();
      continue;
    }
    size_t open = SkipSpace(header, pos + macro.size());
    pos += macro.size();
    if (open >= header.size() || header[open] != '(') continue;
    size_t after = SkipBalanced(header, open, '(', ')');
    if (after == npos) continue;
    std::string_view args = header.substr(open + 1, after - open - 2);
    size_t start = 0;
    while (start <= args.size()) {
      size_t comma = args.find(',', start);
      std::string_view arg = args.substr(
          start, comma == npos ? npos : comma - start);
      std::string id = CanonicalLockId(arg, enclosing_class);
      if (!id.empty()) out->push_back(id);
      if (comma == npos) break;
      start = comma + 1;
    }
  }
}

// Scope end for an RAII guard declared at `site` inside `body`: the end of
// the innermost enclosing block.
size_t GuardScopeEnd(std::string_view body, size_t site) {
  int depth = 0;
  for (size_t i = site; i < body.size(); ++i) {
    if (body[i] == '{') ++depth;
    if (body[i] == '}') {
      if (depth == 0) return i;
      --depth;
    }
  }
  return body.size();
}

// Reads a lock expression backwards from `end` (exclusive): the maximal
// run of identifier chars, '.', '->', 'this->', '*', '&'.
std::string ReceiverBefore(std::string_view body, size_t end) {
  size_t begin = end;
  while (begin > 0) {
    char c = body[begin - 1];
    if (IsIdentChar(c) || c == '.' || c == '_') {
      --begin;
    } else if (begin >= 2 && c == '>' && body[begin - 2] == '-') {
      begin -= 2;
    } else {
      break;
    }
  }
  return std::string(body.substr(begin, end - begin));
}

// RAII guard type names whose constructor argument is the lock.
const char* const kGuardTypes[] = {"MutexLock", "lock_guard", "unique_lock",
                                   "scoped_lock"};

void ExtractLocks(std::string_view body, const std::string& enclosing_class,
                  FunctionDef* fn) {
  // RAII guards: `MutexLock guard(expr);` (optionally templated).
  for (const char* guard : kGuardTypes) {
    const size_t glen = std::string_view(guard).size();
    for (size_t pos = 0; (pos = body.find(guard, pos)) != npos;
         pos += glen) {
      if (!IsWholeWord(body, pos, glen)) continue;
      size_t p = SkipSpace(body, pos + glen);
      if (p < body.size() && body[p] == '<') {
        p = SkipBalanced(body, p, '<', '>');
        if (p == npos) continue;
        p = SkipSpace(body, p);
      }
      if (p >= body.size() || !IsIdentChar(body[p])) continue;
      p += ReadIdentAt(body, p).size();  // guard variable name
      p = SkipSpace(body, p);
      if (p >= body.size() || (body[p] != '(' && body[p] != '{')) continue;
      const char open = body[p];
      const char close = open == '(' ? ')' : '}';
      size_t after = SkipBalanced(body, p, open, close);
      if (after == npos) continue;
      std::string expr(body.substr(p + 1, after - p - 2));
      // std::scoped_lock can take several mutexes; treat each argument as
      // acquired at this site.
      size_t start = 0;
      while (start <= expr.size()) {
        size_t comma = expr.find(',', start);
        std::string id = CanonicalLockId(
            std::string_view(expr).substr(
                start, comma == std::string::npos ? npos : comma - start),
            enclosing_class);
        if (!id.empty()) {
          fn->locks.push_back({id, pos, GuardScopeEnd(body, pos)});
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }

  // Manual `expr.Lock()` ... `expr.Unlock()` pairs.
  static constexpr std::string_view kLock = "Lock";
  for (size_t pos = 0; (pos = body.find(kLock, pos)) != npos;
       pos += kLock.size()) {
    if (!IsWholeWord(body, pos, kLock.size())) continue;
    const bool dot = pos >= 1 && body[pos - 1] == '.';
    const bool arrow =
        pos >= 2 && body[pos - 2] == '-' && body[pos - 1] == '>';
    if (!dot && !arrow) continue;
    size_t open = SkipSpace(body, pos + kLock.size());
    if (open >= body.size() || body[open] != '(') continue;
    const std::string receiver =
        ReceiverBefore(body, dot ? pos - 1 : pos - 2);
    const std::string id = CanonicalLockId(receiver, enclosing_class);
    if (id.empty()) continue;
    // Held until the matching Unlock on the same receiver, else body end.
    size_t scope_end = body.size();
    static constexpr std::string_view kUnlock = "Unlock";
    for (size_t upos = pos; (upos = body.find(kUnlock, upos)) != npos;
         upos += kUnlock.size()) {
      if (!IsWholeWord(body, upos, kUnlock.size())) continue;
      const bool udot = upos >= 1 && body[upos - 1] == '.';
      const bool uarrow =
          upos >= 2 && body[upos - 2] == '-' && body[upos - 1] == '>';
      if (!udot && !uarrow) continue;
      const std::string urecv =
          ReceiverBefore(body, udot ? upos - 1 : upos - 2);
      if (CanonicalLockId(urecv, enclosing_class) == id) {
        scope_end = upos;
        break;
      }
    }
    fn->locks.push_back({id, pos, scope_end});
  }
}

void ExtractCalls(std::string_view body, FunctionDef* fn) {
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '(') continue;
    size_t begin = IdentStartBefore(body, i);
    if (begin == npos) continue;
    std::string name = ReadIdentAt(body, begin);
    if (IsKeywordOrBuiltin(name) || LooksLikeMacro(name)) continue;
    if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;

    std::string qualifier;
    bool is_member_call = false;
    if (begin >= 1 && body[begin - 1] == '.') is_member_call = true;
    if (begin >= 2 && body[begin - 2] == '-' && body[begin - 1] == '>') {
      is_member_call = true;
    }
    if (!is_member_call && begin >= 2 && body[begin - 1] == ':' &&
        body[begin - 2] == ':') {
      size_t qbegin = IdentStartBefore(body, begin - 2);
      if (qbegin != npos) qualifier = ReadIdentAt(body, qbegin);
    }
    if (!is_member_call && qualifier.empty()) {
      // `Type var(args)`: a constructor-style declaration — the callee is
      // the type, recorded under the type's name so constructor bodies are
      // traversed too.
      size_t prev = IdentStartBefore(body, begin);
      if (prev != npos) {
        std::string prev_ident = ReadIdentAt(body, prev);
        if (prev_ident.size() + prev < begin &&  // separated by whitespace
            !IsKeywordOrBuiltin(prev_ident) && !LooksLikeMacro(prev_ident) &&
            prev_ident != name) {
          fn->calls.push_back({prev_ident, "", prev});
          continue;
        }
      }
    }
    fn->calls.push_back({name, qualifier, i});
  }
}

}  // namespace

std::string CanonicalLockId(std::string_view expr,
                            const std::string& enclosing_class) {
  std::string id;
  id.reserve(expr.size());
  for (char c : expr) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) id.push_back(c);
  }
  if (id.rfind("this->", 0) == 0) id = id.substr(6);
  while (!id.empty() && (id[0] == '*' || id[0] == '&')) id = id.substr(1);
  // Fold -> to . so `batch->mu` and `batch.mu` share an identity.
  size_t arrow;
  while ((arrow = id.find("->")) != std::string::npos) {
    id.replace(arrow, 2, ".");
  }
  if (id.empty()) return id;
  const bool bare_ident =
      id.find('.') == std::string::npos &&
      id.find("::") == std::string::npos;
  if (bare_ident && !enclosing_class.empty()) {
    return enclosing_class + "::" + id;
  }
  return id;
}

std::vector<int> Model::Resolve(const std::string& name,
                                int tu_index) const {
  auto it = by_name.find(name);
  if (it == by_name.end()) return {};
  std::vector<int> same_tu;
  for (int idx : it->second) {
    if (functions[static_cast<size_t>(idx)].tu_index == tu_index) {
      same_tu.push_back(idx);
    }
  }
  return same_tu.empty() ? it->second : same_tu;
}

void AddTranslationUnit(const std::string& relative,
                        std::string_view contents, Model* model) {
  const int tu_index = static_cast<int>(model->tus.size());
  model->tus.emplace_back(relative,
                          srctext::StripCommentsAndStrings(contents));
  TranslationUnit& tu = model->tus.back();
  const std::string_view s = tu.stripped;
  const std::vector<ClassRange> classes = FindClassRanges(s);

  // LPSGD_HOT_CALLEE_OK(fn) exemptions, anywhere in the TU.
  {
    const std::string& marker = srctext::HotCalleeOkMarker();
    for (size_t pos = 0; (pos = s.find(marker, pos)) != npos;
         pos += marker.size()) {
      if (!IsWholeWord(s, pos, marker.size())) continue;
      // Skip the macro's own #define (and any preprocessor use).
      size_t line_start = s.rfind('\n', pos);
      line_start = line_start == npos ? 0 : line_start + 1;
      if (s[SkipSpace(s, line_start)] == '#') continue;
      size_t open = SkipSpace(s, pos + marker.size());
      if (open >= s.size() || s[open] != '(') continue;
      size_t after = SkipBalanced(s, open, '(', ')');
      if (after == npos) continue;
      std::string name;
      for (char c : s.substr(open + 1, after - open - 2)) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          name.push_back(c);
        }
      }
      if (!name.empty()) {
        model->hot_callee_ok.emplace(
            name, std::make_pair(relative, tu.lines.LineAt(pos)));
      }
    }
  }

  // Function definitions.
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '(') continue;
    const size_t name_begin = IdentStartBefore(s, i);
    if (name_begin == npos) continue;
    const std::string name = ReadIdentAt(s, name_begin);
    if (IsKeywordOrBuiltin(name) || LooksLikeMacro(name)) continue;
    if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;

    // Explicit qualification: `Class::Name(...)`.
    std::string qualifier;
    if (name_begin >= 2 && s[name_begin - 1] == ':' &&
        s[name_begin - 2] == ':') {
      size_t qbegin = IdentStartBefore(s, name_begin - 2);
      if (qbegin != npos) qualifier = ReadIdentAt(s, qbegin);
    }

    const size_t params_end = SkipBalanced(s, i, '(', ')');
    if (params_end == npos) continue;

    // Walk the tokens between the parameter list and a possible body.
    size_t p = params_end;
    size_t body_open = npos;
    bool rejected = false;
    while (!rejected && body_open == npos) {
      p = SkipSpace(s, p);
      if (p >= s.size()) {
        rejected = true;
        break;
      }
      const char c = s[p];
      if (c == '{') {
        body_open = p;
        break;
      }
      if (c == ':' && (p + 1 >= s.size() || s[p + 1] != ':')) {
        body_open = SkipInitList(s, p + 1);
        if (body_open == npos) rejected = true;
        break;
      }
      if (c == '-' && p + 1 < s.size() && s[p + 1] == '>') {
        // Trailing return type: the body brace is the next '{' outside
        // any bracket nesting.
        int depth = 0;
        bool done = false;
        for (p += 2; p < s.size(); ++p) {
          const char d = s[p];
          if (d == '(' || d == '<' || d == '[') ++depth;
          if (d == ')' || d == '>' || d == ']') --depth;
          if (depth <= 0 && d == '{') {
            body_open = p;
            done = true;
            break;
          }
          if (depth <= 0 && (d == ';' || d == ',')) {
            rejected = true;
            done = true;
            break;
          }
        }
        if (!done) rejected = true;
        break;
      }
      if (c == '&') {
        ++p;
        if (p < s.size() && s[p] == '&') ++p;
        continue;
      }
      if (IsIdentChar(c)) {
        const std::string word = ReadIdentAt(s, p);
        p += word.size();
        if (word == "const" || word == "noexcept" || word == "override" ||
            word == "final" || word == "mutable" || word == "try" ||
            word == "__attribute__" || word.rfind("LPSGD_", 0) == 0) {
          size_t q = SkipSpace(s, p);
          if (q < s.size() && s[q] == '(') {
            size_t after = SkipBalanced(s, q, '(', ')');
            if (after == npos) {
              rejected = true;
              break;
            }
            p = after;
          }
          continue;
        }
        rejected = true;
        break;
      }
      rejected = true;
      break;
    }
    if (rejected || body_open == npos) continue;

    FunctionDef fn;
    fn.name = name;
    fn.tu_index = tu_index;
    fn.line = tu.lines.LineAt(name_begin);
    fn.body_begin = body_open + 1;
    fn.body_end = MatchBrace(s, body_open);
    const std::string enclosing_class =
        qualifier.empty() ? InnermostClassAt(classes, name_begin)
                          : qualifier;
    fn.qualified = enclosing_class.empty()
                       ? name
                       : enclosing_class + "::" + name;
    for (const srctext::HotRegion& region : tu.hot_regions) {
      if (region.begin == fn.body_begin) {
        fn.hot_marked = true;
        break;
      }
    }
    const std::string_view header =
        s.substr(name_begin, body_open - name_begin);
    CollectAnnotationArgs(header, "LPSGD_REQUIRES", enclosing_class,
                          &fn.requires_locks);
    CollectAnnotationArgs(header, "LPSGD_ACQUIRE", enclosing_class,
                          &fn.acquire_locks);

    const std::string_view body =
        s.substr(fn.body_begin, fn.body_end - fn.body_begin);
    {
      // Call/lock offsets are extracted body-relative; rebase to the TU.
      FunctionDef scratch;
      ExtractCalls(body, &scratch);
      for (CallSite call : scratch.calls) {
        call.offset += fn.body_begin;
        fn.calls.push_back(std::move(call));
      }
      scratch.calls.clear();
      ExtractLocks(body, enclosing_class, &scratch);
      for (LockSite lock : scratch.locks) {
        lock.offset += fn.body_begin;
        lock.scope_end += fn.body_begin;
        fn.locks.push_back(std::move(lock));
      }
    }
    model->functions.push_back(std::move(fn));
  }
}

void FinalizeModel(Model* model) {
  model->by_name.clear();
  for (size_t i = 0; i < model->functions.size(); ++i) {
    model->by_name[model->functions[i].name].push_back(static_cast<int>(i));
  }
}

}  // namespace analyze
}  // namespace lpsgd
