// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// The three whole-program passes of tools/analyze/lpsgd_analyze, consuming
// the cross-TU model from source_model.h:
//
//  1. Transitive hot-path purity — every function reachable (by name-based
//     call resolution) from an LPSGD_HOT_PATH region must be free of
//     allocation constructs and ban-list functions. LPSGD_HOT_CALLEE_OK(fn)
//     prunes the walk at calls to `fn`; an annotation the walk never
//     consults is itself a finding (stale exemption).
//  2. Lock-order cycle detection — acquisition-order edges are collected
//     from nested MutexLock/.Lock() scopes, LPSGD_REQUIRES preconditions,
//     and calls made while a lock is held (using each callee's transitive
//     acquisition set); any cycle in the resulting lock graph is a finding.
//  3. Status-drop analysis — a Status/StatusOr local assigned a
//     non-trivial value and then overwritten or scope-exited without any
//     intervening read is a finding.
//
// Findings carry a line number for display but fingerprint without it
// (rule|file|symbol|detail), so the suppression baseline survives
// unrelated edits. See DESIGN.md "Static analysis & enforced invariants".
#ifndef LPSGD_TOOLS_ANALYZE_PASSES_H_
#define LPSGD_TOOLS_ANALYZE_PASSES_H_

#include <string>
#include <vector>

#include "analyze/source_model.h"

namespace lpsgd {
namespace analyze {

struct Finding {
  std::string rule;    // e.g. "hot-path-transitive-alloc"
  std::string file;    // repo-root-relative
  int line = 0;        // 1-based; display only, not fingerprinted
  std::string symbol;  // qualified function name or canonical cycle
  std::string detail;  // stable description (part of the fingerprint)
  std::string note;    // volatile context (witness lines); display only

  // Stable identity for the baseline: line numbers excluded on purpose so
  // entries survive edits elsewhere in the file.
  std::string Fingerprint() const;
};

// Pass 1. Roots are all call sites inside LPSGD_HOT_PATH regions (marked
// function bodies and marked lambdas alike).
std::vector<Finding> RunPurityPass(const Model& model);

// Pass 2.
std::vector<Finding> RunLockOrderPass(const Model& model);

// Pass 3.
std::vector<Finding> RunStatusDropPass(const Model& model);

// All passes, in the order above, sorted by (file, line, rule) for stable
// output.
std::vector<Finding> RunAllPasses(const Model& model);

}  // namespace analyze
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_ANALYZE_PASSES_H_
