// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "analyze/passes.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <set>

namespace lpsgd {
namespace analyze {
namespace {

using srctext::IsIdentChar;
using srctext::IsWholeWord;
using srctext::SkipSpace;

constexpr size_t npos = std::string_view::npos;

std::string FileLine(const Model& model, int tu_index, size_t offset) {
  const TranslationUnit& tu = model.tus[static_cast<size_t>(tu_index)];
  return tu.relative + ":" + std::to_string(tu.lines.LineAt(offset));
}

// ---------------------------------------------------------------------------
// Pass 1: transitive hot-path purity.
// ---------------------------------------------------------------------------

// Functions the zero-allocation contract bans outright (the lint bans most
// of these repo-wide already; the analyzer re-checks them on the reachable
// set so a future lint relaxation cannot silently leak them onto hot paths).
const std::set<std::string>& BannedFunctions() {
  static const std::set<std::string> kBanned = {
      "rand", "srand", "strcpy", "strcat", "sprintf", "vsprintf", "gets",
  };
  return kBanned;
}

// True when the call is exempted by an LPSGD_HOT_CALLEE_OK annotation;
// marks every matching key as consulted.
bool IsExempted(const Model& model, const CallSite& call,
                std::set<std::string>* consulted) {
  bool exempt = false;
  if (model.hot_callee_ok.count(call.callee) > 0) {
    consulted->insert(call.callee);
    exempt = true;
  }
  if (!call.qualifier.empty()) {
    const std::string qualified = call.qualifier + "::" + call.callee;
    if (model.hot_callee_ok.count(qualified) > 0) {
      consulted->insert(qualified);
      exempt = true;
    }
  }
  return exempt;
}

// Exemptions may also name the resolved definition's qualified form
// (`Class::Fn`) even when the call site is unqualified.
bool IsExemptedDef(const Model& model, const FunctionDef& def,
                   std::set<std::string>* consulted) {
  if (model.hot_callee_ok.count(def.qualified) > 0) {
    consulted->insert(def.qualified);
    return true;
  }
  return false;
}

}  // namespace

std::string Finding::Fingerprint() const {
  return rule + "|" + file + "|" + symbol + "|" + detail;
}

std::vector<Finding> RunPurityPass(const Model& model) {
  std::vector<Finding> findings;
  std::set<std::string> consulted;

  // parent[i] = function we reached i from (-1 for a direct hot-region
  // callee); root_caller[i] = display name of the hot function/lambda whose
  // region contains the root call.
  std::map<int, int> parent;
  std::map<int, std::string> root_caller;
  std::deque<int> queue;

  auto enqueue = [&](int target, int from, const std::string& root) {
    if (parent.count(target) > 0) return;
    parent[target] = from;
    if (from < 0) root_caller[target] = root;
    queue.push_back(target);
  };

  // Roots: every call site that sits inside a hot region.
  for (size_t fi = 0; fi < model.functions.size(); ++fi) {
    const FunctionDef& fn = model.functions[fi];
    const TranslationUnit& tu = model.tus[static_cast<size_t>(fn.tu_index)];
    for (const CallSite& call : fn.calls) {
      bool in_hot = false;
      for (const srctext::HotRegion& region : tu.hot_regions) {
        if (call.offset >= region.begin && call.offset < region.end) {
          in_hot = true;
          break;
        }
      }
      if (!in_hot) continue;
      if (IsExempted(model, call, &consulted)) continue;
      for (int target : model.Resolve(call.callee, fn.tu_index)) {
        const FunctionDef& def = model.functions[static_cast<size_t>(target)];
        if (IsExemptedDef(model, def, &consulted)) continue;
        enqueue(target, -1, fn.qualified);
      }
    }
  }

  auto chain_for = [&](int idx) {
    std::string chain = model.functions[static_cast<size_t>(idx)].qualified;
    int at = idx;
    while (parent.at(at) >= 0) {
      at = parent.at(at);
      chain =
          model.functions[static_cast<size_t>(at)].qualified + " -> " + chain;
    }
    auto root = root_caller.find(at);
    if (root != root_caller.end()) {
      chain = root->second + " [hot] -> " + chain;
    }
    return chain;
  };

  while (!queue.empty()) {
    const int idx = queue.front();
    queue.pop_front();
    const FunctionDef& fn = model.functions[static_cast<size_t>(idx)];
    const TranslationUnit& tu = model.tus[static_cast<size_t>(fn.tu_index)];

    // Hot-marked bodies are the lint's responsibility (hot-path-alloc);
    // re-reporting them here would double every finding. Their callees are
    // still traversed below.
    if (!fn.hot_marked) {
      const std::string_view body =
          std::string_view(tu.stripped)
              .substr(fn.body_begin, fn.body_end - fn.body_begin);
      for (const srctext::AllocationSite& site :
           srctext::ScanAllocations(body)) {
        Finding f;
        f.rule = "hot-path-transitive-alloc";
        f.file = tu.relative;
        f.line = tu.lines.LineAt(fn.body_begin + site.offset);
        f.symbol = fn.qualified;
        f.detail = site.message;
        f.note = "reachable via " + chain_for(idx);
        findings.push_back(std::move(f));
      }
    }

    for (const CallSite& call : fn.calls) {
      if (BannedFunctions().count(call.callee) > 0) {
        Finding f;
        f.rule = "hot-path-banned-call";
        f.file = tu.relative;
        f.line = tu.lines.LineAt(call.offset);
        f.symbol = fn.qualified;
        f.detail = "calls " + call.callee + "()";
        f.note = "reachable via " + chain_for(idx);
        findings.push_back(std::move(f));
        continue;
      }
      if (IsExempted(model, call, &consulted)) continue;
      for (int target : model.Resolve(call.callee, fn.tu_index)) {
        const FunctionDef& def = model.functions[static_cast<size_t>(target)];
        if (IsExemptedDef(model, def, &consulted)) continue;
        enqueue(target, idx, "");
      }
    }
  }

  // An exemption the walk never needed is stale: either the callee went
  // cold (delete the annotation) or the name rotted (fix it).
  for (const auto& [name, where] : model.hot_callee_ok) {
    if (consulted.count(name) > 0) continue;
    Finding f;
    f.rule = "stale-hot-callee-ok";
    f.file = where.first;
    f.line = where.second;
    f.symbol = name;
    f.detail = "LPSGD_HOT_CALLEE_OK names a function no hot path calls";
    findings.push_back(std::move(f));
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 2: lock-order cycles.
// ---------------------------------------------------------------------------

namespace {

// Lock-machinery callees whose effect is already modeled by LockSite
// extraction; following their definitions would alias every caller's mutex
// onto the wrapper's own member and manufacture phantom edges.
bool IsLockMachinery(const std::string& callee) {
  return callee == "MutexLock" || callee == "lock_guard" ||
         callee == "unique_lock" || callee == "scoped_lock" ||
         callee == "Lock" || callee == "Unlock" || callee == "Wait";
}

struct LockGraph {
  // from -> to -> witness ("file:line" of the inner acquisition).
  std::map<std::string, std::map<std::string, std::string>> edges;

  void Add(const std::string& from, const std::string& to,
           const std::string& witness) {
    if (from == to) return;  // self-edges handled by the caller
    edges[from].emplace(to, witness);  // keep the first witness
  }
};

}  // namespace

std::vector<Finding> RunLockOrderPass(const Model& model) {
  std::vector<Finding> findings;

  // Transitive acquisition sets, to a fixed point over the call graph.
  // acquired[i] maps each lock id to a witness string for reporting.
  std::vector<std::map<std::string, std::string>> acquired(
      model.functions.size());
  for (size_t i = 0; i < model.functions.size(); ++i) {
    const FunctionDef& fn = model.functions[i];
    for (const LockSite& site : fn.locks) {
      acquired[i].emplace(site.lock_id,
                          FileLine(model, fn.tu_index, site.offset));
    }
    for (const std::string& id : fn.acquire_locks) {
      acquired[i].emplace(id, FileLine(model, fn.tu_index, fn.body_begin));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < model.functions.size(); ++i) {
      const FunctionDef& fn = model.functions[i];
      for (const CallSite& call : fn.calls) {
        if (IsLockMachinery(call.callee)) continue;
        for (int target : model.Resolve(call.callee, fn.tu_index)) {
          for (const auto& [id, witness] :
               acquired[static_cast<size_t>(target)]) {
            const std::string via =
                "via " + call.callee + "() at " +
                FileLine(model, fn.tu_index, call.offset);
            if (acquired[i].emplace(id, via).second) changed = true;
          }
        }
      }
    }
  }

  LockGraph graph;
  auto self_deadlock = [&](const FunctionDef& fn, const std::string& id,
                           size_t offset, const std::string& how) {
    Finding f;
    f.rule = "lock-order-cycle";
    f.file = model.tus[static_cast<size_t>(fn.tu_index)].relative;
    f.line = model.tus[static_cast<size_t>(fn.tu_index)].lines.LineAt(offset);
    f.symbol = id;
    f.detail = "re-acquired while already held in " + fn.qualified;
    f.note = how;
    findings.push_back(std::move(f));
  };

  for (size_t i = 0; i < model.functions.size(); ++i) {
    const FunctionDef& fn = model.functions[i];

    // Locks the caller already holds on entry cover the whole body.
    for (const std::string& held : fn.requires_locks) {
      for (const LockSite& inner : fn.locks) {
        if (inner.lock_id == held) {
          self_deadlock(fn, held, inner.offset,
                        "LPSGD_REQUIRES(" + held + ") on the definition");
          continue;
        }
        graph.Add(held, inner.lock_id,
                  FileLine(model, fn.tu_index, inner.offset));
      }
      for (const CallSite& call : fn.calls) {
        if (IsLockMachinery(call.callee)) continue;
        for (int target : model.Resolve(call.callee, fn.tu_index)) {
          for (const auto& [id, witness] :
               acquired[static_cast<size_t>(target)]) {
            if (id == held) continue;  // REQUIRES callers re-checked there
            graph.Add(held, id,
                      "via " + call.callee + "() at " +
                          FileLine(model, fn.tu_index, call.offset));
          }
        }
      }
    }

    // Acquisitions nested inside a held scope.
    for (const LockSite& outer : fn.locks) {
      for (const LockSite& inner : fn.locks) {
        if (inner.offset <= outer.offset || inner.offset >= outer.scope_end) {
          continue;
        }
        if (inner.lock_id == outer.lock_id) {
          self_deadlock(fn, outer.lock_id, inner.offset,
                        "outer acquisition at " +
                            FileLine(model, fn.tu_index, outer.offset));
          continue;
        }
        graph.Add(outer.lock_id, inner.lock_id,
                  FileLine(model, fn.tu_index, inner.offset));
      }
      for (const CallSite& call : fn.calls) {
        if (call.offset <= outer.offset || call.offset >= outer.scope_end) {
          continue;
        }
        if (IsLockMachinery(call.callee)) continue;
        for (int target : model.Resolve(call.callee, fn.tu_index)) {
          for (const auto& [id, witness] :
               acquired[static_cast<size_t>(target)]) {
            if (id == outer.lock_id) {
              self_deadlock(fn, id, call.offset,
                            "via " + call.callee + "() at " +
                                FileLine(model, fn.tu_index, call.offset));
              continue;
            }
            graph.Add(outer.lock_id, id,
                      "via " + call.callee + "() at " +
                          FileLine(model, fn.tu_index, call.offset));
          }
        }
      }
    }
  }

  // Cycle detection: DFS with colors; every back edge closes a cycle.
  // Cycles are canonicalized (rotated to start at the smallest id) so each
  // is reported once no matter where the DFS entered it.
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;

  std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto it = graph.edges.find(node);
        if (it != graph.edges.end()) {
          for (const auto& [next, witness] : it->second) {
            if (color[next] == 1) {
              // Recover the cycle from the stack.
              auto at = std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(at, stack.end());
              auto smallest =
                  std::min_element(cycle.begin(), cycle.end());
              std::rotate(cycle.begin(), smallest, cycle.end());
              std::string label;
              for (const std::string& id : cycle) label += id + " -> ";
              label += cycle.front();
              if (reported.insert(label).second) {
                std::string note;
                for (size_t k = 0; k < cycle.size(); ++k) {
                  const std::string& from = cycle[k];
                  const std::string& to = cycle[(k + 1) % cycle.size()];
                  note += (k > 0 ? "; " : "") + from + " -> " + to +
                          " at " + graph.edges.at(from).at(to);
                }
                Finding f;
                f.rule = "lock-order-cycle";
                f.symbol = label;
                f.detail = "lock acquisition order cycle";
                f.note = note;
                // Anchor the finding at the first edge's witness when it
                // carries a file:line.
                const std::string& w =
                    graph.edges.at(cycle.front()).at(cycle[1 % cycle.size()]);
                const size_t colon = w.rfind(':');
                if (colon != std::string::npos && w.rfind("via ", 0) != 0) {
                  f.file = w.substr(0, colon);
                  f.line = std::atoi(w.c_str() + colon + 1);
                }
                findings.push_back(std::move(f));
              }
            } else if (color[next] == 0) {
              dfs(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, unused] : graph.edges) {
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 3: status drops.
// ---------------------------------------------------------------------------

namespace {

// A value-producing assignment to a tracked Status variable.
struct StatusAssign {
  size_t offset = 0;    // of the variable name token
  size_t stmt_end = 0;  // offset just past the terminating ';'
  bool interesting = false;  // RHS is not OkStatus()/Status()/{}
};

bool RhsIsTrivial(std::string_view rhs) {
  std::string flat;
  for (char c : rhs) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) flat.push_back(c);
  }
  return flat.empty() || flat == "{}" || flat.find("OkStatus") != npos ||
         flat == "Status()" || flat == "Status{}";
}

// [begin, end) ranges of loop bodies (for/while/do blocks) inside `body`.
std::vector<std::pair<size_t, size_t>> LoopBlocks(std::string_view body) {
  std::vector<std::pair<size_t, size_t>> out;
  auto match_brace = [&](size_t open) {
    int depth = 0;
    for (size_t i = open; i < body.size(); ++i) {
      if (body[i] == '{') ++depth;
      if (body[i] == '}' && --depth == 0) return i;
    }
    return body.size();
  };
  for (const char* keyword : {"for", "while", "do"}) {
    const size_t klen = std::string_view(keyword).size();
    for (size_t pos = 0; (pos = body.find(keyword, pos)) != npos;
         pos += klen) {
      if (!IsWholeWord(body, pos, klen)) continue;
      size_t p = SkipSpace(body, pos + klen);
      if (p < body.size() && body[p] == '(') {
        int depth = 0;
        for (; p < body.size(); ++p) {
          if (body[p] == '(') ++depth;
          if (body[p] == ')' && --depth == 0) {
            ++p;
            break;
          }
        }
        p = SkipSpace(body, p);
      }
      if (p < body.size() && body[p] == '{') {
        out.emplace_back(p + 1, match_brace(p));
      }
    }
  }
  return out;
}

// End of the innermost block enclosing `at` (offset of its '}'), or
// body.size().
size_t EnclosingBlockEnd(std::string_view body, size_t at) {
  int depth = 0;
  for (size_t i = at; i < body.size(); ++i) {
    if (body[i] == '{') ++depth;
    if (body[i] == '}') {
      if (depth == 0) return i;
      --depth;
    }
  }
  return body.size();
}

}  // namespace

std::vector<Finding> RunStatusDropPass(const Model& model) {
  std::vector<Finding> findings;
  for (const FunctionDef& fn : model.functions) {
    const TranslationUnit& tu = model.tus[static_cast<size_t>(fn.tu_index)];
    const std::string_view body =
        std::string_view(tu.stripped)
            .substr(fn.body_begin, fn.body_end - fn.body_begin);
    const std::vector<std::pair<size_t, size_t>> loops = LoopBlocks(body);

    // Find tracked declarations.
    for (const char* type_name : {"StatusOr", "Status"}) {
      const size_t tlen = std::string_view(type_name).size();
      for (size_t pos = 0; (pos = body.find(type_name, pos)) != npos;
           pos += tlen) {
        if (!IsWholeWord(body, pos, tlen)) continue;
        size_t p = pos + tlen;
        if (std::string_view(type_name) == "StatusOr") {
          p = SkipSpace(body, p);
          if (p >= body.size() || body[p] != '<') continue;
          int depth = 0;
          for (; p < body.size(); ++p) {
            if (body[p] == '<') ++depth;
            if (body[p] == '>' && --depth == 0) {
              ++p;
              break;
            }
          }
        }
        p = SkipSpace(body, p);
        // References/pointers alias a value owned elsewhere — not tracked.
        if (p >= body.size() || !IsIdentChar(body[p]) ||
            std::isdigit(static_cast<unsigned char>(body[p])) != 0) {
          continue;
        }
        size_t name_begin = p;
        while (p < body.size() && IsIdentChar(body[p])) ++p;
        const std::string name(body.substr(name_begin, p - name_begin));
        const size_t scope_end = EnclosingBlockEnd(body, name_begin);

        // Collect assignments (the declaration's initializer plus later
        // `name = ...`) and uses within the scope.
        std::vector<StatusAssign> assigns;
        std::set<size_t> assign_name_offsets;
        {
          size_t q = SkipSpace(body, p);
          StatusAssign first;
          first.offset = name_begin;
          assign_name_offsets.insert(name_begin);
          if (q < body.size() &&
              (body[q] == '=' || body[q] == '(' || body[q] == '{')) {
            const size_t rhs_begin = body[q] == '=' ? q + 1 : q;
            const size_t semi = body.find(';', q);
            first.stmt_end = semi == npos ? scope_end : semi + 1;
            first.interesting = !RhsIsTrivial(
                body.substr(rhs_begin, first.stmt_end - 1 - rhs_begin));
          } else {
            const size_t semi = body.find(';', name_begin);
            first.stmt_end = semi == npos ? scope_end : semi + 1;
            first.interesting = false;  // default-initialized
          }
          assigns.push_back(first);
        }
        for (size_t upos = assigns[0].stmt_end;
             (upos = body.find(name, upos)) != npos && upos < scope_end;
             upos += name.size()) {
          if (!IsWholeWord(body, upos, name.size())) continue;
          size_t q = SkipSpace(body, upos + name.size());
          if (q < body.size() && body[q] == '=' &&
              (q + 1 >= body.size() || body[q + 1] != '=')) {
            StatusAssign a;
            a.offset = upos;
            const size_t semi = body.find(';', q);
            a.stmt_end = semi == npos ? scope_end : semi + 1;
            a.interesting =
                !RhsIsTrivial(body.substr(q + 1, a.stmt_end - 1 - (q + 1)));
            // The RHS may read the previous value (`s = Wrap(s)`): those
            // occurrences still count as uses, found by the use scan below
            // because only the LHS offset is excluded.
            assign_name_offsets.insert(upos);
            assigns.push_back(a);
          }
        }
        std::vector<size_t> uses;
        for (size_t upos = name_begin + name.size();
             (upos = body.find(name, upos)) != npos && upos < scope_end;
             upos += name.size()) {
          if (!IsWholeWord(body, upos, name.size())) continue;
          if (assign_name_offsets.count(upos) > 0) continue;
          uses.push_back(upos);
        }

        for (size_t ai = 0; ai < assigns.size(); ++ai) {
          const StatusAssign& a = assigns[ai];
          if (!a.interesting) continue;
          const size_t window_end =
              ai + 1 < assigns.size() ? assigns[ai + 1].offset : scope_end;
          bool used = false;
          for (size_t u : uses) {
            if (u >= a.stmt_end && u < window_end) {
              used = true;
              break;
            }
          }
          if (!used) {
            // A loop wraps around: a use anywhere in the enclosing loop
            // body observes some iteration's value.
            for (const auto& [lb, le] : loops) {
              if (a.offset < lb || a.offset >= le) continue;
              for (size_t u : uses) {
                if (u >= lb && u < le) {
                  used = true;
                  break;
                }
              }
              if (used) break;
            }
          }
          if (used) continue;
          Finding f;
          f.rule = "status-drop";
          f.file = tu.relative;
          f.line = tu.lines.LineAt(fn.body_begin + a.offset);
          f.symbol = fn.qualified;
          f.detail =
              std::string(type_name) + " value assigned to `" + name +
              "` is " +
              (ai + 1 < assigns.size() ? "overwritten" : "scope-exited") +
              " without being inspected";
          findings.push_back(std::move(f));
        }
      }
    }
  }
  return findings;
}

std::vector<Finding> RunAllPasses(const Model& model) {
  std::vector<Finding> all = RunPurityPass(model);
  for (Finding& f : RunLockOrderPass(model)) all.push_back(std::move(f));
  for (Finding& f : RunStatusDropPass(model)) all.push_back(std::move(f));
  std::stable_sort(all.begin(), all.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.symbol != b.symbol) return a.symbol < b.symbol;
                     return a.detail < b.detail;
                   });
  return all;
}

}  // namespace analyze
}  // namespace lpsgd
