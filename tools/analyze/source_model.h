// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// The whole-program source model behind tools/analyze/lpsgd_analyze: a
// heuristic (token-level, not a full C++ frontend) cross-TU symbol table
// built from the same comment/string-stripped view of the tree the lint
// uses (tools/common/source_text.h). Per translation unit it extracts:
//
//  * function definitions — unqualified + class-qualified names, body byte
//    ranges, LPSGD_HOT_PATH markedness, and any LPSGD_REQUIRES/ACQUIRE
//    thread-annotation arguments on the definition;
//  * call sites inside each body (identifier-before-'(' with keyword and
//    cast filtering; `obj.Fn(...)`, `p->Fn(...)` and `Class::Fn(...)`
//    record the trailing method name);
//  * lock acquisition sites — `MutexLock guard(expr);` RAII scopes (held
//    to the end of the enclosing block) and manual `expr.Lock()` /
//    `expr.Unlock()` pairs — with a canonical lock identity
//    (`Class::member` for bare members, the normalized access path
//    otherwise);
//  * LPSGD_HOT_CALLEE_OK(fn) transitive-purity exemptions.
//
// Known limits (documented in DESIGN.md "Static analysis & enforced
// invariants"): call resolution is by name, preferring same-TU candidates,
// so overloads collapse onto one node and virtual calls fan out to every
// same-named method — deliberately conservative for the purity pass. The
// passes that consume this model live in tools/analyze/passes.h.
#ifndef LPSGD_TOOLS_ANALYZE_SOURCE_MODEL_H_
#define LPSGD_TOOLS_ANALYZE_SOURCE_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/source_text.h"

namespace lpsgd {
namespace analyze {

// One call site inside a function body.
struct CallSite {
  std::string callee;     // unqualified trailing name, e.g. "Encode"
  std::string qualifier;  // "Class" for Class::Fn(...), else ""
  size_t offset = 0;      // into the TU's stripped text
};

// One lock acquisition with its textual hold scope.
struct LockSite {
  std::string lock_id;    // canonical identity, e.g. "ThreadPool::mu_"
  size_t offset = 0;      // acquisition point (stripped-text offset)
  size_t scope_end = 0;   // exclusive end of the held range
};

// One function (or method) definition.
struct FunctionDef {
  std::string name;        // unqualified, e.g. "Encode"
  std::string qualified;   // "QsgdCodec::Encode" when the class is known
  int tu_index = 0;        // index into Model::tus
  int line = 0;            // line of the definition's name token
  size_t body_begin = 0;   // [begin, end) into the TU's stripped text
  size_t body_end = 0;
  bool hot_marked = false;  // definition carries LPSGD_HOT_PATH
  // LPSGD_REQUIRES(mu) arguments on the definition: locks the caller holds
  // for the whole body (each is an order-edge source for every acquisition
  // inside).
  std::vector<std::string> requires_locks;
  // LPSGD_ACQUIRE(mu) arguments naming an explicit capability (the
  // empty-argument self-capability form is ignored on purpose: the
  // `.Lock()` call-site extraction already names the concrete mutex).
  std::vector<std::string> acquire_locks;
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
};

// One parsed translation unit (any .h/.cc/.inc file handed to the model).
struct TranslationUnit {
  std::string relative;   // repo-root-relative path (stable across hosts)
  std::string stripped;   // comment/string-blanked contents, same length
  srctext::LineIndex lines;
  std::vector<srctext::HotRegion> hot_regions;

  TranslationUnit(std::string rel, std::string stripped_text)
      : relative(std::move(rel)),
        stripped(std::move(stripped_text)),
        lines(stripped),
        hot_regions(srctext::FindHotRegions(stripped)) {}
};

// The whole-program model.
struct Model {
  std::vector<TranslationUnit> tus;
  std::vector<FunctionDef> functions;
  // Unqualified name -> indices into `functions`.
  std::map<std::string, std::vector<int>> by_name;
  // LPSGD_HOT_CALLEE_OK(fn) names (unqualified or Class::fn), with the
  // file:line of each annotation for staleness reporting.
  std::map<std::string, std::pair<std::string, int>> hot_callee_ok;

  // All definitions whose unqualified name is `name`, preferring ones in
  // `tu_index`'s file when any exist there (file-static helpers shadow
  // same-named functions elsewhere).
  std::vector<int> Resolve(const std::string& name, int tu_index) const;
};

// Parses one file's contents into `model` (appends a TranslationUnit and
// its functions). `relative` is echoed into findings.
void AddTranslationUnit(const std::string& relative,
                        std::string_view contents, Model* model);

// Finalizes cross-TU indices (by_name). Call once after the last
// AddTranslationUnit.
void FinalizeModel(Model* model);

// Canonicalizes a lock expression: strips whitespace / `this->` / leading
// `*`/`&`, folds `->` to `.`. A bare identifier is qualified with
// `enclosing_class` when non-empty ("mu_" in ThreadPool ->
// "ThreadPool::mu_"). Exposed for tests.
std::string CanonicalLockId(std::string_view expr,
                            const std::string& enclosing_class);

}  // namespace analyze
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_ANALYZE_SOURCE_MODEL_H_
