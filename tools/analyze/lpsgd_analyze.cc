// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "analyze/lpsgd_analyze.h"

#include <algorithm>
#include <cctype>

namespace lpsgd {
namespace analyze {

StatusOr<int> BuildModelFromTree(const std::string& repo_root, Model* model) {
  LPSGD_ASSIGN_OR_RETURN(
      std::vector<srctext::SourceFile> files,
      srctext::ListSourceFiles(repo_root, {"src", "tools", "bench"}));
  for (const srctext::SourceFile& file : files) {
    LPSGD_ASSIGN_OR_RETURN(std::string contents,
                           srctext::ReadFileToString(file.path));
    AddTranslationUnit(file.relative, contents, model);
  }
  FinalizeModel(model);
  return static_cast<int>(files.size());
}

std::set<std::string> ParseBaseline(std::string_view contents) {
  std::set<std::string> entries;
  size_t pos = 0;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line =
        contents.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - pos);
    // Trim and drop comments.
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.front())) != 0) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back())) != 0) {
      line.remove_suffix(1);
    }
    if (!line.empty()) entries.insert(std::string(line));
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return entries;
}

BaselineCheck CheckAgainstBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline) {
  BaselineCheck check;
  std::set<std::string> matched;
  for (const Finding& finding : findings) {
    const std::string fp = finding.Fingerprint();
    if (baseline.count(fp) > 0) {
      matched.insert(fp);
      check.suppressed.push_back(finding);
    } else {
      check.fresh.push_back(finding);
    }
  }
  for (const std::string& entry : baseline) {
    if (matched.count(entry) == 0) check.stale.push_back(entry);
  }
  return check;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> fingerprints;
  for (const Finding& finding : findings) {
    fingerprints.insert(finding.Fingerprint());
  }
  std::string out =
      "# lpsgd_analyze suppression baseline.\n"
      "# One fingerprint per line: rule|file|symbol|detail (no line\n"
      "# numbers, so entries survive unrelated edits). The ratchet is\n"
      "# two-sided: findings missing from this file fail CI, and entries\n"
      "# no run reproduces fail CI too. Regenerate with\n"
      "#   lpsgd_analyze --root <repo> --write_baseline <this file>\n"
      "# and justify every added entry in the adjacent comment.\n";
  for (const std::string& fp : fingerprints) {
    out += fp;
    out += '\n';
  }
  return out;
}

std::string FormatFinding(const Finding& finding) {
  std::string out = finding.file + ":" + std::to_string(finding.line) +
                    ": " + finding.rule + ": " + finding.detail;
  if (!finding.symbol.empty()) out += " [" + finding.symbol + "]";
  if (!finding.note.empty()) out += " (" + finding.note + ")";
  return out;
}

}  // namespace analyze
}  // namespace lpsgd
