// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// CLI for the whole-program analyzer. CI runs:
//
//   lpsgd_analyze --root . --baseline tools/analyze/baseline.txt
//
// Exit codes: 0 clean (every finding baselined, no stale entries),
// 1 fresh findings or stale baseline entries, 2 usage or I/O error.
// `--write_baseline <path>` regenerates the baseline from the current
// findings instead of checking.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analyze/lpsgd_analyze.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lpsgd_analyze --root <repo_root> "
               "[--baseline <file>] [--write_baseline <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string baseline_path;
  std::string write_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write_baseline" && i + 1 < argc) {
      write_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();

  lpsgd::analyze::Model model;
  lpsgd::StatusOr<int> files =
      lpsgd::analyze::BuildModelFromTree(root, &model);
  if (!files.ok()) {
    std::fprintf(stderr, "lpsgd_analyze: %s\n",
                 files.status().ToString().c_str());
    return 2;
  }
  const std::vector<lpsgd::analyze::Finding> findings =
      lpsgd::analyze::RunAllPasses(model);

  if (!write_path.empty()) {
    std::ofstream out(write_path);
    if (!out) {
      std::fprintf(stderr, "lpsgd_analyze: cannot write %s\n",
                   write_path.c_str());
      return 2;
    }
    out << lpsgd::analyze::FormatBaseline(findings);
    std::printf("lpsgd_analyze: wrote %zu fingerprint(s) to %s (%d files)\n",
                findings.size(), write_path.c_str(), *files);
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    lpsgd::StatusOr<std::string> contents =
        lpsgd::srctext::ReadFileToString(baseline_path);
    if (!contents.ok()) {
      std::fprintf(stderr, "lpsgd_analyze: %s\n",
                   contents.status().ToString().c_str());
      return 2;
    }
    baseline = lpsgd::analyze::ParseBaseline(*contents);
  }
  const lpsgd::analyze::BaselineCheck check =
      lpsgd::analyze::CheckAgainstBaseline(findings, baseline);

  for (const lpsgd::analyze::Finding& finding : check.fresh) {
    std::printf("%s\n", lpsgd::analyze::FormatFinding(finding).c_str());
  }
  for (const std::string& entry : check.stale) {
    std::printf("stale baseline entry (fix is in — delete it): %s\n",
                entry.c_str());
  }
  std::printf(
      "lpsgd_analyze: %d file(s), %zu finding(s): %zu new, %zu baselined, "
      "%zu stale baseline entr%s\n",
      *files, findings.size(), check.fresh.size(), check.suppressed.size(),
      check.stale.size(), check.stale.size() == 1 ? "y" : "ies");
  return check.fresh.empty() && check.stale.empty() ? 0 : 1;
}
