// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Shared source-text tokenizer for the repo's compiled code tools
// (tools/lint/lpsgd_lint and tools/analyze/lpsgd_analyze). Both tools
// operate on a comment- and string-stripped copy of each file so tokens
// inside literals or documentation never trip a rule; the helpers here are
// the single implementation of that stripping, the offset -> line mapping,
// the per-line suppression grammar, the LPSGD_HOT_PATH region finder, and
// the allocation-site scanner the hot-path rules share.
#ifndef LPSGD_TOOLS_COMMON_SOURCE_TEXT_H_
#define LPSGD_TOOLS_COMMON_SOURCE_TEXT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace lpsgd {
namespace srctext {

// The zero-allocation region marker, assembled from two halves so the
// scanners never fire on the tools' own source (strings are stripped before
// scanning, but the identifier must also not appear verbatim in code
// position inside the tools).
const std::string& HotPathMarker();

// The transitive-purity escape hatch recognized by lpsgd_analyze:
// LPSGD_HOT_CALLEE_OK(fn). Assembled from halves for the same reason.
const std::string& HotCalleeOkMarker();

// Returns `contents` with comments and string/character literals blanked to
// spaces. Newlines are preserved so byte offsets keep mapping to the same
// line numbers (the copy has exactly the length of the input).
std::string StripCommentsAndStrings(std::string_view contents);

bool IsIdentChar(char c);

// True when `text[pos..pos+len)` is a whole identifier (not a substring of
// a longer one).
bool IsWholeWord(std::string_view text, size_t pos, size_t len);

// First non-whitespace position at or after `pos`.
size_t SkipSpace(std::string_view text, size_t pos);

std::string Basename(const std::string& path);
bool EndsWith(std::string_view text, std::string_view suffix);

// Offset -> 1-based line number, via precomputed line starts.
class LineIndex {
 public:
  explicit LineIndex(std::string_view contents);
  int LineAt(size_t offset) const;

 private:
  std::vector<size_t> starts_;
};

// Per-line suppressions parsed from the *original* text (suppressions live
// in comments, which the stripped copy no longer has). The grammar is
// `<tag><rule>[, <rule>...])` — e.g. "lpsgd-lint: allow(" — and a
// suppression on line N covers lines N and N+1.
class SuppressionMap {
 public:
  SuppressionMap(std::string_view contents, std::string_view tag);

  bool Allows(int line, const std::string& rule) const;

 private:
  std::map<int, std::set<std::string>> allowed_;
};

// One half-open [begin, end) byte range of a hot-path function body.
struct HotRegion {
  size_t begin = 0;
  size_t end = 0;
};

// Finds the body of each LPSGD_HOT_PATH-marked definition in the stripped
// text: from the marker, skip to the first '{' at parenthesis depth zero
// (a ';' first means the marker sits on a declaration — no body to check)
// and take the matching-brace extent. Markers on preprocessor directives
// (the #define itself) are skipped.
std::vector<HotRegion> FindHotRegions(std::string_view stripped);

// One allocation site found by ScanAllocations.
struct AllocationSite {
  size_t offset = 0;
  // Human-readable description, e.g. "`new`", ".push_back()", shared by the
  // lint's hot-path-alloc rule and the analyzer's transitive purity pass.
  std::string message;
};

// Scans `body` (stripped text) for the allocation constructs the
// zero-allocation contract bans: `new` expressions, malloc-family calls,
// container growth member calls (.resize/.push_back/...), and by-value
// std::vector declarations or temporaries. Offsets are relative to `body`.
std::vector<AllocationSite> ScanAllocations(std::string_view body);

// Reads a file fully; NotFound on open failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Lists every .h/.cc/.inc under `repo_root`/<subdir> for each of `subdirs`,
// sorted, as (absolute path, repo-root-relative path) pairs. Missing
// subdirs are skipped silently.
struct SourceFile {
  std::string path;      // absolute or cwd-relative, openable
  std::string relative;  // repo-root-relative, stable across machines
};
StatusOr<std::vector<SourceFile>> ListSourceFiles(
    const std::string& repo_root, const std::vector<std::string>& subdirs);

}  // namespace srctext
}  // namespace lpsgd

#endif  // LPSGD_TOOLS_COMMON_SOURCE_TEXT_H_
