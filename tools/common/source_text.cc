// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "common/source_text.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lpsgd {
namespace srctext {
namespace {

namespace fs = std::filesystem;

// Member calls that can grow a container (and therefore allocate) when
// invoked as `.name(` / `->name(`.
const char* const kGrowthMethods[] = {
    "resize",  "push_back", "emplace_back", "reserve",
    "assign",  "insert",    "emplace",      "append",
};

// Allocation functions banned inside hot-path regions.
const char* const kAllocFunctions[] = {"malloc", "calloc", "realloc"};

}  // namespace

const std::string& HotPathMarker() {
  static const std::string marker = std::string("LPSGD_HOT") + "_PATH";
  return marker;
}

const std::string& HotCalleeOkMarker() {
  static const std::string marker = std::string("LPSGD_HOT") + "_CALLEE_OK";
  return marker;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsWholeWord(std::string_view text, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + len;
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

size_t SkipSpace(std::string_view text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string StripCommentsAndStrings(std::string_view contents) {
  std::string out(contents);
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" for the active raw string
  for (size_t i = 0; i < contents.size(); ++i) {
    char c = contents[i];
    char next = (i + 1 < contents.size()) ? contents[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(contents[i - 1]))) {
          size_t open = contents.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_close = ")" +
                        std::string(contents.substr(i + 2, open - i - 2)) +
                        "\"";
            for (size_t j = i; j <= open; ++j) out[j] = ' ';
            i = open;
            state = State::kRaw;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else if (c == '\\' && next == '\n') {
          // Line continuation keeps the comment going; preserve newline.
          out[i] = ' ';
          ++i;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0') {
            if (next != '\n') out[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (contents.compare(i, raw_close.size(), raw_close) == 0) {
          for (size_t j = 0; j < raw_close.size(); ++j) out[i + j] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

LineIndex::LineIndex(std::string_view contents) {
  starts_.push_back(0);
  for (size_t i = 0; i < contents.size(); ++i) {
    if (contents[i] == '\n') starts_.push_back(i + 1);
  }
}

int LineIndex::LineAt(size_t offset) const {
  auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
  return static_cast<int>(it - starts_.begin());
}

SuppressionMap::SuppressionMap(std::string_view contents,
                               std::string_view tag) {
  int line = 1;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string_view::npos) eol = contents.size();
    std::string_view text = contents.substr(pos, eol - pos);
    size_t at = text.find(tag);
    while (at != std::string_view::npos) {
      size_t start = at + tag.size();
      size_t close = text.find(')', start);
      if (close == std::string_view::npos) break;
      std::string rules(text.substr(start, close - start));
      std::stringstream ss(rules);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty()) allowed_[line].insert(rule);
      }
      at = text.find(tag, close);
    }
    pos = eol + 1;
    ++line;
  }
}

bool SuppressionMap::Allows(int line, const std::string& rule) const {
  for (int l : {line, line - 1}) {
    auto it = allowed_.find(l);
    if (it != allowed_.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

std::vector<HotRegion> FindHotRegions(std::string_view stripped) {
  const std::string& marker_token = HotPathMarker();
  std::vector<HotRegion> regions;
  size_t pos = 0;
  while ((pos = stripped.find(marker_token, pos)) !=
         std::string_view::npos) {
    const size_t marker = pos;
    pos += marker_token.size();
    // Word boundaries: skip LPSGD_HOT_PATHS or FOO_LPSGD_HOT_PATH.
    if (marker > 0 && IsIdentChar(stripped[marker - 1])) continue;
    if (pos < stripped.size() && IsIdentChar(stripped[pos])) continue;
    // Skip the #define in thread_annotations.h (and any other directive).
    size_t bol = stripped.rfind('\n', marker);
    bol = (bol == std::string_view::npos) ? 0 : bol + 1;
    std::string_view head = stripped.substr(bol, marker - bol);
    if (head.find_first_not_of(" \t") != std::string_view::npos &&
        head[head.find_first_not_of(" \t")] == '#') {
      continue;
    }
    int paren_depth = 0;
    size_t i = pos;
    for (; i < stripped.size(); ++i) {
      char c = stripped[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) continue;
      if (c == ';') break;  // declaration only
      if (c == '{') {
        int brace_depth = 1;
        size_t body = i + 1;
        size_t j = body;
        for (; j < stripped.size() && brace_depth > 0; ++j) {
          if (stripped[j] == '{') ++brace_depth;
          if (stripped[j] == '}') --brace_depth;
        }
        regions.push_back({body, j});
        pos = j;
        break;
      }
    }
  }
  return regions;
}

std::vector<AllocationSite> ScanAllocations(std::string_view body) {
  std::vector<AllocationSite> sites;

  // `new` expressions.
  for (size_t pos = 0;
       (pos = body.find("new", pos)) != std::string_view::npos; pos += 3) {
    if (IsWholeWord(body, pos, 3)) {
      sites.push_back({pos, "`new`"});
    }
  }

  // malloc-family calls.
  for (const char* fn : kAllocFunctions) {
    const size_t len = std::string_view(fn).size();
    for (size_t pos = 0;
         (pos = body.find(fn, pos)) != std::string_view::npos; pos += len) {
      if (!IsWholeWord(body, pos, len)) continue;
      if (SkipSpace(body, pos + len) < body.size() &&
          body[SkipSpace(body, pos + len)] == '(') {
        sites.push_back({pos, std::string(fn) + "()"});
      }
    }
  }

  // Container growth member calls: `.name(` / `->name(`.
  for (const char* method : kGrowthMethods) {
    const size_t len = std::string_view(method).size();
    for (size_t pos = 0;
         (pos = body.find(method, pos)) != std::string_view::npos;
         pos += len) {
      if (!IsWholeWord(body, pos, len)) continue;
      bool member = false;
      if (pos >= 1 && body[pos - 1] == '.') member = true;
      if (pos >= 2 && body[pos - 2] == '-' && body[pos - 1] == '>') {
        member = true;
      }
      if (!member) continue;
      size_t after = SkipSpace(body, pos + len);
      if (after < body.size() && body[after] == '(') {
        sites.push_back(
            {pos, std::string(".") + method + "() can grow a container"});
      }
    }
  }

  // By-value std::vector declarations or temporaries. Pointer and
  // reference declarations (`std::vector<float>* out`) are the hot
  // path's calling convention and are allowed; so are nested template
  // arguments (closing '>' , ',' follow).
  static constexpr std::string_view kVec = "std::vector";
  for (size_t pos = 0;
       (pos = body.find(kVec, pos)) != std::string_view::npos;
       pos += kVec.size()) {
    if (!IsWholeWord(body, pos, kVec.size())) continue;
    size_t angle = SkipSpace(body, pos + kVec.size());
    if (angle >= body.size() || body[angle] != '<') continue;
    int depth = 0;
    size_t j = angle;
    for (; j < body.size(); ++j) {
      if (body[j] == '<') ++depth;
      if (body[j] == '>' && --depth == 0) break;
    }
    if (j >= body.size()) continue;
    size_t next = SkipSpace(body, j + 1);
    if (next >= body.size()) continue;
    char c = body[next];
    if (IsIdentChar(c) || c == '(' || c == '{') {
      sites.push_back(
          {pos,
           "by-value std::vector (pass a pointer/reference to a reused "
           "buffer)"});
    }
  }

  std::sort(sites.begin(), sites.end(),
            [](const AllocationSite& a, const AllocationSite& b) {
              return a.offset < b.offset;
            });
  return sites;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

StatusOr<std::vector<SourceFile>> ListSourceFiles(
    const std::string& repo_root, const std::vector<std::string>& subdirs) {
  const fs::path root(repo_root);
  std::vector<fs::path> files;
  for (const std::string& subdir : subdirs) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      // .inc: textually-included kernel fragments (SIMD lane helpers) —
      // they hold intrinsics and hot-path bodies, so the tools treat them
      // like source.
      if (ext == ".h" || ext == ".cc" || ext == ".inc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<SourceFile> out;
  out.reserve(files.size());
  for (const fs::path& file : files) {
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    out.push_back({file.string(),
                   ec ? file.generic_string() : rel.generic_string()});
  }
  return out;
}

}  // namespace srctext
}  // namespace lpsgd
