// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/run_report.h"

#include <fstream>

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {
namespace obs {

RunReport::RunReport(bool enabled) : enabled_(enabled) {}

RunReport& RunReport::Global() {
  static RunReport* const kReport = new RunReport(/*enabled=*/false);
  return *kReport;
}

void RunReport::set_binary(std::string_view name) {
  MutexLock lock(mu_);
  binary_.assign(name);
}

void RunReport::SetMeta(std::string_view key, std::string_view value) {
  MutexLock lock(mu_);
  meta_.Set(std::string(key), JsonValue(std::string(value)));
}

void RunReport::AddEntry(std::string_view kind, JsonValue fields) {
  if (!enabled()) return;
  CHECK(fields.kind() == JsonValue::Kind::kObject)
      << "run-report entry must be a JSON object";
  fields.Set("kind", std::string(kind));
  MutexLock lock(mu_);
  entries_.Append(std::move(fields));
}

size_t RunReport::entry_count() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void RunReport::Reset() {
  MutexLock lock(mu_);
  meta_ = JsonValue::Object();
  entries_ = JsonValue::Array();
}

JsonValue RunReport::ToJson(const MetricsRegistry* metrics) const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", int64_t{1});
  root.Set("binary", binary_);
  root.Set("meta", meta_);
  root.Set("entries", entries_);
  if (metrics != nullptr) root.Set("metrics", metrics->ToJson());
  return root;
}

Status RunReport::Write(std::ostream& os,
                        const MetricsRegistry* metrics) const {
  os << ToJson(metrics).Dump(1) << "\n";
  if (!os.good()) return InternalError("run-report stream write failed");
  return OkStatus();
}

Status RunReport::WriteFile(const std::string& path,
                            const MetricsRegistry* metrics) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return InvalidArgumentError(StrCat("cannot open report file: ", path));
  }
  return Write(file, metrics);
}

}  // namespace obs
}  // namespace lpsgd
