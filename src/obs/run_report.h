// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Structured run reports: a machine-readable record of everything a run
// measured, written as one JSON document with a stable schema. Producers
// (PerfModel, SyncTrainer, benches) append tagged entries to the global
// report while it is enabled; the owning binary writes the document out at
// exit (bench binaries do this via --metrics_out=<path>).
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "binary": "<producer binary name>",
//     "meta": {"<key>": "<value>", ...},
//     "entries": [{"kind": "<entry kind>", ...fields...}, ...],
//     "metrics": {<MetricsRegistry::ToJson()>}   // when a registry given
//   }
// Entry kinds emitted by the built-in instrumentation:
//   "perf_estimate" — one PerfModel::Estimate result (network, codec,
//                     primitive, gpus, batch, compute/encode/comm seconds,
//                     wire/raw bytes, samples/sec);
//   "epoch"         — one SyncTrainer epoch (losses, accuracies, virtual
//                     and wall seconds, comm split and byte counts).
#ifndef LPSGD_OBS_RUN_REPORT_H_
#define LPSGD_OBS_RUN_REPORT_H_

#include <atomic>
#include <ostream>
#include <string>
#include <string_view>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace obs {

class RunReport {
 public:
  // Process-wide report fed by built-in instrumentation. Starts disabled;
  // a bench's --metrics_out flag (or an embedder) enables it.
  static RunReport& Global();

  explicit RunReport(bool enabled = true);
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void set_binary(std::string_view name) LPSGD_EXCLUDES(mu_);
  void SetMeta(std::string_view key, std::string_view value)
      LPSGD_EXCLUDES(mu_);

  // Appends one entry; `fields` must be a JSON object, `kind` is stamped
  // into it. No-op while disabled.
  void AddEntry(std::string_view kind, JsonValue fields) LPSGD_EXCLUDES(mu_);

  size_t entry_count() const LPSGD_EXCLUDES(mu_);
  // Drops entries and meta, keeps binary name and flag.
  void Reset() LPSGD_EXCLUDES(mu_);

  // Assembles the full document; pass the registry whose metrics should be
  // embedded (nullptr to omit the "metrics" section).
  JsonValue ToJson(const MetricsRegistry* metrics) const LPSGD_EXCLUDES(mu_);
  [[nodiscard]] Status Write(std::ostream& os,
                             const MetricsRegistry* metrics) const;
  [[nodiscard]] Status WriteFile(const std::string& path,
                                 const MetricsRegistry* metrics) const;

 private:
  std::atomic<bool> enabled_;
  mutable Mutex mu_;
  std::string binary_ LPSGD_GUARDED_BY(mu_);
  JsonValue meta_ LPSGD_GUARDED_BY(mu_) = JsonValue::Object();
  JsonValue entries_ LPSGD_GUARDED_BY(mu_) = JsonValue::Array();
};

// Convenience: appends to the global report (no-op while it is disabled).
inline void RecordEntry(std::string_view kind, JsonValue fields) {
  RunReport::Global().AddEntry(kind, std::move(fields));
}
inline bool ReportEnabled() { return RunReport::Global().enabled(); }

}  // namespace obs
}  // namespace lpsgd

#endif  // LPSGD_OBS_RUN_REPORT_H_
