// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "base/strings.h"

namespace lpsgd {
namespace obs {

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  CHECK(kind_ == Kind::kBool) << "JsonValue is not a bool";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  CHECK(kind_ == Kind::kInt) << "JsonValue is not a number";
  return int_;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  CHECK(kind_ == Kind::kDouble) << "JsonValue is not a number";
  return double_;
}

const std::string& JsonValue::AsString() const {
  CHECK(kind_ == Kind::kString) << "JsonValue is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  return object_;
}

void JsonValue::Append(JsonValue value) {
  CHECK(kind_ == Kind::kArray) << "Append on non-array JsonValue";
  array_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

void JsonValue::Set(std::string key, JsonValue value) {
  CHECK(kind_ == Kind::kObject) << "Set on non-object JsonValue";
  object_[std::move(key)] = std::move(value);
}

bool JsonValue::Has(const std::string& key) const {
  CHECK(kind_ == Kind::kObject) << "Has on non-object JsonValue";
  return object_.find(key) != object_.end();
}

const JsonValue& JsonValue::At(const std::string& key) const {
  CHECK(kind_ == Kind::kObject) << "At on non-object JsonValue";
  auto it = object_.find(key);
  CHECK(it != object_.end()) << "missing JSON key: " << key;
  return it->second;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double value) {
  // JSON has no inf/NaN; emit null so the document stays parseable.
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += StrCat(int_);
      return;
    case Kind::kDouble:
      AppendNumber(out, double_);
      return;
    case Kind::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        if (indent > 0) Indent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        if (indent > 0) Indent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(key);
        *out += indent > 0 ? "\": " : "\":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    LPSGD_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(std::string_view message) const {
    return InvalidArgumentError(
        StrCat("JSON parse error at offset ", pos_, ": ", message));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      LPSGD_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return obj;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      LPSGD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LPSGD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return arr;
    while (true) {
      LPSGD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs not combined;
          // metric/trace names are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return Error("malformed number");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace obs
}  // namespace lpsgd
