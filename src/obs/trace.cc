// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/trace.h"

#include <cstdlib>
#include <fstream>

#include "base/strings.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace obs {

Tracer::Tracer(bool enabled) : enabled_(enabled) {}

Tracer& Tracer::Global() {
  static Tracer* const kTracer = [] {
    const char* env = std::getenv("LPSGD_TRACE");
    const bool enabled =
        env != nullptr && env[0] != '\0' && std::strtol(env, nullptr, 10) != 0;
    return new Tracer(enabled);
  }();
  return *kTracer;
}

uint64_t Tracer::Begin(std::string_view name, std::string_view category) {
  if (!enabled()) return 0;
  const double now = MonotonicSeconds();
  MutexLock lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return 0;
  }
  TraceEvent event;
  event.name.assign(name);
  event.category.assign(category);
  event.wall_start = now;
  events_.push_back(std::move(event));
  return events_.size();  // index + 1; 0 stays the "disabled" handle
}

void Tracer::End(uint64_t handle) {
  if (handle == 0) return;
  const double now = MonotonicSeconds();
  MutexLock lock(mu_);
  if (handle > events_.size()) return;  // Reset() since Begin()
  TraceEvent& event = events_[handle - 1];
  event.wall_duration = now - event.wall_start;
}

void Tracer::EndWithVirtual(uint64_t handle, double virtual_start,
                            double virtual_end) {
  if (handle == 0) return;
  End(handle);
  MutexLock lock(mu_);
  if (handle > events_.size()) return;
  events_[handle - 1].virtual_start = virtual_start;
  events_[handle - 1].virtual_end = virtual_end;
}

void Tracer::EndWithBytes(uint64_t handle, int64_t bytes) {
  if (handle == 0) return;
  End(handle);
  MutexLock lock(mu_);
  if (handle > events_.size()) return;
  events_[handle - 1].arg_bytes = bytes;
}

size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

int64_t Tracer::dropped_count() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(mu_);
  return events_;
}

void Tracer::Reset() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

JsonValue Tracer::ToChromeTraceJson() const {
  MutexLock lock(mu_);
  JsonValue trace_events = JsonValue::Array();
  for (const TraceEvent& event : events_) {
    JsonValue e = JsonValue::Object();
    e.Set("name", event.name);
    e.Set("cat", event.category);
    e.Set("ph", "X");
    e.Set("pid", int64_t{1});
    e.Set("tid", int64_t{1});
    e.Set("ts", event.wall_start * 1e6);        // microseconds
    e.Set("dur", event.wall_duration * 1e6);
    JsonValue args = JsonValue::Object();
    if (event.virtual_start >= 0.0) {
      args.Set("virtual_start_s", event.virtual_start);
      args.Set("virtual_end_s", event.virtual_end);
      args.Set("virtual_duration_s",
               event.virtual_end - event.virtual_start);
    }
    if (event.arg_bytes >= 0) args.Set("bytes", event.arg_bytes);
    if (args.size() > 0) e.Set("args", std::move(args));
    trace_events.Append(std::move(e));
  }
  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", "ms");
  if (dropped_ > 0) root.Set("lpsgd_dropped_events", dropped_);
  return root;
}

Status Tracer::WriteChromeTrace(std::ostream& os) const {
  os << ToChromeTraceJson().Dump(1) << "\n";
  if (!os.good()) return InternalError("trace stream write failed");
  return OkStatus();
}

Status Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return InvalidArgumentError(StrCat("cannot open trace file: ", path));
  }
  return WriteChromeTrace(file);
}

}  // namespace obs
}  // namespace lpsgd
