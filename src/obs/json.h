// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// A minimal JSON document model for the observability layer: metrics
// exports, Chrome trace files, and structured run reports are all built
// from JsonValue trees and serialized with Dump(). Parse() exists so tests
// (and tools) can load emitted documents back and assert on structure; it
// accepts strict RFC 8259 JSON, nothing more.
#ifndef LPSGD_OBS_JSON_H_
#define LPSGD_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace lpsgd {
namespace obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}     // NOLINT
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {} // NOLINT
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  JsonValue(const char* value)                                       // NOLINT
      : kind_(Kind::kString), string_(value) {}
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}

  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  // Typed accessors; CHECK-fail on kind mismatch (numbers interconvert).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  // Array building (CHECK-fails unless kind is kArray).
  void Append(JsonValue value);
  size_t size() const;

  // Object building / lookup (CHECK-fails unless kind is kObject).
  void Set(std::string key, JsonValue value);
  bool Has(const std::string& key) const;
  // CHECK-fails when absent; use Has() first for optional fields.
  const JsonValue& At(const std::string& key) const;

  // Serializes to compact JSON; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  // Strict JSON parse of the full input (trailing garbage is an error).
  [[nodiscard]] static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Escapes `text` as the inside of a JSON string literal (no quotes).
std::string JsonEscape(std::string_view text);

}  // namespace obs
}  // namespace lpsgd

#endif  // LPSGD_OBS_JSON_H_
