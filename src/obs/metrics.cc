// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "base/logging.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "base/thread_pool.h"

namespace lpsgd {
namespace obs {
namespace {

// Wires the thread pool's pool/* instrumentation into the global registry
// at static-initialization time (lpsgd_base cannot depend on lpsgd_obs, so
// the pool exposes raw function-pointer hooks instead). Both hooks no-op
// behind the registry's single enabled-flag branch.
struct PoolMetricHookRegistrar {
  PoolMetricHookRegistrar() {
    pool_internal::SetMetricHooks(
        [](const char* name, int64_t delta) {
          MetricsRegistry::Global().Count(name, delta);
        },
        [](const char* name, double value) {
          MetricsRegistry::Global().Observe(name, value);
        });
  }
};
const PoolMetricHookRegistrar pool_metric_hook_registrar;

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count)));
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] < rank) {
      seen += counts[b];
      continue;
    }
    // Bucket b holds the target. Interpolate between its lower and upper
    // bound by the rank's position inside the bucket; the underflow bucket
    // starts at min, the overflow bucket ends at max.
    const double lower = b == 0 ? min : bounds[b - 1];
    const double upper = b < bounds.size() ? bounds[b] : max;
    const double fraction = counts[b] > 0
                                ? static_cast<double>(rank - seen) /
                                      static_cast<double>(counts[b])
                                : 1.0;
    const double estimate = lower + (upper - lower) * fraction;
    return std::min(max, std::max(min, estimate));
  }
  return max;
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kRegistry = [] {
    const char* env = std::getenv("LPSGD_OBS");
    const bool enabled =
        env != nullptr && env[0] != '\0' && std::strtol(env, nullptr, 10) != 0;
    return new MetricsRegistry(enabled);
  }();
  return *kRegistry;
}

const std::vector<double>& MetricsRegistry::DefaultBounds() {
  static const std::vector<double>& kBounds = *new std::vector<double>([] {
    std::vector<double> bounds;
    double b = 1e-9;
    for (int i = 0; i < 36; ++i) {  // 1e-9 * 4^35 ~= 1.2e12
      bounds.push_back(b);
      b *= 4.0;
    }
    return bounds;
  }());
  return kBounds;
}

void MetricsRegistry::Histogram::Record(double value) {
  if (counts.empty()) counts.assign(bounds.size() + 1, 0);
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++counts[static_cast<size_t>(it - bounds.begin())];
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

void MetricsRegistry::Count(std::string_view name, int64_t delta) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  ObserveWithBounds(name, value, DefaultBounds());
}

void MetricsRegistry::ObserveWithBounds(std::string_view name, double value,
                                        const std::vector<double>& bounds) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  }
  it->second.Record(value);
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::HistogramFor(std::string_view name) const {
  MutexLock lock(mu_);
  HistogramSnapshot snap;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return snap;
  const Histogram& h = it->second;
  snap.bounds = h.bounds;
  snap.counts = h.counts.empty() ? std::vector<int64_t>(h.bounds.size() + 1, 0)
                                 : h.counts;
  snap.count = h.count;
  snap.sum = h.sum;
  snap.min = h.min;
  snap.max = h.max;
  return snap;
}

std::vector<std::string> MetricsRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, unused] : counters_) names.push_back(name);
  for (const auto& [name, unused] : gauges_) names.push_back(name);
  for (const auto& [name, unused] : histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : counters_) counters.Set(name, value);
  root.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : gauges_) gauges.Set(name, value);
  root.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.bounds = h.bounds;
    snap.counts = h.counts.empty()
                      ? std::vector<int64_t>(h.bounds.size() + 1, 0)
                      : h.counts;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    JsonValue entry = JsonValue::Object();
    entry.Set("count", h.count);
    entry.Set("sum", h.sum);
    entry.Set("min", h.min);
    entry.Set("max", h.max);
    entry.Set("mean", h.count > 0 ? h.sum / h.count : 0.0);
    entry.Set("p50", snap.Quantile(0.50));
    entry.Set("p95", snap.Quantile(0.95));
    entry.Set("p99", snap.Quantile(0.99));
    JsonValue bounds = JsonValue::Array();
    for (double b : h.bounds) bounds.Append(b);
    entry.Set("bounds", std::move(bounds));
    JsonValue counts = JsonValue::Array();
    if (h.counts.empty()) {
      for (size_t i = 0; i < h.bounds.size() + 1; ++i) counts.Append(int64_t{0});
    } else {
      for (int64_t c : h.counts) counts.Append(c);
    }
    entry.Set("counts", std::move(counts));
    histograms.Set(name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

void MetricsRegistry::PrintTable(std::ostream& os) const {
  MutexLock lock(mu_);
  TablePrinter table(
      {"Metric", "Kind", "Value", "Count", "Mean", "p50", "p95", "p99"});
  for (const auto& [name, value] : counters_) {
    table.AddRow({name, "counter", StrCat(value), "", "", "", "", ""});
  }
  for (const auto& [name, value] : gauges_) {
    table.AddRow({name, "gauge", FormatDouble(value, 6), "", "", "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.bounds = h.bounds;
    snap.counts = h.counts.empty()
                      ? std::vector<int64_t>(h.bounds.size() + 1, 0)
                      : h.counts;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    table.AddRow({name, "histogram", FormatDouble(h.sum, 6), StrCat(h.count),
                  FormatDouble(h.count > 0 ? h.sum / h.count : 0.0, 9),
                  FormatDouble(snap.Quantile(0.50), 9),
                  FormatDouble(snap.Quantile(0.95), 9),
                  FormatDouble(snap.Quantile(0.99), 9)});
  }
  table.Print(os);
}

}  // namespace obs
}  // namespace lpsgd
