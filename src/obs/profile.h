// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Step-phase attribution profiler and fault flight recorder (DESIGN.md
// "Profiling and attribution").
//
// The profiler answers the paper's central empirical question — where does
// a training step's time go as communication precision drops — by folding
// scoped phase measurements (forward, backward, optimizer, encode, wire,
// decode, sum, retry) into one TimeBreakdown per step, in both wall and
// virtual time. Producers accumulate into per-thread-slot PhaseTimes
// scratch (a POD struct of fixed arrays, so the enabled path stays
// zero-allocation under the LPSGD_HOT_PATH lint) and merge serially into
// the global Profiler at step boundaries. Like the metrics registry, the
// global profiler starts disabled and every PhaseTimer costs exactly one
// relaxed atomic load while it stays so (no clock reads). Enable
// programmatically or with the LPSGD_PROFILE environment variable.
//
// The flight recorder keeps a fixed-capacity ring of recent spans plus
// tracked-counter deltas, and dumps the whole history as one JSON document
// whenever a gradient exchange returns non-OK (DATA_LOSS,
// DEADLINE_EXCEEDED, ABORTED, ...) — so every chaos failure ships with the
// context that led up to it. Enable with LPSGD_FLIGHT_RECORDER (the value
// "1" keeps dumps in memory; any other value is used as the dump-file
// prefix).
#ifndef LPSGD_OBS_PROFILE_H_
#define LPSGD_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lpsgd {
namespace obs {

// The phases one synchronous training step decomposes into (Algorithm 1:
// local compute, encode, exchange, decode, aggregate, update — plus the
// retry layer's bookkeeping). Plain enum: values index fixed arrays.
enum ProfilePhase : int {
  kPhaseForward = 0,   // input slicing + forward pass + loss
  kPhaseBackward = 1,  // backward pass
  kPhaseOptimizer = 2, // gradient scaling + momentum step
  kPhaseEncode = 3,    // codec Encode kernels
  kPhaseWire = 4,      // wall: host copies standing in for the wire;
                       // virtual: the cost model's comm_seconds
  kPhaseDecode = 5,    // codec Decode kernels
  kPhaseSum = 6,       // aggregate summation + exchange staging
  kPhaseRetry = 7,     // retry snapshots/restores; virtual: backoff penalty
  kNumProfilePhases = 8,
};

// "forward", "backward", ... (stable names used in JSON and tables).
const char* ProfilePhaseName(int phase);

// Per-slot phase accumulator: fixed POD arrays only, so instances may live
// in hot-path workspaces and be written from LPSGD_HOT_PATH regions
// without allocating. One PhaseTimes is single-threaded scratch — keep one
// per thread-pool slot (ThreadPool::CurrentSlot()) and merge serially.
struct PhaseTimes {
  double wall[kNumProfilePhases] = {};
  double virt[kNumProfilePhases] = {};
  int64_t calls[kNumProfilePhases] = {};

  void Clear() {
    for (int p = 0; p < kNumProfilePhases; ++p) {
      wall[p] = 0.0;
      virt[p] = 0.0;
      calls[p] = 0;
    }
  }

  LPSGD_HOT_PATH
  void Add(int phase, double wall_seconds) {
    wall[phase] += wall_seconds;
    calls[phase] += 1;
  }

  void AddVirtual(int phase, double virtual_seconds) {
    virt[phase] += virtual_seconds;
  }

  void Merge(const PhaseTimes& other) {
    for (int p = 0; p < kNumProfilePhases; ++p) {
      wall[p] += other.wall[p];
      virt[p] += other.virt[p];
      calls[p] += other.calls[p];
    }
  }

  double WallTotal() const {
    double total = 0.0;
    for (int p = 0; p < kNumProfilePhases; ++p) total += wall[p];
    return total;
  }

  double VirtualTotal() const {
    double total = 0.0;
    for (int p = 0; p < kNumProfilePhases; ++p) total += virt[p];
    return total;
  }
};

// One step's (or an aggregate's) attributed time. wall_total is the
// measured BeginStep..EndStep wall span; AttributedWall() is the sum of
// the per-phase wall times inside it. Coverage() is their ratio — the
// completeness the acceptance test asserts is >= 0.99. Under a parallel
// ExecutionContext the attributed sum counts every worker's time, so
// coverage may legitimately exceed 1.
struct TimeBreakdown {
  int64_t step = -1;          // -1 for aggregated totals
  int64_t steps = 0;          // number of steps folded in (1 per step)
  double wall_start = 0.0;    // MonotonicSeconds at BeginStep
  double wall_total = 0.0;    // measured step wall seconds
  double virtual_total = 0.0; // simulator seconds charged to the step
  PhaseTimes phases;

  double AttributedWall() const { return phases.WallTotal(); }
  // Fraction of the measured wall span the phases account for; 1.0 when
  // nothing was measured.
  double Coverage() const {
    return wall_total > 0.0 ? AttributedWall() / wall_total : 1.0;
  }
  // {step, wall_total, virtual_total, attributed_wall, coverage,
  //  phases: {<name>: {wall, virtual, calls, wall_share}}}.
  JsonValue ToJson() const;
};

// Serial fold point for the per-slot accumulators. The trainer calls
// BeginStep/EndStep around each iteration; producers in between either
// merge whole PhaseTimes scratch blocks (AddPhases) or add single
// measurements. EndStep folds everything into a TimeBreakdown, appends it
// to a bounded history, merges the running totals, feeds the flight
// recorder, and emits a run-report entry while reporting is enabled.
class Profiler {
 public:
  // Process-wide profiler. Starts disabled unless LPSGD_PROFILE is set to
  // a nonzero value.
  static Profiler& Global();

  // Locally-constructed profilers start enabled (tests, embedders).
  explicit Profiler(bool enabled = true);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // --- Step lifecycle (no-ops while disabled) ---------------------------

  // Opens step `step`, discarding any step left open (a failed iteration
  // is simply never EndStep'ed; its partial phases are dropped).
  void BeginStep(int64_t step) LPSGD_EXCLUDES(mu_);
  // Merges one slot's accumulated phases into the open step.
  void AddPhases(const PhaseTimes& delta) LPSGD_EXCLUDES(mu_);
  void AddPhase(int phase, double wall_seconds) LPSGD_EXCLUDES(mu_);
  void AddVirtual(int phase, double virtual_seconds) LPSGD_EXCLUDES(mu_);
  // Closes the open step: wall_total is measured against BeginStep's
  // clock, `virtual_seconds` is the simulator time the step charged.
  void EndStep(double virtual_seconds) LPSGD_EXCLUDES(mu_);

  // --- Inspection -------------------------------------------------------

  int64_t steps_recorded() const LPSGD_EXCLUDES(mu_);
  TimeBreakdown LastStep() const LPSGD_EXCLUDES(mu_);
  // Running totals over every recorded step (step == -1).
  TimeBreakdown Totals() const LPSGD_EXCLUDES(mu_);
  // Most recent steps, oldest first (bounded history of kMaxStepHistory).
  std::vector<TimeBreakdown> Steps() const LPSGD_EXCLUDES(mu_);

  // {schema_version, kind: "profile", steps_recorded, totals, steps: []}.
  JsonValue ToJson() const LPSGD_EXCLUDES(mu_);
  [[nodiscard]] Status WriteFile(const std::string& path) const;
  // Chrome trace_event JSON: one "X" event per (step, phase) laid out on
  // the step's measured wall span (tid = phase lane), loadable in
  // chrome://tracing or Perfetto next to the obs::Tracer export.
  JsonValue ToChromeTraceJson() const LPSGD_EXCLUDES(mu_);
  [[nodiscard]] Status WriteChromeTraceFile(const std::string& path) const;
  // Aligned per-phase table of the running totals (wall, share, virtual,
  // calls) — the breakdown train_cli prints.
  void PrintTable(std::ostream& os) const LPSGD_EXCLUDES(mu_);

  // Drops all recorded state (the enabled flag is preserved).
  void Reset() LPSGD_EXCLUDES(mu_);

 private:
  // Steps kept for JSON/trace export; older steps fall out of the window
  // but stay folded into Totals().
  static constexpr size_t kMaxStepHistory = 4096;

  std::atomic<bool> enabled_;
  mutable Mutex mu_;
  bool step_open_ LPSGD_GUARDED_BY(mu_) = false;
  int64_t current_step_ LPSGD_GUARDED_BY(mu_) = -1;
  double step_wall_start_ LPSGD_GUARDED_BY(mu_) = 0.0;
  PhaseTimes current_ LPSGD_GUARDED_BY(mu_);
  TimeBreakdown totals_ LPSGD_GUARDED_BY(mu_);
  TimeBreakdown last_ LPSGD_GUARDED_BY(mu_);
  // Ring of the most recent kMaxStepHistory breakdowns.
  std::vector<TimeBreakdown> history_ LPSGD_GUARDED_BY(mu_);
  size_t history_next_ LPSGD_GUARDED_BY(mu_) = 0;
  int64_t steps_recorded_ LPSGD_GUARDED_BY(mu_) = 0;
};

inline bool ProfileEnabled() { return Profiler::Global().enabled(); }

// RAII phase span writing into a per-slot PhaseTimes. While the global
// profiler is disabled the sink is dropped at construction and the clock
// is never read — the whole cost is one relaxed load per scope, which the
// overhead test bounds at <= 1% on the codec micro-bench.
class PhaseTimer {
 public:
  LPSGD_HOT_PATH
  PhaseTimer(PhaseTimes* sink, int phase)
      : sink_(ProfileEnabled() ? sink : nullptr),
        phase_(phase),
        start_(sink_ != nullptr ? MonotonicSeconds() : 0.0) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  LPSGD_HOT_PATH
  ~PhaseTimer() {
    if (sink_ != nullptr) sink_->Add(phase_, MonotonicSeconds() - start_);
  }

 private:
  PhaseTimes* sink_;
  int phase_;
  double start_;
};

// One flight-recorder ring entry. Fixed-size POD — recording never
// allocates; labels longer than the field are truncated.
struct FlightRecord {
  int64_t sequence = 0;       // monotonically increasing record id
  int64_t step = -1;          // training iteration, -1 when unknown
  int phase = -1;             // ProfilePhase, -1 for non-phase records
  int matrix = -1;
  int rank = -1;
  double wall_time = 0.0;     // MonotonicSeconds when recorded
  double wall_seconds = 0.0;  // span duration (0 for point events)
  double virtual_seconds = 0.0;
  char label[24] = {};        // e.g. "step", "exchange_ok", "inject:fail"
};

// Fixed-capacity ring of recent FlightRecords plus tracked-counter deltas.
// OnExchangeFailure() freezes the history into one JSON dump — written to
// "<prefix>.<n>.json" when an output prefix is set, and always retrievable
// via LastDump() — exactly once per non-OK exchange.
class FlightRecorder {
 public:
  // Process-wide recorder. Starts disabled unless LPSGD_FLIGHT_RECORDER is
  // set ("1" enables in-memory; any other non-empty value also becomes the
  // dump-file prefix).
  static FlightRecorder& Global();

  // Locally-constructed recorders start enabled (tests, embedders).
  explicit FlightRecorder(bool enabled = true);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Dump files are written to "<prefix>.<dump index>.json"; empty (the
  // default) keeps dumps in memory only.
  void set_output_prefix(std::string prefix) LPSGD_EXCLUDES(mu_);

  // Appends one record (no-op while disabled). Cheap but not free (one
  // mutex): call at step/exchange granularity, not per element.
  void Record(int64_t step, int phase, int matrix, int rank,
              double wall_seconds, double virtual_seconds,
              std::string_view label) LPSGD_EXCLUDES(mu_);

  // The auto-dump hook: the exchange observer calls this for every non-OK
  // AllReduce below the retry layer (and the retry layer for its own
  // synthesized deadline overruns). Builds the dump document, appends a
  // "trigger" record, writes the dump file when a prefix is set, and bumps
  // dump_count(). No-op while disabled.
  void OnExchangeFailure(const Status& status, int64_t iteration)
      LPSGD_EXCLUDES(mu_);
  // Purity exemption: runs only when an exchange already failed, never on
  // the fault-free steady-state path, so its dump allocations are fine.
  LPSGD_HOT_CALLEE_OK(OnExchangeFailure);

  int64_t record_count() const LPSGD_EXCLUDES(mu_);
  int64_t dump_count() const LPSGD_EXCLUDES(mu_);
  // The most recent dump document (null before the first dump). Schema:
  //   {schema_version: 1, kind: "flight_record",
  //    trigger: {code, code_name, message, iteration, sequence},
  //    metric_deltas: {<counter>: <delta since previous dump>},
  //    records: [{sequence, step, phase, phase_name, matrix, rank,
  //               wall_time, wall_seconds, virtual_seconds, label}]}
  JsonValue LastDump() const LPSGD_EXCLUDES(mu_);

  // Drops records, dumps, and counter baselines (flag and prefix kept).
  void Reset() LPSGD_EXCLUDES(mu_);

  // Ring capacity: records beyond this overwrite the oldest.
  static constexpr size_t kCapacity = 1024;

 private:
  JsonValue DumpLocked(const Status& status, int64_t iteration)
      LPSGD_REQUIRES(mu_);

  std::atomic<bool> enabled_;
  mutable Mutex mu_;
  std::string prefix_ LPSGD_GUARDED_BY(mu_);
  std::vector<FlightRecord> ring_ LPSGD_GUARDED_BY(mu_);  // kCapacity slots
  int64_t next_sequence_ LPSGD_GUARDED_BY(mu_) = 0;
  int64_t dumps_ LPSGD_GUARDED_BY(mu_) = 0;
  JsonValue last_dump_ LPSGD_GUARDED_BY(mu_);
  // Tracked-counter values at the previous dump, for the delta section.
  std::vector<int64_t> metric_baseline_ LPSGD_GUARDED_BY(mu_);
};

inline bool FlightRecorderEnabled() {
  return FlightRecorder::Global().enabled();
}

}  // namespace obs
}  // namespace lpsgd

#endif  // LPSGD_OBS_PROFILE_H_
