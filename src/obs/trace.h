// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Scoped-span tracer with dual clocks. Each span records its wall-clock
// start/duration (host time) and, when the caller supplies them, the
// simulator's virtual-clock start/end — so a trace of one training run
// shows both where the host spent its time and where the modeled cluster
// would have spent its (Figures 6-9 are exactly this split, per
// iteration). Traces export as Chrome trace_event JSON ("X" complete
// events) loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Like the metrics registry, the global tracer is disabled by default and
// every hook early-exits on one relaxed atomic load. Enable
// programmatically or with the LPSGD_TRACE environment variable (nonzero).
#ifndef LPSGD_OBS_TRACE_H_
#define LPSGD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/json.h"

namespace lpsgd {
namespace obs {

// One completed span. Wall times are in seconds on the process-local
// monotonic clock; virtual times are simulator seconds (negative when the
// span carries no virtual-clock annotation).
struct TraceEvent {
  std::string name;
  std::string category;
  double wall_start = 0.0;
  double wall_duration = 0.0;
  double virtual_start = -1.0;
  double virtual_end = -1.0;
  int64_t arg_bytes = -1;  // optional payload-size annotation
};

class Tracer {
 public:
  static Tracer& Global();

  explicit Tracer(bool enabled = true);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Opens a span; returns an opaque handle (0 while disabled — every End*
  // overload ignores handle 0, so callers never branch themselves).
  uint64_t Begin(std::string_view name, std::string_view category)
      LPSGD_EXCLUDES(mu_);
  void End(uint64_t handle) LPSGD_EXCLUDES(mu_);
  // Ends with a virtual-clock annotation [virtual_start, virtual_end].
  void EndWithVirtual(uint64_t handle, double virtual_start,
                      double virtual_end) LPSGD_EXCLUDES(mu_);
  // Ends with a payload-size annotation (shown in the trace viewer).
  void EndWithBytes(uint64_t handle, int64_t bytes) LPSGD_EXCLUDES(mu_);

  size_t event_count() const LPSGD_EXCLUDES(mu_);
  // Spans dropped after the in-memory cap (kMaxEvents) was reached.
  int64_t dropped_count() const LPSGD_EXCLUDES(mu_);
  std::vector<TraceEvent> Events() const LPSGD_EXCLUDES(mu_);
  void Reset() LPSGD_EXCLUDES(mu_);

  // Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  // "ms"}. Each span is a "ph":"X" event with microsecond timestamps;
  // virtual-clock and byte annotations land in "args".
  JsonValue ToChromeTraceJson() const LPSGD_EXCLUDES(mu_);
  [[nodiscard]] Status WriteChromeTrace(std::ostream& os) const;
  [[nodiscard]] Status WriteChromeTraceFile(const std::string& path) const;

 private:
  // Spans held in memory before new Begin() calls are dropped (~96 MB
  // worst case; a trace this big no longer loads in chrome://tracing
  // anyway).
  static constexpr size_t kMaxEvents = 1u << 20;

  std::atomic<bool> enabled_;
  mutable Mutex mu_;
  // handle = index + 1
  std::vector<TraceEvent> events_ LPSGD_GUARDED_BY(mu_);
  int64_t dropped_ LPSGD_GUARDED_BY(mu_) = 0;
};

// RAII span against the global tracer. Construction opens, destruction
// closes; annotations may be attached in between.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     std::string_view category = "lpsgd")
      : handle_(Tracer::Global().Begin(name, category)) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (handle_ == 0) return;
    if (has_virtual_) {
      Tracer::Global().EndWithVirtual(handle_, virtual_start_, virtual_end_);
    } else if (bytes_ >= 0) {
      Tracer::Global().EndWithBytes(handle_, bytes_);
    } else {
      Tracer::Global().End(handle_);
    }
  }

  void set_virtual_range(double virtual_start, double virtual_end) {
    has_virtual_ = true;
    virtual_start_ = virtual_start;
    virtual_end_ = virtual_end;
  }
  void set_bytes(int64_t bytes) { bytes_ = bytes; }

 private:
  uint64_t handle_;
  bool has_virtual_ = false;
  double virtual_start_ = 0.0;
  double virtual_end_ = 0.0;
  int64_t bytes_ = -1;
};

inline bool TraceEnabled() { return Tracer::Global().enabled(); }

}  // namespace obs
}  // namespace lpsgd

#endif  // LPSGD_OBS_TRACE_H_
