// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "obs/run_report.h"

namespace lpsgd {
namespace obs {
namespace {

constexpr const char* kPhaseNames[kNumProfilePhases] = {
    "forward", "backward", "optimizer", "encode",
    "wire",    "decode",   "sum",       "retry",
};

// Counters snapshotted at every dump so the flight record carries the
// deltas that accumulated since the previous one.
constexpr const char* kTrackedCounters[] = {
    "comm/allreduce_calls", "comm/retries",       "comm/checksum_failures",
    "fault/injected",       "trainer/iterations", "trainer/rollbacks",
};
constexpr size_t kNumTrackedCounters =
    sizeof(kTrackedCounters) / sizeof(kTrackedCounters[0]);

void CopyLabel(std::string_view label, char* out, size_t capacity) {
  const size_t n = std::min(label.size(), capacity - 1);
  std::memcpy(out, label.data(), n);
  out[n] = '\0';
}

JsonValue FlightRecordToJson(const FlightRecord& record) {
  JsonValue entry = JsonValue::Object();
  entry.Set("sequence", record.sequence);
  entry.Set("step", record.step);
  entry.Set("phase", record.phase);
  entry.Set("phase_name",
            record.phase >= 0 && record.phase < kNumProfilePhases
                ? ProfilePhaseName(record.phase)
                : "");
  entry.Set("matrix", record.matrix);
  entry.Set("rank", record.rank);
  entry.Set("wall_time", record.wall_time);
  entry.Set("wall_seconds", record.wall_seconds);
  entry.Set("virtual_seconds", record.virtual_seconds);
  entry.Set("label", std::string(record.label));
  return entry;
}

}  // namespace

const char* ProfilePhaseName(int phase) {
  CHECK_GE(phase, 0);
  CHECK_LT(phase, kNumProfilePhases);
  return kPhaseNames[phase];
}

JsonValue TimeBreakdown::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("step", step);
  root.Set("steps", steps);
  root.Set("wall_total", wall_total);
  root.Set("virtual_total", virtual_total);
  root.Set("attributed_wall", AttributedWall());
  root.Set("coverage", Coverage());
  JsonValue by_phase = JsonValue::Object();
  const double attributed = AttributedWall();
  for (int p = 0; p < kNumProfilePhases; ++p) {
    JsonValue entry = JsonValue::Object();
    entry.Set("wall", phases.wall[p]);
    entry.Set("virtual", phases.virt[p]);
    entry.Set("calls", phases.calls[p]);
    entry.Set("wall_share",
              attributed > 0.0 ? phases.wall[p] / attributed : 0.0);
    by_phase.Set(kPhaseNames[p], std::move(entry));
  }
  root.Set("phases", std::move(by_phase));
  return root;
}

Profiler::Profiler(bool enabled) : enabled_(enabled) {}

Profiler& Profiler::Global() {
  static Profiler* const kProfiler = [] {
    const char* env = std::getenv("LPSGD_PROFILE");
    const bool enabled =
        env != nullptr && env[0] != '\0' && std::strtol(env, nullptr, 10) != 0;
    return new Profiler(enabled);
  }();
  return *kProfiler;
}

void Profiler::BeginStep(int64_t step) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  step_open_ = true;
  current_step_ = step;
  step_wall_start_ = MonotonicSeconds();
  current_.Clear();
}

void Profiler::AddPhases(const PhaseTimes& delta) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  current_.Merge(delta);
}

void Profiler::AddPhase(int phase, double wall_seconds) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  current_.Add(phase, wall_seconds);
}

void Profiler::AddVirtual(int phase, double virtual_seconds) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  current_.AddVirtual(phase, virtual_seconds);
}

void Profiler::EndStep(double virtual_seconds) {
  if (!enabled()) return;
  TimeBreakdown done;
  {
    MutexLock lock(mu_);
    if (!step_open_) return;
    step_open_ = false;
    done.step = current_step_;
    done.steps = 1;
    done.wall_start = step_wall_start_;
    done.wall_total = MonotonicSeconds() - step_wall_start_;
    done.virtual_total = virtual_seconds;
    done.phases = current_;
    current_.Clear();

    last_ = done;
    totals_.steps += 1;
    totals_.wall_total += done.wall_total;
    totals_.virtual_total += done.virtual_total;
    totals_.phases.Merge(done.phases);
    if (history_.size() < kMaxStepHistory) {
      history_.push_back(done);
    } else {
      history_[history_next_ % kMaxStepHistory] = done;
    }
    ++history_next_;
    ++steps_recorded_;
  }

  // Feed the flight recorder one record per active phase plus the step
  // span itself, so a later failure dump carries the recent breakdowns.
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    for (int p = 0; p < kNumProfilePhases; ++p) {
      if (done.phases.calls[p] == 0 && done.phases.virt[p] == 0.0) continue;
      recorder.Record(done.step, p, -1, -1, done.phases.wall[p],
                      done.phases.virt[p], kPhaseNames[p]);
    }
    recorder.Record(done.step, -1, -1, -1, done.wall_total,
                    done.virtual_total, "step");
  }
  if (ReportEnabled()) {
    RecordEntry("step_breakdown", done.ToJson());
  }
}

int64_t Profiler::steps_recorded() const {
  MutexLock lock(mu_);
  return steps_recorded_;
}

TimeBreakdown Profiler::LastStep() const {
  MutexLock lock(mu_);
  return last_;
}

TimeBreakdown Profiler::Totals() const {
  MutexLock lock(mu_);
  return totals_;
}

std::vector<TimeBreakdown> Profiler::Steps() const {
  MutexLock lock(mu_);
  std::vector<TimeBreakdown> steps;
  steps.reserve(history_.size());
  const size_t n = history_.size();
  // Oldest first: when the ring has wrapped, the oldest entry sits at
  // history_next_ % kMaxStepHistory.
  const size_t start = n < kMaxStepHistory ? 0 : history_next_ % kMaxStepHistory;
  for (size_t i = 0; i < n; ++i) {
    steps.push_back(history_[(start + i) % n]);
  }
  return steps;
}

JsonValue Profiler::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", int64_t{1});
  root.Set("kind", "profile");
  {
    MutexLock lock(mu_);
    root.Set("steps_recorded", steps_recorded_);
    root.Set("totals", totals_.ToJson());
  }
  JsonValue steps = JsonValue::Array();
  for (const TimeBreakdown& step : Steps()) steps.Append(step.ToJson());
  root.Set("steps", std::move(steps));
  return root;
}

Status Profiler::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError(StrCat("cannot open ", path, " for writing"));
  }
  file << ToJson().Dump(2) << "\n";
  if (!file.good()) return InternalError(StrCat("failed writing ", path));
  return OkStatus();
}

JsonValue Profiler::ToChromeTraceJson() const {
  JsonValue events = JsonValue::Array();
  for (const TimeBreakdown& step : Steps()) {
    double cursor = step.wall_start;
    for (int p = 0; p < kNumProfilePhases; ++p) {
      if (step.phases.calls[p] == 0) continue;
      JsonValue event = JsonValue::Object();
      event.Set("name", kPhaseNames[p]);
      event.Set("cat", "profile");
      event.Set("ph", "X");
      event.Set("ts", cursor * 1e6);
      event.Set("dur", step.phases.wall[p] * 1e6);
      event.Set("pid", int64_t{0});
      event.Set("tid", int64_t{p + 1});
      JsonValue args = JsonValue::Object();
      args.Set("step", step.step);
      args.Set("calls", step.phases.calls[p]);
      args.Set("virtual_seconds", step.phases.virt[p]);
      event.Set("args", std::move(args));
      events.Append(std::move(event));
      cursor += step.phases.wall[p];
    }
    JsonValue span = JsonValue::Object();
    span.Set("name", "step");
    span.Set("cat", "profile");
    span.Set("ph", "X");
    span.Set("ts", step.wall_start * 1e6);
    span.Set("dur", step.wall_total * 1e6);
    span.Set("pid", int64_t{0});
    span.Set("tid", int64_t{0});
    JsonValue args = JsonValue::Object();
    args.Set("step", step.step);
    args.Set("coverage", step.Coverage());
    args.Set("virtual_seconds", step.virtual_total);
    span.Set("args", std::move(args));
    events.Append(std::move(span));
  }
  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  return root;
}

Status Profiler::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError(StrCat("cannot open ", path, " for writing"));
  }
  file << ToChromeTraceJson().Dump(2) << "\n";
  if (!file.good()) return InternalError(StrCat("failed writing ", path));
  return OkStatus();
}

void Profiler::PrintTable(std::ostream& os) const {
  const TimeBreakdown totals = Totals();
  TablePrinter table({"Phase", "Wall s", "Share", "Virtual s", "Calls"});
  const double attributed = totals.AttributedWall();
  for (int p = 0; p < kNumProfilePhases; ++p) {
    const double share =
        attributed > 0.0 ? totals.phases.wall[p] / attributed : 0.0;
    table.AddRow({kPhaseNames[p], FormatDouble(totals.phases.wall[p], 6),
                  StrCat(FormatDouble(share * 100.0, 1), "%"),
                  FormatDouble(totals.phases.virt[p], 6),
                  StrCat(totals.phases.calls[p])});
  }
  table.AddSeparator();
  table.AddRow({"total (attributed)", FormatDouble(attributed, 6), "",
                FormatDouble(totals.phases.VirtualTotal(), 6), ""});
  table.AddRow({"total (measured)", FormatDouble(totals.wall_total, 6),
                StrCat(FormatDouble(totals.Coverage() * 100.0, 1),
                       "% covered"),
                FormatDouble(totals.virtual_total, 6),
                StrCat(totals.steps, " steps")});
  table.Print(os);
}

void Profiler::Reset() {
  MutexLock lock(mu_);
  step_open_ = false;
  current_step_ = -1;
  current_.Clear();
  totals_ = TimeBreakdown{};
  last_ = TimeBreakdown{};
  history_.clear();
  history_next_ = 0;
  steps_recorded_ = 0;
}

FlightRecorder::FlightRecorder(bool enabled) : enabled_(enabled) {
  MutexLock lock(mu_);
  ring_.resize(kCapacity);
  metric_baseline_.assign(kNumTrackedCounters, 0);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const kRecorder = [] {
    const char* env = std::getenv("LPSGD_FLIGHT_RECORDER");
    const bool set = env != nullptr && env[0] != '\0';
    auto* recorder = new FlightRecorder(set);
    // "1" (or any integer) enables the in-memory recorder; any other value
    // doubles as the dump-file prefix.
    if (set && std::strtol(env, nullptr, 10) == 0) {
      recorder->set_output_prefix(env);
    }
    return recorder;
  }();
  return *kRecorder;
}

void FlightRecorder::set_output_prefix(std::string prefix) {
  MutexLock lock(mu_);
  prefix_ = std::move(prefix);
}

void FlightRecorder::Record(int64_t step, int phase, int matrix, int rank,
                            double wall_seconds, double virtual_seconds,
                            std::string_view label) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  FlightRecord& slot = ring_[static_cast<size_t>(
      next_sequence_ % static_cast<int64_t>(kCapacity))];
  slot.sequence = next_sequence_++;
  slot.step = step;
  slot.phase = phase;
  slot.matrix = matrix;
  slot.rank = rank;
  slot.wall_time = MonotonicSeconds();
  slot.wall_seconds = wall_seconds;
  slot.virtual_seconds = virtual_seconds;
  CopyLabel(label, slot.label, sizeof(slot.label));
}

JsonValue FlightRecorder::DumpLocked(const Status& status,
                                     int64_t iteration) {
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", int64_t{1});
  root.Set("kind", "flight_record");

  JsonValue trigger = JsonValue::Object();
  trigger.Set("code", static_cast<int64_t>(status.code()));
  trigger.Set("code_name", StatusCodeToString(status.code()));
  trigger.Set("message", status.message());
  trigger.Set("iteration", iteration);
  trigger.Set("sequence", next_sequence_);
  root.Set("trigger", std::move(trigger));

  JsonValue deltas = JsonValue::Object();
  for (size_t i = 0; i < kNumTrackedCounters; ++i) {
    const int64_t value =
        MetricsRegistry::Global().CounterValue(kTrackedCounters[i]);
    deltas.Set(kTrackedCounters[i], value - metric_baseline_[i]);
    metric_baseline_[i] = value;
  }
  root.Set("metric_deltas", std::move(deltas));

  JsonValue records = JsonValue::Array();
  const int64_t capacity = static_cast<int64_t>(kCapacity);
  const int64_t count = std::min(next_sequence_, capacity);
  const int64_t first = next_sequence_ - count;
  for (int64_t seq = first; seq < next_sequence_; ++seq) {
    records.Append(FlightRecordToJson(
        ring_[static_cast<size_t>(seq % capacity)]));
  }
  root.Set("records", std::move(records));
  return root;
}

void FlightRecorder::OnExchangeFailure(const Status& status,
                                       int64_t iteration) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  JsonValue dump = DumpLocked(status, iteration);
  if (!prefix_.empty()) {
    const std::string path = StrCat(prefix_, ".", dumps_, ".json");
    std::ofstream file(path);
    if (file) {
      file << dump.Dump(2) << "\n";
    } else {
      LOG(Warning) << "flight recorder cannot write " << path;
    }
  }
  last_dump_ = std::move(dump);
  ++dumps_;
  // The failure itself becomes part of the subsequent history.
  FlightRecord& slot = ring_[static_cast<size_t>(
      next_sequence_ % static_cast<int64_t>(kCapacity))];
  slot = FlightRecord{};
  slot.sequence = next_sequence_++;
  slot.step = iteration;
  slot.wall_time = MonotonicSeconds();
  CopyLabel(StrCat("fail:", StatusCodeToString(status.code())), slot.label,
            sizeof(slot.label));
}

int64_t FlightRecorder::record_count() const {
  MutexLock lock(mu_);
  return next_sequence_;
}

int64_t FlightRecorder::dump_count() const {
  MutexLock lock(mu_);
  return dumps_;
}

JsonValue FlightRecorder::LastDump() const {
  MutexLock lock(mu_);
  return last_dump_;
}

void FlightRecorder::Reset() {
  MutexLock lock(mu_);
  for (FlightRecord& record : ring_) record = FlightRecord{};
  next_sequence_ = 0;
  dumps_ = 0;
  last_dump_ = JsonValue();
  metric_baseline_.assign(kNumTrackedCounters, 0);
}

}  // namespace obs
}  // namespace lpsgd
