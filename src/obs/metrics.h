// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms, exported as JSON or an aligned table. Names are hierarchical
// slash-separated paths ("trainer/iteration_seconds", "comm/wire_bytes",
// "quant/qsgd/encode_calls"); the first segment is the owning subsystem.
//
// The registry is DISABLED by default and every mutation early-exits on a
// single relaxed atomic load, so instrumentation left in hot paths (codec
// encode loops, per-iteration trainer hooks) costs one predictable branch
// when observability is off. Enable programmatically, or by setting the
// LPSGD_OBS environment variable to a nonzero value.
#ifndef LPSGD_OBS_METRICS_H_
#define LPSGD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/json.h"

namespace lpsgd {
namespace obs {

// Transitive-purity exemptions (tools/analyze/lpsgd_analyze): hot paths
// may touch the observability surface because it no-ops behind one branch
// while the registry is disabled — the unobserved-run contract
// quant/workspace_test.cc enforces by counting heap allocations — and the
// singletons' lazy `new` plus per-name first-touch map inserts are
// one-time costs, amortized to zero at steady state.
LPSGD_HOT_CALLEE_OK(Global);
LPSGD_HOT_CALLEE_OK(Count);
LPSGD_HOT_CALLEE_OK(Observe);

// Point-in-time copy of one histogram's state. Buckets are cumulative-free:
// counts[i] holds observations with value <= bounds[i]; counts.back() is
// the overflow bucket (value > bounds.back()).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 entries
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const { return count > 0 ? sum / count : 0.0; }

  // Fixed-bucket quantile estimate for q in [0, 1]: locates the bucket
  // holding the q-th observation and interpolates linearly inside it
  // (between the previous bound and the bucket's upper bound), clamped to
  // the observed [min, max]. Exact at bucket boundaries; within-bucket
  // error is bounded by the bucket width, which the default power-of-4
  // ladder keeps proportional to the value. Returns 0.0 for an empty
  // histogram.
  double Quantile(double q) const;
};

class MetricsRegistry {
 public:
  // Process-wide registry used by all built-in instrumentation. Starts
  // disabled unless LPSGD_OBS is set to a nonzero value.
  static MetricsRegistry& Global();

  // Locally-constructed registries start enabled (tests, embedders).
  explicit MetricsRegistry(bool enabled = true);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // --- Mutation (no-ops while disabled) ---------------------------------

  // Adds `delta` to counter `name`, creating it at zero.
  void Count(std::string_view name, int64_t delta = 1) LPSGD_EXCLUDES(mu_);
  // Sets gauge `name` to `value` (last write wins).
  void SetGauge(std::string_view name, double value) LPSGD_EXCLUDES(mu_);
  // Records `value` into histogram `name`, creating it with the default
  // exponential bucket ladder (see DefaultBounds()).
  void Observe(std::string_view name, double value) LPSGD_EXCLUDES(mu_);
  // Records into a histogram created with explicit bucket upper bounds
  // (strictly increasing); bounds of an existing histogram are kept.
  void ObserveWithBounds(std::string_view name, double value,
                         const std::vector<double>& bounds)
      LPSGD_EXCLUDES(mu_);

  // Drops every metric (the enabled flag is preserved).
  void Reset() LPSGD_EXCLUDES(mu_);

  // --- Inspection (works regardless of the enabled flag) ----------------

  // Value of counter `name`, or 0 when absent.
  int64_t CounterValue(std::string_view name) const LPSGD_EXCLUDES(mu_);
  // Value of gauge `name`, or 0.0 when absent.
  double GaugeValue(std::string_view name) const LPSGD_EXCLUDES(mu_);
  // Snapshot of histogram `name` (zero-count snapshot when absent).
  HistogramSnapshot HistogramFor(std::string_view name) const
      LPSGD_EXCLUDES(mu_);

  // Sorted names, all three metric kinds merged.
  std::vector<std::string> Names() const LPSGD_EXCLUDES(mu_);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  // sum, min, max, mean, bounds, counts}}}.
  JsonValue ToJson() const LPSGD_EXCLUDES(mu_);
  std::string ToJsonString(int indent = 2) const LPSGD_EXCLUDES(mu_);

  // Aligned human-readable table of every metric.
  void PrintTable(std::ostream& os) const LPSGD_EXCLUDES(mu_);

  // The default histogram ladder: powers of 4 from 1e-9 up to ~1.2e12,
  // sized for values ranging from nanosecond timings to terabyte counts.
  static const std::vector<double>& DefaultBounds();

 private:
  struct Histogram {
    std::vector<double> bounds;
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void Record(double value);
  };

  std::atomic<bool> enabled_;
  mutable Mutex mu_;
  std::map<std::string, int64_t, std::less<>> counters_ LPSGD_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ LPSGD_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      LPSGD_GUARDED_BY(mu_);
};

// Convenience wrappers over MetricsRegistry::Global().
inline void Count(std::string_view name, int64_t delta = 1) {
  MetricsRegistry::Global().Count(name, delta);
}
inline void SetGauge(std::string_view name, double value) {
  MetricsRegistry::Global().SetGauge(name, value);
}
inline void Observe(std::string_view name, double value) {
  MetricsRegistry::Global().Observe(name, value);
}
inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

// Monotonic wall clock in seconds (shared by timers and the tracer).
double MonotonicSeconds();

// RAII timer: on destruction records the elapsed wall seconds into
// histogram `name` of the global registry. When the registry is disabled
// at construction the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : name_(name),
        active_(MetricsEnabled()),
        start_(active_ ? MonotonicSeconds() : 0.0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (active_) Observe(name_, MonotonicSeconds() - start_);
  }

 private:
  std::string_view name_;
  bool active_;
  double start_;
};

}  // namespace obs
}  // namespace lpsgd

#endif  // LPSGD_OBS_METRICS_H_
