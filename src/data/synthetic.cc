// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "data/synthetic.h"

#include <cmath>

#include "base/logging.h"
#include "base/rng.h"

namespace lpsgd {
namespace {

// Converts two independent uniforms into one standard normal (Box-Muller,
// cosine branch only: counter-addressable, no state).
double GaussianFromUniforms(double u1, double u2) {
  if (u1 <= 0.0) u1 = 1e-12;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(
    const SyntheticImageOptions& options)
    : options_(options) {
  CHECK_GT(options_.num_classes, 1);
  CHECK_GT(options_.num_samples, 0);
  Rng rng(options_.seed);
  const int64_t dim = SampleShape().element_count();
  prototypes_.resize(static_cast<size_t>(options_.num_classes));
  for (int c = 0; c < options_.num_classes; ++c) {
    auto& proto = prototypes_[static_cast<size_t>(c)];
    proto.resize(static_cast<size_t>(dim));
    // Low-frequency class structure: a sum of a few random 2-D waves per
    // channel, plus white detail. This makes local (convolutional)
    // structure informative rather than only global pixel identity.
    const double fy = 1.0 + rng.NextDouble() * 2.0;
    const double fx = 1.0 + rng.NextDouble() * 2.0;
    const double phase_y = rng.NextDouble() * 2.0 * M_PI;
    const double phase_x = rng.NextDouble() * 2.0 * M_PI;
    int64_t i = 0;
    for (int ch = 0; ch < options_.channels; ++ch) {
      const double ch_scale = 0.7 + 0.6 * rng.NextDouble();
      for (int y = 0; y < options_.height; ++y) {
        for (int x = 0; x < options_.width; ++x, ++i) {
          const double wave =
              std::sin(fy * y * 2.0 * M_PI / options_.height + phase_y) *
              std::cos(fx * x * 2.0 * M_PI / options_.width + phase_x);
          proto[static_cast<size_t>(i)] = static_cast<float>(
              ch_scale * wave + 0.5 * rng.NextGaussian());
        }
      }
    }
  }
}

Shape SyntheticImageDataset::SampleShape() const {
  return Shape({options_.channels, options_.height, options_.width});
}

int SyntheticImageDataset::LabelOf(int64_t index) const {
  const uint64_t global = options_.sample_offset + static_cast<uint64_t>(index);
  return static_cast<int>(HashCounter(options_.seed ^ 0x1abe1u, global) %
                          static_cast<uint64_t>(options_.num_classes));
}

void SyntheticImageDataset::FillSample(int64_t index, float* out) const {
  const uint64_t global = options_.sample_offset + static_cast<uint64_t>(index);
  const int label = LabelOf(index);
  const auto& proto = prototypes_[static_cast<size_t>(label)];
  const CounterRng stream(options_.seed, global);
  const int64_t dim = SampleShape().element_count();
  for (int64_t i = 0; i < dim; ++i) {
    const double noise = GaussianFromUniforms(
        stream.UniformAt(static_cast<uint64_t>(2 * i)),
        stream.UniformAt(static_cast<uint64_t>(2 * i + 1)));
    out[i] = options_.signal * proto[static_cast<size_t>(i)] +
             options_.noise * static_cast<float>(noise);
  }
}

SyntheticSequenceDataset::SyntheticSequenceDataset(
    const SyntheticSequenceOptions& options)
    : options_(options) {
  CHECK_GT(options_.num_classes, 1);
  CHECK_GT(options_.num_samples, 0);
  Rng rng(options_.seed ^ 0x5eedf00dULL);
  const size_t length =
      static_cast<size_t>(options_.time_steps) * options_.frame_dim;
  anchors_.resize(static_cast<size_t>(options_.num_classes));
  for (auto& anchor : anchors_) {
    anchor.resize(length);
    // Smooth anchor trajectories: random walk with decay, mimicking
    // phoneme-like continuity between consecutive frames.
    std::vector<float> frame(static_cast<size_t>(options_.frame_dim), 0.0f);
    size_t i = 0;
    for (int t = 0; t < options_.time_steps; ++t) {
      for (int d = 0; d < options_.frame_dim; ++d, ++i) {
        frame[static_cast<size_t>(d)] =
            0.7f * frame[static_cast<size_t>(d)] +
            static_cast<float>(rng.NextGaussian());
        anchor[i] = frame[static_cast<size_t>(d)];
      }
    }
  }
}

Shape SyntheticSequenceDataset::SampleShape() const {
  return Shape({options_.time_steps, options_.frame_dim});
}

int SyntheticSequenceDataset::LabelOf(int64_t index) const {
  const uint64_t global = options_.sample_offset + static_cast<uint64_t>(index);
  return static_cast<int>(HashCounter(options_.seed ^ 0x5eb7u, global) %
                          static_cast<uint64_t>(options_.num_classes));
}

void SyntheticSequenceDataset::FillSample(int64_t index, float* out) const {
  const uint64_t global = options_.sample_offset + static_cast<uint64_t>(index);
  const int label = LabelOf(index);
  const auto& anchor = anchors_[static_cast<size_t>(label)];
  const CounterRng stream(options_.seed ^ 0xacc0u, global);
  // Random temporal phase: rotate the anchor sequence by a few steps so the
  // classifier must integrate over time rather than memorize frame 0.
  const int shift = static_cast<int>(HashCounter(options_.seed ^ 0x7a5eu,
                                                 global) %
                                     3u);
  const int64_t frame_dim = options_.frame_dim;
  for (int t = 0; t < options_.time_steps; ++t) {
    const int src_t = (t + shift) % options_.time_steps;
    for (int64_t d = 0; d < frame_dim; ++d) {
      const int64_t i = t * frame_dim + d;
      const int64_t src = src_t * frame_dim + d;
      const double noise = GaussianFromUniforms(
          stream.UniformAt(static_cast<uint64_t>(2 * i)),
          stream.UniformAt(static_cast<uint64_t>(2 * i + 1)));
      out[i] = anchor[static_cast<size_t>(src)] +
               options_.noise * static_cast<float>(noise);
    }
  }
}

}  // namespace lpsgd
