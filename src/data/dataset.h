// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_DATA_DATASET_H_
#define LPSGD_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace lpsgd {

// One training minibatch: `inputs` has shape {batch, <sample shape>} and
// `labels[i]` is the class of row i.
struct Batch {
  Tensor inputs;
  std::vector<int> labels;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

// A labelled classification dataset addressable by sample index. Samples
// are generated (or fetched) on demand so synthetic datasets need no
// storage proportional to their size.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int64_t NumSamples() const = 0;
  virtual int NumClasses() const = 0;

  // Shape of one sample, without the batch dimension.
  virtual Shape SampleShape() const = 0;

  // Writes sample `index` (SampleShape().element_count() floats) to `out`.
  virtual void FillSample(int64_t index, float* out) const = 0;

  virtual int LabelOf(int64_t index) const = 0;
};

// Materializes `indices` from `dataset` into a Batch.
Batch MakeBatch(const Dataset& dataset, const std::vector<int64_t>& indices);

// Deterministic shuffled minibatch iterator. Every epoch reshuffles with a
// seed derived from (seed, epoch) so runs are exactly reproducible and all
// data-parallel ranks can derive the same global order.
class BatchIterator {
 public:
  // Does not take ownership of `dataset`, which must outlive the iterator.
  BatchIterator(const Dataset* dataset, int64_t batch_size, uint64_t seed);

  // Starts (or restarts) iteration for `epoch`.
  void StartEpoch(int epoch);

  // Fills the next batch; returns false when the epoch is exhausted. The
  // final batch of an epoch may be smaller than `batch_size`.
  bool NextBatch(Batch* batch);

  int64_t batch_size() const { return batch_size_; }
  int64_t NumBatchesPerEpoch() const;

 private:
  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace lpsgd

#endif  // LPSGD_DATA_DATASET_H_
