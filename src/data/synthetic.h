// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_DATA_SYNTHETIC_H_
#define LPSGD_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/shape.h"

namespace lpsgd {

// Synthetic stand-ins for the paper's datasets (Figure 1). The paper's
// accuracy findings are about gradient statistics under quantization, which
// these tasks reproduce at laptop scale; see DESIGN.md ("Substitutions").

// Image-classification task in the style of CIFAR-10/ImageNet: each class
// has a Gaussian prototype image, plus class-specific low-frequency spatial
// structure so convolution and pooling genuinely help; a sample is
// prototype * signal + N(0, noise^2). Samples are generated on the fly from
// counter-based RNG streams, so train/test splits with disjoint
// `sample_offset` ranges are i.i.d. from the same distribution.
struct SyntheticImageOptions {
  int num_classes = 10;
  int channels = 1;
  int height = 8;
  int width = 8;
  int64_t num_samples = 2048;
  float signal = 1.0f;
  float noise = 1.0f;
  uint64_t seed = 42;
  // First global sample index served by this dataset instance; use
  // different offsets for train and test splits.
  uint64_t sample_offset = 0;
};

class SyntheticImageDataset : public Dataset {
 public:
  explicit SyntheticImageDataset(const SyntheticImageOptions& options);

  int64_t NumSamples() const override { return options_.num_samples; }
  int NumClasses() const override { return options_.num_classes; }
  Shape SampleShape() const override;
  void FillSample(int64_t index, float* out) const override;
  int LabelOf(int64_t index) const override;

 private:
  SyntheticImageOptions options_;
  // prototypes_[c] holds the class-c prototype (sample-shaped).
  std::vector<std::vector<float>> prototypes_;
};

// Sequence-classification task in the style of AN4 utterances: each class
// ("word") is a fixed sequence of anchor frames; a sample walks through the
// anchors with additive Gaussian noise and a random temporal phase. Suits
// LSTM classification from the final hidden state.
struct SyntheticSequenceOptions {
  int num_classes = 8;
  int time_steps = 12;
  int frame_dim = 16;
  int64_t num_samples = 1024;
  float noise = 0.5f;
  uint64_t seed = 42;
  uint64_t sample_offset = 0;
};

class SyntheticSequenceDataset : public Dataset {
 public:
  explicit SyntheticSequenceDataset(const SyntheticSequenceOptions& options);

  int64_t NumSamples() const override { return options_.num_samples; }
  int NumClasses() const override { return options_.num_classes; }
  Shape SampleShape() const override;
  void FillSample(int64_t index, float* out) const override;
  int LabelOf(int64_t index) const override;

 private:
  SyntheticSequenceOptions options_;
  // anchors_[c] holds time_steps * frame_dim floats for class c.
  std::vector<std::vector<float>> anchors_;
};

}  // namespace lpsgd

#endif  // LPSGD_DATA_SYNTHETIC_H_
