// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "data/dataset.h"

#include <numeric>
#include <utility>

#include "base/logging.h"
#include "base/rng.h"

namespace lpsgd {

Batch MakeBatch(const Dataset& dataset, const std::vector<int64_t>& indices) {
  Batch batch;
  const Shape sample_shape = dataset.SampleShape();
  std::vector<int64_t> dims;
  dims.push_back(static_cast<int64_t>(indices.size()));
  for (int64_t d : sample_shape.dims()) dims.push_back(d);
  batch.inputs = Tensor(Shape(dims));
  batch.labels.resize(indices.size());

  const int64_t stride = sample_shape.element_count();
  for (size_t i = 0; i < indices.size(); ++i) {
    CHECK_GE(indices[i], 0);
    CHECK_LT(indices[i], dataset.NumSamples());
    dataset.FillSample(indices[i],
                       batch.inputs.data() + static_cast<int64_t>(i) * stride);
    batch.labels[i] = dataset.LabelOf(indices[i]);
  }
  return batch;
}

BatchIterator::BatchIterator(const Dataset* dataset, int64_t batch_size,
                             uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), seed_(seed) {
  CHECK(dataset != nullptr);
  CHECK_GT(batch_size, 0);
  order_.resize(static_cast<size_t>(dataset->NumSamples()));
  std::iota(order_.begin(), order_.end(), 0);
  StartEpoch(0);
}

void BatchIterator::StartEpoch(int epoch) {
  // Each epoch's order is a pure function of (seed, epoch): reset to the
  // identity permutation, then Fisher-Yates with the per-epoch stream.
  std::iota(order_.begin(), order_.end(), 0);
  Rng rng(HashCounter(seed_, static_cast<uint64_t>(epoch)));
  for (size_t i = order_.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.NextUint64(i));
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

bool BatchIterator::NextBatch(Batch* batch) {
  const int64_t total = static_cast<int64_t>(order_.size());
  if (cursor_ >= total) return false;
  const int64_t count = std::min(batch_size_, total - cursor_);
  std::vector<int64_t> indices(order_.begin() + cursor_,
                               order_.begin() + cursor_ + count);
  cursor_ += count;
  *batch = MakeBatch(*dataset_, indices);
  return true;
}

int64_t BatchIterator::NumBatchesPerEpoch() const {
  const int64_t total = static_cast<int64_t>(order_.size());
  return (total + batch_size_ - 1) / batch_size_;
}

}  // namespace lpsgd
