// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_STATUS_H_
#define LPSGD_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace lpsgd {

// Canonical error space, modeled after absl::StatusCode. Only the codes the
// library actually produces are included.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,       // transient failure; retrying may succeed
  kDeadlineExceeded = 9,  // exceeded a time budget; retrying may succeed
  kDataLoss = 10,         // unrecoverable corruption (e.g. checksum mismatch)
  kAborted = 11,          // permanent failure; retrying cannot succeed
};

// Returns the canonical name of `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

// Value-type result of a fallible operation: a code plus a human-readable
// message. LPSGD does not use exceptions; every fallible public API returns
// Status or StatusOr<T>. The class-level [[nodiscard]] makes silently
// dropping any returned Status a compile error under -Werror (the CI
// default): handle it, return it, or CHECK_OK it.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status DataLossError(std::string message);
Status AbortedError(std::string message);

}  // namespace lpsgd

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define LPSGD_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::lpsgd::Status lpsgd_status_macro_tmp_ = (expr);  \
    if (!lpsgd_status_macro_tmp_.ok()) {               \
      return lpsgd_status_macro_tmp_;                  \
    }                                                  \
  } while (false)

#endif  // LPSGD_BASE_STATUS_H_
