// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_TABLE_PRINTER_H_
#define LPSGD_BASE_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace lpsgd {

// Renders aligned text tables for the benchmark harness output. Usage:
//
//   TablePrinter table({"Precision", "8 GPUs", "16 GPUs"});
//   table.AddRow({"32bit", "272.90", "192.10"});
//   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;

  // Renders to a string (used in tests).
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are represented by an empty vector.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpsgd

#endif  // LPSGD_BASE_TABLE_PRINTER_H_
