// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Fixed-size host worker pool with a blocking ParallelFor, plus the
// ExecutionContext handle that threads it through the training stack
// (TrainerOptions -> SyncTrainer -> GradientAggregator -> codec call
// sites).
//
// Design constraints (DESIGN.md, "Execution model"):
//  * Deterministic callers: the pool only schedules. Every call site keeps
//    floating-point reduction orders fixed and derives randomness from
//    counter-based tags, so results are byte-identical at any worker
//    count — a tested invariant.
//  * Status/exception propagation: the failure with the lowest index among
//    those observed wins; once a failure is recorded the remaining indices
//    are skipped; exceptions rethrow on the submitting thread.
//  * Nested submission is disallowed: a ParallelFor issued from inside a
//    pool task runs inline (serially) on the calling thread instead of
//    deadlocking the pool.
#ifndef LPSGD_BASE_THREAD_POOL_H_
#define LPSGD_BASE_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace lpsgd {

namespace pool_internal {

// Metric hooks wired up by src/obs at static-initialization time so the
// pool can bump pool/* counters without lpsgd_base depending on lpsgd_obs
// (obs sits above base in the layering). Null hooks are skipped.
using CountHook = void (*)(const char* name, int64_t delta);
using ObserveHook = void (*)(const char* name, double value);
void SetMetricHooks(CountHook count, ObserveHook observe);

}  // namespace pool_internal

// Fixed-size worker pool. A pool of `num_threads` runs parallel loops on
// num_threads - 1 spawned workers plus the submitting thread; a pool of 1
// spawns nothing and executes every loop inline, reproducing the
// historical serial order trivially.
class ThreadPool {
 public:
  // `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  int num_threads() const { return num_threads_; }

  // Runs fn(i) once for every i in [begin, end) and blocks until all
  // indices finished. Empty ranges return OK immediately; single-element
  // ranges, 1-thread pools, and nested calls from inside a pool task run
  // inline on the calling thread. Concurrent submissions from different
  // user threads serialize.
  //
  // On failure the Status of the lowest-index failing call observed is
  // returned after the batch drains (remaining indices are skipped). An
  // exception escaping `fn` is captured and rethrown here, on the
  // submitting thread.
  [[nodiscard]] Status ParallelFor(int64_t begin, int64_t end,
                                   const std::function<Status(int64_t)>& fn)
      LPSGD_EXCLUDES(submit_mu_, mu_);

  // True while the calling thread is executing a ParallelFor task (worker
  // or participating submitter) of any pool in the process.
  static bool InPoolTask();

  // Stable per-thread slot id for indexing per-thread scratch (e.g. the
  // aggregators' codec workspaces): spawned workers of a pool occupy slots
  // [1, num_threads); every other thread — including the participating
  // submitter — reports slot 0. Two threads executing tasks of the same
  // ParallelFor batch never share a slot, so workspaces_[CurrentSlot()] is
  // race-free scratch as long as the submitter is not itself a worker of a
  // different pool (the one-pool-per-run rule, DESIGN.md "Execution
  // model").
  static int CurrentSlot();

 private:
  struct Batch;

  void WorkerLoop(int slot) LPSGD_EXCLUDES(mu_);
  // Pulls and runs indices until `batch` is exhausted.
  static void RunTasks(Batch& batch, bool record_queue_wait);
  static void RecordFailure(Batch& batch, int64_t index, Status status,
                            std::exception_ptr exception);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  // Serializes whole batches submitted from different user threads.
  Mutex submit_mu_;

  Mutex mu_;
  CondVar work_cv_;
  std::shared_ptr<Batch> current_ LPSGD_GUARDED_BY(mu_);
  uint64_t batch_epoch_ LPSGD_GUARDED_BY(mu_) = 0;
  bool shutdown_ LPSGD_GUARDED_BY(mu_) = false;
};

// How much host parallelism a component may use, and on which pool. The
// default (intra_op_threads == 0) asks for one thread per hardware core;
// 1 reproduces the historical serial execution — though every thread
// count produces byte-identical results, see the class comment above.
//
// Copies share the pool, so TrainerOptions can be passed by value and the
// trainer plus its aggregator drain the same workers.
struct ExecutionContext {
  std::shared_ptr<ThreadPool> pool;  // null until materialized => inline
  int intra_op_threads = 0;          // 0 = auto (hardware concurrency)

  // Serial context: no pool, loops run inline (today's behaviour).
  static ExecutionContext Serial();
  // Materialized context with its own pool; `threads` <= 0 selects the
  // hardware concurrency, 1 yields a serial context.
  static ExecutionContext WithThreads(int threads);

  // Thread count this context asks for (auto resolved), before any pool
  // exists.
  int requested_threads() const;
  // Effective worker count: the pool's size, or 1 while unmaterialized.
  int threads() const { return pool != nullptr ? pool->num_threads() : 1; }
  bool parallel() const { return threads() > 1; }

  // Returns a copy whose pool exists (spawned per requested_threads());
  // no-op when already materialized or serial. SyncTrainer::Create calls
  // this once and shares the result with its aggregator.
  ExecutionContext Materialized() const;

  // Runs fn over [begin, end): on the pool when parallel, inline
  // otherwise. Same failure contract as ThreadPool::ParallelFor.
  [[nodiscard]] Status ParallelFor(
      int64_t begin, int64_t end,
      const std::function<Status(int64_t)>& fn) const;

  // Human-readable summary for CLI run headers, e.g. "serial (1 thread)"
  // or "parallel (8 threads)".
  std::string Description() const;
};

}  // namespace lpsgd

#endif  // LPSGD_BASE_THREAD_POOL_H_
