// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Compile-time invariant markers.
//
// The LPSGD_* thread-safety macros wrap Clang's thread-safety-analysis
// attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and
// expand to nothing on other compilers, so annotated code builds everywhere
// while `clang++ -Wthread-safety -Werror` (the dedicated CI job) proves the
// locking discipline: every access to an LPSGD_GUARDED_BY member must hold
// the named mutex, every LPSGD_REQUIRES function must be entered with it
// held, and lock/unlock pairing is checked on all paths.
//
// Annotate new code like this (see base/mutex.h for the annotated Mutex):
//
//   class Cache {
//    public:
//     void Insert(Entry e) LPSGD_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       entries_.push_back(std::move(e));  // OK: mu_ held
//     }
//    private:
//     mutable Mutex mu_;
//     std::vector<Entry> entries_ LPSGD_GUARDED_BY(mu_);
//   };
//
// LPSGD_HOT_PATH is a pure lint marker (it expands to nothing on every
// compiler): placing it immediately before a function definition or a
// lambda declares the body allocation-free, and tools/lint/lpsgd_lint
// mechanically rejects `new`, `malloc`, `.resize(`, `.push_back(`, and
// by-value `std::vector<...>` locals/temporaries inside the marked body.
// The codec Encode/Decode kernels, the BitWriter/BitReader streams, and
// the aggregators' steady-state exchange loops all carry it.
#ifndef LPSGD_BASE_THREAD_ANNOTATIONS_H_
#define LPSGD_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

// Declares a class to be a capability (lockable): base/mutex.h's Mutex.
#define LPSGD_CAPABILITY(x) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Declares an RAII class that acquires a capability at construction and
// releases it at destruction: base/mutex.h's MutexLock.
#define LPSGD_SCOPED_CAPABILITY \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Declares that a data member may only be accessed while holding `x`.
#define LPSGD_GUARDED_BY(x) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// As LPSGD_GUARDED_BY, but guards the data a pointer member points to.
#define LPSGD_PT_GUARDED_BY(x) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Declares that callers must hold the listed capabilities on entry (and
// still hold them on exit).
#define LPSGD_REQUIRES(...) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

// Declares that callers must NOT hold the listed capabilities (the
// function acquires them itself; guards against self-deadlock).
#define LPSGD_EXCLUDES(...) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Declares that the function acquires / releases the listed capabilities
// (or, with no argument on a member of a capability class, `this`).
#define LPSGD_ACQUIRE(...) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define LPSGD_RELEASE(...) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

// Declares that the function returns a reference to the given capability.
#define LPSGD_RETURN_CAPABILITY(x) \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: turns the analysis off for one function. Use only with a
// comment explaining why the discipline holds anyway.
#define LPSGD_NO_THREAD_SAFETY_ANALYSIS \
  LPSGD_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// Zero-allocation marker enforced by tools/lint/lpsgd_lint (see the file
// comment above). Not a compiler attribute on purpose: it must be legal
// immediately before lambda expressions, where C++20 allows no attributes.
#define LPSGD_HOT_PATH

// Transitive-purity escape hatch read by tools/analyze/lpsgd_analyze. The
// analyzer requires every function reachable from an LPSGD_HOT_PATH region
// to be allocation-free; placing `LPSGD_HOT_CALLEE_OK(Fn);` (unqualified
// name, or Class::Fn) near the call site exempts calls to `Fn` from the
// transitive walk. Use only for callees that are provably cold at steady
// state (error paths, one-time setup) and say why in a comment on the same
// line. Expands to nothing on every compiler; the grammar is checked by
// the analyzer, which rejects an annotation naming a function that no
// hot region reaches (a stale exemption is an error, not a no-op).
#define LPSGD_HOT_CALLEE_OK(fn)

#endif  // LPSGD_BASE_THREAD_ANNOTATIONS_H_
