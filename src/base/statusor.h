// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_STATUSOR_H_
#define LPSGD_BASE_STATUSOR_H_

#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace lpsgd {

// value()'s CHECK-failure arm stringifies the status (allocating); that
// arm is fatal-only, never steady state, so hot paths may call value().
LPSGD_HOT_CALLEE_OK(value);

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing the value of a non-OK StatusOr is a fatal error.
// [[nodiscard]] like Status: a dropped StatusOr is a dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return value;` and `return SomeError(...);` from the same function.
  StatusOr(const T& value) : value_(value) {}  // NOLINT(runtime/explicit)
  StatusOr(T&& value)                          // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lpsgd

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
// its non-OK status from the enclosing function.
#define LPSGD_ASSIGN_OR_RETURN(lhs, rexpr)            \
  LPSGD_ASSIGN_OR_RETURN_IMPL_(                       \
      LPSGD_MACRO_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define LPSGD_MACRO_CONCAT_INNER_(x, y) x##y
#define LPSGD_MACRO_CONCAT_(x, y) LPSGD_MACRO_CONCAT_INNER_(x, y)

#define LPSGD_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                 \
  if (!statusor.ok()) {                                    \
    return statusor.status();                              \
  }                                                        \
  lhs = std::move(statusor).value()

#endif  // LPSGD_BASE_STATUSOR_H_
