// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "base/mutex.h"
#include "base/strings.h"
#include "base/thread_annotations.h"

namespace lpsgd {
namespace {

// Set while a thread executes ParallelFor tasks — permanently for pool
// workers, scoped for the submitting thread while it participates. Nested
// ParallelFor calls consult it and fall back to inline execution.
thread_local bool tls_in_pool_task = false;

// Per-thread workspace slot: pool workers set theirs once at spawn; all
// other threads (submitters included) stay at 0. See
// ThreadPool::CurrentSlot().
thread_local int tls_pool_slot = 0;

std::atomic<pool_internal::CountHook> g_count_hook{nullptr};
std::atomic<pool_internal::ObserveHook> g_observe_hook{nullptr};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  const int hardware = static_cast<int>(std::thread::hardware_concurrency());
  return hardware < 1 ? 1 : hardware;
}

// RAII toggle for the submitting thread's participation.
class ScopedPoolTask {
 public:
  ScopedPoolTask() : previous_(tls_in_pool_task) { tls_in_pool_task = true; }
  ScopedPoolTask(const ScopedPoolTask&) = delete;
  ScopedPoolTask& operator=(const ScopedPoolTask&) = delete;
  ~ScopedPoolTask() { tls_in_pool_task = previous_; }

 private:
  bool previous_;
};

}  // namespace

namespace pool_internal {

void SetMetricHooks(CountHook count, ObserveHook observe) {
  g_count_hook.store(count, std::memory_order_release);
  g_observe_hook.store(observe, std::memory_order_release);
}

}  // namespace pool_internal

// One ParallelFor invocation. Heap-allocated and shared with the workers
// so a late-waking worker can never touch a dead stack frame.
struct ThreadPool::Batch {
  int64_t end = 0;
  int64_t total = 0;  // indices in the batch
  const std::function<Status(int64_t)>* fn = nullptr;
  double posted_at = 0.0;
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};

  Mutex mu;
  CondVar done_cv;
  int64_t completed LPSGD_GUARDED_BY(mu) = 0;
  // Lowest failing index observed so far.
  int64_t error_index LPSGD_GUARDED_BY(mu) = -1;
  Status status LPSGD_GUARDED_BY(mu);
  std::exception_ptr exception LPSGD_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  // The submitting thread is one of the executors, so spawn one fewer.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InPoolTask() { return tls_in_pool_task; }

int ThreadPool::CurrentSlot() { return tls_pool_slot; }

void ThreadPool::WorkerLoop(int slot) {
  tls_in_pool_task = true;
  tls_pool_slot = slot;
  uint64_t seen_epoch = 0;
  mu_.Lock();
  while (true) {
    while (!shutdown_ && batch_epoch_ == seen_epoch) work_cv_.Wait(mu_);
    if (shutdown_) break;
    seen_epoch = batch_epoch_;
    std::shared_ptr<Batch> batch = current_;
    mu_.Unlock();
    if (batch != nullptr) RunTasks(*batch, /*record_queue_wait=*/true);
    mu_.Lock();
  }
  mu_.Unlock();
}

void ThreadPool::RecordFailure(Batch& batch, int64_t index, Status status,
                               std::exception_ptr exception) {
  MutexLock lock(batch.mu);
  if (batch.error_index < 0 || index < batch.error_index) {
    batch.error_index = index;
    batch.status = std::move(status);
    batch.exception = std::move(exception);
  }
  batch.failed.store(true, std::memory_order_release);
}

void ThreadPool::RunTasks(Batch& batch, bool record_queue_wait) {
  if (record_queue_wait) {
    if (auto* observe = g_observe_hook.load(std::memory_order_acquire)) {
      observe("pool/queue_wait_seconds", NowSeconds() - batch.posted_at);
    }
  }
  int64_t ran = 0;
  for (;;) {
    const int64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.end) break;
    if (!batch.failed.load(std::memory_order_acquire)) {
      try {
        Status status = (*batch.fn)(i);
        if (!status.ok()) {
          RecordFailure(batch, i, std::move(status), nullptr);
        }
      } catch (...) {
        RecordFailure(
            batch, i,
            InternalError(StrCat("ParallelFor body threw at index ", i)),
            std::current_exception());
      }
    }
    ++ran;
  }
  MutexLock lock(batch.mu);
  batch.completed += ran;
  if (batch.completed == batch.total) batch.done_cv.NotifyAll();
}

Status ThreadPool::ParallelFor(int64_t begin, int64_t end,
                               const std::function<Status(int64_t)>& fn) {
  if (end <= begin) return OkStatus();
  const int64_t count = end - begin;
  if (count == 1 || workers_.empty() || tls_in_pool_task) {
    // Inline path: trivial range, 1-thread pool, or nested submission
    // (disallowed on the pool — runs serially right here instead).
    for (int64_t i = begin; i < end; ++i) {
      LPSGD_RETURN_IF_ERROR(fn(i));
    }
    return OkStatus();
  }

  if (auto* hook = g_count_hook.load(std::memory_order_acquire)) {
    hook("pool/tasks", count);
    hook("pool/parallel_for_calls", 1);
  }

  auto batch = std::make_shared<Batch>();
  batch->end = end;
  batch->total = count;
  batch->fn = &fn;
  batch->posted_at = NowSeconds();
  batch->next.store(begin, std::memory_order_relaxed);

  // One batch in flight at a time; concurrent submitters queue here.
  MutexLock submit_lock(submit_mu_);
  {
    MutexLock lock(mu_);
    current_ = batch;
    ++batch_epoch_;
  }
  work_cv_.NotifyAll();

  {
    // The submitter drains alongside the workers.
    ScopedPoolTask in_task;
    RunTasks(*batch, /*record_queue_wait=*/false);
  }

  std::exception_ptr exception;
  Status status;
  {
    MutexLock lock(batch->mu);
    while (batch->completed != batch->total) batch->done_cv.Wait(batch->mu);
    exception = batch->exception;
    status = batch->status;
  }
  {
    MutexLock lock(mu_);
    current_.reset();
  }
  if (exception != nullptr) std::rethrow_exception(exception);
  return status;
}

ExecutionContext ExecutionContext::Serial() {
  ExecutionContext context;
  context.intra_op_threads = 1;
  return context;
}

ExecutionContext ExecutionContext::WithThreads(int threads) {
  ExecutionContext context;
  context.intra_op_threads = threads <= 0 ? 0 : threads;
  return context.Materialized();
}

int ExecutionContext::requested_threads() const {
  return ResolveThreadCount(intra_op_threads);
}

ExecutionContext ExecutionContext::Materialized() const {
  ExecutionContext context = *this;
  const int requested = requested_threads();
  context.intra_op_threads = requested;
  if (context.pool == nullptr && requested > 1) {
    context.pool = std::make_shared<ThreadPool>(requested);
  }
  return context;
}

Status ExecutionContext::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<Status(int64_t)>& fn) const {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = begin; i < end; ++i) {
      LPSGD_RETURN_IF_ERROR(fn(i));
    }
    return OkStatus();
  }
  return pool->ParallelFor(begin, end, fn);
}

std::string ExecutionContext::Description() const {
  if (pool != nullptr && pool->num_threads() > 1) {
    return StrCat("parallel (", pool->num_threads(), " threads)");
  }
  if (pool == nullptr && requested_threads() > 1) {
    return StrCat("parallel (", requested_threads(),
                  " threads once materialized)");
  }
  return "serial (1 thread)";
}

}  // namespace lpsgd
