// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_LOGGING_H_
#define LPSGD_BASE_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace lpsgd {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Accumulates one log line and emits it (to stderr) on destruction.
// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows a LogMessage stream; used to give CHECK a void context.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

// Returns the minimum severity that will actually be emitted. Controlled by
// the LPSGD_MIN_LOG_LEVEL environment variable (0..3, default 0); malformed
// values fall back to the default and out-of-range values clamp.
LogSeverity MinLogLevel();

}  // namespace internal_logging
}  // namespace lpsgd

#define LPSGD_LOG_INTERNAL_(severity)                     \
  ::lpsgd::internal_logging::LogMessage(                  \
      __FILE__, __LINE__,                                 \
      ::lpsgd::internal_logging::LogSeverity::k##severity)

#define LOG(severity) LPSGD_LOG_INTERNAL_(severity)

// Fatal-on-failure invariant check, active in all build modes.
#define CHECK(condition)                                      \
  (condition) ? (void)0                                       \
              : ::lpsgd::internal_logging::LogMessageVoidify() & \
                    LPSGD_LOG_INTERNAL_(Fatal)                \
                        << "Check failed: " #condition " "

#define CHECK_OP_(name, op, a, b)                                        \
  CHECK((a)op(b)) << "(" << #a << " " << #op << " " << #b << ", with lhs=" \
                  << (a) << " rhs=" << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP_(EQ, ==, a, b)
#define CHECK_NE(a, b) CHECK_OP_(NE, !=, a, b)
#define CHECK_LE(a, b) CHECK_OP_(LE, <=, a, b)
#define CHECK_LT(a, b) CHECK_OP_(LT, <, a, b)
#define CHECK_GE(a, b) CHECK_OP_(GE, >=, a, b)
#define CHECK_GT(a, b) CHECK_OP_(GT, >, a, b)

// Checks that a Status expression is OK.
#define CHECK_OK(expr) \
  CHECK((expr).ok()) << "Status not OK: " << (expr).ToString() << " "

#ifdef NDEBUG
#define DCHECK(condition) \
  while (false) CHECK(condition)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#endif

#endif  // LPSGD_BASE_LOGGING_H_
