// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_SIMD_ELEMENTWISE_H_
#define LPSGD_BASE_SIMD_ELEMENTWISE_H_

#include <cstdint>

#include "base/simd/simd.h"

namespace lpsgd {

// Elementwise float kernels shared by the codecs (bucket norms, corrected
// staging, magnitude scans) and the aggregators (fp32 sum paths). Every
// entry is bit-exact across ISAs: the operations are lane-independent IEEE
// arithmetic (or, for max_abs_f32, an associative-and-commutative fold), so
// any vector width produces the bytes the scalar reference produces.
//
// Order-sensitive reductions (the L2 norms' sequential double sums, the
// 1bitSGD chunk averages) are deliberately NOT here: reassociating them
// changes rounding, so they stay scalar in every dispatch mode.
struct ElementwiseKernels {
  // max_i |x[i]| as a double; 0.0 for n == 0. NaNs are dropped exactly the
  // way the scalar std::max fold drops them.
  double (*max_abs_f32)(const float* x, int64_t n);
  // out[i] = a[i] + b[i]
  void (*add_f32)(const float* a, const float* b, float* out, int64_t n);
  // out[i] = |x[i]|
  void (*abs_f32)(const float* x, float* out, int64_t n);
  // acc[i] += x[i]
  void (*add_assign_f32)(float* acc, const float* x, int64_t n);
  // acc[i] += double(x[i]) — the full-precision aggregate's widened sum
  void (*accumulate_f64)(double* acc, const float* x, int64_t n);
  // out[i] = float(acc[i]) — the widened sum's rounding back to fp32
  void (*store_f64_as_f32)(const double* acc, float* out, int64_t n);
};

// Kernel table for `isa`; unsupported or not-compiled-in ISAs resolve to
// the scalar table, so callers never need their own fallback logic.
const ElementwiseKernels& ElementwiseKernelsForIsa(SimdIsa isa);

inline const ElementwiseKernels& ActiveElementwiseKernels() {
  return ElementwiseKernelsForIsa(ActiveSimdIsa());
}

// The always-compiled scalar golden reference (also the tail/head path the
// vector kernels fall back to, so SIMD results match by construction).
namespace simd_scalar {
double MaxAbsF32(const float* x, int64_t n);
void AddF32(const float* a, const float* b, float* out, int64_t n);
void AbsF32(const float* x, float* out, int64_t n);
void AddAssignF32(float* acc, const float* x, int64_t n);
void AccumulateF64(double* acc, const float* x, int64_t n);
void StoreF64AsF32(const double* acc, float* out, int64_t n);
}  // namespace simd_scalar

// Vector variants, defined in elementwise_simd.cc (the only base TU allowed
// to include intrinsics headers — see tools/lint).
#if defined(__x86_64__)
namespace simd_avx2 {
double MaxAbsF32(const float* x, int64_t n);
void AddF32(const float* a, const float* b, float* out, int64_t n);
void AbsF32(const float* x, float* out, int64_t n);
void AddAssignF32(float* acc, const float* x, int64_t n);
void AccumulateF64(double* acc, const float* x, int64_t n);
void StoreF64AsF32(const double* acc, float* out, int64_t n);
}  // namespace simd_avx2
#endif
#if defined(__aarch64__)
namespace simd_neon {
double MaxAbsF32(const float* x, int64_t n);
void AddF32(const float* a, const float* b, float* out, int64_t n);
void AbsF32(const float* x, float* out, int64_t n);
void AddAssignF32(float* acc, const float* x, int64_t n);
void AccumulateF64(double* acc, const float* x, int64_t n);
void StoreF64AsF32(const double* acc, float* out, int64_t n);
}  // namespace simd_neon
#endif

}  // namespace lpsgd

#endif  // LPSGD_BASE_SIMD_ELEMENTWISE_H_
