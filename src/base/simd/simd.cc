// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "base/strings.h"

namespace lpsgd {
namespace {

// -1 = not yet resolved; otherwise a SimdIsa value.
std::atomic<int> g_active{-1};

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdIsa ResolveInitial() {
  // The env override is an operator knob, not program input: an unusable
  // value falls back to detection instead of aborting the run.
  if (const char* env = std::getenv("LPSGD_SIMD");
      env != nullptr && *env != '\0') {
    StatusOr<SimdIsa> parsed = ParseSimdMode(env);
    if (parsed.ok()) return *parsed;
  }
  return DetectSimdIsa();
}

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdIsaSupported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return CpuHasAvx2();
    case SimdIsa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdIsa DetectSimdIsa() {
  if (SimdIsaSupported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (SimdIsaSupported(SimdIsa::kNeon)) return SimdIsa::kNeon;
  return SimdIsa::kScalar;
}

SimdIsa ActiveSimdIsa() {
  int value = g_active.load(std::memory_order_acquire);
  if (value < 0) {
    const SimdIsa resolved = ResolveInitial();
    int expected = -1;
    if (g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                         std::memory_order_acq_rel)) {
      return resolved;
    }
    value = expected;  // another thread resolved first
  }
  return static_cast<SimdIsa>(value);
}

StatusOr<SimdIsa> ParseSimdMode(std::string_view mode) {
  if (mode == "auto") return DetectSimdIsa();
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    if (mode != SimdIsaName(isa)) continue;
    if (!SimdIsaSupported(isa)) {
      return FailedPreconditionError(
          StrCat("SIMD mode \"", std::string(mode),
                 "\" is not supported on this host (detected: ",
                 SimdIsaName(DetectSimdIsa()), ")"));
    }
    return isa;
  }
  return InvalidArgumentError(
      StrCat("unknown SIMD mode \"", std::string(mode),
             "\" (expected auto, scalar, avx2, or neon)"));
}

Status SetSimdMode(std::string_view mode) {
  LPSGD_ASSIGN_OR_RETURN(const SimdIsa isa, ParseSimdMode(mode));
  g_active.store(static_cast<int>(isa), std::memory_order_release);
  return OkStatus();
}

namespace simd_internal {

SimdIsa ExchangeActiveSimdIsa(SimdIsa isa) {
  const SimdIsa previous = ActiveSimdIsa();
  g_active.store(static_cast<int>(isa), std::memory_order_release);
  return previous;
}

}  // namespace simd_internal
}  // namespace lpsgd
