// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_SIMD_SIMD_H_
#define LPSGD_BASE_SIMD_SIMD_H_

#include <string_view>

#include "base/status.h"
#include "base/statusor.h"

namespace lpsgd {

// Instruction sets the codec kernels can dispatch to at runtime. kScalar is
// always available: the scalar kernels are the golden reference every SIMD
// variant must match bit-for-bit (wire bytes and decoded floats), so falling
// back to it is always safe and always correct.
enum class SimdIsa {
  kScalar = 0,
  kAvx2 = 1,  // x86-64 AVX2: 256-bit integer/double lanes, 32-bit gathers
  kNeon = 2,  // aarch64 Advanced SIMD: 128-bit lanes
};

// "scalar" | "avx2" | "neon" — the names --simd= and LPSGD_SIMD accept.
const char* SimdIsaName(SimdIsa isa);

// True when `isa` is both compiled into this binary and supported by the
// CPU it is running on.
bool SimdIsaSupported(SimdIsa isa);

// Best supported ISA on this host (ignores overrides).
SimdIsa DetectSimdIsa();

// The ISA kernel dispatch uses. Resolution order: the last SetSimdMode()
// call, else the LPSGD_SIMD environment variable, else DetectSimdIsa().
// Resolved once and cached; SetSimdMode() replaces the cached value.
SimdIsa ActiveSimdIsa();

// Parses a --simd= / LPSGD_SIMD style value without installing it: "auto"
// maps to DetectSimdIsa(); "scalar", "avx2", and "neon" name the ISA
// directly. Fails with InvalidArgument on unknown names and
// FailedPrecondition when the named ISA cannot run on this host.
StatusOr<SimdIsa> ParseSimdMode(std::string_view mode);

// Installs the dispatch mode parsed by ParseSimdMode().
Status SetSimdMode(std::string_view mode);

namespace simd_internal {
// Swaps the active ISA, returning the previous one. No support check: an
// unsupported ISA simply resolves to the scalar kernel tables, so forcing
// is harmless. Used by ScopedSimdIsa; not part of the public surface.
SimdIsa ExchangeActiveSimdIsa(SimdIsa isa);
}  // namespace simd_internal

// Forces `isa` for the current scope and restores the previous active ISA
// on destruction. Test/bench helper — not safe against concurrent
// SetSimdMode calls from other threads.
class ScopedSimdIsa {
 public:
  explicit ScopedSimdIsa(SimdIsa isa)
      : previous_(simd_internal::ExchangeActiveSimdIsa(isa)) {}
  ~ScopedSimdIsa() { simd_internal::ExchangeActiveSimdIsa(previous_); }
  ScopedSimdIsa(const ScopedSimdIsa&) = delete;
  ScopedSimdIsa& operator=(const ScopedSimdIsa&) = delete;

 private:
  SimdIsa previous_;
};

// Marks a function as compiled for AVX2 regardless of the baseline -march.
// Per-function targeting (instead of per-TU -mavx2) keeps the compiler from
// emitting AVX2 in code that runs before the CPU check: only functions that
// the dispatch table guards carry the attribute.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LPSGD_SIMD_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define LPSGD_SIMD_TARGET_AVX2
#endif

}  // namespace lpsgd

#endif  // LPSGD_BASE_SIMD_SIMD_H_
