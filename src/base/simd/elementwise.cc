// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/simd/elementwise.h"

#include <algorithm>
#include <cmath>

#include "base/thread_annotations.h"

namespace lpsgd {
namespace simd_scalar {

LPSGD_HOT_PATH
double MaxAbsF32(const float* x, int64_t n) {
  double value = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    value = std::max(value, std::abs(static_cast<double>(x[i])));
  }
  return value;
}

LPSGD_HOT_PATH
void AddF32(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

LPSGD_HOT_PATH
void AbsF32(const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::abs(x[i]);
}

LPSGD_HOT_PATH
void AddAssignF32(float* acc, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) acc[i] += x[i];
}

LPSGD_HOT_PATH
void AccumulateF64(double* acc, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) acc[i] += static_cast<double>(x[i]);
}

LPSGD_HOT_PATH
void StoreF64AsF32(const double* acc, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

}  // namespace simd_scalar

const ElementwiseKernels& ElementwiseKernelsForIsa(SimdIsa isa) {
  static const ElementwiseKernels scalar = {
      simd_scalar::MaxAbsF32,     simd_scalar::AddF32,
      simd_scalar::AbsF32,        simd_scalar::AddAssignF32,
      simd_scalar::AccumulateF64, simd_scalar::StoreF64AsF32,
  };
#if defined(__x86_64__)
  static const ElementwiseKernels avx2 = {
      simd_avx2::MaxAbsF32,     simd_avx2::AddF32,
      simd_avx2::AbsF32,        simd_avx2::AddAssignF32,
      simd_avx2::AccumulateF64, simd_avx2::StoreF64AsF32,
  };
  if (isa == SimdIsa::kAvx2 && SimdIsaSupported(SimdIsa::kAvx2)) return avx2;
#endif
#if defined(__aarch64__)
  static const ElementwiseKernels neon = {
      simd_neon::MaxAbsF32,     simd_neon::AddF32,
      simd_neon::AbsF32,        simd_neon::AddAssignF32,
      simd_neon::AccumulateF64, simd_neon::StoreF64AsF32,
  };
  if (isa == SimdIsa::kNeon) return neon;
#endif
  (void)isa;
  return scalar;
}

}  // namespace lpsgd
