// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Vector elementwise kernels. Every loop here must produce bytes identical
// to the simd_scalar reference: only lane-independent IEEE operations (and
// the order-insensitive max fold) are vectorized, selects mirror the scalar
// ternaries exactly (including their NaN behavior), and tails run the
// scalar loops. tests/quant/simd_kernels_test.cc asserts the equivalence.
#include "base/simd/elementwise.h"

#include <algorithm>
#include <cmath>

#include "base/thread_annotations.h"

#if defined(__x86_64__)
#include <immintrin.h>

namespace lpsgd {
namespace simd_avx2 {
namespace {

// (acc < x) ? x : acc per lane — the exact std::max(acc, x) select,
// including dropping NaN lanes (unordered compare is false).
LPSGD_SIMD_TARGET_AVX2 LPSGD_HOT_PATH inline __m256 MaxLikeScalar(
    __m256 acc, __m256 x) {
  return _mm256_blendv_ps(acc, x, _mm256_cmp_ps(acc, x, _CMP_LT_OQ));
}

}  // namespace

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
double MaxAbsF32(const float* x, int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = MaxLikeScalar(acc, _mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask));
  }
  // Horizontal fold with the same select; the max of non-NaN |x| values is
  // associative and commutative, so lane order cannot change the result.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 m = _mm_blendv_ps(lo, hi, _mm_cmplt_ps(lo, hi));
  __m128 sh = _mm_movehl_ps(m, m);
  m = _mm_blendv_ps(m, sh, _mm_cmplt_ps(m, sh));
  sh = _mm_shuffle_ps(m, m, 0x1);
  m = _mm_blendv_ps(m, sh, _mm_cmplt_ps(m, sh));
  double value = static_cast<double>(_mm_cvtss_f32(m));
  for (; i < n; ++i) {
    value = std::max(value, std::abs(static_cast<double>(x[i])));
  }
  return value;
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void AddF32(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void AbsF32(const float* x, float* out, int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask));
  }
  for (; i < n; ++i) out[i] = std::abs(x[i]);
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void AddAssignF32(float* acc, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                            _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void AccumulateF64(double* acc, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wide = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), wide));
  }
  for (; i < n; ++i) acc[i] += static_cast<double>(x[i]);
}

LPSGD_SIMD_TARGET_AVX2
LPSGD_HOT_PATH
void StoreF64AsF32(const double* acc, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_loadu_pd(acc + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

}  // namespace simd_avx2
}  // namespace lpsgd
#endif  // defined(__x86_64__)

#if defined(__aarch64__)
#include <arm_neon.h>

namespace lpsgd {
namespace simd_neon {

LPSGD_HOT_PATH
double MaxAbsF32(const float* x, int64_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t a = vabsq_f32(vld1q_f32(x + i));
    // (acc < a) ? a : acc — mirrors the scalar std::max NaN drop.
    acc = vbslq_f32(vcltq_f32(acc, a), a, acc);
  }
  float value_f = 0.0f;
  float lanes[4];
  vst1q_f32(lanes, acc);
  for (const float lane : lanes) {
    if (value_f < lane) value_f = lane;
  }
  double value = static_cast<double>(value_f);
  for (; i < n; ++i) {
    const double a = std::abs(static_cast<double>(x[i]));
    if (value < a) value = a;
  }
  return value;
}

LPSGD_HOT_PATH
void AddF32(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

LPSGD_HOT_PATH
void AbsF32(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vabsq_f32(vld1q_f32(x + i)));
  }
  for (; i < n; ++i) out[i] = std::abs(x[i]);
}

LPSGD_HOT_PATH
void AddAssignF32(float* acc, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(acc + i, vaddq_f32(vld1q_f32(acc + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

LPSGD_HOT_PATH
void AccumulateF64(double* acc, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wide = vcvt_f64_f32(vld1_f32(x + i));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), wide));
  }
  for (; i < n; ++i) acc[i] += static_cast<double>(x[i]);
}

LPSGD_HOT_PATH
void StoreF64AsF32(const double* acc, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1_f32(out + i, vcvt_f32_f64(vld1q_f64(acc + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(acc[i]);
}

}  // namespace simd_neon
}  // namespace lpsgd
#endif  // defined(__aarch64__)
