// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_RNG_H_
#define LPSGD_BASE_RNG_H_

#include <cstdint>

namespace lpsgd {

// SplitMix64: fast, high-quality 64-bit mixing step. Used both as a
// standalone generator and to seed/derive other streams.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless counter-based mixing: hashes (seed, counter) to a uniform
// 64-bit value. This is the Philox-style contract the paper gets from
// cuRAND's independent per-thread streams: any (stream id, index) pair can
// be evaluated independently and deterministically.
uint64_t HashCounter(uint64_t seed, uint64_t counter);

// Small, fast deterministic PRNG (xoshiro256**). Seeded via SplitMix64 so
// any 64-bit seed produces a well-mixed initial state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform float in [0, 1).
  float NextFloat();

  // Standard normal via Box-Muller (one value per call; caches the pair).
  double NextGaussian();

  // Uniform int in [lo, hi], inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  // Creates an independent child stream. Deterministic in (parent seed,
  // call order).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// A per-element stochastic-rounding stream: independent uniform numbers
// addressable by (stream, index), mirroring cuRAND per-thread seeding.
class CounterRng {
 public:
  CounterRng(uint64_t seed, uint64_t stream)
      : seed_(HashCounter(seed, stream ^ 0xd1b54a32d192ed03ULL)) {}

  // Uniform double in [0, 1) for position `index`.
  double UniformAt(uint64_t index) const;

  // The mixed per-stream seed: HashCounter(stream_seed(), index) drives
  // UniformAt(index). Exposed so the SIMD codec kernels can evaluate the
  // identical stream through plain function-pointer tables without holding
  // the object (quant/simd_kernels.h, StreamUniform).
  uint64_t stream_seed() const { return seed_; }

 private:
  uint64_t seed_;
};

}  // namespace lpsgd

#endif  // LPSGD_BASE_RNG_H_
