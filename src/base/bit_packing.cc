// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/bit_packing.h"

#include "base/logging.h"

namespace lpsgd {

BitPacker::BitPacker(int bits_per_value)
    : bits_per_value_(bits_per_value),
      values_per_word_(32 / bits_per_value),
      mask_(bits_per_value == 32 ? 0xffffffffu
                                 : ((1u << bits_per_value) - 1u)) {
  CHECK_GE(bits_per_value, 1);
  CHECK_LE(bits_per_value, 32);
}

int64_t BitPacker::WordCount(int64_t count) const {
  return (count + values_per_word_ - 1) / values_per_word_;
}

void BitPacker::Pack(const uint32_t* values, int64_t count,
                     uint32_t* words) const {
  const int64_t num_words = WordCount(count);
  for (int64_t w = 0; w < num_words; ++w) words[w] = 0;
  for (int64_t i = 0; i < count; ++i) {
    DCHECK_EQ(values[i] & ~mask_, 0u);
    const int64_t word = i / values_per_word_;
    const int shift = static_cast<int>(i % values_per_word_) * bits_per_value_;
    words[word] |= (values[i] & mask_) << shift;
  }
}

void BitPacker::Unpack(const uint32_t* words, int64_t count,
                       uint32_t* values) const {
  for (int64_t i = 0; i < count; ++i) {
    values[i] = Get(words, i);
  }
}

uint32_t BitPacker::Get(const uint32_t* words, int64_t index) const {
  const int64_t word = index / values_per_word_;
  const int shift =
      static_cast<int>(index % values_per_word_) * bits_per_value_;
  return (words[word] >> shift) & mask_;
}

void PackSignBits(const float* values, int64_t count,
                  std::vector<uint32_t>* words) {
  words->assign((count + 31) / 32, 0u);
  for (int64_t i = 0; i < count; ++i) {
    if (values[i] >= 0.0f) {
      (*words)[i >> 5] |= 1u << (i & 31);
    }
  }
}

}  // namespace lpsgd
