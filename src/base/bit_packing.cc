// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/bit_packing.h"

#include "base/logging.h"

namespace lpsgd {
namespace {

uint32_t MaskFor(int bits_per_value) {
  return bits_per_value == 32 ? 0xffffffffu
                              : ((1u << bits_per_value) - 1u);
}

}  // namespace

BitPacker::BitPacker(int bits_per_value)
    : bits_per_value_(bits_per_value),
      values_per_word_(32 / bits_per_value),
      mask_(MaskFor(bits_per_value)) {
  CHECK_GE(bits_per_value, 1);
  CHECK_LE(bits_per_value, 32);
}

int64_t BitPacker::WordCount(int64_t count) const {
  return (count + values_per_word_ - 1) / values_per_word_;
}

int64_t IndexRunWordCount(int64_t element_count, int64_t count) {
  return BitPacker(IndexBitWidth(element_count)).WordCount(count);
}

void BitPacker::Pack(const uint32_t* values, int64_t count,
                     uint32_t* words) const {
  BitWriter writer(words, bits_per_value_);
  for (int64_t i = 0; i < count; ++i) {
    DCHECK_EQ(values[i] & ~mask_, 0u);
    writer.Put(values[i]);
  }
  writer.Finish();
}

void BitPacker::Unpack(const uint32_t* words, int64_t count,
                       uint32_t* values) const {
  BitReader reader(words, bits_per_value_);
  for (int64_t i = 0; i < count; ++i) {
    values[i] = reader.Next();
  }
}

uint32_t BitPacker::Get(const uint32_t* words, int64_t index) const {
  const int64_t word = index / values_per_word_;
  const int shift =
      static_cast<int>(index % values_per_word_) * bits_per_value_;
  return (words[word] >> shift) & mask_;
}

BitWriter::BitWriter(uint32_t* words, int bits_per_value)
    : words_(words),
      bits_(bits_per_value),
      per_word_(32 / bits_per_value),
      mask_(MaskFor(bits_per_value)) {
  CHECK_GE(bits_per_value, 1);
  CHECK_LE(bits_per_value, 32);
}

BitReader::BitReader(const uint32_t* words, int bits_per_value)
    : words_(words),
      bits_(bits_per_value),
      per_word_(32 / bits_per_value),
      mask_(MaskFor(bits_per_value)),
      in_word_(per_word_) {
  CHECK_GE(bits_per_value, 1);
  CHECK_LE(bits_per_value, 32);
}

void PackSignBits(const float* values, int64_t count, uint32_t* words) {
  const int64_t num_words = (count + 31) / 32;
  for (int64_t w = 0; w < num_words; ++w) words[w] = 0u;
  for (int64_t i = 0; i < count; ++i) {
    if (values[i] >= 0.0f) {
      words[i >> 5] |= 1u << (i & 31);
    }
  }
}

void PackSignBits(const float* values, int64_t count,
                  std::vector<uint32_t>* words) {
  words->resize(static_cast<size_t>((count + 31) / 32));
  PackSignBits(values, count, words->data());
}

}  // namespace lpsgd
