// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace lpsgd {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t HashCounter(uint64_t seed, uint64_t counter) {
  // One SplitMix64 round over a combined word; passes practical
  // independence needs for stochastic rounding.
  uint64_t state = seed ^ (counter * 0x9e3779b97f4a7c15ULL) ^
                   Rotl(counter, 23) ^ 0x2545f4914f6cdd1dULL;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

int Rng::NextInt(int lo, int hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

double CounterRng::UniformAt(uint64_t index) const {
  return static_cast<double>(HashCounter(seed_, index) >> 11) * 0x1.0p-53;
}

}  // namespace lpsgd
