// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/strings.h"

#include <cmath>
#include <cstdio>

namespace lpsgd {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string HumanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrCat(FormatDouble(bytes, bytes < 10 ? 2 : 1), " ", kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrCat(FormatDouble(seconds * 1e6, 1), " us");
  if (seconds < 1.0) return StrCat(FormatDouble(seconds * 1e3, 1), " ms");
  if (seconds < 120.0) return StrCat(FormatDouble(seconds, 2), " s");
  if (seconds < 7200.0) return StrCat(FormatDouble(seconds / 60.0, 1), " min");
  return StrCat(FormatDouble(seconds / 3600.0, 2), " h");
}

}  // namespace lpsgd
