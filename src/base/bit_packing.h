// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_BIT_PACKING_H_
#define LPSGD_BASE_BIT_PACKING_H_

#include <cstdint>
#include <vector>

#include "base/thread_annotations.h"

namespace lpsgd {

// Fixed-width bit packing used by the gradient codecs: packs n values of
// `bits_per_value` bits each (1..32) into 32-bit words, mirroring the
// CNTK/QSGD layout where 32/bits quantized values share one C++ unsigned
// integer.
//
// Values are stored little-endian within a word: value i occupies bits
// [(i % per_word) * bits, ...) of word i / per_word. Values never straddle
// words; when bits does not divide 32 the top 32 % bits bits of every word
// are zero padding.
class BitPacker {
 public:
  // `bits_per_value` must be in [1, 32].
  explicit BitPacker(int bits_per_value);

  int bits_per_value() const { return bits_per_value_; }
  int values_per_word() const { return values_per_word_; }

  // Number of 32-bit words needed to store `count` values.
  int64_t WordCount(int64_t count) const;

  // Packs `count` values from `values` into `words`. Each value must fit in
  // `bits_per_value` bits; higher bits must be zero. `words` must hold
  // WordCount(count) words and is fully overwritten.
  void Pack(const uint32_t* values, int64_t count, uint32_t* words) const;

  // Unpacks `count` values from `words` into `values`.
  void Unpack(const uint32_t* words, int64_t count, uint32_t* values) const;

  // Random access read of value `index` from a packed buffer.
  uint32_t Get(const uint32_t* words, int64_t index) const;

 private:
  int bits_per_value_;
  int values_per_word_;
  uint32_t mask_;
};

// Streaming writer producing BitPacker's exact word layout without a
// materialized field array or a second packing pass: the codec hot loops
// quantize each element and Put() it straight into the wire buffer.
//
// `words` must hold BitPacker(bits).WordCount(count) words; every word the
// stream reaches is fully overwritten (padding bits zeroed), so the buffer
// needs no pre-zeroing. Call Finish() once after the last Put() to flush a
// trailing partial word.
class BitWriter {
 public:
  // `bits_per_value` must be in [1, 32].
  BitWriter(uint32_t* words, int bits_per_value);

  // Appends `value` (must fit in bits_per_value bits) as the next field.
  LPSGD_HOT_PATH
  void Put(uint32_t value) {
    current_ |= (value & mask_) << shift_;
    shift_ += bits_;
    if (++in_word_ == per_word_) {
      *words_++ = current_;
      current_ = 0;
      shift_ = 0;
      in_word_ = 0;
    }
  }

  // Flushes a trailing partial word, if any. Idempotent.
  LPSGD_HOT_PATH
  void Finish() {
    if (in_word_ > 0) {
      *words_++ = current_;
      current_ = 0;
      shift_ = 0;
      in_word_ = 0;
    }
  }

  // Bulk-write escape hatch for the SIMD kernels: when the stream is at a
  // word boundary (no partial word pending), whole packed words in the
  // exact Put() layout may be written through cursor(), after which
  // SkipWords() advances the stream past them. Interleaving Put() and
  // cursor() writes without SkipWords() corrupts the stream.
  bool AtWordBoundary() const { return in_word_ == 0; }
  uint32_t* cursor() { return words_; }
  LPSGD_HOT_PATH
  void SkipWords(int64_t count) { words_ += count; }

 private:
  uint32_t* words_;
  int bits_;
  int per_word_;
  uint32_t mask_;
  uint32_t current_ = 0;
  int shift_ = 0;
  int in_word_ = 0;
};

// Streaming counterpart of BitWriter: sequential reads of consecutive
// fields without BitPacker::Get's per-element divide. Reads words lazily,
// so constructing a reader over an empty stream never dereferences it.
class BitReader {
 public:
  // `bits_per_value` must be in [1, 32].
  BitReader(const uint32_t* words, int bits_per_value);

  // Returns the next field in stream order.
  LPSGD_HOT_PATH
  uint32_t Next() {
    if (in_word_ == per_word_) {
      current_ = *words_++;
      shift_ = 0;
      in_word_ = 0;
    }
    const uint32_t value = (current_ >> shift_) & mask_;
    shift_ += bits_;
    ++in_word_;
    return value;
  }

  // Bulk-read escape hatch mirroring BitWriter's: at a word boundary (the
  // next Next() would load a fresh word) the SIMD kernels may consume whole
  // words straight from cursor() and then SkipWords() past them; the reader
  // stays at a boundary afterwards.
  bool AtWordBoundary() const { return in_word_ == per_word_; }
  const uint32_t* cursor() const { return words_; }
  LPSGD_HOT_PATH
  void SkipWords(int64_t count) { words_ += count; }

 private:
  const uint32_t* words_;
  int bits_;
  int per_word_;
  uint32_t mask_;
  uint32_t current_ = 0;
  int shift_ = 0;
  int in_word_;  // initialized to per_word_ so the first Next() loads
};

// Packs a sign bitmap (1 bit per element, bit set when `values[i] >= 0`)
// into 32-bit words; the layout used by the 1bitSGD codec. The raw-pointer
// overload writes (count + 31) / 32 fully-overwritten words.
void PackSignBits(const float* values, int64_t count, uint32_t* words);
void PackSignBits(const float* values, int64_t count,
                  std::vector<uint32_t>* words);

// Reads sign bit `index` from a packed bitmap: true when the original value
// was >= 0.
inline bool SignBitAt(const uint32_t* words, int64_t index) {
  return (words[index >> 5] >> (index & 31)) & 1u;
}

// Sparse index runs (the TopK wire format): k strictly-increasing element
// indices of an n-element gradient, packed at the fixed width
// IndexBitWidth(n) bits each through the BitWriter/BitReader word layout.
// A fixed width keeps the encoded size an exact function of (n, k) — the
// EncodedSizeBytes contract every codec blob must satisfy — while still
// cutting the 32-bit-per-index cost to ceil(log2 n) bits.

// Bits needed to address any element of an n-element buffer (>= 1 so an
// empty field never occurs; n == 1 still packs one 1-bit zero index).
inline int IndexBitWidth(int64_t element_count) {
  int bits = 1;
  while ((int64_t{1} << bits) < element_count) ++bits;
  return bits;
}

// 32-bit words occupied by `count` packed indices of an n-element buffer.
int64_t IndexRunWordCount(int64_t element_count, int64_t count);

// Packs `count` strictly-increasing indices (each < element_count) into
// `words`, which must hold IndexRunWordCount(element_count, count) fully
// overwritten words.
LPSGD_HOT_PATH
inline void PackIndexRun(const int64_t* indices, int64_t count,
                         int64_t element_count, uint32_t* words) {
  BitWriter writer(words, IndexBitWidth(element_count));
  for (int64_t i = 0; i < count; ++i) {
    writer.Put(static_cast<uint32_t>(indices[i]));
  }
  writer.Finish();
}

// Unpacks `count` indices into `indices` and validates the run: every
// index must be < element_count and the run strictly increasing (the
// canonical order PackIndexRun wrote). Returns false on a malformed run —
// the caller must treat the blob as corrupt and not scatter from it.
[[nodiscard]] LPSGD_HOT_PATH inline bool UnpackIndexRun(
    const uint32_t* words, int64_t count, int64_t element_count,
    uint32_t* indices) {
  BitReader reader(words, IndexBitWidth(element_count));
  int64_t previous = -1;
  for (int64_t i = 0; i < count; ++i) {
    const uint32_t index = reader.Next();
    if (static_cast<int64_t>(index) >= element_count ||
        static_cast<int64_t>(index) <= previous) {
      return false;
    }
    indices[i] = index;
    previous = static_cast<int64_t>(index);
  }
  return true;
}

// FNV-1a over 32 bits: the integrity hash every codec appends to its wire
// blob (quant/codec.h, VerifyWireBlob). Chosen over a table-driven CRC for
// its 4-line allocation-free inner loop — one xor and one multiply per
// byte — which keeps the seal/verify passes memory-bound like the
// encode/decode kernels around them.
inline constexpr uint32_t kFnv1a32OffsetBasis = 0x811c9dc5u;
inline constexpr uint32_t kFnv1a32Prime = 16777619u;

LPSGD_HOT_PATH
inline uint32_t Fnv1a32(const uint8_t* bytes, int64_t count) {
  uint32_t hash = kFnv1a32OffsetBasis;
  for (int64_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1a32Prime;
  }
  return hash;
}

}  // namespace lpsgd

#endif  // LPSGD_BASE_BIT_PACKING_H_
