// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_BIT_PACKING_H_
#define LPSGD_BASE_BIT_PACKING_H_

#include <cstdint>
#include <vector>

namespace lpsgd {

// Fixed-width bit packing used by the gradient codecs: packs n values of
// `bits_per_value` bits each (1..32) into 32-bit words, mirroring the
// CNTK/QSGD layout where 32/bits quantized values share one C++ unsigned
// integer.
//
// Values are stored little-endian within a word: value i occupies bits
// [(i % per_word) * bits, ...) of word i / per_word.
class BitPacker {
 public:
  // `bits_per_value` must be in [1, 32].
  explicit BitPacker(int bits_per_value);

  int bits_per_value() const { return bits_per_value_; }
  int values_per_word() const { return values_per_word_; }

  // Number of 32-bit words needed to store `count` values.
  int64_t WordCount(int64_t count) const;

  // Packs `count` values from `values` into `words`. Each value must fit in
  // `bits_per_value` bits; higher bits must be zero. `words` must hold
  // WordCount(count) words and is fully overwritten.
  void Pack(const uint32_t* values, int64_t count, uint32_t* words) const;

  // Unpacks `count` values from `words` into `values`.
  void Unpack(const uint32_t* words, int64_t count, uint32_t* values) const;

  // Random access read of value `index` from a packed buffer.
  uint32_t Get(const uint32_t* words, int64_t index) const;

 private:
  int bits_per_value_;
  int values_per_word_;
  uint32_t mask_;
};

// Packs a sign bitmap (1 bit per element, bit set when `values[i] >= 0`)
// into 32-bit words; the layout used by the 1bitSGD codec.
void PackSignBits(const float* values, int64_t count,
                  std::vector<uint32_t>* words);

// Reads sign bit `index` from a packed bitmap: true when the original value
// was >= 0.
inline bool SignBitAt(const uint32_t* words, int64_t index) {
  return (words[index >> 5] >> (index & 31)) & 1u;
}

}  // namespace lpsgd

#endif  // LPSGD_BASE_BIT_PACKING_H_
