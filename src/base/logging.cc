// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/logging.h"

#include <cstring>

namespace lpsgd {
namespace internal_logging {
namespace {

const char* SeverityLabel(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogLevel() {
  static const LogSeverity kLevel = [] {
    const char* env = std::getenv("LPSGD_MIN_LOG_LEVEL");
    if (env == nullptr) return LogSeverity::kInfo;
    int value = std::atoi(env);
    if (value < 0) value = 0;
    if (value > 3) value = 3;
    return static_cast<LogSeverity>(value);
  }();
  return kLevel;
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  stream_ << SeverityLabel(severity) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogLevel() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace lpsgd
