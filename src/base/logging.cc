// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/logging.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>  // lpsgd-lint: allow(banned-include) log sink is stderr

namespace lpsgd {
namespace internal_logging {
namespace {

const char* SeverityLabel(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// ISO-8601 UTC timestamp, e.g. "2026-08-05T14:03:27Z". Falls back to a
// placeholder if the clock is unavailable (never in practice). The "?"s in
// the placeholder are escaped so "??-" can never form a trigraph.
std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  if (gmtime_r(&now, &utc) == nullptr) return "?\?\?\?-?\?-?\?T?\?:?\?:?\?Z";
  // Sized for the widest output snprintf can produce (tm_year is an int, so
  // the %04d fields are not bounded at 4 digits), not just the common case.
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buf;
}

}  // namespace

LogSeverity MinLogLevel() {
  static const LogSeverity kLevel = [] {
    const char* env = std::getenv("LPSGD_MIN_LOG_LEVEL");
    if (env == nullptr || *env == '\0') return LogSeverity::kInfo;
    // Parse defensively: malformed values (garbage, trailing text,
    // out-of-range) fall back to the default instead of atoi's undefined
    // behavior on overflow; in-range values clamp to [kInfo, kFatal].
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE) {
      return LogSeverity::kInfo;
    }
    if (value <= 0) return LogSeverity::kInfo;
    if (value >= 3) return LogSeverity::kFatal;
    return static_cast<LogSeverity>(value);
  }();
  return kLevel;
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  stream_ << SeverityLabel(severity) << " " << IsoTimestampUtc() << " "
          << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogLevel() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace lpsgd
