// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
//
// Annotated mutex primitives. std::mutex and std::lock_guard carry no
// thread-safety attributes in libstdc++, so Clang's analysis cannot see
// them acquire anything; these thin wrappers add the capability
// annotations (base/thread_annotations.h) with no behavioural change —
// Mutex is exactly a std::mutex, CondVar exactly a std::condition_variable.
// All mutex-protected state in the repo uses these so the thread-safety CI
// build (`clang++ -Wthread-safety -Werror`) proves the locking discipline.
#ifndef LPSGD_BASE_MUTEX_H_
#define LPSGD_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace lpsgd {

// A std::mutex declared as a Clang capability. Prefer MutexLock over
// manual Lock/Unlock pairs; the manual form exists for code that must
// release around a blocking region (e.g. ThreadPool::WorkerLoop).
class LPSGD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LPSGD_ACQUIRE() { mu_.lock(); }
  void Unlock() LPSGD_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a Mutex, annotated as a scoped capability so the
// analysis knows the mutex is held for the lexical scope.
class LPSGD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LPSGD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() LPSGD_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

// Condition variable over a Mutex. Wait() atomically releases and
// reacquires the mutex exactly like std::condition_variable::wait; the
// LPSGD_REQUIRES annotation makes callers prove they hold it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) LPSGD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the (reacquired) mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lpsgd

#endif  // LPSGD_BASE_MUTEX_H_
