// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_BASE_STRINGS_H_
#define LPSGD_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lpsgd {

// Concatenates the streamable arguments into a std::string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

// Human-readable byte count, e.g. "1.5 MB".
std::string HumanBytes(double bytes);

// Human-readable duration from seconds, e.g. "2.5 h", "310 ms".
std::string HumanSeconds(double seconds);

}  // namespace lpsgd

#endif  // LPSGD_BASE_STRINGS_H_
