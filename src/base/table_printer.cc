// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "base/table_printer.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace lpsgd {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      oss << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    oss << "\n";
  };
  auto emit_rule = [&] {
    oss << "+";
    for (size_t width : widths) oss << std::string(width + 2, '-') << "+";
    oss << "\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return oss.str();
}

}  // namespace lpsgd
