// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "core/trainer.h"

#include <chrono>

#include "base/logging.h"
#include "base/strings.h"
#include "ckpt/fault_storage.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace lpsgd {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

obs::JsonValue EpochMetricsToJson(const EpochMetrics& metrics) {
  obs::JsonValue entry = obs::JsonValue::Object();
  entry.Set("epoch", int64_t{metrics.epoch});
  entry.Set("train_loss", metrics.train_loss);
  entry.Set("train_accuracy", metrics.train_accuracy);
  entry.Set("test_loss", metrics.test_loss);
  entry.Set("test_accuracy", metrics.test_accuracy);
  entry.Set("test_top5_accuracy", metrics.test_top5_accuracy);
  entry.Set("virtual_seconds", metrics.virtual_seconds);
  entry.Set("wall_seconds", metrics.wall_seconds);
  entry.Set("comm_seconds", metrics.comm.comm_seconds);
  entry.Set("encode_seconds", metrics.comm.encode_seconds);
  entry.Set("wire_bytes", metrics.comm.wire_bytes);
  entry.Set("raw_bytes", metrics.comm.raw_bytes);
  entry.Set("messages", metrics.comm.messages);
  entry.Set("compression_ratio", metrics.comm.CompressionRatio());
  return entry;
}

Status TrainerOptions::Validate() const {
  if (num_gpus < 1) {
    return InvalidArgumentError("num_gpus must be >= 1");
  }
  if (global_batch_size < num_gpus) {
    return InvalidArgumentError(
        StrCat("global batch ", global_batch_size, " smaller than ",
               num_gpus, " GPUs"));
  }
  if (global_batch_size % num_gpus != 0) {
    return InvalidArgumentError(
        StrCat("global batch ", global_batch_size, " not divisible by ",
               num_gpus, " GPUs"));
  }
  if (!(learning_rate > 0.0f)) {
    return InvalidArgumentError(
        StrCat("learning_rate must be > 0, got ", learning_rate));
  }
  for (size_t i = 1; i < lr_schedule.size(); ++i) {
    if (lr_schedule[i - 1].first >= lr_schedule[i].first) {
      return InvalidArgumentError(
          StrCat("lr_schedule epochs must be strictly increasing; epoch ",
                 lr_schedule[i].first, " follows epoch ",
                 lr_schedule[i - 1].first));
    }
  }
  if (eval_batch_size < 1) {
    return InvalidArgumentError(
        StrCat("eval_batch_size must be >= 1, got ", eval_batch_size));
  }
  if (execution.intra_op_threads < 0) {
    return InvalidArgumentError(
        StrCat("execution.intra_op_threads must be >= 0 (0 = auto), got ",
               execution.intra_op_threads));
  }
  LPSGD_RETURN_IF_ERROR(fault_tolerance.Validate());
  if (durable_checkpoint.enabled()) {
    LPSGD_RETURN_IF_ERROR(durable_checkpoint.Validate());
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<SyncTrainer>> SyncTrainer::Create(
    const NetworkFactory& factory, const TrainerOptions& options) {
  LPSGD_RETURN_IF_ERROR(options.Validate());

  // Materialize the thread pool once; the trainer and the aggregator
  // share it (one pool per run, never one per component).
  TrainerOptions resolved = options;
  resolved.execution = options.execution.Materialized();

  std::vector<Network> replicas;
  replicas.reserve(static_cast<size_t>(resolved.num_gpus));
  for (int r = 0; r < resolved.num_gpus; ++r) {
    replicas.push_back(factory(resolved.seed));
  }
  // Defend against non-deterministic factories: force identical weights.
  for (int r = 1; r < resolved.num_gpus; ++r) {
    replicas[static_cast<size_t>(r)].CopyParamsFrom(replicas[0]);
  }

  LPSGD_ASSIGN_OR_RETURN(
      std::unique_ptr<GradientAggregator> aggregator,
      CreateAggregator(resolved.primitive, resolved.num_gpus,
                       resolved.codec, resolved.machine, resolved.execution,
                       resolved.fault_tolerance.retry,
                       fault::MakeAggregatorDecorator(
                           resolved.fault_tolerance.plan, resolved.codec)));

  std::unique_ptr<SyncTrainer> trainer(new SyncTrainer(
      resolved, std::move(replicas), std::move(aggregator)));
  LPSGD_RETURN_IF_ERROR(trainer->SetUpDurableCheckpoint());
  return trainer;
}

StatusOr<std::unique_ptr<SyncTrainer>> SyncTrainer::Restore(
    const NetworkFactory& factory, const TrainerOptions& options,
    const ckpt::TrainerState& state) {
  LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<SyncTrainer> trainer,
                         Create(factory, options));
  LPSGD_RETURN_IF_ERROR(trainer->ApplyState(state));
  if (obs::ReportEnabled() && state.rank_count != options.num_gpus) {
    obs::JsonValue fields = obs::JsonValue::Object();
    fields.Set("from_ranks", static_cast<int64_t>(state.rank_count));
    fields.Set("to_ranks", int64_t{options.num_gpus});
    fields.Set("iteration", state.iteration);
    obs::RecordEntry("restore_rescale", std::move(fields));
  }
  return trainer;
}

Status SyncTrainer::SetUpDurableCheckpoint() {
  if (!options_.durable_checkpoint.enabled()) return OkStatus();
  ckpt::DurableCheckpointOptions durable = options_.durable_checkpoint;
  std::shared_ptr<ckpt::Storage> storage =
      durable.storage != nullptr ? durable.storage
                                 : ckpt::MakePosixStorage();
  if (options_.fault_tolerance.plan.HasStorageFaults()) {
    storage = std::make_shared<ckpt::FaultInjectingStorage>(
        std::move(storage), options_.fault_tolerance.plan);
  }
  durable.storage = std::move(storage);
  LPSGD_ASSIGN_OR_RETURN(ckpt_manager_,
                         ckpt::CheckpointManager::Create(std::move(durable)));
  return OkStatus();
}

SyncTrainer::SyncTrainer(TrainerOptions options,
                         std::vector<Network> replicas,
                         std::unique_ptr<GradientAggregator> aggregator)
    : options_(std::move(options)),
      replicas_(std::move(replicas)),
      aggregator_(std::move(aggregator)),
      live_gpus_(static_cast<int>(replicas_.size())),
      active_plan_(options_.fault_tolerance.plan) {
  replica_params_.reserve(replicas_.size());
  for (Network& replica : replicas_) {
    replica_params_.push_back(replica.Params());
  }
  const size_t num_matrices = replica_params_[0].size();
  for (const auto& params : replica_params_) {
    CHECK_EQ(params.size(), num_matrices);
  }

  quantize_matrix_ =
      ChooseQuantizedMatrices(replica_params_[0], options_.policy);

  // Error-feedback residuals, one per (rank, matrix), zero-initialized.
  // A matrix needs a residual when the engine will actually run the
  // codec on it: always under MPI, and on the sparse wire path under
  // NCCL (the fp32 ring never encodes dense codecs — it simulates their
  // payload size; same criterion as NcclRingAggregator's sparse check).
  auto codec_or = options_.codec.Create();
  CHECK_OK(codec_or.status());
  const bool uses_error_feedback = codec_or.value()->UsesErrorFeedback();
  errors_.resize(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    errors_[r].resize(num_matrices);
    if (uses_error_feedback) {
      for (size_t m = 0; m < num_matrices; ++m) {
        const Shape& quant_shape = replica_params_[0][m].quant_shape;
        const bool engine_encodes =
            options_.primitive == CommPrimitive::kMpi ||
            codec_or.value()->SparseCount(quant_shape) > 0;
        if (quantize_matrix_[m] && engine_encodes) {
          errors_[r][m].assign(
              static_cast<size_t>(quant_shape.element_count()), 0.0f);
        }
      }
    }
  }

  optimizers_.reserve(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    optimizers_.emplace_back(options_.learning_rate, options_.momentum);
  }

  slot_phases_.resize(static_cast<size_t>(options_.execution.threads()));
}

Status SyncTrainer::SaveCheckpoint(std::ostream& os) {
  LPSGD_RETURN_IF_ERROR(replicas_[0].SaveParams(os));
  // SaveParams checks its own writes, but a buffered sink can defer the
  // actual I/O failure (full disk, closed pipe) until the flush.
  os.flush();
  if (os.fail() || os.bad()) {
    return InternalError("checkpoint stream write failed at flush");
  }
  return OkStatus();
}

Status SyncTrainer::LoadCheckpoint(std::istream& is) {
  LPSGD_RETURN_IF_ERROR(replicas_[0].LoadParams(is));
  if (is.bad()) {
    return DataLossError("checkpoint stream read failed");
  }
  for (size_t r = 1; r < replicas_.size(); ++r) {
    replicas_[r].CopyParamsFrom(replicas_[0]);
  }
  // Restart the stateful parts: fresh momentum and residuals. The
  // recovery snapshot describes pre-load state, so drop it too.
  optimizers_.clear();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    optimizers_.emplace_back(options_.learning_rate, options_.momentum);
  }
  for (auto& rank_errors : errors_) {
    for (auto& residual : rank_errors) {
      std::fill(residual.begin(), residual.end(), 0.0f);
    }
  }
  recovery_.valid = false;
  replay_.clear();
  return OkStatus();
}

ckpt::TrainerState SyncTrainer::CaptureState() const {
  return CaptureStateAt(/*loss_sum=*/0.0, /*correct=*/0, /*samples=*/0,
                        /*cursor=*/0);
}

ckpt::TrainerState SyncTrainer::CaptureStateAt(double loss_sum,
                                               int64_t correct,
                                               int64_t samples,
                                               int64_t cursor) const {
  ckpt::TrainerState state;
  state.seed = options_.seed;
  state.codec = options_.codec.Label();
  state.rank_count = live_gpus_;
  state.iteration = iteration_;
  state.epochs_completed = epochs_completed_;
  state.epoch_batch_cursor = cursor;
  state.epoch_loss_sum = loss_sum;
  state.epoch_correct = correct;
  state.epoch_samples = samples;
  state.virtual_seconds = virtual_seconds_;
  for (const ParamRef& param : replica_params_[0]) {
    ckpt::TensorEntry entry;
    entry.name = param.name;
    entry.dims = param.value->shape().dims();
    entry.data.assign(param.value->data(),
                      param.value->data() + param.value->size());
    state.params.push_back(std::move(entry));
  }
  for (const Tensor& velocity : optimizers_[0].velocity()) {
    ckpt::TensorEntry entry;
    entry.dims = velocity.shape().dims();
    entry.data.assign(velocity.data(), velocity.data() + velocity.size());
    state.optimizer.push_back(std::move(entry));
  }
  state.residuals = errors_;
  aggregator_->ExportExchangeState(&state.aggregator_state);
  // The deterministic streams, recorded for provenance: everything the run
  // draws is recomputable from these plus (iteration, matrix, rank)
  // counters, which is why no generator cursor needs persisting.
  state.rng_streams.push_back({"init", options_.seed});
  state.rng_streams.push_back({"shuffle", options_.seed ^ 0xdadaULL});
  return state;
}

Status SyncTrainer::ImportResiduals(
    const std::vector<std::vector<std::vector<float>>>& residuals) {
  if (residuals.empty()) {
    // Checkpoint from a residual-free configuration: keep the fresh zeros.
    return OkStatus();
  }
  const int old_ranks = static_cast<int>(residuals.size());
  const int new_ranks = live_gpus_;
  const size_t num_matrices = errors_[0].size();
  for (const auto& rank_residuals : residuals) {
    if (rank_residuals.size() != num_matrices) {
      return FailedPreconditionError(
          StrCat("checkpoint has ", rank_residuals.size(),
                 " residual matrices per rank, model has ", num_matrices));
    }
  }
  for (int r = 0; r < new_ranks; ++r) {
    for (size_t m = 0; m < num_matrices; ++m) {
      std::vector<float>& dst = errors_[static_cast<size_t>(r)][m];
      const std::vector<float>& reference =
          residuals[static_cast<size_t>(r % old_ranks)][m];
      if (reference.size() != dst.size()) {
        return FailedPreconditionError(StrCat(
            "checkpoint residual for matrix ", m, " has ",
            reference.size(), " elements, trainer expects ", dst.size(),
            " (codec/primitive mismatch?)"));
      }
      if (dst.empty()) continue;
      if (new_ranks == old_ranks) {
        dst = residuals[static_cast<size_t>(r)][m];
      } else if (new_ranks < old_ranks) {
        // Shrink: fold the departing ranks' residuals onto the survivors
        // (o % new_ranks == r), preserving the total residual mass.
        std::fill(dst.begin(), dst.end(), 0.0f);
        for (int o = r; o < old_ranks; o += new_ranks) {
          const std::vector<float>& src = residuals[static_cast<size_t>(o)][m];
          if (src.size() != dst.size()) {
            return FailedPreconditionError(
                StrCat("ragged checkpoint residuals for matrix ", m));
          }
          for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
        }
      } else {
        // Grow: replicate old rank (r % old) onto the new rank, scaled by
        // old/new so the summed residual mass is unchanged.
        const float scale = static_cast<float>(old_ranks) /
                            static_cast<float>(new_ranks);
        dst = reference;
        for (float& value : dst) value *= scale;
      }
    }
  }
  return OkStatus();
}

Status SyncTrainer::ApplyState(const ckpt::TrainerState& state) {
  if (state.seed != options_.seed) {
    return FailedPreconditionError(
        StrCat("checkpoint seed ", state.seed, " does not match run seed ",
               options_.seed, "; the data order would diverge"));
  }
  if (state.codec != options_.codec.Label()) {
    return FailedPreconditionError(
        StrCat("checkpoint codec \"", state.codec,
               "\" does not match run codec \"", options_.codec.Label(),
               "\""));
  }
  if (state.rank_count < 1) {
    return FailedPreconditionError("checkpoint has no ranks");
  }
  // Parameters: names and shapes must line up exactly.
  if (state.params.size() != replica_params_[0].size()) {
    return FailedPreconditionError(
        StrCat("checkpoint has ", state.params.size(),
               " parameter matrices, model has ",
               replica_params_[0].size()));
  }
  for (size_t m = 0; m < state.params.size(); ++m) {
    const ckpt::TensorEntry& entry = state.params[m];
    const ParamRef& param = replica_params_[0][m];
    if (entry.name != param.name) {
      return FailedPreconditionError(
          StrCat("checkpoint param \"", entry.name,
                 "\" does not match model param \"", param.name, "\""));
    }
    if (entry.dims != param.value->shape().dims() ||
        static_cast<int64_t>(entry.data.size()) != param.value->size()) {
      return FailedPreconditionError(
          StrCat("checkpoint param \"", entry.name, "\" shape mismatch"));
    }
  }
  // Optimizer momentum: either absent (pre-first-step checkpoint) or one
  // tensor per parameter.
  std::vector<Tensor> velocity;
  if (!state.optimizer.empty()) {
    if (state.optimizer.size() != state.params.size()) {
      return FailedPreconditionError(
          StrCat("checkpoint has ", state.optimizer.size(),
                 " momentum tensors for ", state.params.size(),
                 " parameters"));
    }
    velocity.reserve(state.optimizer.size());
    for (size_t m = 0; m < state.optimizer.size(); ++m) {
      const ckpt::TensorEntry& entry = state.optimizer[m];
      Tensor tensor{Shape(entry.dims)};
      if (static_cast<int64_t>(entry.data.size()) != tensor.size() ||
          tensor.size() != replica_params_[0][m].value->size()) {
        return FailedPreconditionError(
            StrCat("checkpoint momentum tensor ", m, " shape mismatch"));
      }
      std::copy(entry.data.begin(), entry.data.end(), tensor.data());
      velocity.push_back(std::move(tensor));
    }
  }
  // All validation passed: start mutating.
  for (size_t m = 0; m < state.params.size(); ++m) {
    std::copy(state.params[m].data.begin(), state.params[m].data.end(),
              replica_params_[0][m].value->data());
  }
  for (size_t r = 1; r < replicas_.size(); ++r) {
    replicas_[r].CopyParamsFrom(replicas_[0]);
  }
  for (auto& optimizer : optimizers_) optimizer.set_velocity(velocity);
  // Re-derive the effective learning rate for the resume position: the
  // optimizers are fresh, so schedule entries from earlier epochs must be
  // re-applied (Train() only applies the entry for the epoch it starts).
  float lr = options_.learning_rate;
  for (const auto& [at_epoch, scheduled] : options_.lr_schedule) {
    if (at_epoch <= state.epochs_completed) lr = scheduled;
  }
  for (auto& optimizer : optimizers_) optimizer.set_learning_rate(lr);
  LPSGD_RETURN_IF_ERROR(ImportResiduals(state.residuals));
  LPSGD_RETURN_IF_ERROR(
      aggregator_->ImportExchangeState(state.aggregator_state));
  iteration_ = state.iteration;
  epochs_completed_ = state.epochs_completed;
  virtual_seconds_ = state.virtual_seconds;
  pending_resume_ =
      state.epoch_batch_cursor > 0 || state.epoch_samples > 0;
  resume_cursor_ = state.epoch_batch_cursor;
  resume_loss_sum_ = state.epoch_loss_sum;
  resume_correct_ = state.epoch_correct;
  resume_samples_ = state.epoch_samples;
  recovery_.valid = false;
  replay_.clear();
  steps_since_snapshot_ = 0;
  recoveries_used_ = 0;
  return OkStatus();
}

Status SyncTrainer::SaveDurableNow() {
  if (ckpt_manager_ == nullptr) {
    return FailedPreconditionError(
        "durable checkpointing is disabled (no save_dir)");
  }
  return ckpt_manager_->Save(CaptureState());
}

Status SyncTrainer::AfterCommit(double loss_sum, int64_t correct,
                                int64_t samples, int64_t cursor) {
  if (ckpt_manager_ != nullptr) {
    const int every = options_.durable_checkpoint.save_every;
    if (every > 0 && iteration_ % every == 0) {
      LPSGD_RETURN_IF_ERROR(ckpt_manager_->Save(
          CaptureStateAt(loss_sum, correct, samples, cursor)));
    }
  }
  // kill@ fires after the durable save above, so the chaos harness can
  // kill exactly at a checkpointed iteration. A killed process must be
  // restarted with the kill stripped from its plan (the fault already
  // happened); Train returns this error directly — IsRankCrash never
  // matches it, so it cannot leak into the degrade-to-survivors path.
  if (active_plan_.KillsAt(iteration_)) {
    return fault::ProcessKillError(iteration_);
  }
  return OkStatus();
}

Network& SyncTrainer::replica(int rank) {
  CHECK_GE(rank, 0);
  CHECK_LT(rank, static_cast<int>(replicas_.size()));
  return replicas_[static_cast<size_t>(rank)];
}

Status SyncTrainer::TrainIteration(const Batch& batch, double* loss_sum,
                                   int64_t* correct) {
  obs::ScopedTimer iteration_timer("trainer/iteration_seconds");
  obs::TraceSpan iteration_span("trainer/iteration", "trainer");
  const double virtual_start = virtual_seconds_;
  // Open the step for phase attribution. A failed iteration is never
  // EndStep'ed: the next BeginStep discards its partial phases, and the
  // slot scratch is cleared here so spans from a failed attempt cannot
  // leak into the retried iteration's breakdown.
  obs::Profiler& profiler = obs::Profiler::Global();
  if (obs::ProfileEnabled()) {
    profiler.BeginStep(iteration_);
    for (obs::PhaseTimes& phases : slot_phases_) phases.Clear();
  }
  const int k = live_gpus_;
  const int64_t shard = batch.size() / k;
  if (shard == 0) {
    return InvalidArgumentError("batch smaller than GPU count");
  }

  const Shape sample_shape = [&] {
    std::vector<int64_t> dims(batch.inputs.shape().dims().begin() + 1,
                              batch.inputs.shape().dims().end());
    return Shape(dims);
  }();
  const int64_t sample_elems = sample_shape.element_count();

  // Phase 1 (parallel across ranks): local forward/backward on the shard.
  // Each rank touches only its own replica and shard; the per-rank loss
  // sums land in disjoint slots and are reduced in rank order below, so
  // the totals are bit-identical at any thread count.
  const uint64_t compute_span =
      obs::Tracer::Global().Begin("trainer/forward_backward", "trainer");
  rank_loss_.assign(static_cast<size_t>(k), 0.0);
  rank_correct_.assign(static_cast<size_t>(k), 0);
  std::vector<double>& rank_loss = rank_loss_;
  std::vector<int64_t>& rank_correct = rank_correct_;
  LPSGD_RETURN_IF_ERROR(options_.execution.ParallelFor(
      0, k, [&](int64_t rank) -> Status {
        obs::TraceSpan rank_span("trainer/rank_forward_backward", "trainer");
        const int r = static_cast<int>(rank);
        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), slot_phases_.size());
        obs::PhaseTimes& phases = slot_phases_[static_cast<size_t>(slot_id)];
        Network& replica = replicas_[static_cast<size_t>(r)];

        LossResult loss = [&] {
          obs::PhaseTimer forward_timer(&phases, obs::kPhaseForward);
          replica.ZeroGrads();

          std::vector<int64_t> dims;
          dims.push_back(shard);
          for (int64_t d : sample_shape.dims()) dims.push_back(d);
          Tensor inputs{Shape(dims)};
          std::vector<int> labels(static_cast<size_t>(shard));
          const int64_t begin = r * shard;
          std::copy(batch.inputs.data() + begin * sample_elems,
                    batch.inputs.data() + (begin + shard) * sample_elems,
                    inputs.data());
          for (int64_t i = 0; i < shard; ++i) {
            labels[static_cast<size_t>(i)] =
                batch.labels[static_cast<size_t>(begin + i)];
          }

          Tensor logits = replica.Forward(inputs, /*training=*/true);
          return SoftmaxCrossEntropy(logits, labels);
        }();
        rank_loss[static_cast<size_t>(r)] = loss.loss_sum;
        rank_correct[static_cast<size_t>(r)] = loss.correct;
        {
          obs::PhaseTimer backward_timer(&phases, obs::kPhaseBackward);
          replica.Backward(loss.logits_grad);
        }
        return OkStatus();
      }));
  obs::Tracer::Global().End(compute_span);

  // Phase 2: synchronous gradient exchange (Algorithm 1, lines 3-8). The
  // slot list is refilled into persistent scratch; the nested rank vectors
  // keep their capacity across iterations.
  const size_t num_matrices = replica_params_[0].size();
  slots_.resize(num_matrices);
  {
    // Slot refill is serial staging work for the exchange.
    obs::PhaseTimer staging_timer(&slot_phases_[0], obs::kPhaseSum);
    for (size_t m = 0; m < num_matrices; ++m) {
      MatrixSlot& slot = slots_[m];
      slot.quant_shape = replica_params_[0][m].quant_shape;
      slot.quantized = quantize_matrix_[m];
      slot.rank_grads.clear();
      slot.rank_errors.clear();
      for (int r = 0; r < k; ++r) {
        slot.rank_grads.push_back(
            replica_params_[static_cast<size_t>(r)][m].grad->data());
        slot.rank_errors.push_back(&errors_[static_cast<size_t>(r)][m]);
      }
    }
  }
  LPSGD_ASSIGN_OR_RETURN(CommStats stats,
                         aggregator_->AllReduce(&slots_, iteration_));
  total_comm_.Add(stats);
  virtual_seconds_ += stats.TotalSeconds() +
                      options_.virtual_compute_seconds_per_iter;

  // Phase 3 (parallel across ranks): identical averaged update. Each rank
  // scales and steps only its own parameters and momentum state.
  const uint64_t update_span =
      obs::Tracer::Global().Begin("trainer/optimizer_step", "trainer");
  const float inv_k = 1.0f / static_cast<float>(k);
  LPSGD_RETURN_IF_ERROR(options_.execution.ParallelFor(
      0, k, [&](int64_t r) -> Status {
        const int slot_id = ThreadPool::CurrentSlot();
        CHECK_LT(static_cast<size_t>(slot_id), slot_phases_.size());
        obs::PhaseTimer optimizer_timer(
            &slot_phases_[static_cast<size_t>(slot_id)],
            obs::kPhaseOptimizer);
        for (ParamRef& param : replica_params_[static_cast<size_t>(r)]) {
          Scale(inv_k, param.grad);
        }
        optimizers_[static_cast<size_t>(r)].Step(
            replica_params_[static_cast<size_t>(r)]);
        return OkStatus();
      }));
  obs::Tracer::Global().End(update_span);

  // Commit only now that every phase succeeded: a failed iteration must
  // leave the epoch accumulators and the iteration counter untouched so a
  // retried exchange reuses the same deterministic tags.
  for (int r = 0; r < k; ++r) {
    *loss_sum += rank_loss[static_cast<size_t>(r)];
    *correct += rank_correct[static_cast<size_t>(r)];
  }
  ++iteration_;
  if (obs::MetricsEnabled()) {
    obs::Count("trainer/iterations");
    obs::Count("trainer/samples", batch.size());
    obs::SetGauge("trainer/virtual_seconds", virtual_seconds_);
  }
  if (obs::ProfileEnabled()) {
    // Fold the trainer's slot scratch (the aggregators folded theirs during
    // AllReduce), attribute the step's virtual charges, and close the step.
    for (obs::PhaseTimes& phases : slot_phases_) {
      profiler.AddPhases(phases);
      phases.Clear();
    }
    profiler.AddVirtual(obs::kPhaseWire, stats.comm_seconds);
    profiler.AddVirtual(obs::kPhaseEncode, stats.encode_seconds);
    profiler.AddVirtual(obs::kPhaseForward,
                        options_.virtual_compute_seconds_per_iter);
    profiler.EndStep(stats.TotalSeconds() +
                     options_.virtual_compute_seconds_per_iter);
  }
  iteration_span.set_virtual_range(virtual_start, virtual_seconds_);
  return OkStatus();
}

StatusOr<std::vector<EpochMetrics>> SyncTrainer::Train(const Dataset& train,
                                                       const Dataset& test,
                                                       int epochs) {
  std::vector<EpochMetrics> metrics;
  BatchIterator iterator(&train, options_.global_batch_size,
                         options_.seed ^ 0xdadaULL);

  for (int e = 0; e < epochs; ++e) {
    const int epoch = epochs_completed_;
    for (const auto& [at_epoch, lr] : options_.lr_schedule) {
      if (at_epoch == epoch) {
        for (auto& optimizer : optimizers_) optimizer.set_learning_rate(lr);
      }
    }

    obs::TraceSpan epoch_span("trainer/epoch", "trainer");
    const double virtual_epoch_start = virtual_seconds_;
    const double wall_start = NowSeconds();
    const CommStats comm_start = total_comm_;
    iterator.StartEpoch(epoch);

    double loss_sum = 0.0;
    int64_t correct = 0;
    int64_t samples = 0;
    // NextBatch calls consumed this epoch; durable checkpoints record it
    // so a restored run resumes at the exact batch.
    int64_t cursor = 0;
    if (pending_resume_) {
      // Resuming mid-epoch from a durable checkpoint: seed the epoch
      // accumulators with the persisted partial sums and fast-forward the
      // deterministic batch stream to the recorded cursor.
      pending_resume_ = false;
      loss_sum = resume_loss_sum_;
      correct = resume_correct_;
      samples = resume_samples_;
      Batch skipped;
      while (cursor < resume_cursor_ && iterator.NextBatch(&skipped)) {
        ++cursor;
      }
    }
    // The snapshot holds epoch-local accumulators, so it cannot outlive
    // the epoch that took it.
    recovery_.valid = false;
    replay_.clear();
    steps_since_snapshot_ = 0;
    const int checkpoint_every = options_.fault_tolerance.checkpoint_every;
    Batch batch;
    while (iterator.NextBatch(&batch)) {
      ++cursor;
      if (batch.size() < live_gpus_) continue;  // skip tiny remainder
      TrimBatch(&batch);  // shards stay equal across live ranks
      if (checkpoint_every > 0 &&
          (!recovery_.valid || steps_since_snapshot_ >= checkpoint_every)) {
        TakeRecoverySnapshot(loss_sum, correct, samples);
        replay_.clear();
        steps_since_snapshot_ = 0;
      }
      const Status step = TrainIteration(batch, &loss_sum, &correct);
      if (step.ok()) {
        samples += batch.size();
        ++steps_since_snapshot_;
        if (checkpoint_every > 0) replay_.push_back(batch);
      } else {
        LPSGD_RETURN_IF_ERROR(
            Recover(step, batch, &loss_sum, &correct, &samples));
      }
      LPSGD_RETURN_IF_ERROR(AfterCommit(loss_sum, correct, samples, cursor));
    }

    EpochMetrics m;
    m.epoch = epoch;
    if (samples > 0) {
      m.train_loss = loss_sum / static_cast<double>(samples);
      m.train_accuracy =
          static_cast<double>(correct) / static_cast<double>(samples);
    }
    const EvalResult eval = Evaluate(test);
    m.test_loss = eval.loss_sum / static_cast<double>(test.NumSamples());
    m.test_accuracy = static_cast<double>(eval.correct) /
                      static_cast<double>(test.NumSamples());
    m.test_top5_accuracy = static_cast<double>(eval.correct_top5) /
                           static_cast<double>(test.NumSamples());
    wall_seconds_ += NowSeconds() - wall_start;
    m.wall_seconds = wall_seconds_;
    m.virtual_seconds = virtual_seconds_;
    m.comm = total_comm_;
    // Report only this epoch's communication delta.
    m.comm.comm_seconds -= comm_start.comm_seconds;
    m.comm.encode_seconds -= comm_start.encode_seconds;
    m.comm.wire_bytes -= comm_start.wire_bytes;
    m.comm.raw_bytes -= comm_start.raw_bytes;
    m.comm.messages -= comm_start.messages;

    if (obs::MetricsEnabled()) {
      obs::Count("trainer/epochs");
      obs::Observe("trainer/epoch_seconds", NowSeconds() - wall_start);
    }
    epoch_span.set_virtual_range(virtual_epoch_start, virtual_seconds_);
    obs::RecordEntry("epoch", EpochMetricsToJson(m));

    metrics.push_back(m);
    ++epochs_completed_;
  }
  return metrics;
}

void SyncTrainer::TrimBatch(Batch* batch) const {
  const int64_t usable = batch->size() / live_gpus_ * live_gpus_;
  if (usable == batch->size()) return;
  batch->labels.resize(static_cast<size_t>(usable));
  Tensor trimmed(Shape([&] {
    std::vector<int64_t> dims = batch->inputs.shape().dims();
    dims[0] = usable;
    return dims;
  }()));
  std::copy(batch->inputs.data(), batch->inputs.data() + trimmed.size(),
            trimmed.data());
  batch->inputs = std::move(trimmed);
}

void SyncTrainer::TakeRecoverySnapshot(double loss_sum, int64_t correct,
                                       int64_t samples) {
  recovery_.valid = true;
  recovery_.iteration = iteration_;
  recovery_.loss_sum = loss_sum;
  recovery_.correct = correct;
  recovery_.samples = samples;
  recovery_.params.clear();
  for (const ParamRef& param : replica_params_[0]) {
    recovery_.params.push_back(*param.value);
  }
  recovery_.velocity = optimizers_[0].velocity();
  recovery_.errors = errors_;
}

void SyncTrainer::RestoreRecoverySnapshot(double* loss_sum, int64_t* correct,
                                          int64_t* samples) {
  CHECK(recovery_.valid);
  iteration_ = recovery_.iteration;
  *loss_sum = recovery_.loss_sum;
  *correct = recovery_.correct;
  *samples = recovery_.samples;
  CHECK_EQ(recovery_.params.size(), replica_params_[0].size());
  for (size_t r = 0; r < replica_params_.size(); ++r) {
    for (size_t m = 0; m < recovery_.params.size(); ++m) {
      *replica_params_[r][m].value = recovery_.params[m];
    }
  }
  for (auto& optimizer : optimizers_) {
    optimizer.set_velocity(recovery_.velocity);
  }
  errors_ = recovery_.errors;
}

Status SyncTrainer::DropRank(int rank) {
  if (rank < 0 || rank >= live_gpus_) {
    return InternalError(
        StrCat("cannot drop rank ", rank, ": only ", live_gpus_,
               " live ranks"));
  }
  const size_t r = static_cast<size_t>(rank);
  replicas_.erase(replicas_.begin() + static_cast<std::ptrdiff_t>(r));
  optimizers_.erase(optimizers_.begin() + static_cast<std::ptrdiff_t>(r));
  errors_.erase(errors_.begin() + static_cast<std::ptrdiff_t>(r));
  if (recovery_.valid && r < recovery_.errors.size()) {
    recovery_.errors.erase(recovery_.errors.begin() +
                           static_cast<std::ptrdiff_t>(r));
  }
  --live_gpus_;
  replica_params_.clear();
  for (Network& replica : replicas_) {
    replica_params_.push_back(replica.Params());
  }

  // The survivors need a fresh aggregator sized to the new rank count; the
  // satisfied crash is stripped so the rebuilt injector does not re-abort.
  active_plan_ = active_plan_.WithoutCrashes();
  LPSGD_ASSIGN_OR_RETURN(
      aggregator_,
      CreateAggregator(options_.primitive, live_gpus_, options_.codec,
                       options_.machine, options_.execution,
                       options_.fault_tolerance.retry,
                       fault::MakeAggregatorDecorator(active_plan_,
                                                      options_.codec)));
  if (obs::ReportEnabled()) {
    obs::JsonValue fields = obs::JsonValue::Object();
    fields.Set("rank", rank);
    fields.Set("live_gpus", live_gpus_);
    fields.Set("iteration", iteration_);
    obs::RecordEntry("rank_dropped", std::move(fields));
  }
  return OkStatus();
}

Status SyncTrainer::Recover(const Status& failure, const Batch& batch,
                            double* loss_sum, int64_t* correct,
                            int64_t* samples) {
  Status status = failure;
  Batch current = batch;
  for (;;) {
    ++recoveries_used_;
    if (recoveries_used_ > options_.fault_tolerance.max_recoveries) {
      return status;
    }

    int crashed_rank = -1;
    if (fault::IsRankCrash(status, &crashed_rank)) {
      if (!options_.fault_tolerance.degrade_to_survivors ||
          live_gpus_ <= 1) {
        return status;
      }
      LPSGD_RETURN_IF_ERROR(DropRank(crashed_rank));
    } else if (!recovery_.valid) {
      // A non-crash failure that survived the retry layer, and nothing to
      // roll back to: surface it.
      return status;
    }

    if (recovery_.valid) {
      RestoreRecoverySnapshot(loss_sum, correct, samples);
      if (obs::MetricsEnabled()) obs::Count("trainer/rollbacks");
      if (obs::ReportEnabled()) {
        obs::JsonValue fields = obs::JsonValue::Object();
        fields.Set("iteration", recovery_.iteration);
        fields.Set("replay_batches",
                   static_cast<int64_t>(replay_.size()));
        fields.Set("cause", status.message());
        obs::RecordEntry("rollback", std::move(fields));
      }
      // Replay the batches committed since the snapshot (re-trimmed in
      // case a rank was just dropped).
      bool replayed = true;
      for (Batch& replay_batch : replay_) {
        TrimBatch(&replay_batch);
        status = TrainIteration(replay_batch, loss_sum, correct);
        if (!status.ok()) {
          replayed = false;
          break;
        }
        *samples += replay_batch.size();
      }
      if (!replayed) continue;  // a fault struck mid-replay; recover again
    }

    // Re-run the batch that originally failed.
    TrimBatch(&current);
    status = TrainIteration(current, loss_sum, correct);
    if (status.ok()) {
      *samples += current.size();
      steps_since_snapshot_ =
          static_cast<int>(replay_.size()) + 1;
      if (options_.fault_tolerance.checkpoint_every > 0) {
        replay_.push_back(current);
      }
      return OkStatus();
    }
  }
}

EvalResult SyncTrainer::Evaluate(const Dataset& dataset) {
  obs::ScopedTimer eval_timer("trainer/eval_seconds");
  obs::TraceSpan eval_span("trainer/eval", "trainer");
  EvalResult total;
  Network& net = replicas_[0];
  const int64_t batch_size = options_.eval_batch_size;
  std::vector<int64_t> indices;
  for (int64_t begin = 0; begin < dataset.NumSamples();
       begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, dataset.NumSamples());
    indices.resize(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      indices[static_cast<size_t>(i - begin)] = i;
    }
    const Batch batch = MakeBatch(dataset, indices);
    Tensor logits = net.Forward(batch.inputs, /*training=*/false);
    const EvalResult r = EvaluateSoftmaxCrossEntropy(logits, batch.labels);
    total.loss_sum += r.loss_sum;
    total.correct += r.correct;
    total.correct_top5 += r.correct_top5;
  }
  return total;
}

}  // namespace lpsgd
