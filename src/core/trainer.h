// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CORE_TRAINER_H_
#define LPSGD_CORE_TRAINER_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "base/thread_pool.h"
#include "ckpt/manager.h"
#include "comm/allreduce.h"
#include "data/dataset.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "machine/specs.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "obs/json.h"
#include "obs/profile.h"
#include "quant/codec.h"
#include "quant/policy.h"
#include "sim/perf_model.h"

namespace lpsgd {

// Configuration of one synchronous data-parallel training run
// (Algorithm 1 with pluggable Encode/Decode).
struct TrainerOptions {
  int num_gpus = 4;
  int64_t global_batch_size = 64;  // split evenly across GPUs
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  // Epoch -> new learning rate (applied at the start of that epoch).
  std::vector<std::pair<int, float>> lr_schedule;

  CodecSpec codec;  // gradient communication precision
  CommPrimitive primitive = CommPrimitive::kMpi;
  MachineSpec machine = Ec2P2_8xlarge();  // timing model for virtual clocks
  QuantizationPolicyOptions policy;

  // Virtual compute seconds charged per iteration (e.g. from a PerfModel
  // of the corresponding full-scale network); 0 to track only
  // communication time.
  double virtual_compute_seconds_per_iter = 0.0;

  uint64_t seed = 42;
  int eval_batch_size = 256;

  // Fault injection and recovery policy (DESIGN.md "Fault model and
  // recovery"): the fault plan replayed at the aggregator boundary, the
  // per-exchange retry budget, and the trainer's checkpoint cadence.
  // Default-constructed = all disabled; the trainer behaves exactly as
  // before.
  fault::FaultToleranceOptions fault_tolerance;

  // Durable crash-consistent checkpointing (DESIGN.md "Durable
  // crash-consistent checkpointing"): when save_dir is set the trainer
  // writes a full-state checkpoint every save_every committed iterations
  // (temp + fsync + atomic rename + manifest), and SyncTrainer::Restore
  // reconstructs a trainer from the newest intact file — optionally at a
  // different rank count. Default-constructed = disabled.
  ckpt::DurableCheckpointOptions durable_checkpoint;

  // Host-side execution of the per-rank work (forward/backward, codec
  // kernels, optimizer steps). Defaults to one pool sized to the hardware
  // concurrency; ExecutionContext::Serial() reproduces the historical
  // rank-by-rank order. Results are bit-identical at any thread count.
  ExecutionContext execution;

  // Checks the configuration for internal consistency: num_gpus >= 1, the
  // global batch divisible by (and no smaller than) the GPU count, a
  // positive learning rate, an lr_schedule sorted by epoch, a positive
  // eval batch, and a non-negative thread request. Called by
  // SyncTrainer::Create before any resources are allocated.
  [[nodiscard]] Status Validate() const;
};

// Per-epoch training metrics.
struct EpochMetrics {
  int epoch = 0;
  double train_loss = 0.0;       // mean over training samples seen
  double train_accuracy = 0.0;   // fraction correct on training batches
  double test_loss = 0.0;          // mean over the test set
  double test_accuracy = 0.0;      // top-1 fraction correct on the test set
  double test_top5_accuracy = 0.0; // top-5 fraction correct on the test set
  double virtual_seconds = 0.0;  // cumulative simulated time since start
  double wall_seconds = 0.0;     // cumulative host wall time
  CommStats comm;                // this epoch's communication accounting
};

// The run-report "epoch" entry for one epoch's metrics (the trainer emits
// one per epoch into obs::RunReport::Global() while reporting is enabled).
obs::JsonValue EpochMetricsToJson(const EpochMetrics& metrics);

// Synchronous data-parallel SGD over K simulated GPU ranks (Section 2.1).
// Ranks execute sequentially in program order but semantically in
// parallel: every rank computes gradients on its shard of the global
// batch, gradients are exchanged through a GradientAggregator (MPI
// reduce-and-broadcast or NCCL ring), and each rank applies the identical
// averaged update — so replicas stay bit-identical, which is also a tested
// invariant.
class SyncTrainer {
 public:
  // Builds one model replica; must be deterministic in `seed` (every rank
  // starts from identical weights, enforced by copying rank 0's).
  using NetworkFactory = std::function<Network(uint64_t seed)>;

  [[nodiscard]] static StatusOr<std::unique_ptr<SyncTrainer>> Create(
      const NetworkFactory& factory, const TrainerOptions& options);

  // Reconstructs a trainer from a durable checkpoint (ckpt::TrainerState,
  // typically from CheckpointManager::RestoreLatest). The state's seed and
  // codec must match `options`; the rank count may differ — elastic
  // restore remaps the per-rank error-feedback residuals:
  //   - same count: imported verbatim (bit-equal resume);
  //   - shrink (R1 < R0): new rank r sums old ranks o with o % R1 == r,
  //     preserving total residual mass (the PR-5 renormalization idea
  //     applied to persisted state);
  //   - grow (R1 > R0): new rank r inherits old rank (r % R0)'s residual
  //     scaled by R0/R1, again preserving total mass.
  // Mid-epoch checkpoints resume at the exact batch cursor, so a
  // same-rank-count restore continues bit-identically.
  [[nodiscard]] static StatusOr<std::unique_ptr<SyncTrainer>> Restore(
      const NetworkFactory& factory, const TrainerOptions& options,
      const ckpt::TrainerState& state);

  // Runs `epochs` epochs over `train`, evaluating on `test` after each.
  // Appends to any previous training (the trainer is resumable).
  [[nodiscard]] StatusOr<std::vector<EpochMetrics>> Train(
      const Dataset& train, const Dataset& test, int epochs);

  // Evaluates replica 0 on `dataset` (eval mode).
  EvalResult Evaluate(const Dataset& dataset);

  // Replica `rank`'s network (e.g. for invariant checks).
  Network& replica(int rank);

  // Stream checkpointing: saves replica 0's parameters (all replicas are
  // identical) / restores them into every replica. Optimizer momentum and
  // error-feedback residuals restart from zero, like CNTK's 1-bit
  // checkpoint-restart. Both calls verify the stream itself: a full disk,
  // a truncated file, or any failbit/badbit condition yields a non-OK
  // Status instead of a silent partial checkpoint.
  [[nodiscard]] Status SaveCheckpoint(std::ostream& os);
  [[nodiscard]] Status LoadCheckpoint(std::istream& is);

  // Full durable-trainer state at the current commit point (epoch-boundary
  // view: the epoch-local accumulators are zero). What the durable
  // checkpoint cadence writes mid-epoch additionally carries the batch
  // cursor and running loss/accuracy sums.
  ckpt::TrainerState CaptureState() const;

  // Writes a durable checkpoint right now through the configured
  // CheckpointManager. FAILED_PRECONDITION when durable checkpointing is
  // disabled. Call between Train() invocations (epoch boundaries), not
  // mid-epoch.
  [[nodiscard]] Status SaveDurableNow();

  // Null when options().durable_checkpoint is disabled.
  ckpt::CheckpointManager* checkpoint_manager() const {
    return ckpt_manager_.get();
  }

  int num_gpus() const { return options_.num_gpus; }
  // Ranks still participating: options_.num_gpus minus any ranks dropped
  // by degrade-to-survivors.
  int live_gpus() const { return live_gpus_; }
  const TrainerOptions& options() const { return options_; }
  // Cumulative communication accounting since construction.
  const CommStats& total_comm() const { return total_comm_; }
  double virtual_seconds() const { return virtual_seconds_; }

 private:
  SyncTrainer(TrainerOptions options, std::vector<Network> replicas,
              std::unique_ptr<GradientAggregator> aggregator);

  // Runs one synchronous iteration on `batch`; on success adds the batch's
  // summed loss and correct count to the outputs. On failure nothing is
  // committed — replicas, optimizers, residuals, the iteration counter,
  // and the epoch accumulators are all as they were before the call (the
  // aggregator contract plus commit-on-success ordering make the iteration
  // a transaction), so a failed step can be retried or rolled over.
  Status TrainIteration(const Batch& batch, double* loss_sum,
                        int64_t* correct);

  // In-memory state needed to roll the epoch back to a committed step:
  // model parameters (one copy; replicas are identical), optimizer
  // momentum (identical across ranks), per-rank error-feedback residuals,
  // and the epoch-local progress counters.
  struct RecoverySnapshot {
    bool valid = false;
    int64_t iteration = 0;
    std::vector<Tensor> params;    // replica 0's parameter values [matrix]
    std::vector<Tensor> velocity;  // optimizer 0's momentum state
    std::vector<std::vector<std::vector<float>>> errors;  // [rank][matrix]
    double loss_sum = 0.0;
    int64_t correct = 0;
    int64_t samples = 0;
  };

  // Cuts `batch` down to a multiple of live_gpus_ so shards stay equal.
  void TrimBatch(Batch* batch) const;
  void TakeRecoverySnapshot(double loss_sum, int64_t correct,
                            int64_t samples);
  void RestoreRecoverySnapshot(double* loss_sum, int64_t* correct,
                               int64_t* samples);
  // Removes a crashed rank and rebuilds the aggregator over the survivors
  // (with the crash stripped from the active fault plan).
  Status DropRank(int rank);
  // Drives recovery after TrainIteration failed with `failure` on `batch`:
  // degrade-to-survivors for rank crashes, rollback-and-replay from the
  // last snapshot otherwise; loops until the batch commits or the recovery
  // budget is exhausted.
  Status Recover(const Status& failure, const Batch& batch,
                 double* loss_sum, int64_t* correct, int64_t* samples);

  // Builds the CheckpointManager when durable checkpointing is enabled,
  // auto-wrapping the storage in a FaultInjectingStorage when the fault
  // plan carries storage verbs.
  Status SetUpDurableCheckpoint();
  // Snapshot of the full trainer state including the in-flight epoch
  // accumulators (`cursor` = NextBatch calls consumed this epoch).
  ckpt::TrainerState CaptureStateAt(double loss_sum, int64_t correct,
                                    int64_t samples, int64_t cursor) const;
  // Installs a decoded checkpoint into this trainer (params, momentum,
  // residuals with elastic remap, aggregator state, counters, resume
  // cursor). Fails without side effects on any shape/seed/codec mismatch.
  Status ApplyState(const ckpt::TrainerState& state);
  // Elastic residual remap described on Restore().
  Status ImportResiduals(
      const std::vector<std::vector<std::vector<float>>>& residuals);
  // Post-commit hooks inside the epoch loop: durable save when the
  // cadence hits, then the fault plan's kill@ verb (so the checkpoint at
  // the kill iteration, if any, is already on disk when the process
  // "dies").
  Status AfterCommit(double loss_sum, int64_t correct, int64_t samples,
                     int64_t cursor);

  TrainerOptions options_;
  std::vector<Network> replicas_;
  std::vector<std::vector<ParamRef>> replica_params_;  // [rank][matrix]
  std::vector<SgdMomentumOptimizer> optimizers_;       // one per rank
  std::unique_ptr<GradientAggregator> aggregator_;
  // Error-feedback residuals: [rank][matrix] (empty when codec has none).
  std::vector<std::vector<std::vector<float>>> errors_;
  std::vector<bool> quantize_matrix_;  // policy decision per matrix

  // Per-iteration exchange scratch, refilled by TrainIteration: reusing
  // the vectors (and the nested per-slot vectors) keeps the steady-state
  // iteration free of heap allocations on the exchange path.
  std::vector<MatrixSlot> slots_;
  std::vector<double> rank_loss_;
  std::vector<int64_t> rank_correct_;
  // Per-thread-pool-slot profiler scratch for the forward/backward,
  // staging, and optimizer spans; folded serially at the iteration's
  // commit point (obs/profile.h). Sized to execution.threads().
  std::vector<obs::PhaseTimes> slot_phases_;

  int64_t iteration_ = 0;
  int epochs_completed_ = 0;
  double virtual_seconds_ = 0.0;
  double wall_seconds_ = 0.0;
  CommStats total_comm_;

  // Fault-recovery state. live_gpus_ is the rank count every per-rank loop
  // uses; it starts at options_.num_gpus and drops when a crashed rank is
  // removed. active_plan_ is the not-yet-stripped fault plan the current
  // aggregator was built with.
  int live_gpus_ = 0;
  fault::FaultPlan active_plan_;
  // Durable checkpointing (null when disabled).
  std::unique_ptr<ckpt::CheckpointManager> ckpt_manager_;
  // Mid-epoch resume markers set by ApplyState and consumed by the first
  // epoch of the next Train() call: skip `resume_cursor_` NextBatch calls
  // and seed the epoch accumulators so the resumed epoch is bit-identical
  // to the uninterrupted one.
  bool pending_resume_ = false;
  int64_t resume_cursor_ = 0;
  double resume_loss_sum_ = 0.0;
  int64_t resume_correct_ = 0;
  int64_t resume_samples_ = 0;
  RecoverySnapshot recovery_;
  // Batches committed since the last snapshot, replayed after a rollback.
  std::vector<Batch> replay_;
  int steps_since_snapshot_ = 0;
  int recoveries_used_ = 0;
};

}  // namespace lpsgd

#endif  // LPSGD_CORE_TRAINER_H_
