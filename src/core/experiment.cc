// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "core/experiment.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"
#include "base/table_printer.h"

namespace lpsgd {

double AccuracySeries::FinalTestAccuracy() const {
  return epochs.empty() ? 0.0 : epochs.back().test_accuracy;
}

double AccuracySeries::BestTestAccuracy() const {
  double best = 0.0;
  for (const EpochMetrics& m : epochs) {
    best = std::max(best, m.test_accuracy);
  }
  return best;
}

StatusOr<std::vector<AccuracySeries>> RunAccuracyComparison(
    const SyncTrainer::NetworkFactory& factory,
    const TrainerOptions& base_options, const Dataset& train,
    const Dataset& test, const std::vector<AccuracyRunConfig>& configs,
    int epochs) {
  std::vector<AccuracySeries> all_series;
  all_series.reserve(configs.size());
  for (const AccuracyRunConfig& config : configs) {
    TrainerOptions options = base_options;
    options.codec = config.codec;
    options.policy = config.policy;
    LPSGD_ASSIGN_OR_RETURN(std::unique_ptr<SyncTrainer> trainer,
                           SyncTrainer::Create(factory, options));
    LPSGD_ASSIGN_OR_RETURN(std::vector<EpochMetrics> metrics,
                           trainer->Train(train, test, epochs));
    AccuracySeries series;
    series.label = config.label;
    series.epochs = std::move(metrics);
    all_series.push_back(std::move(series));
  }
  return all_series;
}

std::string MetricsToCsv(const std::vector<AccuracySeries>& series) {
  std::string out =
      "config,epoch,train_loss,train_accuracy,test_loss,test_accuracy,"
      "test_top5_accuracy,virtual_seconds,wire_bytes\n";
  for (const AccuracySeries& s : series) {
    for (const EpochMetrics& m : s.epochs) {
      // Quote the config label; labels may contain commas in principle.
      out += StrCat("\"", s.label, "\",", m.epoch, ",",
                    FormatDouble(m.train_loss, 6), ",",
                    FormatDouble(m.train_accuracy, 6), ",",
                    FormatDouble(m.test_loss, 6), ",",
                    FormatDouble(m.test_accuracy, 6), ",",
                    FormatDouble(m.test_top5_accuracy, 6), ",",
                    FormatDouble(m.virtual_seconds, 6), ",",
                    m.comm.wire_bytes, "\n");
    }
  }
  return out;
}

std::string FormatAccuracyTable(const std::vector<AccuracySeries>& series,
                                int print_every) {
  CHECK(!series.empty());
  CHECK_GE(print_every, 1);
  std::vector<std::string> header = {"Epoch"};
  for (const AccuracySeries& s : series) header.push_back(s.label);
  TablePrinter table(std::move(header));

  const size_t num_epochs = series[0].epochs.size();
  for (size_t e = 0; e < num_epochs; ++e) {
    if (e % static_cast<size_t>(print_every) != 0 && e + 1 != num_epochs) {
      continue;
    }
    std::vector<std::string> row = {StrCat(series[0].epochs[e].epoch)};
    for (const AccuracySeries& s : series) {
      row.push_back(
          e < s.epochs.size()
              ? FormatDouble(s.epochs[e].test_accuracy * 100.0, 2)
              : "-");
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace lpsgd
