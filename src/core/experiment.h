// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CORE_EXPERIMENT_H_
#define LPSGD_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace lpsgd {

// One precision configuration within an accuracy comparison (a single line
// of a Figure 5 plot).
struct AccuracyRunConfig {
  std::string label;
  CodecSpec codec;
  // Overrides applied on top of the comparison's base options; negative /
  // empty values inherit the base.
  QuantizationPolicyOptions policy;
};

// The epoch series produced for one configuration.
struct AccuracySeries {
  std::string label;
  std::vector<EpochMetrics> epochs;

  double FinalTestAccuracy() const;
  double BestTestAccuracy() const;
};

// Trains one run per configuration with otherwise identical settings
// (same factory seed, same data order) and returns the per-epoch series —
// the experiment design behind Figure 5.
StatusOr<std::vector<AccuracySeries>> RunAccuracyComparison(
    const SyncTrainer::NetworkFactory& factory,
    const TrainerOptions& base_options, const Dataset& train,
    const Dataset& test, const std::vector<AccuracyRunConfig>& configs,
    int epochs);

// Renders the comparison as an aligned table (rows = epochs, columns =
// configurations, cells = test accuracy %).
std::string FormatAccuracyTable(const std::vector<AccuracySeries>& series,
                                int print_every = 1);

// Exports the comparison as CSV for external plotting: one row per
// (configuration, epoch) with the full metric set.
// Columns: config,epoch,train_loss,train_accuracy,test_loss,
//          test_accuracy,test_top5_accuracy,virtual_seconds,wire_bytes.
std::string MetricsToCsv(const std::vector<AccuracySeries>& series);

}  // namespace lpsgd

#endif  // LPSGD_CORE_EXPERIMENT_H_
