// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "ckpt/storage.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/strings.h"

namespace lpsgd {
namespace ckpt {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path,
                   int saved_errno) {
  const std::string message =
      StrCat(op, " ", path, ": ", std::strerror(saved_errno));
  if (saved_errno == ENOENT) return NotFoundError(message);
  // ENOSPC/EDQUOT-style exhaustion is transient from the checkpoint
  // manager's point of view: retention GC or an operator frees space and
  // the retried write succeeds.
  if (saved_errno == ENOSPC) return UnavailableError(message);
  return InternalError(message);
}

class PosixStorage : public Storage {
 public:
  Status CreateDir(const std::string& path) override {
    if (path.empty()) return InvalidArgumentError("empty directory path");
    // Walk the components so intermediate directories are created too.
    for (size_t i = 1; i <= path.size(); ++i) {
      if (i != path.size() && path[i] != '/') continue;
      const std::string prefix = path.substr(0, i);
      if (prefix.empty() || prefix == "/") continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir", prefix, errno);
      }
    }
    return OkStatus();
  }

  Status WriteFileSynced(const std::string& path,
                         const std::string& data) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        return ErrnoStatus("write", path, saved);
      }
      if (n == 0) {
        ::close(fd);
        return UnavailableError(StrCat("short write to ", path));
      }
      written += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      const int saved = errno;
      ::close(fd);
      return ErrnoStatus("fsync", path, saved);
    }
    if (::close(fd) != 0) return ErrnoStatus("close", path, errno);
    return OkStatus();
  }

  StatusOr<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string data;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        return ErrnoStatus("read", path, saved);
      }
      if (n == 0) break;
      data.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return data;
  }

  Status AtomicRename(const std::string& from,
                      const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    // Durability of the rename itself requires syncing the parent
    // directory entry.
    const size_t slash = to.rfind('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : to.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open", dir, errno);
    if (::fsync(fd) != 0) {
      const int saved = errno;
      ::close(fd);
      return ErrnoStatus("fsync", dir, saved);
    }
    ::close(fd);
    return OkStatus();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink", path, errno);
    }
    return OkStatus();
  }

  StatusOr<std::vector<std::string>> List(const std::string& dir) override {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) return ErrnoStatus("opendir", dir, errno);
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      struct dirent* entry = ::readdir(handle);
      if (entry == nullptr) {
        const int saved = errno;
        ::closedir(handle);
        if (saved != 0) return ErrnoStatus("readdir", dir, saved);
        break;
      }
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    return names;
  }

  bool Exists(const std::string& path) override {
    struct stat info;
    return ::stat(path.c_str(), &info) == 0;
  }
};

}  // namespace

std::shared_ptr<Storage> MakePosixStorage() {
  return std::make_shared<PosixStorage>();
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (!dir.empty() && dir.back() == '/') return StrCat(dir, name);
  return StrCat(dir, "/", name);
}

std::string Basename(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace ckpt
}  // namespace lpsgd
