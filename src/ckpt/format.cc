// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "ckpt/format.h"

#include <cstring>

#include "base/bit_packing.h"
#include "base/strings.h"

namespace lpsgd {
namespace ckpt {
namespace {

constexpr uint32_t kMagic = 0x4c50434bu;  // "LPCK"
constexpr uint32_t kVersion = 1;

// Section tags (v1 writes all six, exactly once each).
constexpr uint32_t kTagMeta = 1;
constexpr uint32_t kTagParams = 2;
constexpr uint32_t kTagOptimizer = 3;
constexpr uint32_t kTagResiduals = 4;
constexpr uint32_t kTagAggregator = 5;
constexpr uint32_t kTagRng = 6;
constexpr int kSectionCount = 6;

// Hard caps on every count field, checked before any buffer is sized.
// These are far above anything the trainer writes but small enough that a
// hostile file cannot make the reader allocate unboundedly.
constexpr uint32_t kMaxNameLength = 4096;
constexpr uint32_t kMaxDims = 16;
constexpr uint32_t kMaxRanks = 4096;
constexpr uint32_t kMaxStreams = 64;

void AppendPod(std::string* out, const void* value, size_t size) {
  out->append(static_cast<const char*>(value), size);
}

template <typename T>
void Append(std::string* out, T value) {
  AppendPod(out, &value, sizeof(value));
}

void AppendString(std::string* out, const std::string& value) {
  Append<uint32_t>(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

void AppendFloats(std::string* out, const std::vector<float>& values) {
  Append<uint64_t>(out, static_cast<uint64_t>(values.size()));
  AppendPod(out, values.data(), values.size() * sizeof(float));
}

void AppendTensors(std::string* out,
                   const std::vector<TensorEntry>& tensors) {
  Append<uint32_t>(out, static_cast<uint32_t>(tensors.size()));
  for (const TensorEntry& tensor : tensors) {
    AppendString(out, tensor.name);
    Append<uint32_t>(out, static_cast<uint32_t>(tensor.dims.size()));
    for (int64_t dim : tensor.dims) Append<int64_t>(out, dim);
    AppendFloats(out, tensor.data);
  }
}

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  Append<uint32_t>(out, tag);
  Append<uint64_t>(out, static_cast<uint64_t>(payload.size()));
  out->append(payload);
  Append<uint32_t>(out,
                   Fnv1a32(reinterpret_cast<const uint8_t*>(payload.data()),
                           static_cast<int64_t>(payload.size())));
}

// Bounds-checked cursor over the raw bytes: every read either fully
// succeeds or leaves `ok` false, and nothing is ever read past `size`.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t offset = 0;

  size_t remaining() const { return size - offset; }

  bool ReadBytes(void* out, size_t count) {
    if (count > remaining()) return false;
    std::memcpy(out, data + offset, count);
    offset += count;
    return true;
  }

  template <typename T>
  bool Read(T* out) {
    return ReadBytes(out, sizeof(T));
  }

  bool ReadString(std::string* out, uint32_t max_length) {
    uint32_t length = 0;
    if (!Read(&length) || length > max_length || length > remaining()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data + offset), length);
    offset += length;
    return true;
  }

  bool ReadFloats(std::vector<float>* out) {
    uint64_t count = 0;
    if (!Read(&count) || count > remaining() / sizeof(float)) return false;
    out->resize(static_cast<size_t>(count));
    return ReadBytes(out->data(), static_cast<size_t>(count) * sizeof(float));
  }
};

Status Corrupt(const char* what) {
  return DataLossError(StrCat("corrupt checkpoint: ", what));
}

bool ParseTensors(Reader* reader, std::vector<TensorEntry>* out) {
  uint32_t count = 0;
  if (!reader->Read(&count)) return false;
  // Each tensor costs at least 4 (name len) + 4 (ndim) + 8 (value count)
  // bytes on the wire, so `count` is bounded by the remaining payload.
  if (count > reader->remaining() / 16) return false;
  out->resize(count);
  for (TensorEntry& tensor : *out) {
    if (!reader->ReadString(&tensor.name, kMaxNameLength)) return false;
    uint32_t ndim = 0;
    if (!reader->Read(&ndim) || ndim > kMaxDims) return false;
    tensor.dims.resize(ndim);
    int64_t elements = 1;
    for (int64_t& dim : tensor.dims) {
      if (!reader->Read(&dim) || dim < 0 || dim > (int64_t{1} << 32)) {
        return false;
      }
      // Overflow-safe running product with a generous absolute cap.
      if (dim != 0 && elements > (int64_t{1} << 33) / dim) return false;
      elements *= dim;
    }
    if (!reader->ReadFloats(&tensor.data)) return false;
    if (static_cast<int64_t>(tensor.data.size()) != elements) return false;
  }
  return true;
}

Status ParseMeta(Reader reader, TrainerState* state) {
  if (!reader.Read(&state->seed) ||
      !reader.ReadString(&state->codec, kMaxNameLength) ||
      !reader.Read(&state->rank_count) || !reader.Read(&state->iteration) ||
      !reader.Read(&state->epochs_completed) ||
      !reader.Read(&state->epoch_batch_cursor) ||
      !reader.Read(&state->epoch_loss_sum) ||
      !reader.Read(&state->epoch_correct) ||
      !reader.Read(&state->epoch_samples) ||
      !reader.Read(&state->virtual_seconds)) {
    return Corrupt("truncated meta section");
  }
  if (state->rank_count < 1 ||
      state->rank_count > static_cast<int32_t>(kMaxRanks)) {
    return Corrupt("rank count out of range");
  }
  if (state->iteration < 0 || state->epochs_completed < 0 ||
      state->epoch_batch_cursor < 0 || state->epoch_correct < 0 ||
      state->epoch_samples < 0) {
    return Corrupt("negative counter in meta section");
  }
  if (reader.remaining() != 0) return Corrupt("meta section has trailing bytes");
  return OkStatus();
}

Status ParseTensorSection(Reader reader, const char* what,
                          std::vector<TensorEntry>* out) {
  if (!ParseTensors(&reader, out)) {
    return Corrupt(what);
  }
  if (reader.remaining() != 0) return Corrupt(what);
  return OkStatus();
}

Status ParseResiduals(Reader reader, TrainerState* state) {
  uint32_t rank_count = 0;
  if (!reader.Read(&rank_count) || rank_count > kMaxRanks) {
    return Corrupt("residual rank count");
  }
  state->residuals.resize(rank_count);
  uint32_t matrix_count = 0;
  for (uint32_t r = 0; r < rank_count; ++r) {
    uint32_t count = 0;
    if (!reader.Read(&count) || count > reader.remaining() / 8) {
      return Corrupt("residual matrix count");
    }
    if (r == 0) {
      matrix_count = count;
    } else if (count != matrix_count) {
      return Corrupt("ragged residual matrix counts");
    }
    state->residuals[r].resize(count);
    for (std::vector<float>& residual : state->residuals[r]) {
      if (!reader.ReadFloats(&residual)) {
        return Corrupt("truncated residual data");
      }
    }
  }
  if (reader.remaining() != 0) {
    return Corrupt("residual section has trailing bytes");
  }
  return OkStatus();
}

Status ParseAggregator(Reader reader, TrainerState* state) {
  uint32_t matrix_count = 0;
  if (!reader.Read(&matrix_count) ||
      matrix_count > reader.remaining() / 8) {
    return Corrupt("aggregator matrix count");
  }
  state->aggregator_state.resize(matrix_count);
  for (std::vector<float>& entry : state->aggregator_state) {
    if (!reader.ReadFloats(&entry)) {
      return Corrupt("truncated aggregator state");
    }
  }
  if (reader.remaining() != 0) {
    return Corrupt("aggregator section has trailing bytes");
  }
  return OkStatus();
}

Status ParseRng(Reader reader, TrainerState* state) {
  uint32_t count = 0;
  if (!reader.Read(&count) || count > kMaxStreams) {
    return Corrupt("rng stream count");
  }
  state->rng_streams.resize(count);
  for (RngStreamEntry& stream : state->rng_streams) {
    if (!reader.ReadString(&stream.name, kMaxNameLength) ||
        !reader.Read(&stream.seed)) {
      return Corrupt("truncated rng stream");
    }
  }
  if (reader.remaining() != 0) {
    return Corrupt("rng section has trailing bytes");
  }
  return OkStatus();
}

}  // namespace

std::string Serialize(const TrainerState& state) {
  std::string meta;
  Append<uint64_t>(&meta, state.seed);
  AppendString(&meta, state.codec);
  Append<int32_t>(&meta, state.rank_count);
  Append<int64_t>(&meta, state.iteration);
  Append<int32_t>(&meta, state.epochs_completed);
  Append<int64_t>(&meta, state.epoch_batch_cursor);
  Append<double>(&meta, state.epoch_loss_sum);
  Append<int64_t>(&meta, state.epoch_correct);
  Append<int64_t>(&meta, state.epoch_samples);
  Append<double>(&meta, state.virtual_seconds);

  std::string params;
  AppendTensors(&params, state.params);
  std::string optimizer;
  AppendTensors(&optimizer, state.optimizer);

  std::string residuals;
  Append<uint32_t>(&residuals, static_cast<uint32_t>(state.residuals.size()));
  for (const auto& rank : state.residuals) {
    Append<uint32_t>(&residuals, static_cast<uint32_t>(rank.size()));
    for (const std::vector<float>& residual : rank) {
      AppendFloats(&residuals, residual);
    }
  }

  std::string aggregator;
  Append<uint32_t>(&aggregator,
                   static_cast<uint32_t>(state.aggregator_state.size()));
  for (const std::vector<float>& entry : state.aggregator_state) {
    AppendFloats(&aggregator, entry);
  }

  std::string rng;
  Append<uint32_t>(&rng, static_cast<uint32_t>(state.rng_streams.size()));
  for (const RngStreamEntry& stream : state.rng_streams) {
    AppendString(&rng, stream.name);
    Append<uint64_t>(&rng, stream.seed);
  }

  std::string out;
  Append<uint32_t>(&out, kMagic);
  Append<uint32_t>(&out, kVersion);
  Append<uint32_t>(&out, kSectionCount);
  Append<uint32_t>(&out,
                   Fnv1a32(reinterpret_cast<const uint8_t*>(out.data()),
                           static_cast<int64_t>(out.size())));
  AppendSection(&out, kTagMeta, meta);
  AppendSection(&out, kTagParams, params);
  AppendSection(&out, kTagOptimizer, optimizer);
  AppendSection(&out, kTagResiduals, residuals);
  AppendSection(&out, kTagAggregator, aggregator);
  AppendSection(&out, kTagRng, rng);
  return out;
}

StatusOr<TrainerState> Deserialize(const uint8_t* data, size_t size) {
  Reader reader{data, size};
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint32_t header_fnv = 0;
  if (!reader.Read(&magic) || !reader.Read(&version) ||
      !reader.Read(&section_count) || !reader.Read(&header_fnv)) {
    return Corrupt("truncated header");
  }
  if (magic != kMagic) return Corrupt("bad magic");
  if (version != kVersion) return Corrupt("unsupported version");
  if (section_count != kSectionCount) return Corrupt("bad section count");
  if (header_fnv != Fnv1a32(data, 12)) return Corrupt("header integrity word");

  TrainerState state;
  bool seen[kSectionCount + 1] = {false};
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t tag = 0;
    uint64_t length = 0;
    if (!reader.Read(&tag) || !reader.Read(&length)) {
      return Corrupt("truncated section header");
    }
    if (tag < kTagMeta || tag > kTagRng) return Corrupt("unknown section tag");
    if (seen[tag]) return Corrupt("duplicate section");
    seen[tag] = true;
    if (length > reader.remaining() ||
        reader.remaining() - static_cast<size_t>(length) < sizeof(uint32_t)) {
      return Corrupt("truncated section payload");
    }
    const uint8_t* payload = data + reader.offset;
    reader.offset += static_cast<size_t>(length);
    uint32_t payload_fnv = 0;
    if (!reader.Read(&payload_fnv)) return Corrupt("truncated integrity word");
    if (payload_fnv != Fnv1a32(payload, static_cast<int64_t>(length))) {
      return Corrupt("section integrity word");
    }
    Reader section{payload, static_cast<size_t>(length)};
    switch (tag) {
      case kTagMeta:
        LPSGD_RETURN_IF_ERROR(ParseMeta(section, &state));
        break;
      case kTagParams:
        LPSGD_RETURN_IF_ERROR(
            ParseTensorSection(section, "params section", &state.params));
        break;
      case kTagOptimizer:
        LPSGD_RETURN_IF_ERROR(ParseTensorSection(
            section, "optimizer section", &state.optimizer));
        break;
      case kTagResiduals:
        LPSGD_RETURN_IF_ERROR(ParseResiduals(section, &state));
        break;
      case kTagAggregator:
        LPSGD_RETURN_IF_ERROR(ParseAggregator(section, &state));
        break;
      case kTagRng:
        LPSGD_RETURN_IF_ERROR(ParseRng(section, &state));
        break;
      default:
        return Corrupt("unknown section tag");
    }
  }
  if (reader.remaining() != 0) return Corrupt("trailing bytes");
  for (uint32_t tag = kTagMeta; tag <= kTagRng; ++tag) {
    if (!seen[tag]) return Corrupt("missing section");
  }
  return state;
}

StatusOr<TrainerState> Deserialize(const std::string& bytes) {
  return Deserialize(reinterpret_cast<const uint8_t*>(bytes.data()),
                     bytes.size());
}

}  // namespace ckpt
}  // namespace lpsgd
