// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#include "ckpt/manager.h"

#include <algorithm>
#include <cstdlib>

#include "base/strings.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace lpsgd {
namespace ckpt {
namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kManifestHeader[] = "lpsgd-ckpt-manifest v1";
constexpr const char kCheckpointPrefix[] = "ckpt-";
constexpr const char kCheckpointSuffix[] = ".lpck";

// Same transient set as the exchange retry loop (comm/retry.cc): the
// failure is tied to this write, not to the disk's ability to ever
// complete one.
bool IsTransientWrite(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss || code == StatusCode::kInternal;
}

// "ckpt-<digits>.lpck" -> iteration; false for anything else.
bool ParseCheckpointName(const std::string& name, int64_t* iteration) {
  const size_t prefix = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix + suffix) return false;
  if (name.rfind(kCheckpointPrefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kCheckpointSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) return false;
  *iteration = static_cast<int64_t>(value);
  return true;
}

}  // namespace

Status DurableCheckpointOptions::Validate() const {
  if (save_every < 0) {
    return InvalidArgumentError(
        StrCat("save_every must be >= 0, got ", save_every));
  }
  if (keep < 1) {
    return InvalidArgumentError(StrCat("keep must be >= 1, got ", keep));
  }
  if (retry.max_retries < 0 || retry.backoff_base_seconds < 0.0) {
    return InvalidArgumentError("checkpoint retry budgets must be >= 0");
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<CheckpointManager>> CheckpointManager::Create(
    DurableCheckpointOptions options) {
  if (!options.enabled()) {
    return InvalidArgumentError("checkpoint manager needs a save_dir");
  }
  LPSGD_RETURN_IF_ERROR(options.Validate());
  std::shared_ptr<Storage> storage =
      options.storage != nullptr ? options.storage : MakePosixStorage();
  LPSGD_RETURN_IF_ERROR(storage->CreateDir(options.save_dir));
  return std::unique_ptr<CheckpointManager>(
      new CheckpointManager(std::move(options), std::move(storage)));
}

std::string CheckpointManager::CheckpointPath(int64_t iteration) const {
  return JoinPath(options_.save_dir,
                  StrCat(kCheckpointPrefix, iteration, kCheckpointSuffix));
}

Status CheckpointManager::PublishFile(const std::string& name,
                                      const std::string& bytes,
                                      int64_t iteration) {
  const std::string final_path = JoinPath(options_.save_dir, name);
  const std::string temp_path = StrCat(final_path, ".tmp");
  storage_->SetFaultContext(iteration);
  Status last_error = OkStatus();
  for (int attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
    if (attempt > 0) {
      if (obs::MetricsEnabled()) {
        obs::Count("ckpt/retries");
        obs::Observe("ckpt/backoff_seconds",
                     RetryBackoffSeconds(options_.retry, attempt));
      }
    }
    last_error = storage_->WriteFileSynced(temp_path, bytes);
    if (last_error.ok()) {
      return storage_->AtomicRename(temp_path, final_path);
    }
    if (!IsTransientWrite(last_error.code())) break;
  }
  if (obs::MetricsEnabled()) obs::Count("ckpt/write_failures");
  return last_error;
}

StatusOr<std::vector<std::pair<std::string, int64_t>>>
CheckpointManager::ReadManifest() const {
  LPSGD_ASSIGN_OR_RETURN(
      const std::string text,
      storage_->ReadFile(JoinPath(options_.save_dir, kManifestName)));
  std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return DataLossError("corrupt checkpoint manifest header");
  }
  std::vector<std::pair<std::string, int64_t>> entries;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const size_t space = lines[i].find(' ');
    if (space == std::string::npos) {
      return DataLossError(
          StrCat("corrupt checkpoint manifest line: ", lines[i]));
    }
    const std::string name = lines[i].substr(0, space);
    int64_t iteration = 0;
    if (!ParseCheckpointName(name, &iteration)) {
      return DataLossError(
          StrCat("corrupt checkpoint manifest entry: ", lines[i]));
    }
    entries.emplace_back(name, iteration);
  }
  return entries;
}

Status CheckpointManager::WriteManifest(
    const std::vector<std::pair<std::string, int64_t>>& entries) {
  std::string text = kManifestHeader;
  text.push_back('\n');
  for (const auto& entry : entries) {
    text.append(StrCat(entry.first, " ", entry.second, "\n"));
  }
  const std::string final_path = JoinPath(options_.save_dir, kManifestName);
  const std::string temp_path = StrCat(final_path, ".tmp");
  LPSGD_RETURN_IF_ERROR(storage_->WriteFileSynced(temp_path, text));
  return storage_->AtomicRename(temp_path, final_path);
}

StatusOr<std::vector<std::pair<std::string, int64_t>>>
CheckpointManager::ScanCheckpoints() const {
  LPSGD_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                         storage_->List(options_.save_dir));
  std::vector<std::pair<std::string, int64_t>> entries;
  for (const std::string& name : names) {
    int64_t iteration = 0;
    if (ParseCheckpointName(name, &iteration)) {
      entries.emplace_back(name, iteration);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return entries;
}

Status CheckpointManager::Save(const TrainerState& state) {
  const std::string bytes = Serialize(state);
  const std::string name =
      StrCat(kCheckpointPrefix, state.iteration, kCheckpointSuffix);
  LPSGD_RETURN_IF_ERROR(PublishFile(name, bytes, state.iteration));

  // Rebuild the manifest: new file first, then surviving older entries.
  std::vector<std::pair<std::string, int64_t>> entries;
  StatusOr<std::vector<std::pair<std::string, int64_t>>> previous =
      ReadManifest();
  if (!previous.ok()) {
    // Missing (first save) or corrupt manifest: rebuild from the
    // directory so retention still converges.
    previous = ScanCheckpoints();
  }
  entries.emplace_back(name, state.iteration);
  if (previous.ok()) {
    for (const auto& entry : previous.value()) {
      if (entry.first != name) entries.push_back(entry);
    }
  }
  std::vector<std::pair<std::string, int64_t>> pruned(
      entries.begin(),
      entries.begin() +
          std::min<size_t>(entries.size(),
                           static_cast<size_t>(options_.keep)));
  LPSGD_RETURN_IF_ERROR(WriteManifest(pruned));
  // GC after the manifest stops referencing the victims; a crash in
  // between leaves unreferenced files, which the next Save's scan prunes.
  for (size_t i = pruned.size(); i < entries.size(); ++i) {
    const Status removed =
        storage_->Remove(JoinPath(options_.save_dir, entries[i].first));
    if (!removed.ok() && obs::MetricsEnabled()) {
      obs::Count("ckpt/gc_failures");
    }
  }
  if (obs::MetricsEnabled()) {
    obs::Count("ckpt/writes");
    obs::Count("ckpt/bytes", static_cast<int64_t>(bytes.size()));
  }
  return OkStatus();
}

StatusOr<RestoreResult> CheckpointManager::RestoreLatest() {
  StatusOr<std::vector<std::pair<std::string, int64_t>>> listed =
      ReadManifest();
  if (!listed.ok()) listed = ScanCheckpoints();
  LPSGD_RETURN_IF_ERROR(listed.status());
  const std::vector<std::pair<std::string, int64_t>>& entries =
      listed.value();
  if (entries.empty()) {
    return NotFoundError(
        StrCat("no checkpoints in ", options_.save_dir));
  }
  int fallbacks = 0;
  for (const auto& entry : entries) {
    const std::string path = JoinPath(options_.save_dir, entry.first);
    StatusOr<std::string> bytes = storage_->ReadFile(path);
    if (bytes.ok()) {
      StatusOr<TrainerState> state = Deserialize(bytes.value());
      if (state.ok()) {
        if (obs::MetricsEnabled()) {
          obs::Count("ckpt/restores");
          if (fallbacks > 0) obs::Count("ckpt/fallbacks", fallbacks);
        }
        if (obs::ReportEnabled()) {
          obs::JsonValue fields = obs::JsonValue::Object();
          fields.Set("path", path);
          fields.Set("iteration", state.value().iteration);
          fields.Set("rank_count",
                     static_cast<int64_t>(state.value().rank_count));
          fields.Set("fallbacks", static_cast<int64_t>(fallbacks));
          obs::RecordEntry("ckpt_restore", std::move(fields));
        }
        RestoreResult result;
        result.state = std::move(state).value();
        result.path = path;
        result.fallbacks = fallbacks;
        return result;
      }
      // A file that exists but fails to decode is a torn/short write the
      // integrity words caught: fall back to the previous checkpoint.
      if (obs::MetricsEnabled()) obs::Count("ckpt/torn_detected");
    }
    ++fallbacks;
  }
  return DataLossError(
      StrCat("all ", entries.size(), " checkpoints in ", options_.save_dir,
             " are corrupt or unreadable"));
}

}  // namespace ckpt
}  // namespace lpsgd
