// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CKPT_STORAGE_H_
#define LPSGD_CKPT_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"

namespace lpsgd {
namespace ckpt {

// Minimal durable-file interface for the checkpoint subsystem
// (DESIGN.md "Durable crash-consistent checkpointing"). The manager only
// ever writes through the temp+fsync+rename protocol, so the interface is
// deliberately small: whole-file synced writes, whole-file reads, atomic
// rename, and directory listing. Production code uses the POSIX
// implementation; chaos tests wrap it in a FaultInjectingStorage.
//
// Error-code contract: a full disk (or any transient, retryable write
// failure) is UNAVAILABLE — the manager retries it on the
// comm/retry backoff schedule. Missing files are NOT_FOUND. Everything
// else is INTERNAL.
class Storage {
 public:
  virtual ~Storage() = default;

  // mkdir -p: creates `path` and any missing parents; existing is OK.
  [[nodiscard]] virtual Status CreateDir(const std::string& path) = 0;

  // Writes `data` to `path` (truncating) and fsyncs before returning, so
  // a subsequent AtomicRename publishes fully-durable bytes.
  [[nodiscard]] virtual Status WriteFileSynced(const std::string& path,
                                               const std::string& data) = 0;

  [[nodiscard]] virtual StatusOr<std::string> ReadFile(
      const std::string& path) = 0;

  // rename(2): atomically replaces `to` with `from`, then syncs the
  // parent directory so the rename itself is durable.
  [[nodiscard]] virtual Status AtomicRename(const std::string& from,
                                            const std::string& to) = 0;

  [[nodiscard]] virtual Status Remove(const std::string& path) = 0;

  // Names (not paths) of regular files directly under `dir`.
  [[nodiscard]] virtual StatusOr<std::vector<std::string>> List(
      const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) = 0;

  // Fault-injection context: the trainer iteration the next checkpoint
  // write belongs to, so a FaultPlan's storage verbs can key off it.
  // A no-op for real storage.
  virtual void SetFaultContext(int64_t iteration) { (void)iteration; }
};

// The real thing: POSIX open/write/fsync/rename.
std::shared_ptr<Storage> MakePosixStorage();

// Joins a directory and a file name with exactly one '/'.
std::string JoinPath(const std::string& dir, const std::string& name);

// The final path component ("" for a trailing '/').
std::string Basename(const std::string& path);

}  // namespace ckpt
}  // namespace lpsgd

#endif  // LPSGD_CKPT_STORAGE_H_
