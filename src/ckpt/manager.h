// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CKPT_MANAGER_H_
#define LPSGD_CKPT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "ckpt/format.h"
#include "ckpt/storage.h"
#include "comm/allreduce.h"

namespace lpsgd {
namespace ckpt {

// Durable-checkpoint configuration, carried on TrainerOptions.
struct DurableCheckpointOptions {
  // Directory for checkpoint files; empty disables durable checkpointing.
  std::string save_dir;
  // Save every N committed iterations (0 = only explicit/final saves).
  int save_every = 0;
  // Retention: how many most-recent checkpoints survive GC.
  int keep = 3;
  // Retry budget for transient write failures (ENOSPC and friends); the
  // backoff schedule is the comm/retry one (RetryBackoffSeconds).
  ExchangeRetryOptions retry{/*max_retries=*/4, /*timeout_seconds=*/0.0,
                             /*backoff_base_seconds=*/0.001};
  // Storage backend; null means POSIX. Chaos tests inject a
  // FaultInjectingStorage here (the trainer also auto-wraps when its
  // FaultPlan carries storage verbs).
  std::shared_ptr<Storage> storage;

  bool enabled() const { return !save_dir.empty(); }
  [[nodiscard]] Status Validate() const;
};

// What RestoreLatest found: the decoded state, the file it came from, and
// how many newer-but-unusable checkpoints it had to skip on the way (each
// one a detected torn/short write).
struct RestoreResult {
  TrainerState state;
  std::string path;
  int fallbacks = 0;
};

// Crash-consistent checkpoint directory manager
// (DESIGN.md "Durable crash-consistent checkpointing"). Every save runs
// the same protocol:
//
//   1. serialize to bytes (ckpt::Serialize)
//   2. write ckpt-<iter>.lpck.tmp, fsync          (retried with backoff
//      on transient failures)
//   3. atomically rename over ckpt-<iter>.lpck
//   4. rewrite MANIFEST (newest-first list) via its own temp+rename
//   5. GC checkpoints beyond the retention budget
//
// A crash between any two steps leaves either the previous manifest
// (pointing at intact older files) or the new one (pointing at the
// fully-durable new file) — never a manifest entry for a partial file.
// Torn writes that corrupt file *contents* are caught at restore time by
// the per-section integrity words, and the manager falls back to the next
// manifest entry.
class CheckpointManager {
 public:
  [[nodiscard]] static StatusOr<std::unique_ptr<CheckpointManager>> Create(
      DurableCheckpointOptions options);

  // Serializes and durably publishes `state`, then applies retention.
  [[nodiscard]] Status Save(const TrainerState& state);

  // Loads the newest checkpoint that decodes cleanly, skipping (and
  // counting) corrupt ones. NOT_FOUND when the directory holds no
  // checkpoints at all; DATA_LOSS when checkpoints exist but every one of
  // them is corrupt.
  [[nodiscard]] StatusOr<RestoreResult> RestoreLatest();

  const DurableCheckpointOptions& options() const { return options_; }
  Storage* storage() const { return storage_.get(); }
  std::string CheckpointPath(int64_t iteration) const;

 private:
  explicit CheckpointManager(DurableCheckpointOptions options,
                             std::shared_ptr<Storage> storage)
      : options_(std::move(options)), storage_(std::move(storage)) {}

  // The write half of the protocol (steps 2-3) with retry/backoff.
  [[nodiscard]] Status PublishFile(const std::string& name,
                                   const std::string& bytes,
                                   int64_t iteration);
  // Manifest entries as (file name, iteration), newest first.
  [[nodiscard]] StatusOr<std::vector<std::pair<std::string, int64_t>>>
  ReadManifest() const;
  [[nodiscard]] Status WriteManifest(
      const std::vector<std::pair<std::string, int64_t>>& entries);
  // Directory-scan fallback for a missing/corrupt manifest.
  [[nodiscard]] StatusOr<std::vector<std::pair<std::string, int64_t>>>
  ScanCheckpoints() const;

  DurableCheckpointOptions options_;
  std::shared_ptr<Storage> storage_;
};

}  // namespace ckpt
}  // namespace lpsgd

#endif  // LPSGD_CKPT_MANAGER_H_
