// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CKPT_FAULT_STORAGE_H_
#define LPSGD_CKPT_FAULT_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/storage.h"
#include "fault/fault_plan.h"

namespace lpsgd {
namespace ckpt {

// Deterministic storage-fault injection (the durable-layer sibling of
// fault::FaultInjectingAggregator). Wraps any Storage and applies the
// FaultPlan's storage verbs to checkpoint data-file writes — files whose
// basename starts with "ckpt-" — at the iteration announced through
// SetFaultContext:
//
//   enospc@i[xN]   the first N write attempts at iteration i fail with
//                  UNAVAILABLE (the manager's retry loop re-attempts).
//   torn@i         the write "succeeds" but the bytes on disk are
//                  corrupted (seeded by plan.seed ^ i), modelling a torn
//                  page: the fault is silent at write time and must be
//                  caught by the reader's integrity words.
//   shortwrite@i   the write "succeeds" but only the first half of the
//                  payload reaches the disk, modelling a crash mid-write.
//
// When both torn@ and shortwrite@ name the same iteration, torn wins (one
// write happens per save; only one lie fits in it). Manifest writes and
// everything else pass through untouched — the protocol under test is the
// data-file path, and a corrupt manifest is covered separately by the
// manager's directory-scan fallback.
class FaultInjectingStorage : public Storage {
 public:
  FaultInjectingStorage(std::shared_ptr<Storage> inner,
                        fault::FaultPlan plan);

  [[nodiscard]] Status CreateDir(const std::string& path) override;
  [[nodiscard]] Status WriteFileSynced(const std::string& path,
                                       const std::string& data) override;
  [[nodiscard]] StatusOr<std::string> ReadFile(
      const std::string& path) override;
  [[nodiscard]] Status AtomicRename(const std::string& from,
                                    const std::string& to) override;
  [[nodiscard]] Status Remove(const std::string& path) override;
  [[nodiscard]] StatusOr<std::vector<std::string>> List(
      const std::string& dir) override;
  bool Exists(const std::string& path) override;
  void SetFaultContext(int64_t iteration) override;

  // Total faults injected so far (tests assert the plan actually fired).
  int64_t injected() const { return injected_; }

 private:
  std::shared_ptr<Storage> inner_;
  fault::FaultPlan plan_;
  int64_t iteration_ = -1;
  int64_t injected_ = 0;
  // Write attempts per iteration, so enospc budgets are consumed across
  // the manager's retries exactly like the exchange-fault budgets.
  std::unordered_map<int64_t, int> attempts_;
};

}  // namespace ckpt
}  // namespace lpsgd

#endif  // LPSGD_CKPT_FAULT_STORAGE_H_
