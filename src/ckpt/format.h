// Copyright 2026 The LPSGD Authors. Licensed under the Apache License 2.0.
#ifndef LPSGD_CKPT_FORMAT_H_
#define LPSGD_CKPT_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/statusor.h"

namespace lpsgd {
namespace ckpt {

// One named tensor (a parameter matrix or an optimizer velocity slot).
struct TensorEntry {
  std::string name;
  std::vector<int64_t> dims;
  std::vector<float> data;
};

// One deterministic RNG stream recorded for provenance: the derived
// stream seeds are recomputable from the base seed, but writing them out
// makes the file self-describing for external tooling.
struct RngStreamEntry {
  std::string name;
  uint64_t seed = 0;
};

// Everything SyncTrainer needs to resume bit-identically: model and
// optimizer tensors, per-rank error-feedback residuals, the aggregator's
// owner-side residuals, the deterministic RNG streams, and the exact
// position in the epoch (step counter, batch cursor, metric
// accumulators). Wall-clock time is deliberately absent — it is the one
// nondeterministic quantity and would break bit-equality of the files.
struct TrainerState {
  // -- meta section --
  uint64_t seed = 0;
  std::string codec;
  int32_t rank_count = 0;
  int64_t iteration = 0;
  int32_t epochs_completed = 0;
  // Number of NextBatch calls already consumed in the in-progress epoch
  // (0 = the checkpoint sits on an epoch boundary).
  int64_t epoch_batch_cursor = 0;
  double epoch_loss_sum = 0.0;
  int64_t epoch_correct = 0;
  int64_t epoch_samples = 0;
  double virtual_seconds = 0.0;

  std::vector<TensorEntry> params;
  std::vector<TensorEntry> optimizer;
  // Per-rank, per-matrix error-feedback residuals (empty vectors for
  // codecs without error feedback).
  std::vector<std::vector<std::vector<float>>> residuals;
  // The aggregator's exported exchange state (comm/allreduce.h), one flat
  // vector per matrix; empty for stateless engines.
  std::vector<std::vector<float>> aggregator_state;
  std::vector<RngStreamEntry> rng_streams;
};

// Wire format v1 (DESIGN.md "Durable crash-consistent checkpointing"):
//
//   header   u32 magic 'LPCK' | u32 version | u32 section_count
//            | u32 fnv1a32(header bytes so far)
//   section  u32 tag | u64 payload_length | payload
//            | u32 fnv1a32(payload)
//
// Six sections (meta, params, optimizer, residuals, aggregator, rng),
// each present exactly once, in any order, with nothing trailing. The
// per-section FNV-1a words reuse the codec sealing convention
// (base/bit_packing.h), so a torn or truncated file fails closed.
std::string Serialize(const TrainerState& state);

// Strict, allocation-bounded reader. EVERY malformed input — wrong magic,
// bad integrity word, truncated section, absurd count, trailing bytes —
// returns DATA_LOSS (never crashes, never over-allocates): the caller
// treats any such file as a torn write and falls back to an older
// checkpoint. Counts are validated against the remaining payload size
// before any buffer is sized, so hostile length fields cannot OOM.
[[nodiscard]] StatusOr<TrainerState> Deserialize(const uint8_t* data,
                                                 size_t size);
[[nodiscard]] StatusOr<TrainerState> Deserialize(const std::string& bytes);

}  // namespace ckpt
}  // namespace lpsgd

#endif  // LPSGD_CKPT_FORMAT_H_
